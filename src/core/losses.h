// LightLT training losses (paper §III-D).
//
//  * Class-weighted cross entropy (Eqn. 12) with the class-balanced weight
//    w_c = (1 - gamma) / (1 - gamma^{pi_c}); gamma = 0 recovers plain CE,
//    gamma -> 1 approaches inverse-frequency weighting.
//  * Center loss (Eqn. 13): pull quantized representations to their class
//    prototype.
//  * Ranking loss (Eqn. 14): softmax over negative prototype distances so
//    each representation is closer to its own prototype than to others.
//  * Final loss (Eqn. 15): L = L_ce + alpha * (L_c + L_r); Prop. 1 shows
//    L_c + L_r upper-bounds triplet loss at O(N) cost.
//
// All terms are averaged over the batch (the paper sums; a 1/N factor only
// rescales the learning rate and keeps it batch-size independent).

#ifndef LIGHTLT_CORE_LOSSES_H_
#define LIGHTLT_CORE_LOSSES_H_

#include <cstddef>
#include <vector>

#include "src/tensor/ops.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Loss hyper-parameters (Eqns. 12, 14, 15).
struct LossConfig {
  float gamma = 0.999f;  ///< class-weight sharpness, in [0, 1)
  float alpha = 0.01f;   ///< weight of (center + ranking) terms
  float tau = 1.0f;      ///< ranking-loss temperature (Eqn. 14)
  bool use_center_loss = true;
  bool use_ranking_loss = true;
  /// Optional explicit reconstruction term ||f(x) - o||^2 (not part of the
  /// paper's Eqn. 15 — the STE already ties o to f(x) — but used by the
  /// KDE baseline and available as an ablation).
  float recon_weight = 0.0f;

  Status Validate() const;
};

/// Per-class weights w_c = (1-gamma)/(1-gamma^{pi_c}), normalized so the
/// weighted sample count equals N (keeps the CE scale comparable across
/// gamma values). `class_counts` are the training-set pi_c.
std::vector<float> ClassBalancedWeights(const std::vector<size_t>& class_counts,
                                        float gamma);

/// Class-weighted cross entropy (Eqn. 12). `logits` is (n x C),
/// `class_weights` per-class (length C).
Var WeightedCrossEntropy(const Var& logits, const std::vector<size_t>& labels,
                         const std::vector<float>& class_weights);

/// Center loss (Eqn. 13): mean_i ||z_{y_i} - o_i||_2. `prototypes` is the
/// trainable (C x d) prototype bank.
Var CenterLoss(const Var& quantized, const Var& prototypes,
               const std::vector<size_t>& labels);

/// Ranking loss (Eqn. 14): -mean_i log softmax_j(-||o_i - z_j||/tau)[y_i].
Var RankingLoss(const Var& quantized, const Var& prototypes,
                const std::vector<size_t>& labels, float tau);

/// Per-term values of one LightLtLoss evaluation (training telemetry,
/// DESIGN.md §10). Terms are the raw batch means, before the alpha /
/// recon_weight scaling; disabled terms stay 0.
struct LossBreakdown {
  double ce = 0.0;       ///< L_ce (Eqn. 12)
  double center = 0.0;   ///< L_c (Eqn. 13)
  double ranking = 0.0;  ///< L_r (Eqn. 14)
  double recon = 0.0;    ///< reconstruction term (ablation)
  double total = 0.0;    ///< the combined Eqn. 15 value
};

/// Full LightLT objective (Eqn. 15). `embedding` (the continuous f(x)) is
/// only consumed when config.recon_weight > 0; pass nullptr otherwise.
/// `breakdown`, when non-null, receives the per-term values (free: the
/// graph is eager, so the component Vars already hold them).
Var LightLtLoss(const Var& logits, const Var& quantized, const Var& prototypes,
                const std::vector<size_t>& labels,
                const std::vector<float>& class_weights,
                const LossConfig& config, const Var& embedding = nullptr,
                LossBreakdown* breakdown = nullptr);

/// Reference implementation of the triplet loss the paper upper-bounds
/// (Prop. 1); O(N^3), used only in tests to verify the bound empirically.
double TripletLossValue(const Matrix& representations,
                        const std::vector<size_t>& labels, float margin);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_LOSSES_H_
