#include "src/core/ensemble.h"

#include <cstdio>

#include "src/nn/module.h"

namespace lightlt::core {

Status EnsembleOptions::Validate() const {
  if (num_models <= 0) {
    return Status::InvalidArgument("num_models must be positive");
  }
  if (finetune_epochs < 0) {
    return Status::InvalidArgument("finetune_epochs must be >= 0");
  }
  if (finetune_learning_rate <= 0.0f) {
    return Status::InvalidArgument("finetune_learning_rate must be positive");
  }
  LIGHTLT_RETURN_IF_ERROR(checkpoint.Validate());
  if (num_models > 1 && !checkpoint.enabled() &&
      base_training.checkpoint.enabled()) {
    // Members sharing one checkpoint directory would clobber each other;
    // ensemble-level checkpointing assigns per-member subdirectories.
    return Status::InvalidArgument(
        "set EnsembleOptions::checkpoint (not base_training.checkpoint) "
        "when training multiple members");
  }
  return base_training.Validate();
}

Result<EnsembleResult> TrainEnsemble(const ModelConfig& config,
                                     const data::Dataset& train,
                                     const EnsembleOptions& options) {
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  LIGHTLT_RETURN_IF_ERROR(config.Validate());

  EnsembleResult result;

  // Algorithm 1, lines 2-6: train n base models. All members share the
  // backbone initialization (the paper's members share the same pretrained
  // ResNet34/BERT weights, which keeps the averaged weights in one loss
  // basin) and differ in head initialization and data ordering. Members are
  // independent, so with options.pool set they train concurrently under one
  // TaskGroup; each slot is written only by its own task.
  const size_t n_models = static_cast<size_t>(options.num_models);
  std::vector<std::unique_ptr<LightLtModel>> members(n_models);
  std::vector<Result<TrainStats>> member_results(n_models,
                                                 Result<TrainStats>(
                                                     TrainStats{}));
  TaskGroup group(options.pool);
  for (size_t i = 0; i < n_models; ++i) {
    group.Submit([&, i] {
      auto model = std::make_unique<LightLtModel>(config, options.seed);
      if (i > 0) {
        // Distinct quantizer initialization per member (the paper's
        // "different initializations"); see Example 1 for why the averaged
        // codebooks then need re-alignment.
        Rng reinit(options.seed + 1000 + static_cast<uint64_t>(i));
        model->mutable_dsq().ReinitializeParameters(reinit);
      }
      TrainOptions per_model = options.base_training;
      per_model.shuffle_seed = options.base_training.shuffle_seed +
                               static_cast<uint64_t>(i) * 7919;
      if (options.checkpoint.enabled()) {
        per_model.checkpoint = options.checkpoint;
        per_model.checkpoint.dir =
            options.checkpoint.dir + "/member-" + std::to_string(i);
      }
      member_results[i] = TrainLightLt(model.get(), train, per_model);
      members[i] = std::move(model);
    });
  }
  group.Wait();
  for (size_t i = 0; i < n_models; ++i) {
    if (!member_results[i].ok()) return member_results[i].status();
    result.member_stats.push_back(std::move(member_results[i]).value());
  }

  if (options.num_models == 1) {
    result.model = std::move(members[0]);
    return result;
  }

  // Algorithm 1, line 7: average all weights into a fresh model (Eqn. 23).
  result.model = std::make_unique<LightLtModel>(config, options.seed);
  std::vector<const nn::Module*> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(m.get());
  nn::AverageParametersInto(views, result.model.get());

  // Algorithm 1, lines 8-11: re-align codebooks by fine-tuning DSQ only
  // (Example 1: averaging permuted codebooks destroys codewords, so the
  // averaged DSQ must be re-learned against the frozen averaged backbone).
  if (options.finetune_epochs > 0) {
    TrainOptions finetune = options.base_training;
    finetune.epochs = options.finetune_epochs;
    finetune.learning_rate = options.finetune_learning_rate;
    finetune.dsq_only = true;
    finetune.schedule = ScheduleKind::kConstant;
    if (options.checkpoint.enabled()) {
      // The averaged backbone is reconstructed deterministically from the
      // members above, so resuming the fine-tune checkpoint continues the
      // exact interrupted computation.
      finetune.checkpoint = options.checkpoint;
      finetune.checkpoint.dir = options.checkpoint.dir + "/finetune";
    }
    auto stats = TrainLightLt(result.model.get(), train, finetune);
    if (!stats.ok()) return stats.status();
    result.finetune_stats = std::move(stats).value();
  }
  return result;
}

}  // namespace lightlt::core
