// Training loop for LightLT (Algorithm 1, lines 2-6) and the DSQ-only
// fine-tuning pass used after weight ensembling (lines 8-11).

#ifndef LIGHTLT_CORE_TRAINER_H_
#define LIGHTLT_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/lightlt_model.h"
#include "src/core/losses.h"
#include "src/data/dataset.h"
#include "src/nn/optimizer.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Learning-rate schedule choice (paper §V-A4: cosine annealing on image
/// datasets, linear-with-warmup on text datasets).
enum class ScheduleKind { kConstant, kCosine, kLinearWarmup };

struct TrainOptions {
  int epochs = 15;
  size_t batch_size = 64;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  ScheduleKind schedule = ScheduleKind::kCosine;
  float warmup_fraction = 0.05f;  ///< fraction of steps used as warmup
  LossConfig loss;
  uint64_t shuffle_seed = 0xba7c;
  /// When true, only DSQ parameters receive updates (ensemble fine-tuning;
  /// backbone, classifier and prototypes stay frozen — paper Fig. 2).
  bool dsq_only = false;
  bool verbose = false;
  /// Epoch-level checkpointing. When `checkpoint.dir` is set, the trainer
  /// saves its full state there and — if the directory already holds a
  /// valid checkpoint for the same model/options — resumes from it,
  /// reproducing the uninterrupted run bit for bit.
  CheckpointConfig checkpoint;
  /// When > 0, return after completing this many epochs in this call
  /// (simulated preemption / time-sliced training). With checkpointing
  /// enabled a final checkpoint is always written first, so a later call
  /// with the same options picks up where this one stopped.
  int stop_after_epochs = 0;
  /// Per-epoch training telemetry (DESIGN.md §10): loss-term breakdown,
  /// DSQ codebook utilization/perplexity per stage, head/mid/tail
  /// accuracy. Null disables metric recording entirely. Must outlive the
  /// TrainLightLt call; none of this state is checkpointed, so resume
  /// stays bit-identical with or without it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured logger for progress events. Null: epoch lines go to an
  /// stdout kInfo logger when `verbose`, otherwise to Logger::Global()
  /// (threshold kWarn — silent under ctest).
  obs::Logger* logger = nullptr;

  Status Validate() const;
};

/// Per-epoch training telemetry.
struct TrainStats {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;  ///< train batch classification acc
  double final_loss() const {
    return epoch_loss.empty() ? 0.0 : epoch_loss.back();
  }
};

/// Trains `model` on `train` in place. Class weights are derived from the
/// training-set class counts (Eqn. 12).
Result<TrainStats> TrainLightLt(LightLtModel* model,
                                const data::Dataset& train,
                                const TrainOptions& options);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_TRAINER_H_
