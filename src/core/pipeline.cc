#include "src/core/pipeline.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace lightlt::core {

Matrix EmbedInChunks(const LightLtModel& model, const Matrix& x,
                     size_t chunk, ThreadPool* pool) {
  LIGHTLT_CHECK_GT(chunk, 0u);
  Matrix out(x.rows(), model.config().embed_dim);
  // Forward passes only read the shared parameters, and each range writes a
  // disjoint row span of `out`, so chunks embed concurrently without locks.
  ParallelForRanges(
      pool, x.rows(),
      [&](size_t start, size_t end) {
        std::vector<size_t> idx(end - start);
        std::iota(idx.begin(), idx.end(), start);
        const Matrix part = model.Embed(x.GatherRows(idx));
        for (size_t i = 0; i < part.rows(); ++i) {
          std::copy(part.row(i), part.row(i) + part.cols(),
                    out.row(start + i));
        }
      },
      /*min_chunk=*/chunk);
  return out;
}

Result<index::AdcIndex> BuildAdcIndex(const LightLtModel& model,
                                      const Matrix& db_features) {
  const Matrix embedded = EmbedInChunks(model, db_features);
  std::vector<std::vector<uint32_t>> codes;
  model.dsq().Encode(embedded, &codes);
  return index::AdcIndex::Build(model.Codebooks(), codes);
}

Result<RetrievalReport> EvaluateModel(const LightLtModel& model,
                                      const data::RetrievalBenchmark& bench,
                                      ThreadPool* pool) {
  auto built = BuildAdcIndex(model, bench.database.features);
  if (!built.ok()) return built.status();
  const index::AdcIndex& idx = built.value();

  const Matrix query_embeds =
      EmbedInChunks(model, bench.query.features, /*chunk=*/4096, pool);

  eval::RankingFn ranker = [&](size_t q) {
    return idx.RankAll(query_embeds.row(q));
  };

  RetrievalReport report;
  report.map = eval::MeanAveragePrecision(ranker, bench.query.labels,
                                          bench.database.labels, pool);

  // Head/tail split by training-set class size, rank-based so both halves
  // are non-empty even when many tail classes share the minimum count.
  const auto counts = bench.train.ClassCounts();
  std::vector<size_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return counts[a] > counts[b] || (counts[a] == counts[b] && a < b);
  });
  std::vector<bool> head(counts.size()), tail(counts.size());
  for (size_t r = 0; r < order.size(); ++r) {
    const bool is_head = r < order.size() / 2;
    head[order[r]] = is_head;
    tail[order[r]] = !is_head;
  }
  report.head_map = eval::MeanAveragePrecisionForClasses(
      ranker, bench.query.labels, bench.database.labels, head, pool);
  report.tail_map = eval::MeanAveragePrecisionForClasses(
      ranker, bench.query.labels, bench.database.labels, tail, pool);

  report.index_bytes = idx.MemoryBytes();
  report.raw_bytes = bench.database.features.size() * sizeof(float);
  return report;
}

}  // namespace lightlt::core
