// Epoch-level training checkpoints (crash/preemption recovery).
//
// A checkpoint captures the complete trainer state at an epoch boundary —
// model parameters, AdamW moments and step counter, LR-schedule position
// (global step), the shuffle permutation and both RNG streams — so a resumed
// run continues the exact computation of the interrupted one: final weights
// are bit-identical to an uninterrupted run (asserted by checkpoint_test).
//
// Files are written with the atomic, checksummed BinaryWriter protocol: a
// crash mid-save leaves the previous checkpoint intact, and a corrupt or
// torn checkpoint is detected at load time (the trainer then falls back to
// the next-older one).

#ifndef LIGHTLT_CORE_CHECKPOINT_H_
#define LIGHTLT_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Checkpointing policy for TrainLightLt / TrainEnsemble.
struct CheckpointConfig {
  /// Directory for checkpoint files (created if missing). Empty = disabled.
  std::string dir;
  /// Save every N completed epochs (the final epoch and an early stop are
  /// always saved).
  int every_n_epochs = 1;
  /// Keep only the newest K checkpoint files; 0 = keep all. Keeping more
  /// than one lets resume fall back past a corrupt newest checkpoint.
  int keep_last = 2;

  bool enabled() const { return !dir.empty(); }
  Status Validate() const;
};

/// Complete trainer state at an epoch boundary.
struct TrainerCheckpoint {
  int64_t epochs_completed = 0;
  int64_t global_step = 0;  ///< LR-schedule position
  RngState shuffle_rng;
  RngState gumbel_rng;
  std::vector<uint32_t> order;  ///< current shuffle permutation
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
  std::vector<Matrix> model_params;  ///< every model parameter, in order
  std::vector<Matrix> opt_m;         ///< AdamW moments of the trained subset
  std::vector<Matrix> opt_v;
  int64_t opt_step = 0;
};

/// Writes a checkpoint atomically (checksummed footer, tmp + rename).
Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                             const std::string& path);

/// Reads a checkpoint; fails with IoError on truncation/corruption.
Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path);

/// Canonical file path of the checkpoint for `epoch` under `dir`.
std::string CheckpointPath(const std::string& dir, int64_t epoch);

/// Epochs that have a checkpoint file in `dir`, ascending. Unreadable or
/// foreign files are ignored.
std::vector<int64_t> ListCheckpointEpochs(const std::string& dir);

/// Creates `dir` and any missing parents.
Status EnsureDirectory(const std::string& dir);

/// Deletes all but the newest `keep_last` checkpoints (0 = keep all).
void PruneCheckpoints(const std::string& dir, int keep_last);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_CHECKPOINT_H_
