#include "src/core/defaults.h"

namespace lightlt::core {

ModelConfig DefaultModelConfig(const data::RetrievalBenchmark& bench,
                               bool full_scale) {
  ModelConfig cfg;
  cfg.input_dim = bench.train.dim();
  cfg.num_classes = bench.train.num_classes;
  if (full_scale) {
    cfg.hidden_dims = {512};
    cfg.embed_dim = 256;
    cfg.dsq.num_codewords = 256;  // paper: 32-bit codes with M=4
  } else {
    cfg.hidden_dims = {128};
    cfg.embed_dim = 64;
    cfg.dsq.num_codewords = 64;
  }
  cfg.dsq.num_codebooks = 4;  // paper: four codebooks
  // Tempered-softmax temperature (Eqn. 5). Tuned on the validation split
  // (tools/tune_lightlt); softer assignments keep codebook gradients alive
  // early in training. Shared by every deep quantizer we train (DPQ, KDE,
  // LightLT) so the comparison isolates the paper's actual contributions.
  cfg.dsq.temperature = 4.0f;
  // A narrow codebook-transform FFN (d/4 hidden units) is enough for the
  // skip connection and keeps its variance contribution small.
  cfg.dsq.ffn_hidden = cfg.embed_dim / 4;
  return cfg;
}

TrainOptions DefaultTrainOptions(data::PresetId preset, bool full_scale) {
  TrainOptions opts;
  opts.epochs = full_scale ? 30 : 20;
  opts.batch_size = 64;
  opts.learning_rate = 5e-3f;
  // gamma tuned like the paper's grid search over the validation set; the
  // near-1 inverse-frequency extreme overfits the 2-sample tail classes.
  opts.loss.gamma = 0.9f;
  opts.loss.alpha = 0.1f;
  switch (preset) {
    case data::PresetId::kCifar100ish:
    case data::PresetId::kImageNet100ish:
      // §V-A4: cosine annealing on the image datasets.
      opts.schedule = ScheduleKind::kCosine;
      break;
    case data::PresetId::kNcish:
    case data::PresetId::kQbaish:
      // §V-A4: linear schedule with warmup on the text datasets.
      opts.schedule = ScheduleKind::kLinearWarmup;
      opts.warmup_fraction = 0.1f;
      break;
  }
  return opts;
}

EnsembleOptions DefaultEnsembleOptions(data::PresetId preset, bool full_scale,
                                       int num_models) {
  EnsembleOptions opts;
  opts.num_models = num_models;
  opts.base_training = DefaultTrainOptions(preset, full_scale);
  opts.finetune_epochs = full_scale ? 8 : 6;
  opts.finetune_learning_rate = 2e-3f;
  return opts;
}

}  // namespace lightlt::core
