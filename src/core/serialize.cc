#include "src/core/serialize.h"

#include <algorithm>

#include "src/util/io.h"

namespace lightlt::core {
namespace {

constexpr uint32_t kModelMagic = 0x4c'4c'54'31;  // "LLT1"
// v1: header + payload, no integrity data. v2: identical layout followed by
// the BinaryWriter checksum footer; written atomically. v1 files remain
// readable (no footer expected, but trailing bytes are rejected).
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMinSupportedVersion = 1;

void WriteConfig(BinaryWriter& w, const ModelConfig& cfg) {
  w.WriteU64(cfg.input_dim);
  w.WriteU64(cfg.hidden_dims.size());
  for (size_t h : cfg.hidden_dims) w.WriteU64(h);
  w.WriteU64(cfg.embed_dim);
  w.WriteU64(cfg.num_classes);
  w.WriteU64(cfg.dsq.num_codebooks);
  w.WriteU64(cfg.dsq.num_codewords);
  w.WriteF32(cfg.dsq.temperature);
  w.WriteU32(cfg.dsq.straight_through ? 1 : 0);
  w.WriteU32(cfg.dsq.residual_skip ? 1 : 0);
  w.WriteU32(cfg.dsq.codebook_skip ? 1 : 0);
  w.WriteU64(cfg.dsq.ffn_hidden);
}

Result<ModelConfig> ReadConfig(BinaryReader& r) {
  ModelConfig cfg;
  cfg.input_dim = r.ReadU64();
  const size_t num_hidden = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (num_hidden > 64) return Status::IoError("corrupt hidden layer count");
  cfg.hidden_dims.resize(num_hidden);
  for (auto& h : cfg.hidden_dims) h = r.ReadU64();
  cfg.embed_dim = r.ReadU64();
  cfg.num_classes = r.ReadU64();
  cfg.dsq.num_codebooks = r.ReadU64();
  cfg.dsq.num_codewords = r.ReadU64();
  cfg.dsq.temperature = r.ReadF32();
  cfg.dsq.straight_through = r.ReadU32() != 0;
  cfg.dsq.residual_skip = r.ReadU32() != 0;
  cfg.dsq.codebook_skip = r.ReadU32() != 0;
  cfg.dsq.ffn_hidden = r.ReadU64();
  cfg.dsq.dim = cfg.embed_dim;
  if (!r.status().ok()) return r.status();
  // Bound the model size implied by the config before anything is allocated
  // from it: a corrupt header must not be able to request a multi-GB model
  // (the FFN alone is quadratic in embed_dim). Per-field caps first so the
  // parameter-count products below cannot overflow, then a total-size cap.
  constexpr size_t kMaxDim = 1u << 20;
  size_t max_field = std::max({cfg.input_dim, cfg.embed_dim, cfg.num_classes,
                               cfg.dsq.num_codebooks, cfg.dsq.num_codewords,
                               cfg.dsq.ffn_hidden});
  for (size_t h : cfg.hidden_dims) max_field = std::max(max_field, h);
  if (max_field > kMaxDim) {
    return Status::IoError("corrupt model config (dimension too large)");
  }
  const size_t d = cfg.embed_dim;
  const size_t ffn = cfg.dsq.ffn_hidden == 0 ? d : cfg.dsq.ffn_hidden;
  size_t implied = cfg.num_classes * d +
                   cfg.dsq.num_codebooks * cfg.dsq.num_codewords * d +
                   2 * d * ffn;
  size_t prev = cfg.input_dim;
  for (size_t h : cfg.hidden_dims) {
    implied += prev * h;
    prev = h;
  }
  implied += prev * d;
  if (implied > (1u << 28)) {  // 256M floats = 1 GiB of parameters
    return Status::IoError("corrupt model config (implied size too large)");
  }
  Status st = cfg.Validate();
  if (!st.ok()) return Status::IoError("invalid config: " + st.message());
  return cfg;
}

}  // namespace

Status SaveModel(const LightLtModel& model, const std::string& path) {
  BinaryWriter writer(path);
  writer.WriteU32(kModelMagic);
  writer.WriteU32(kFormatVersion);
  WriteConfig(writer, model.config());

  const auto params = model.Parameters();
  writer.WriteU64(params.size());
  for (const auto& p : params) {
    writer.WriteU64(p->value().rows());
    writer.WriteU64(p->value().cols());
    writer.WriteF32Vector(p->value().storage());
  }
  return writer.Close();
}

Result<std::unique_ptr<LightLtModel>> LoadModel(const std::string& path) {
  BinaryReader reader(path);
  const uint32_t magic = reader.ReadU32();
  // Distinguish "could not read the file" from "read something that is not
  // a model": an unreadable or truncated file must surface as an I/O error.
  if (!reader.status().ok()) return reader.status();
  if (magic != kModelMagic) {
    return Status::IoError("not a LightLT model file: " + path);
  }
  const uint32_t version = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (version < kMinSupportedVersion || version > kFormatVersion) {
    return Status::IoError("unsupported model format version");
  }
  auto cfg = ReadConfig(reader);
  if (!cfg.ok()) return cfg.status();

  std::unique_ptr<LightLtModel> model;
  try {
    model = std::make_unique<LightLtModel>(cfg.value(), /*seed=*/0);
  } catch (const std::exception&) {
    return Status::IoError("corrupt model config (allocation failed)");
  }
  auto params = model->Parameters();
  const size_t stored = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  if (stored != params.size()) {
    return Status::IoError("parameter count mismatch");
  }
  for (auto& p : params) {
    const size_t rows = reader.ReadU64();
    const size_t cols = reader.ReadU64();
    std::vector<float> data = reader.ReadF32Vector();
    if (!reader.status().ok()) return reader.status();
    if (rows != p->value().rows() || cols != p->value().cols() ||
        data.size() != rows * cols) {
      return Status::IoError("parameter shape mismatch");
    }
    p->mutable_value() = Matrix(rows, cols, std::move(data));
  }
  // v2+ files end with a checksum footer covering the whole stream; v1
  // files must instead end exactly after the payload.
  Status integrity =
      version >= 2 ? reader.VerifyFooter() : reader.ExpectEof();
  if (!integrity.ok()) return integrity;
  return model;
}

}  // namespace lightlt::core
