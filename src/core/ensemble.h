// Model weight ensemble with DSQ re-alignment (paper §III-E, Fig. 2,
// Algorithm 1 lines 7-12).
//
// n LightLT models are trained from different initializations, their weights
// are averaged element-wise (Eqn. 23), and — because averaged codebooks are
// meaningless under codeword permutation (Example 1) — the DSQ module alone
// is then fine-tuned with the backbone and classifier frozen.

#ifndef LIGHTLT_CORE_ENSEMBLE_H_
#define LIGHTLT_CORE_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "src/core/lightlt_model.h"
#include "src/core/trainer.h"
#include "src/util/threadpool.h"

namespace lightlt::core {

struct EnsembleOptions {
  int num_models = 4;         ///< n in Eqn. 23 (paper uses 4)
  TrainOptions base_training; ///< per-model training configuration
  int finetune_epochs = 5;    ///< DSQ-only fine-tuning epochs
  float finetune_learning_rate = 1e-3f;
  uint64_t seed = 0xe17e;     ///< base seed; model i inits from seed+i
  /// Trains the n members concurrently when set (each member is an
  /// independent model, deterministic from its own seeds, so the result is
  /// identical to serial training). Null = train members serially.
  ThreadPool* pool = nullptr;
  /// Ensemble-level checkpointing: `checkpoint.dir` is the root; member i
  /// checkpoints under `<dir>/member-<i>` and the DSQ fine-tune stage under
  /// `<dir>/finetune`. A re-run after an interruption fast-forwards fully
  /// trained members from their final checkpoints and resumes the rest.
  CheckpointConfig checkpoint;

  Status Validate() const;
};

/// Output of the ensemble procedure.
struct EnsembleResult {
  std::unique_ptr<LightLtModel> model;  ///< averaged + fine-tuned model
  std::vector<TrainStats> member_stats;
  TrainStats finetune_stats;
};

/// Runs the full ensemble pipeline on `train`. With num_models == 1 this is
/// plain training ("LightLT w/o ensemble" in Tables II/III).
Result<EnsembleResult> TrainEnsemble(const ModelConfig& config,
                                     const data::Dataset& train,
                                     const EnsembleOptions& options);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_ENSEMBLE_H_
