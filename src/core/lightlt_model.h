// The full LightLT model: backbone f(.), DSQ quantizer, classification head
// and class-prototype bank (Fig. 1 of the paper).

#ifndef LIGHTLT_CORE_LIGHTLT_MODEL_H_
#define LIGHTLT_CORE_LIGHTLT_MODEL_H_

#include <memory>
#include <vector>

#include "src/core/dsq.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Architecture of a LightLT model.
struct ModelConfig {
  size_t input_dim = 64;   ///< dimension of the (pre-extracted) features
  std::vector<size_t> hidden_dims = {128};  ///< backbone hidden widths
  size_t embed_dim = 64;   ///< d, the continuous representation dimension
  size_t num_classes = 100;
  /// Init stddev of the class-prototype bank; prototypes should start
  /// spread at roughly the embedding scale so the center loss does not
  /// contract the representation space.
  float prototype_init_scale = 0.5f;
  DsqConfig dsq;           ///< dsq.dim is overridden with embed_dim

  Status Validate() const;
};

/// Backbone + DSQ + classifier + prototypes. The classifier consumes the
/// *quantized* representation (Eqn. 12), so the codes themselves are
/// discriminative.
class LightLtModel : public nn::Module {
 public:
  /// `seed` initializes the backbone; `head_seed` initializes DSQ,
  /// classifier and prototypes (0 = derive from `seed`). Ensemble members
  /// share `seed` — the stand-in for the shared *pretrained* backbone the
  /// paper's members start from, which is what makes weight averaging
  /// (Eqn. 23) meaningful — while varying `head_seed`.
  explicit LightLtModel(const ModelConfig& config, uint64_t seed,
                        uint64_t head_seed = 0);

  /// Differentiable training-time forward pass.
  struct ForwardOutput {
    Var embedding;   ///< f(x), n x d
    Var quantized;   ///< o, n x d (through the STE)
    Var logits;      ///< classifier(o), n x C
    std::vector<std::vector<uint32_t>> codes;  ///< hard codes
  };
  /// `gumbel_rng` is forwarded to DsqModule::Forward (per-caller sampling
  /// stream for the gumbel_noise option; null = thread-local fallback).
  ForwardOutput Forward(const Matrix& batch, Rng* gumbel_rng = nullptr) const;

  /// Inference: continuous representation f(x) (query side of ADC search).
  Matrix Embed(const Matrix& x) const;

  /// Inference: hard codes for database items (Fig. 3 indexing workflow).
  void EncodeDatabase(const Matrix& x,
                      std::vector<std::vector<uint32_t>>* codes) const;

  /// Effective codebooks C_1..C_M for index construction.
  std::vector<Matrix> Codebooks() const { return dsq_->EffectiveCodebooks(); }

  std::vector<Var> Parameters() const override;

  /// Only the DSQ parameters — the fine-tuning set of the ensemble step
  /// (paper Fig. 2: backbone and classifier frozen).
  std::vector<Var> DsqParameters() const { return dsq_->Parameters(); }

  const ModelConfig& config() const { return config_; }
  const DsqModule& dsq() const { return *dsq_; }
  DsqModule& mutable_dsq() { return *dsq_; }
  const Var& prototypes() const { return prototypes_; }

 private:
  ModelConfig config_;
  std::unique_ptr<nn::MlpBackbone> backbone_;
  std::unique_ptr<DsqModule> dsq_;
  std::unique_ptr<nn::Linear> classifier_;
  Var prototypes_;  // C x d
};

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_LIGHTLT_MODEL_H_
