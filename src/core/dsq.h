// Double Skip Quantization (DSQ) — the paper's core contribution (§III-C).
//
// M encoder/decoder pairs quantize a d-dim representation into M codeword
// IDs. Two skip connections:
//  1. Residual stacking (Eqn. 2): encoder k sees the residual
//     e_k = f(x) - sum_{j<k} o_j, which forces codebook diversity.
//  2. Codebook chaining (Eqn. 10): C_k = FFN(C_{k-1}) * g_k + P_k, which
//     keeps gradients alive across many stages.
//
// Codeword selection (Eqn. 3) is argmax of negative squared Euclidean
// distance; training uses tempered softmax + the Straight-Through Estimator
// (Eqns. 5-7).
//
// Config toggles reproduce the paper's ablations: codebook_skip=false is the
// "vanilla residual" row of Table IV; residual_skip=false degenerates to
// independent parallel codebooks; straight_through=false trains on the soft
// relaxation only.

#ifndef LIGHTLT_CORE_DSQ_H_
#define LIGHTLT_CORE_DSQ_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Hyper-parameters of the DSQ module.
struct DsqConfig {
  size_t dim = 64;            ///< d, dimension of the continuous space
  size_t num_codebooks = 4;   ///< M, encoder/decoder pairs
  size_t num_codewords = 256; ///< K, rows per codebook
  float temperature = 1.0f;   ///< t of the tempered softmax (Eqn. 5)
  bool straight_through = true;  ///< use STE (Eqn. 6) vs pure soft relaxation
  bool residual_skip = true;     ///< skip #1 (Eqn. 2)
  bool codebook_skip = true;     ///< skip #2 (Eqn. 10)
  size_t ffn_hidden = 0;         ///< hidden width of the codebook FFN; 0 = d
  /// Gumbel-softmax sampling (Jang et al., the paper's ref [34]): during
  /// the training forward pass, perturb the selection logits with Gumbel
  /// noise so codeword assignment is sampled rather than argmax'd —
  /// encourages codeword exploration early in training. Inference
  /// (Encode) is always deterministic.
  bool gumbel_noise = false;

  /// Validates ranges (K >= 2, M >= 1, ...).
  Status Validate() const;
};

/// The DSQ quantizer. Owns the main codebooks P_k, the per-stage gates g_k
/// and the (shared) one-hidden-layer FFN of the codebook skip.
class DsqModule : public nn::Module {
 public:
  DsqModule(const DsqConfig& config, Rng& rng);

  /// Differentiable forward pass for training.
  struct ForwardResult {
    Var reconstruction;  ///< o = sum_k o_k (n x d), gradient flows via STE
    /// Hard codeword IDs selected in the forward pass: codes[i][k].
    std::vector<std::vector<uint32_t>> codes;
    /// Per-stage soft assignment entropy (diagnostic, averaged over batch).
    std::vector<float> assignment_entropy;
  };
  /// When `gumbel_noise` is enabled, noise is drawn from `gumbel_rng` if
  /// provided (reproducible per caller), else from a thread-local stream —
  /// concurrent Forward calls never share mutable RNG state.
  ForwardResult Forward(const Var& input, Rng* gumbel_rng = nullptr) const;

  /// Inference-only encoding (no autograd graph): hard argmax per stage on
  /// the residual, exactly Eqns. 2-4.
  void Encode(const Matrix& input,
              std::vector<std::vector<uint32_t>>* codes) const;

  /// Reconstructs inputs from hard codes using the effective codebooks.
  Matrix Decode(const std::vector<std::vector<uint32_t>>& codes) const;

  /// Materializes the effective codebooks C_1..C_M of Eqn. 10 as plain
  /// matrices (what an AdcIndex consumes).
  std::vector<Matrix> EffectiveCodebooks() const;

  /// Mean squared reconstruction error of `input` under hard encoding.
  double ReconstructionError(const Matrix& input) const;

  std::vector<Var> Parameters() const override;

  /// Re-draws all DSQ parameters from `rng` (same distributions as the
  /// constructor). Used to give ensemble members distinct quantizer
  /// initializations on top of a shared backbone.
  void ReinitializeParameters(Rng& rng);

  const DsqConfig& config() const { return config_; }

  /// Direct access to the main codebook parameters P_k (for tests and the
  /// permutation experiments of Example 1).
  const std::vector<Var>& main_codebooks() const { return main_codebooks_; }
  const std::vector<Var>& gates() const { return gates_; }

 private:
  /// Builds the chain of effective codebook graph nodes.
  std::vector<Var> BuildCodebookChain() const;

  DsqConfig config_;
  std::vector<Var> main_codebooks_;  // P_k, each K x d
  std::vector<Var> gates_;           // g_k for k >= 2, each 1 x 1
  std::unique_ptr<nn::Ffn> ffn_;     // codebook transform (codebook_skip)
};

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_DSQ_H_
