// Default experiment configurations matching the paper's settings (§V-A4):
// M=4 codebooks, K=256 codewords (32-bit codes) at full scale, AdamW with
// cosine annealing (image) or linear warmup (text).

#ifndef LIGHTLT_CORE_DEFAULTS_H_
#define LIGHTLT_CORE_DEFAULTS_H_

#include "src/core/ensemble.h"
#include "src/core/lightlt_model.h"
#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/data/presets.h"

namespace lightlt::core {

/// Model architecture for a benchmark; K scales with the run size so the
/// scaled presets keep the paper's code-bits-to-dimension ratio.
ModelConfig DefaultModelConfig(const data::RetrievalBenchmark& bench,
                               bool full_scale = false);

/// Training options per preset (schedule choice follows §V-A4: cosine for
/// image-like presets, linear warmup for text-like ones).
TrainOptions DefaultTrainOptions(data::PresetId preset,
                                 bool full_scale = false);

/// Ensemble options (paper: n = 4).
EnsembleOptions DefaultEnsembleOptions(data::PresetId preset,
                                       bool full_scale = false,
                                       int num_models = 4);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_DEFAULTS_H_
