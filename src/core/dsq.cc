#include "src/core/dsq.h"

#include <cmath>

#include "src/util/check.h"

namespace lightlt::core {
namespace {

/// Fallback sampling stream for the Gumbel-softmax option when the caller
/// does not pass an explicit Rng. One independent stream per thread, so
/// concurrent Forward calls (parallel ensemble training) never race.
Rng& ThreadLocalGumbelRng() {
  thread_local Rng rng(0x9a3b);
  return rng;
}

}  // namespace

Status DsqConfig::Validate() const {
  if (dim == 0) return Status::InvalidArgument("DsqConfig: dim must be > 0");
  if (num_codebooks == 0) {
    return Status::InvalidArgument("DsqConfig: need at least one codebook");
  }
  if (num_codewords < 2) {
    return Status::InvalidArgument("DsqConfig: need at least two codewords");
  }
  if (temperature <= 0.0f) {
    return Status::InvalidArgument("DsqConfig: temperature must be positive");
  }
  return Status::Ok();
}

DsqModule::DsqModule(const DsqConfig& config, Rng& rng) : config_(config) {
  LIGHTLT_CHECK(config.Validate().ok());
  const size_t k = config_.num_codewords;
  const size_t d = config_.dim;

  main_codebooks_.reserve(config_.num_codebooks);
  for (size_t m = 0; m < config_.num_codebooks; ++m) {
    // Codewords start as small Gaussian directions; the first stage carries
    // most of the signal, later stages model residuals.
    main_codebooks_.push_back(MakeParam(
        Matrix::RandomGaussian(k, d, rng, 0.5f), "dsq.P" + std::to_string(m)));
  }

  if (config_.codebook_skip && config_.num_codebooks > 1) {
    const size_t hidden = config_.ffn_hidden == 0 ? d : config_.ffn_hidden;
    ffn_ = std::make_unique<nn::Ffn>(d, hidden, d, rng);
    gates_.reserve(config_.num_codebooks - 1);
    for (size_t m = 1; m < config_.num_codebooks; ++m) {
      // Gates start near zero: each stage begins as its own codebook and
      // learns how much of the transformed predecessor to blend in.
      gates_.push_back(MakeParam(Matrix::Scalar(0.1f),
                                 "dsq.g" + std::to_string(m)));
    }
  }
}

void DsqModule::ReinitializeParameters(Rng& rng) {
  const size_t k = config_.num_codewords;
  const size_t d = config_.dim;
  for (auto& p : main_codebooks_) {
    p->mutable_value() = Matrix::RandomGaussian(k, d, rng, 0.5f);
    p->ZeroGrad();
  }
  for (auto& g : gates_) {
    g->mutable_value() = Matrix::Scalar(0.1f);
    g->ZeroGrad();
  }
  if (ffn_) {
    const size_t hidden = config_.ffn_hidden == 0 ? d : config_.ffn_hidden;
    ffn_ = std::make_unique<nn::Ffn>(d, hidden, d, rng);
  }
}

std::vector<Var> DsqModule::BuildCodebookChain() const {
  std::vector<Var> chain;
  chain.reserve(config_.num_codebooks);
  chain.push_back(main_codebooks_[0]);
  for (size_t m = 1; m < config_.num_codebooks; ++m) {
    if (config_.codebook_skip) {
      // Eqn. 10: C_k = FFN(C_{k-1}) * g_k + P_k.
      Var transformed = ffn_->Forward(chain.back());
      Var gated = ops::ScaleByScalarVar(transformed, gates_[m - 1]);
      chain.push_back(ops::Add(gated, main_codebooks_[m]));
    } else {
      chain.push_back(main_codebooks_[m]);
    }
  }
  return chain;
}

DsqModule::ForwardResult DsqModule::Forward(const Var& input,
                                            Rng* gumbel_rng) const {
  LIGHTLT_CHECK_EQ(input->value().cols(), config_.dim);
  const size_t n = input->value().rows();
  const size_t k = config_.num_codewords;

  const std::vector<Var> codebooks = BuildCodebookChain();

  ForwardResult result;
  result.codes.assign(n, std::vector<uint32_t>(config_.num_codebooks));
  result.assignment_entropy.resize(config_.num_codebooks);

  Var residual = input;
  Var reconstruction;
  for (size_t m = 0; m < config_.num_codebooks; ++m) {
    // Eqn. 3 similarity + Eqn. 5 tempered softmax.
    Var sims = ops::NegSquaredEuclidean(residual, codebooks[m]);
    if (config_.gumbel_noise) {
      // Gumbel-max sampling: adding G_ij = -log(-log U) to the logits and
      // taking the argmax samples from the tempered categorical. The noise
      // is a constant in the graph (reparameterized logits).
      Rng& noise_rng =
          gumbel_rng != nullptr ? *gumbel_rng : ThreadLocalGumbelRng();
      Matrix noise(n, k);
      for (size_t i = 0; i < noise.size(); ++i) {
        double u = noise_rng.NextDouble();
        while (u <= 1e-12) u = noise_rng.NextDouble();
        noise[i] = static_cast<float>(-std::log(-std::log(u))) *
                   config_.temperature;
      }
      sims = ops::Add(sims, MakeConstant(std::move(noise), "gumbel"));
    }
    Var soft = ops::SoftmaxRows(sims, config_.temperature);

    // Hard selection for the forward value (and the exported codes).
    const std::vector<size_t> hard = sims->value().RowArgMax();
    for (size_t i = 0; i < n; ++i) {
      result.codes[i][m] = static_cast<uint32_t>(hard[i]);
    }

    // Diagnostic: average entropy of the soft assignment.
    double entropy = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* row = soft->value().row(i);
      for (size_t j = 0; j < k; ++j) {
        if (row[j] > 1e-12f) entropy -= row[j] * std::log(row[j]);
      }
    }
    result.assignment_entropy[m] =
        static_cast<float>(entropy / static_cast<double>(n));

    // Eqn. 6: one-hot forward, soft backward.
    Var assignment = config_.straight_through
                         ? ops::StraightThrough(soft, ops::OneHot(hard, k))
                         : soft;
    // Eqn. 7: decode as assignment-weighted codebook rows.
    Var decoded = ops::MatMul(assignment, codebooks[m]);

    reconstruction =
        reconstruction ? ops::Add(reconstruction, decoded) : decoded;
    if (config_.residual_skip && m + 1 < config_.num_codebooks) {
      // Eqn. 2: next encoder sees the residual.
      residual = ops::Sub(residual, decoded);
    }
  }
  result.reconstruction = reconstruction;
  return result;
}

void DsqModule::Encode(const Matrix& input,
                       std::vector<std::vector<uint32_t>>* codes) const {
  LIGHTLT_CHECK_EQ(input.cols(), config_.dim);
  const std::vector<Matrix> codebooks = EffectiveCodebooks();
  const size_t n = input.rows();

  codes->assign(n, std::vector<uint32_t>(config_.num_codebooks));
  Matrix residual = input;
  for (size_t m = 0; m < config_.num_codebooks; ++m) {
    const Matrix d2 = residual.SquaredEuclideanTo(codebooks[m]);
    for (size_t i = 0; i < n; ++i) {
      const float* row = d2.row(i);
      size_t best = 0;
      for (size_t j = 1; j < config_.num_codewords; ++j) {
        if (row[j] < row[best]) best = j;
      }
      (*codes)[i][m] = static_cast<uint32_t>(best);
    }
    if (config_.residual_skip && m + 1 < config_.num_codebooks) {
      for (size_t i = 0; i < n; ++i) {
        const float* word = codebooks[m].row((*codes)[i][m]);
        float* r = residual.row(i);
        for (size_t j = 0; j < config_.dim; ++j) r[j] -= word[j];
      }
    }
  }
}

Matrix DsqModule::Decode(
    const std::vector<std::vector<uint32_t>>& codes) const {
  const std::vector<Matrix> codebooks = EffectiveCodebooks();
  Matrix out(codes.size(), config_.dim);
  for (size_t i = 0; i < codes.size(); ++i) {
    LIGHTLT_CHECK_EQ(codes[i].size(), config_.num_codebooks);
    float* row = out.row(i);
    for (size_t m = 0; m < config_.num_codebooks; ++m) {
      const float* word = codebooks[m].row(codes[i][m]);
      for (size_t j = 0; j < config_.dim; ++j) row[j] += word[j];
    }
  }
  return out;
}

std::vector<Matrix> DsqModule::EffectiveCodebooks() const {
  const std::vector<Var> chain = BuildCodebookChain();
  std::vector<Matrix> out;
  out.reserve(chain.size());
  for (const auto& c : chain) out.push_back(c->value());
  return out;
}

double DsqModule::ReconstructionError(const Matrix& input) const {
  std::vector<std::vector<uint32_t>> codes;
  Encode(input, &codes);
  const Matrix recon = Decode(codes);
  double err = 0.0;
  for (size_t i = 0; i < input.size(); ++i) {
    const double diff = input[i] - recon[i];
    err += diff * diff;
  }
  return err / static_cast<double>(input.rows());
}

std::vector<Var> DsqModule::Parameters() const {
  std::vector<Var> params = main_codebooks_;
  for (const auto& g : gates_) params.push_back(g);
  if (ffn_) {
    for (auto& p : ffn_->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace lightlt::core
