// Model persistence: saves/loads a LightLtModel's architecture and weights.

#ifndef LIGHTLT_CORE_SERIALIZE_H_
#define LIGHTLT_CORE_SERIALIZE_H_

#include <memory>
#include <string>

#include "src/core/lightlt_model.h"
#include "src/util/status.h"

namespace lightlt::core {

/// Writes config + all parameters (versioned binary format).
Status SaveModel(const LightLtModel& model, const std::string& path);

/// Reads a model back; fails with IoError on corrupt or mismatched files.
Result<std::unique_ptr<LightLtModel>> LoadModel(const std::string& path);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_SERIALIZE_H_
