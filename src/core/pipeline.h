// End-to-end retrieval pipeline: model -> ADC index -> MAP.
//
// This is the evaluation path every benchmark harness and example uses:
// encode the database with hard DSQ codes (Fig. 3), keep queries continuous,
// search with asymmetric distances (Eqn. 24), score with MAP (§V-A3).

#ifndef LIGHTLT_CORE_PIPELINE_H_
#define LIGHTLT_CORE_PIPELINE_H_

#include "src/core/lightlt_model.h"
#include "src/data/dataset.h"
#include "src/eval/metrics.h"
#include "src/index/adc_index.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::core {

/// Embeds `x` through the backbone in fixed-size chunks (bounds the autograd
/// graph memory for large databases). Chunks are embedded in parallel on
/// `pool` when provided; chunk boundaries are independent of the thread
/// count, so the result is identical for any pool size.
Matrix EmbedInChunks(const LightLtModel& model, const Matrix& x,
                     size_t chunk = 4096, ThreadPool* pool = nullptr);

/// Encodes `db_features` and assembles the searchable ADC index.
Result<index::AdcIndex> BuildAdcIndex(const LightLtModel& model,
                                      const Matrix& db_features);

/// Retrieval quality + footprint of one trained model on one benchmark.
struct RetrievalReport {
  double map = 0.0;
  double head_map = 0.0;  ///< MAP over queries from the largest half of classes
  double tail_map = 0.0;  ///< MAP over queries from the smallest half
  size_t index_bytes = 0;
  size_t raw_bytes = 0;   ///< uncompressed float database footprint
};

/// Full evaluation of `model` on `bench` (query set vs database).
Result<RetrievalReport> EvaluateModel(const LightLtModel& model,
                                      const data::RetrievalBenchmark& bench,
                                      ThreadPool* pool = nullptr);

}  // namespace lightlt::core

#endif  // LIGHTLT_CORE_PIPELINE_H_
