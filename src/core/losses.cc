#include "src/core/losses.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace lightlt::core {

Status LossConfig::Validate() const {
  if (gamma < 0.0f || gamma >= 1.0f) {
    return Status::InvalidArgument("LossConfig: gamma must be in [0, 1)");
  }
  if (alpha < 0.0f) {
    return Status::InvalidArgument("LossConfig: alpha must be >= 0");
  }
  if (tau <= 0.0f) {
    return Status::InvalidArgument("LossConfig: tau must be positive");
  }
  return Status::Ok();
}

std::vector<float> ClassBalancedWeights(const std::vector<size_t>& class_counts,
                                        float gamma) {
  LIGHTLT_CHECK(!class_counts.empty());
  LIGHTLT_CHECK_GE(gamma, 0.0f);
  LIGHTLT_CHECK_LT(gamma, 1.0f);
  std::vector<float> weights(class_counts.size());
  if (gamma == 0.0f) {
    // Eqn. 12 degenerates to standard cross entropy.
    std::fill(weights.begin(), weights.end(), 1.0f);
    return weights;
  }
  for (size_t c = 0; c < class_counts.size(); ++c) {
    const double pi = static_cast<double>(class_counts[c]);
    const double denom = 1.0 - std::pow(static_cast<double>(gamma), pi);
    weights[c] = static_cast<float>((1.0 - gamma) /
                                    std::max(denom, 1e-12));
  }
  // Normalize so sum_i w_{y_i} == N over the training distribution: keeps
  // the loss scale (and thus the tuned learning rate) independent of gamma.
  double weighted_total = 0.0;
  double total = 0.0;
  for (size_t c = 0; c < class_counts.size(); ++c) {
    weighted_total += weights[c] * static_cast<double>(class_counts[c]);
    total += static_cast<double>(class_counts[c]);
  }
  if (weighted_total > 0.0) {
    const float scale = static_cast<float>(total / weighted_total);
    for (auto& w : weights) w *= scale;
  }
  return weights;
}

Var WeightedCrossEntropy(const Var& logits, const std::vector<size_t>& labels,
                         const std::vector<float>& class_weights) {
  LIGHTLT_CHECK_EQ(labels.size(), logits->value().rows());
  LIGHTLT_CHECK_EQ(class_weights.size(), logits->value().cols());
  Var logp = ops::LogSoftmaxRows(logits);
  Var picked = ops::PickPerRow(logp, labels);  // n x 1

  Matrix sample_weights(labels.size(), 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    sample_weights[i] = class_weights[labels[i]];
  }
  Var weighted = ops::MulConstant(picked, sample_weights);
  return ops::Scale(ops::Sum(weighted),
                    -1.0f / static_cast<float>(labels.size()));
}

Var CenterLoss(const Var& quantized, const Var& prototypes,
               const std::vector<size_t>& labels) {
  LIGHTLT_CHECK_EQ(labels.size(), quantized->value().rows());
  Var own = ops::GatherRows(prototypes, labels);  // n x d
  Var diff = ops::Sub(own, quantized);
  Var norms = ops::RowL2Norm(diff);  // n x 1
  return ops::Mean(norms);
}

Var RankingLoss(const Var& quantized, const Var& prototypes,
                const std::vector<size_t>& labels, float tau) {
  LIGHTLT_CHECK_GT(tau, 0.0f);
  // D_ij = ||o_i - z_j||; logits are -D/tau (Eqn. 14).
  Var dist = ops::PairwiseL2Distance(quantized, prototypes);  // n x C
  Var logits = ops::Scale(dist, -1.0f / tau);
  Var logp = ops::LogSoftmaxRows(logits);
  Var picked = ops::PickPerRow(logp, labels);
  return ops::Scale(ops::Sum(picked),
                    -1.0f / static_cast<float>(labels.size()));
}

Var LightLtLoss(const Var& logits, const Var& quantized, const Var& prototypes,
                const std::vector<size_t>& labels,
                const std::vector<float>& class_weights,
                const LossConfig& config, const Var& embedding,
                LossBreakdown* breakdown) {
  LIGHTLT_CHECK(config.Validate().ok());
  Var loss = WeightedCrossEntropy(logits, labels, class_weights);
  if (breakdown != nullptr) breakdown->ce = loss->value()[0];
  if (config.alpha > 0.0f) {
    Var extra;
    if (config.use_center_loss) {
      extra = CenterLoss(quantized, prototypes, labels);
      if (breakdown != nullptr) breakdown->center = extra->value()[0];
    }
    if (config.use_ranking_loss) {
      Var r = RankingLoss(quantized, prototypes, labels, config.tau);
      if (breakdown != nullptr) breakdown->ranking = r->value()[0];
      extra = extra ? ops::Add(extra, r) : r;
    }
    if (extra) loss = ops::Add(loss, ops::Scale(extra, config.alpha));
  }
  if (config.recon_weight > 0.0f) {
    LIGHTLT_CHECK(embedding != nullptr);
    // Reconstruction sees the embedding as a fixed target, matching the
    // usual auto-encoder formulation where the codebooks chase f(x).
    Var target = ops::StopGradient(embedding);
    Var recon = ops::Mean(ops::Square(ops::Sub(target, quantized)));
    if (breakdown != nullptr) breakdown->recon = recon->value()[0];
    loss = ops::Add(loss, ops::Scale(recon, config.recon_weight));
  }
  if (breakdown != nullptr) breakdown->total = loss->value()[0];
  return loss;
}

double TripletLossValue(const Matrix& representations,
                        const std::vector<size_t>& labels, float margin) {
  const size_t n = representations.rows();
  LIGHTLT_CHECK_EQ(labels.size(), n);
  auto distance = [&](size_t a, size_t b) {
    double acc = 0.0;
    const float* ra = representations.row(a);
    const float* rb = representations.row(b);
    for (size_t j = 0; j < representations.cols(); ++j) {
      const double diff = ra[j] - rb[j];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (j == i || labels[j] != labels[i]) continue;
      for (size_t k = 0; k < n; ++k) {
        if (labels[k] == labels[i]) continue;
        total += std::max(0.0, distance(i, j) - distance(i, k) + margin);
      }
    }
  }
  return total;
}

}  // namespace lightlt::core
