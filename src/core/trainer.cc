#include "src/core/trainer.h"

#include <cstdio>
#include <memory>
#include <numeric>

#include "src/nn/scheduler.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace lightlt::core {

Status TrainOptions::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (warmup_fraction < 0.0f || warmup_fraction >= 1.0f) {
    return Status::InvalidArgument("warmup_fraction must be in [0, 1)");
  }
  return loss.Validate();
}

Result<TrainStats> TrainLightLt(LightLtModel* model,
                                const data::Dataset& train,
                                const TrainOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (train.num_classes != model->config().num_classes) {
    return Status::InvalidArgument("dataset/model class count mismatch");
  }
  if (train.dim() != model->config().input_dim) {
    return Status::InvalidArgument("dataset/model input dim mismatch");
  }

  const std::vector<float> class_weights =
      ClassBalancedWeights(train.ClassCounts(), options.loss.gamma);

  std::vector<Var> params =
      options.dsq_only ? model->DsqParameters() : model->Parameters();
  nn::AdamWOptions adamw;
  adamw.learning_rate = options.learning_rate;
  adamw.weight_decay = options.weight_decay;
  nn::AdamW optimizer(params, adamw);

  const size_t n = train.size();
  const size_t steps_per_epoch =
      (n + options.batch_size - 1) / options.batch_size;
  const int64_t total_steps =
      static_cast<int64_t>(steps_per_epoch) * options.epochs;
  const int64_t warmup =
      static_cast<int64_t>(options.warmup_fraction *
                           static_cast<float>(total_steps));

  std::unique_ptr<nn::LrSchedule> schedule;
  switch (options.schedule) {
    case ScheduleKind::kConstant:
      schedule = std::make_unique<nn::ConstantLr>(options.learning_rate);
      break;
    case ScheduleKind::kCosine:
      schedule = std::make_unique<nn::CosineAnnealingLr>(
          options.learning_rate, total_steps, warmup);
      break;
    case ScheduleKind::kLinearWarmup:
      schedule = std::make_unique<nn::LinearWarmupLr>(
          options.learning_rate, total_steps, warmup);
      break;
  }

  Rng shuffle_rng(options.shuffle_seed);
  // Per-run Gumbel sampling stream: keeps gumbel_noise training reproducible
  // from the options seed and race-free when members train on worker threads.
  Rng gumbel_rng(options.shuffle_seed ^ 0x67756d62ULL);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  int64_t global_step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t correct = 0;

    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(start + options.batch_size, n);
      std::vector<size_t> batch_idx(order.begin() + start,
                                    order.begin() + end);
      const Matrix batch = train.features.GatherRows(batch_idx);
      std::vector<size_t> labels(batch_idx.size());
      for (size_t i = 0; i < batch_idx.size(); ++i) {
        labels[i] = train.labels[batch_idx[i]];
      }

      auto out = model->Forward(batch, &gumbel_rng);
      Var loss = LightLtLoss(out.logits, out.quantized, model->prototypes(),
                             labels, class_weights, options.loss,
                             out.embedding);
      Backward(loss);

      optimizer.set_learning_rate(schedule->LearningRate(global_step));
      optimizer.Step();
      ++global_step;

      epoch_loss += static_cast<double>(loss->value()[0]) *
                    static_cast<double>(labels.size());
      const auto predicted = out.logits->value().RowArgMax();
      for (size_t i = 0; i < labels.size(); ++i) {
        if (predicted[i] == labels[i]) ++correct;
      }
    }

    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(n));
    stats.epoch_accuracy.push_back(static_cast<double>(correct) /
                                   static_cast<double>(n));
    if (options.verbose) {
      std::printf("  epoch %2d  loss %.4f  train-acc %.4f\n", epoch + 1,
                  stats.epoch_loss.back(), stats.epoch_accuracy.back());
    }
  }
  return stats;
}

}  // namespace lightlt::core
