#include "src/core/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "src/eval/metrics.h"
#include "src/nn/scheduler.h"
#include "src/obs/profile.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace lightlt::core {

namespace {

using eval::HeadMidTailBuckets;
const char* const* kBucketNames = eval::kHeadMidTailNames;

}  // namespace

Status TrainOptions::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (warmup_fraction < 0.0f || warmup_fraction >= 1.0f) {
    return Status::InvalidArgument("warmup_fraction must be in [0, 1)");
  }
  if (stop_after_epochs < 0) {
    return Status::InvalidArgument("stop_after_epochs must be >= 0");
  }
  LIGHTLT_RETURN_IF_ERROR(checkpoint.Validate());
  return loss.Validate();
}

Result<TrainStats> TrainLightLt(LightLtModel* model,
                                const data::Dataset& train,
                                const TrainOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (train.num_classes != model->config().num_classes) {
    return Status::InvalidArgument("dataset/model class count mismatch");
  }
  if (train.dim() != model->config().input_dim) {
    return Status::InvalidArgument("dataset/model input dim mismatch");
  }

  // Structured logging: an explicit logger wins; `verbose` without one
  // gets an stdout kInfo logger (the old printf behaviour); otherwise the
  // global logger's kWarn threshold keeps training silent.
  std::unique_ptr<obs::Logger> verbose_logger;
  obs::Logger* logger = options.logger;
  if (logger == nullptr) {
    if (options.verbose) {
      obs::Logger::Options lo;
      lo.min_level = obs::LogLevel::kInfo;
      lo.stream = stdout;
      verbose_logger = std::make_unique<obs::Logger>(lo);
      logger = verbose_logger.get();
    } else {
      logger = &obs::Logger::Global();
    }
  }
  obs::MetricsRegistry* metrics = options.metrics;

  const std::vector<size_t> class_counts = train.ClassCounts();
  const std::vector<float> class_weights =
      ClassBalancedWeights(class_counts, options.loss.gamma);
  const std::vector<int> class_bucket = HeadMidTailBuckets(class_counts);

  std::vector<Var> params =
      options.dsq_only ? model->DsqParameters() : model->Parameters();
  nn::AdamWOptions adamw;
  adamw.learning_rate = options.learning_rate;
  adamw.weight_decay = options.weight_decay;
  nn::AdamW optimizer(params, adamw);

  const size_t n = train.size();
  const size_t steps_per_epoch =
      (n + options.batch_size - 1) / options.batch_size;
  const int64_t total_steps =
      static_cast<int64_t>(steps_per_epoch) * options.epochs;
  const int64_t warmup =
      static_cast<int64_t>(options.warmup_fraction *
                           static_cast<float>(total_steps));

  std::unique_ptr<nn::LrSchedule> schedule;
  switch (options.schedule) {
    case ScheduleKind::kConstant:
      schedule = std::make_unique<nn::ConstantLr>(options.learning_rate);
      break;
    case ScheduleKind::kCosine:
      schedule = std::make_unique<nn::CosineAnnealingLr>(
          options.learning_rate, total_steps, warmup);
      break;
    case ScheduleKind::kLinearWarmup:
      schedule = std::make_unique<nn::LinearWarmupLr>(
          options.learning_rate, total_steps, warmup);
      break;
  }

  Rng shuffle_rng(options.shuffle_seed);
  // Per-run Gumbel sampling stream: keeps gumbel_noise training reproducible
  // from the options seed and race-free when members train on worker threads.
  Rng gumbel_rng(options.shuffle_seed ^ 0x67756d62ULL);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const auto all_params = model->Parameters();
  TrainStats stats;
  int64_t global_step = 0;
  int start_epoch = 0;

  if (options.checkpoint.enabled()) {
    if (n > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          "checkpointing: dataset too large for u32 shuffle permutation");
    }
    LIGHTLT_RETURN_IF_ERROR(EnsureDirectory(options.checkpoint.dir));
    // Resume from the newest checkpoint that loads cleanly; a corrupt or
    // torn file (detected by its checksum footer) falls back to the next
    // older one. A checkpoint that loads but does not match this
    // model/options is a hard error — silently retraining would hide it.
    std::vector<int64_t> epochs =
        ListCheckpointEpochs(options.checkpoint.dir);
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      auto loaded = LoadTrainerCheckpoint(
          CheckpointPath(options.checkpoint.dir, *it));
      if (!loaded.ok()) {
        // Torn/corrupt file: fall back to the next older checkpoint, but
        // leave an audit trail — silent fallback hides disk trouble.
        logger->Log(obs::LogLevel::kWarn, "trainer",
                    "skipping unreadable checkpoint",
                    {{"epoch", static_cast<int>(*it)},
                     {"error", loaded.status().message()}});
        continue;
      }
      TrainerCheckpoint& c = loaded.value();
      if (c.epochs_completed > options.epochs ||
          c.order.size() != n ||
          c.model_params.size() != all_params.size()) {
        return Status::InvalidArgument(
            "checkpoint does not match this model/options");
      }
      for (size_t i = 0; i < all_params.size(); ++i) {
        if (!c.model_params[i].SameShape(all_params[i]->value())) {
          return Status::InvalidArgument(
              "checkpoint parameter shape mismatch");
        }
      }
      LIGHTLT_RETURN_IF_ERROR(optimizer.RestoreState(
          std::move(c.opt_m), std::move(c.opt_v), c.opt_step));
      for (size_t i = 0; i < all_params.size(); ++i) {
        all_params[i]->mutable_value() = std::move(c.model_params[i]);
      }
      shuffle_rng.SetState(c.shuffle_rng);
      gumbel_rng.SetState(c.gumbel_rng);
      for (size_t i = 0; i < n; ++i) order[i] = c.order[i];
      stats.epoch_loss = std::move(c.epoch_loss);
      stats.epoch_accuracy = std::move(c.epoch_accuracy);
      global_step = c.global_step;
      start_epoch = static_cast<int>(c.epochs_completed);
      logger->Log(obs::LogLevel::kInfo, "trainer", "resumed from checkpoint",
                  {{"epochs_completed", start_epoch}});
      break;
    }
  }

  const size_t num_stages = model->config().dsq.num_codebooks;
  const size_t num_words = model->config().dsq.num_codewords;

  int completed_this_run = 0;
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    obs::ProfilePhase epoch_phase("train_epoch");
    WallTimer epoch_timer;
    shuffle_rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t correct = 0;
    LossBreakdown epoch_terms;  // batch-size-weighted sums, /n at epoch end
    size_t bucket_correct[3] = {0, 0, 0};
    size_t bucket_total[3] = {0, 0, 0};
    // Per-stage codeword usage counts for utilization/perplexity gauges;
    // skipped entirely without a registry (it is per-sample work).
    std::vector<std::vector<uint64_t>> code_counts;
    if (metrics != nullptr) {
      code_counts.assign(num_stages, std::vector<uint64_t>(num_words, 0));
    }

    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(start + options.batch_size, n);
      std::vector<size_t> batch_idx(order.begin() + start,
                                    order.begin() + end);
      const Matrix batch = train.features.GatherRows(batch_idx);
      std::vector<size_t> labels(batch_idx.size());
      for (size_t i = 0; i < batch_idx.size(); ++i) {
        labels[i] = train.labels[batch_idx[i]];
      }

      auto out = model->Forward(batch, &gumbel_rng);
      LossBreakdown batch_terms;
      Var loss = LightLtLoss(out.logits, out.quantized, model->prototypes(),
                             labels, class_weights, options.loss,
                             out.embedding, &batch_terms);
      Backward(loss);

      optimizer.set_learning_rate(schedule->LearningRate(global_step));
      optimizer.Step();
      ++global_step;

      const double batch_n = static_cast<double>(labels.size());
      epoch_loss += static_cast<double>(loss->value()[0]) * batch_n;
      epoch_terms.ce += batch_terms.ce * batch_n;
      epoch_terms.center += batch_terms.center * batch_n;
      epoch_terms.ranking += batch_terms.ranking * batch_n;
      epoch_terms.recon += batch_terms.recon * batch_n;
      const auto predicted = out.logits->value().RowArgMax();
      for (size_t i = 0; i < labels.size(); ++i) {
        const int bucket = class_bucket[labels[i]];
        ++bucket_total[bucket];
        if (predicted[i] == labels[i]) {
          ++correct;
          ++bucket_correct[bucket];
        }
      }
      if (metrics != nullptr) {
        for (const auto& item : out.codes) {
          for (size_t s = 0; s < item.size() && s < num_stages; ++s) {
            ++code_counts[s][item[s]];
          }
        }
      }
    }

    const double denom = static_cast<double>(n);
    stats.epoch_loss.push_back(epoch_loss / denom);
    stats.epoch_accuracy.push_back(static_cast<double>(correct) / denom);
    if (logger->Enabled(obs::LogLevel::kInfo)) {
      logger->Log(obs::LogLevel::kInfo, "trainer", "epoch complete",
                  {{"epoch", epoch + 1},
                   {"loss", stats.epoch_loss.back()},
                   {"train_acc", stats.epoch_accuracy.back()},
                   {"loss_ce", epoch_terms.ce / denom},
                   {"loss_center", epoch_terms.center / denom},
                   {"loss_ranking", epoch_terms.ranking / denom}});
    }
    if (metrics != nullptr) {
      metrics->GetGauge("train_epoch")->Set(epoch + 1);
      metrics->GetGauge("train_accuracy")->Set(stats.epoch_accuracy.back());
      metrics->GetGauge(obs::WithLabel("train_loss", "term", "total"))
          ->Set(stats.epoch_loss.back());
      metrics->GetGauge(obs::WithLabel("train_loss", "term", "ce"))
          ->Set(epoch_terms.ce / denom);
      metrics->GetGauge(obs::WithLabel("train_loss", "term", "center"))
          ->Set(epoch_terms.center / denom);
      metrics->GetGauge(obs::WithLabel("train_loss", "term", "ranking"))
          ->Set(epoch_terms.ranking / denom);
      if (options.loss.recon_weight > 0.0f) {
        metrics->GetGauge(obs::WithLabel("train_loss", "term", "recon"))
            ->Set(epoch_terms.recon / denom);
      }
      for (int b = 0; b < 3; ++b) {
        if (bucket_total[b] == 0) continue;
        metrics
            ->GetGauge(obs::WithLabel("train_accuracy_bucket", "bucket",
                                      kBucketNames[b]))
            ->Set(static_cast<double>(bucket_correct[b]) /
                  static_cast<double>(bucket_total[b]));
      }
      // DSQ codebook health per stage: utilization = fraction of codewords
      // selected at least once this epoch; perplexity = exp(entropy) of
      // the usage distribution (K when uniform, ~1 when collapsed).
      for (size_t s = 0; s < num_stages; ++s) {
        uint64_t used = 0;
        uint64_t total = 0;
        for (uint64_t count : code_counts[s]) {
          if (count > 0) ++used;
          total += count;
        }
        double entropy = 0.0;
        if (total > 0) {
          for (uint64_t count : code_counts[s]) {
            if (count == 0) continue;
            const double p =
                static_cast<double>(count) / static_cast<double>(total);
            entropy -= p * std::log(p);
          }
        }
        const std::string stage = std::to_string(s);
        metrics->GetGauge(obs::WithLabel("train_dsq_utilization", "stage", stage))
            ->Set(static_cast<double>(used) / static_cast<double>(num_words));
        metrics->GetGauge(obs::WithLabel("train_dsq_perplexity", "stage", stage))
            ->Set(std::exp(entropy));
      }
      metrics->GetHistogram("train_epoch_seconds")
          ->Record(epoch_timer.ElapsedSeconds());
    }

    ++completed_this_run;
    const bool stopping = options.stop_after_epochs > 0 &&
                          completed_this_run >= options.stop_after_epochs;
    if (options.checkpoint.enabled()) {
      const bool on_schedule =
          (epoch + 1) % options.checkpoint.every_n_epochs == 0;
      if (on_schedule || epoch + 1 == options.epochs || stopping) {
        TrainerCheckpoint c;
        c.epochs_completed = epoch + 1;
        c.global_step = global_step;
        c.shuffle_rng = shuffle_rng.GetState();
        c.gumbel_rng = gumbel_rng.GetState();
        c.order.resize(n);
        for (size_t i = 0; i < n; ++i) {
          c.order[i] = static_cast<uint32_t>(order[i]);
        }
        c.epoch_loss = stats.epoch_loss;
        c.epoch_accuracy = stats.epoch_accuracy;
        c.model_params.reserve(all_params.size());
        for (const auto& p : all_params) c.model_params.push_back(p->value());
        c.opt_m = optimizer.first_moments();
        c.opt_v = optimizer.second_moments();
        c.opt_step = optimizer.step_count();
        LIGHTLT_RETURN_IF_ERROR(SaveTrainerCheckpoint(
            c, CheckpointPath(options.checkpoint.dir, epoch + 1)));
        PruneCheckpoints(options.checkpoint.dir,
                         options.checkpoint.keep_last);
      }
    }
    if (stopping) break;
  }
  return stats;
}

}  // namespace lightlt::core
