#include "src/core/trainer.h"

#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>

#include "src/nn/scheduler.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace lightlt::core {

Status TrainOptions::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (warmup_fraction < 0.0f || warmup_fraction >= 1.0f) {
    return Status::InvalidArgument("warmup_fraction must be in [0, 1)");
  }
  if (stop_after_epochs < 0) {
    return Status::InvalidArgument("stop_after_epochs must be >= 0");
  }
  LIGHTLT_RETURN_IF_ERROR(checkpoint.Validate());
  return loss.Validate();
}

Result<TrainStats> TrainLightLt(LightLtModel* model,
                                const data::Dataset& train,
                                const TrainOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (train.num_classes != model->config().num_classes) {
    return Status::InvalidArgument("dataset/model class count mismatch");
  }
  if (train.dim() != model->config().input_dim) {
    return Status::InvalidArgument("dataset/model input dim mismatch");
  }

  const std::vector<float> class_weights =
      ClassBalancedWeights(train.ClassCounts(), options.loss.gamma);

  std::vector<Var> params =
      options.dsq_only ? model->DsqParameters() : model->Parameters();
  nn::AdamWOptions adamw;
  adamw.learning_rate = options.learning_rate;
  adamw.weight_decay = options.weight_decay;
  nn::AdamW optimizer(params, adamw);

  const size_t n = train.size();
  const size_t steps_per_epoch =
      (n + options.batch_size - 1) / options.batch_size;
  const int64_t total_steps =
      static_cast<int64_t>(steps_per_epoch) * options.epochs;
  const int64_t warmup =
      static_cast<int64_t>(options.warmup_fraction *
                           static_cast<float>(total_steps));

  std::unique_ptr<nn::LrSchedule> schedule;
  switch (options.schedule) {
    case ScheduleKind::kConstant:
      schedule = std::make_unique<nn::ConstantLr>(options.learning_rate);
      break;
    case ScheduleKind::kCosine:
      schedule = std::make_unique<nn::CosineAnnealingLr>(
          options.learning_rate, total_steps, warmup);
      break;
    case ScheduleKind::kLinearWarmup:
      schedule = std::make_unique<nn::LinearWarmupLr>(
          options.learning_rate, total_steps, warmup);
      break;
  }

  Rng shuffle_rng(options.shuffle_seed);
  // Per-run Gumbel sampling stream: keeps gumbel_noise training reproducible
  // from the options seed and race-free when members train on worker threads.
  Rng gumbel_rng(options.shuffle_seed ^ 0x67756d62ULL);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  const auto all_params = model->Parameters();
  TrainStats stats;
  int64_t global_step = 0;
  int start_epoch = 0;

  if (options.checkpoint.enabled()) {
    if (n > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument(
          "checkpointing: dataset too large for u32 shuffle permutation");
    }
    LIGHTLT_RETURN_IF_ERROR(EnsureDirectory(options.checkpoint.dir));
    // Resume from the newest checkpoint that loads cleanly; a corrupt or
    // torn file (detected by its checksum footer) falls back to the next
    // older one. A checkpoint that loads but does not match this
    // model/options is a hard error — silently retraining would hide it.
    std::vector<int64_t> epochs =
        ListCheckpointEpochs(options.checkpoint.dir);
    for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
      auto loaded = LoadTrainerCheckpoint(
          CheckpointPath(options.checkpoint.dir, *it));
      if (!loaded.ok()) continue;
      TrainerCheckpoint& c = loaded.value();
      if (c.epochs_completed > options.epochs ||
          c.order.size() != n ||
          c.model_params.size() != all_params.size()) {
        return Status::InvalidArgument(
            "checkpoint does not match this model/options");
      }
      for (size_t i = 0; i < all_params.size(); ++i) {
        if (!c.model_params[i].SameShape(all_params[i]->value())) {
          return Status::InvalidArgument(
              "checkpoint parameter shape mismatch");
        }
      }
      LIGHTLT_RETURN_IF_ERROR(optimizer.RestoreState(
          std::move(c.opt_m), std::move(c.opt_v), c.opt_step));
      for (size_t i = 0; i < all_params.size(); ++i) {
        all_params[i]->mutable_value() = std::move(c.model_params[i]);
      }
      shuffle_rng.SetState(c.shuffle_rng);
      gumbel_rng.SetState(c.gumbel_rng);
      for (size_t i = 0; i < n; ++i) order[i] = c.order[i];
      stats.epoch_loss = std::move(c.epoch_loss);
      stats.epoch_accuracy = std::move(c.epoch_accuracy);
      global_step = c.global_step;
      start_epoch = static_cast<int>(c.epochs_completed);
      if (options.verbose) {
        std::printf("  resumed from checkpoint after epoch %d\n",
                    start_epoch);
      }
      break;
    }
  }

  int completed_this_run = 0;
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t correct = 0;

    for (size_t start = 0; start < n; start += options.batch_size) {
      const size_t end = std::min(start + options.batch_size, n);
      std::vector<size_t> batch_idx(order.begin() + start,
                                    order.begin() + end);
      const Matrix batch = train.features.GatherRows(batch_idx);
      std::vector<size_t> labels(batch_idx.size());
      for (size_t i = 0; i < batch_idx.size(); ++i) {
        labels[i] = train.labels[batch_idx[i]];
      }

      auto out = model->Forward(batch, &gumbel_rng);
      Var loss = LightLtLoss(out.logits, out.quantized, model->prototypes(),
                             labels, class_weights, options.loss,
                             out.embedding);
      Backward(loss);

      optimizer.set_learning_rate(schedule->LearningRate(global_step));
      optimizer.Step();
      ++global_step;

      epoch_loss += static_cast<double>(loss->value()[0]) *
                    static_cast<double>(labels.size());
      const auto predicted = out.logits->value().RowArgMax();
      for (size_t i = 0; i < labels.size(); ++i) {
        if (predicted[i] == labels[i]) ++correct;
      }
    }

    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(n));
    stats.epoch_accuracy.push_back(static_cast<double>(correct) /
                                   static_cast<double>(n));
    if (options.verbose) {
      std::printf("  epoch %2d  loss %.4f  train-acc %.4f\n", epoch + 1,
                  stats.epoch_loss.back(), stats.epoch_accuracy.back());
    }

    ++completed_this_run;
    const bool stopping = options.stop_after_epochs > 0 &&
                          completed_this_run >= options.stop_after_epochs;
    if (options.checkpoint.enabled()) {
      const bool on_schedule =
          (epoch + 1) % options.checkpoint.every_n_epochs == 0;
      if (on_schedule || epoch + 1 == options.epochs || stopping) {
        TrainerCheckpoint c;
        c.epochs_completed = epoch + 1;
        c.global_step = global_step;
        c.shuffle_rng = shuffle_rng.GetState();
        c.gumbel_rng = gumbel_rng.GetState();
        c.order.resize(n);
        for (size_t i = 0; i < n; ++i) {
          c.order[i] = static_cast<uint32_t>(order[i]);
        }
        c.epoch_loss = stats.epoch_loss;
        c.epoch_accuracy = stats.epoch_accuracy;
        c.model_params.reserve(all_params.size());
        for (const auto& p : all_params) c.model_params.push_back(p->value());
        c.opt_m = optimizer.first_moments();
        c.opt_v = optimizer.second_moments();
        c.opt_step = optimizer.step_count();
        LIGHTLT_RETURN_IF_ERROR(SaveTrainerCheckpoint(
            c, CheckpointPath(options.checkpoint.dir, epoch + 1)));
        PruneCheckpoints(options.checkpoint.dir,
                         options.checkpoint.keep_last);
      }
    }
    if (stopping) break;
  }
  return stats;
}

}  // namespace lightlt::core
