#include "src/core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/obs/log.h"
#include "src/util/io.h"

namespace lightlt::core {
namespace {

constexpr uint32_t kCheckpointMagic = 0x4c54'4350;  // "LTCP"
constexpr uint32_t kCheckpointVersion = 1;
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".bin";

void WriteRngState(BinaryWriter& w, const RngState& st) {
  for (uint64_t word : st.s) w.WriteU64(word);
  w.WriteU32(st.has_cached ? 1 : 0);
  w.WriteF64(st.cached);
}

RngState ReadRngState(BinaryReader& r) {
  RngState st;
  for (auto& word : st.s) word = r.ReadU64();
  st.has_cached = r.ReadU32() != 0;
  st.cached = r.ReadF64();
  return st;
}

void WriteMatrixList(BinaryWriter& w, const std::vector<Matrix>& mats) {
  w.WriteU64(mats.size());
  for (const auto& m : mats) {
    w.WriteU64(m.rows());
    w.WriteU64(m.cols());
    w.WriteF32Vector(m.storage());
  }
}

Status ReadMatrixList(BinaryReader& r, std::vector<Matrix>* out) {
  const size_t count = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (count > 100000) {
    return Status::IoError("checkpoint: corrupt matrix count");
  }
  out->clear();
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t rows = r.ReadU64();
    const size_t cols = r.ReadU64();
    std::vector<float> data = r.ReadF32Vector();
    if (!r.status().ok()) return r.status();
    // rows * cols can wrap for corrupt headers; divide before multiplying.
    if (rows != 0 && (cols == 0 || data.size() / rows != cols)) {
      return Status::IoError("checkpoint: corrupt matrix payload");
    }
    if (data.size() != rows * cols) {
      return Status::IoError("checkpoint: corrupt matrix payload");
    }
    out->emplace_back(rows, cols, std::move(data));
  }
  return Status::Ok();
}

void WriteF64Vector(BinaryWriter& w, const std::vector<double>& v) {
  w.WriteU64(v.size());
  for (double x : v) w.WriteF64(x);
}

Status ReadF64Vector(BinaryReader& r, std::vector<double>* out) {
  const size_t count = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (count > (1u << 24)) {
    return Status::IoError("checkpoint: corrupt vector length");
  }
  out->resize(count);
  for (auto& x : *out) x = r.ReadF64();
  return r.status();
}

}  // namespace

Status CheckpointConfig::Validate() const {
  if (!enabled()) return Status::Ok();
  if (every_n_epochs <= 0) {
    return Status::InvalidArgument(
        "CheckpointConfig: every_n_epochs must be positive");
  }
  if (keep_last < 0) {
    return Status::InvalidArgument(
        "CheckpointConfig: keep_last must be >= 0");
  }
  return Status::Ok();
}

Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                             const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kCheckpointMagic);
  w.WriteU32(kCheckpointVersion);
  w.WriteI64(ckpt.epochs_completed);
  w.WriteI64(ckpt.global_step);
  WriteRngState(w, ckpt.shuffle_rng);
  WriteRngState(w, ckpt.gumbel_rng);
  w.WriteU32Vector(ckpt.order);
  WriteF64Vector(w, ckpt.epoch_loss);
  WriteF64Vector(w, ckpt.epoch_accuracy);
  WriteMatrixList(w, ckpt.model_params);
  WriteMatrixList(w, ckpt.opt_m);
  WriteMatrixList(w, ckpt.opt_v);
  w.WriteI64(ckpt.opt_step);
  return w.Close();
}

Result<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path) {
  BinaryReader r(path);
  const uint32_t magic = r.ReadU32();
  if (!r.status().ok()) return r.status();
  if (magic != kCheckpointMagic) {
    return Status::IoError("not a checkpoint file: " + path);
  }
  const uint32_t version = r.ReadU32();
  if (!r.status().ok()) return r.status();
  if (version < 1 || version > kCheckpointVersion) {
    return Status::IoError("unsupported checkpoint version");
  }
  TrainerCheckpoint ckpt;
  ckpt.epochs_completed = r.ReadI64();
  ckpt.global_step = r.ReadI64();
  ckpt.shuffle_rng = ReadRngState(r);
  ckpt.gumbel_rng = ReadRngState(r);
  ckpt.order = r.ReadU32Vector();
  LIGHTLT_RETURN_IF_ERROR(ReadF64Vector(r, &ckpt.epoch_loss));
  LIGHTLT_RETURN_IF_ERROR(ReadF64Vector(r, &ckpt.epoch_accuracy));
  LIGHTLT_RETURN_IF_ERROR(ReadMatrixList(r, &ckpt.model_params));
  LIGHTLT_RETURN_IF_ERROR(ReadMatrixList(r, &ckpt.opt_m));
  LIGHTLT_RETURN_IF_ERROR(ReadMatrixList(r, &ckpt.opt_v));
  ckpt.opt_step = r.ReadI64();
  if (!r.status().ok()) return r.status();
  if (ckpt.epochs_completed < 0 || ckpt.global_step < 0 ||
      ckpt.opt_step < 0) {
    return Status::IoError("checkpoint: corrupt counters");
  }
  if (ckpt.epoch_loss.size() != ckpt.epoch_accuracy.size() ||
      ckpt.epoch_loss.size() !=
          static_cast<size_t>(ckpt.epochs_completed)) {
    return Status::IoError("checkpoint: telemetry length mismatch");
  }
  if (ckpt.opt_m.size() != ckpt.opt_v.size()) {
    return Status::IoError("checkpoint: moment list mismatch");
  }
  LIGHTLT_RETURN_IF_ERROR(r.VerifyFooter());
  return ckpt;
}

std::string CheckpointPath(const std::string& dir, int64_t epoch) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%06" PRId64 "%s", kCheckpointPrefix,
                epoch, kCheckpointSuffix);
  return dir + "/" + name;
}

std::vector<int64_t> ListCheckpointEpochs(const std::string& dir) {
  std::vector<int64_t> epochs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return epochs;
  while (struct dirent* entry = ::readdir(d)) {
    const char* name = entry->d_name;
    const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
    if (std::strncmp(name, kCheckpointPrefix, prefix_len) != 0) continue;
    char* end = nullptr;
    const long long epoch = std::strtoll(name + prefix_len, &end, 10);
    if (end == name + prefix_len || epoch < 0) continue;
    if (std::strcmp(end, kCheckpointSuffix) != 0) continue;
    epochs.push_back(epoch);
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status EnsureDirectory(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("cannot create directory: " + prefix);
    }
  }
  return Status::Ok();
}

void PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last <= 0) return;
  std::vector<int64_t> epochs = ListCheckpointEpochs(dir);
  if (epochs.size() <= static_cast<size_t>(keep_last)) return;
  for (size_t i = 0; i + keep_last < epochs.size(); ++i) {
    const std::string path = CheckpointPath(dir, epochs[i]);
    if (std::remove(path.c_str()) != 0) {
      // Best-effort by contract, but an undeletable checkpoint usually
      // means permissions/disk trouble worth surfacing.
      obs::Logger::Global().Log(obs::LogLevel::kWarn, "checkpoint",
                                "failed to prune checkpoint",
                                {{"path", path}});
    } else {
      obs::Logger::Global().Log(obs::LogLevel::kDebug, "checkpoint",
                                "pruned checkpoint", {{"path", path}});
    }
  }
}

}  // namespace lightlt::core
