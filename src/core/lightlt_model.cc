#include "src/core/lightlt_model.h"

#include "src/util/check.h"

namespace lightlt::core {

Status ModelConfig::Validate() const {
  if (input_dim == 0 || embed_dim == 0) {
    return Status::InvalidArgument("ModelConfig: zero dimension");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("ModelConfig: need at least two classes");
  }
  DsqConfig adjusted = dsq;
  adjusted.dim = embed_dim;
  return adjusted.Validate();
}

LightLtModel::LightLtModel(const ModelConfig& config, uint64_t seed,
                           uint64_t head_seed)
    : config_(config) {
  LIGHTLT_CHECK(config.Validate().ok());
  config_.dsq.dim = config_.embed_dim;

  Rng backbone_rng(seed);
  std::vector<size_t> dims;
  dims.push_back(config_.input_dim);
  for (size_t h : config_.hidden_dims) dims.push_back(h);
  dims.push_back(config_.embed_dim);
  backbone_ = std::make_unique<nn::MlpBackbone>(dims, backbone_rng);

  Rng head_rng(head_seed != 0 ? head_seed : backbone_rng.NextUint64());
  dsq_ = std::make_unique<DsqModule>(config_.dsq, head_rng);
  classifier_ = std::make_unique<nn::Linear>(config_.embed_dim,
                                             config_.num_classes, head_rng);
  prototypes_ = MakeParam(
      Matrix::RandomGaussian(config_.num_classes, config_.embed_dim, head_rng,
                             config_.prototype_init_scale),
      "prototypes");
}

LightLtModel::ForwardOutput LightLtModel::Forward(const Matrix& batch,
                                                  Rng* gumbel_rng) const {
  LIGHTLT_CHECK_EQ(batch.cols(), config_.input_dim);
  ForwardOutput out;
  Var input = MakeConstant(batch, "batch");
  out.embedding = backbone_->Forward(input);
  auto dsq_out = dsq_->Forward(out.embedding, gumbel_rng);
  out.quantized = dsq_out.reconstruction;
  out.codes = std::move(dsq_out.codes);
  out.logits = classifier_->Forward(out.quantized);
  return out;
}

Matrix LightLtModel::Embed(const Matrix& x) const {
  Var input = MakeConstant(x, "inference_batch");
  return backbone_->Forward(input)->value();
}

void LightLtModel::EncodeDatabase(
    const Matrix& x, std::vector<std::vector<uint32_t>>* codes) const {
  dsq_->Encode(Embed(x), codes);
}

std::vector<Var> LightLtModel::Parameters() const {
  std::vector<Var> params = backbone_->Parameters();
  for (auto& p : dsq_->Parameters()) params.push_back(p);
  for (auto& p : classifier_->Parameters()) params.push_back(p);
  params.push_back(prototypes_);
  return params;
}

}  // namespace lightlt::core
