// Online quality monitoring (DESIGN.md §11): the primitives the serving
// layer uses to watch *retrieval quality* — not just latency — in
// production.
//
//  * StreamingRecallEstimator — aggregates shadow-verification outcomes
//    (how many of the exact top-k the approximate path returned) into
//    recall proportions with Wilson score confidence intervals, segmented
//    by head/mid/tail class-frequency bucket. Lock-free: shadow tasks on
//    pool workers feed it with relaxed atomics.
//  * PopulationStabilityIndex / DriftDetector — compares windowed
//    HistogramSnapshot deltas of live telemetry (scanned fraction, probed
//    cells, codebook utilization) against a frozen baseline distribution,
//    with hysteresis so one noisy window cannot flap an alert.
//  * SlowQueryLog — a bounded ring of "explain" records (span tree, scan
//    accounting, degraded/fallback flags, shadow recall) for queries past
//    a latency or recall-miss threshold, dumpable as JSONL.

#ifndef LIGHTLT_OBS_QUALITY_H_
#define LIGHTLT_OBS_QUALITY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/status.h"

namespace lightlt::obs {

/// Wilson score interval for a binomial proportion — well-behaved at small
/// n and at proportions near 0/1, unlike the normal approximation.
struct WilsonInterval {
  double center = 0.0;  ///< point estimate successes / trials
  double lower = 0.0;
  double upper = 1.0;
};

/// `z` is the normal quantile of the desired confidence (1.96 ~ 95%).
/// Zero trials yield the vacuous [0, 1] interval.
WilsonInterval WilsonScore(uint64_t successes, uint64_t trials,
                           double z = 1.96);

/// Segments of the streaming recall estimate: the aggregate plus the
/// paper's head/mid/tail class-frequency thirds (eval::HeadMidTailBuckets).
constexpr size_t kNumRecallSegments = 4;

/// "overall", "head", "mid", "tail".
const char* RecallSegmentName(size_t segment);

/// Streaming recall@k estimator fed by shadow verification. Each sampled
/// query contributes `trials` Bernoulli slots (the exact top-k) of which
/// `successes` were present in the served result; the aggregate proportion
/// is recall@k with a Wilson interval. Thread-safe and lock-free.
class StreamingRecallEstimator {
 public:
  explicit StreamingRecallEstimator(double z = 1.96) : z_(z) {}

  /// `class_bucket` is the query's head/mid/tail bucket (0/1/2) or -1 when
  /// unknown — the observation always also lands in the overall segment.
  void Add(int class_bucket, uint64_t successes, uint64_t trials);

  struct SegmentSnapshot {
    uint64_t queries = 0;
    uint64_t successes = 0;
    uint64_t trials = 0;
    WilsonInterval recall;
  };
  SegmentSnapshot Snapshot(size_t segment) const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> successes{0};
    std::atomic<uint64_t> trials{0};
  };
  Cell cells_[kNumRecallSegments];
  double z_;
};

/// PSI between two count distributions over the same bucket layout:
/// sum_i (q_i - p_i) * ln(q_i / p_i) with probabilities clamped at
/// `floor_probability` so empty buckets stay finite. Conventional reading:
/// < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 significant drift.
double PopulationStabilityIndex(const HistogramSnapshot& expected,
                                const HistogramSnapshot& observed,
                                double floor_probability = 1e-6);

/// Per-watch drift thresholds with hysteresis.
struct DriftWatchOptions {
  double psi_fire = 0.25;   ///< window PSI at/above this counts a strike
  double psi_clear = 0.10;  ///< PSI at/below this clears strikes and alerts
  int consecutive = 2;      ///< strikes in a row before the alert fires
  /// Windows with fewer observations are skipped (kept accumulating), so
  /// idle periods cannot produce all-noise PSI values.
  uint64_t min_window_count = 50;
};

/// Watches named live histograms for distribution drift against a frozen
/// baseline. Typical wiring: add watches over `ivf_scanned_fraction`,
/// `ivf_probed_cells` and per-stage DSQ utilization histograms, freeze the
/// baseline after a known-good warmup window, then CheckAll() on a scrape
/// cadence. Alert transitions are logged and counted; per-watch PSI and
/// alert state surface as plain gauges (`{prefix}psi{watch=...}`,
/// `{prefix}active{watch=...}`) owned by the registry.
class DriftDetector {
 public:
  struct Options {
    /// Structured-log sink for fire/clear events (null = silent).
    Logger* logger = nullptr;
    /// Optional gauge surface; must outlive the detector's CheckAll calls.
    MetricsRegistry* registry = nullptr;
    std::string metric_prefix = "drift_";
  };
  DriftDetector() : DriftDetector(Options{}) {}
  explicit DriftDetector(Options options);

  DriftDetector(const DriftDetector&) = delete;
  DriftDetector& operator=(const DriftDetector&) = delete;

  /// Starts accumulating `live` (cumulative) into the named watch. The
  /// histogram must outlive the detector.
  void AddWatch(const std::string& name, const Histogram* live,
                const DriftWatchOptions& options = {});

  /// Freezes the traffic observed since AddWatch (or the previous freeze)
  /// as the watch's baseline distribution. Returns false when the window
  /// is empty or the watch is unknown.
  bool FreezeBaseline(const std::string& name);

  /// Evaluates every watch's window-since-last-check against its baseline,
  /// advancing hysteresis state and emitting alert transitions.
  void CheckAll();

  bool Drifted(const std::string& name) const;
  double LastPsi(const std::string& name) const;
  /// Total quiet→drifted transitions across all watches.
  uint64_t fire_count() const;

 private:
  struct Watch {
    const Histogram* live = nullptr;
    DriftWatchOptions options;
    HistogramSnapshot baseline;
    HistogramSnapshot cursor;  ///< cumulative state at the last window cut
    bool has_baseline = false;
    double last_psi = 0.0;
    int strikes = 0;
    bool drifted = false;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Watch> watches_;
  uint64_t fire_count_ = 0;
};

/// Per-query scan accounting composed by the serving layer from
/// util::ScanStats plus its own lifecycle flags — the "explain" part of a
/// slow-query record.
struct ExplainRecord {
  uint64_t chunks = 0;        ///< scan chunks / probed cells executed
  uint64_t items = 0;         ///< vectors scored
  uint64_t probed_cells = 0;  ///< IVF cells probed (0 on flat scans)
  // Resource vector (DESIGN.md §16): per-phase compute from ScanStats plus
  // the request's thread-CPU time, so a slow-query record explains *what
  // the request cost*, not only how long it took.
  uint64_t cpu_ns = 0;         ///< serving-thread CPU time for the request
  uint64_t codes_decoded = 0;  ///< quantized codes expanded for exact scores
  uint64_t lut_builds = 0;     ///< per-query ADC lookup-table constructions
  uint64_t shortlist = 0;      ///< fast-scan candidates sent to re-rank
  bool degraded = false;      ///< admitted in degraded mode
  bool flat_fallback = false; ///< IVF path failed/short; flat scan served
  /// Cluster attribution (left at defaults on single-node records):
  /// fraction of database rows behind the answer, shards that answered,
  /// and replica attempts beyond the first across all shards.
  double coverage = 1.0;
  uint32_t shards_answered = 0;
  uint32_t failovers = 0;
};

struct SlowQueryRecord {
  uint64_t id = 0;  ///< assigned by the log, monotonically increasing
  std::string kind;     ///< "latency" or "recall_miss"
  std::string outcome;  ///< terminal status: "ok" or a StatusCode name
  /// Id of the request's trace (0 = untraced) so a slow-query record joins
  /// against trace dumps and trace-stamped log lines by grep.
  uint64_t trace_id = 0;
  double latency_seconds = 0.0;
  double recall = -1.0;  ///< shadow recall@k, -1 when not sampled
  ExplainRecord explain;
  /// Full span tree of the request when tracing was active for it —
  /// including stitched remote subtrees, whose records carry shard
  /// attribution (SpanRecord::shard/remote).
  std::vector<Trace::SpanRecord> spans;
};

/// Bounded ring of slow-query records. Thread-safe; overwrites the oldest
/// record when full (counted, never silent).
class SlowQueryLog {
 public:
  struct Options {
    size_t capacity = 64;
    /// Served/failed queries at/above this latency are captured
    /// (0 = latency capture off; recall misses are pushed explicitly).
    double latency_threshold_seconds = 0.0;
  };
  explicit SlowQueryLog(const Options& options);

  /// Stores `record` (assigning its id), evicting the oldest when full.
  void Add(SlowQueryRecord record);

  /// Oldest-to-newest copy of the ring.
  std::vector<SlowQueryRecord> Snapshot() const;

  uint64_t captured_count() const;
  uint64_t evicted_count() const;
  const Options& options() const { return options_; }

  /// One JSON object per record, spans inlined as an array.
  std::string RenderJsonl() const;
  /// Appends RenderJsonl() to `path`.
  Status DumpJsonl(const std::string& path) const;

 private:
  Options options_;
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> ring_;  ///< insertion ring, size <= capacity
  size_t next_slot_ = 0;
  uint64_t next_id_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_QUALITY_H_
