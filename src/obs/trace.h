// Span-based request tracing (DESIGN.md §10, §15).
//
// A Trace owns the span records of one request; a Span is a move-only RAII
// handle that closes its record on destruction (or an explicit End()).
// Spans form a tree via parent indices, mapping onto the request lifecycle
// of §9: query → embed / admission / search → (ivf_route | adc_scan) /
// rerank. The clock is injectable so tests assert exact durations.
//
// Since PR 9 a trace is also the stitching point for distributed requests
// (DESIGN.md §15): every trace carries a 64-bit trace id plus a wall-clock
// epoch anchor captured at construction, so spans recorded on another
// process's steady clock can be re-based onto this trace's timeline and
// exported with absolute timestamps. AttachRemote() splices a subtree of
// already-closed remote records under a local parent span.
//
// Thread-safety: spans may be opened and closed from different threads
// (QueryBatch rows); Trace guards its record vector with a mutex. Tracing
// is strictly opt-in — a null Trace* costs one branch per span site.

#ifndef LIGHTLT_OBS_TRACE_H_
#define LIGHTLT_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace lightlt::obs {

/// Monotonic nanosecond clock; injectable for deterministic tests.
using TraceClock = std::function<uint64_t()>;

/// The default steady-clock nanosecond reading.
uint64_t SteadyNowNanos();

/// The default wall-clock (unix epoch) nanosecond reading.
uint64_t UnixNowNanos();

/// Fixed-width lowercase hex rendering of a trace id, for log stamping
/// ("trace_id=000000000000002a") so logs and traces correlate by grep.
std::string TraceIdHex(uint64_t trace_id);

class Trace;

/// RAII handle to one open span. Move-only; destruction ends the span.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Closes the span (idempotent; a moved-from or default span is a no-op).
  void End();

  /// Index of this span's record inside its trace; -1 for an empty span.
  int32_t index() const { return index_; }

 private:
  friend class Trace;
  Span(Trace* trace, int32_t index) : trace_(trace), index_(index) {}

  Trace* trace_ = nullptr;
  int32_t index_ = -1;
};

/// One request's span tree.
class Trace {
 public:
  struct SpanRecord {
    std::string name;
    int32_t parent = -1;       ///< index of the parent record, -1 = root
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;       ///< 0 while still open
    int32_t shard = -1;        ///< owning shard for stitched remote spans
    bool remote = false;       ///< recorded in another process
  };

  /// Hard cap on records per trace: a pathological request path (retry
  /// storms, huge fan-out, remote subtrees) cannot grow an unbounded span
  /// tree. Spans past the cap are dropped and counted exactly.
  static constexpr size_t kDefaultMaxSpans = 4096;

  /// `clock` defaults to the steady clock, `wall_clock` to the unix
  /// wall clock. Both anchors are captured here, back to back, so
  /// unix_minus_steady() is fixed for the life of the trace.
  explicit Trace(TraceClock clock = {}, TraceClock wall_clock = {});

  /// Process-unique (random-ish) id; overridable for deterministic tests.
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  /// Wall-clock / steady-clock anchor pair captured at trace start.
  uint64_t epoch_unix_nanos() const { return epoch_unix_ns_; }
  uint64_t epoch_steady_nanos() const { return epoch_steady_ns_; }

  /// The epoch-anchored clock offset: add it to a steady reading from this
  /// trace's clock to get an absolute unix timestamp. This is the value
  /// propagated in the wire trace context (DESIGN.md §15).
  int64_t unix_minus_steady() const {
    return static_cast<int64_t>(epoch_unix_ns_) -
           static_cast<int64_t>(epoch_steady_ns_);
  }

  /// Maps one of this trace's steady timestamps to absolute unix nanos.
  uint64_t AbsoluteUnixNanos(uint64_t steady_ns) const;

  /// Opens a root-level span.
  Span StartSpan(const std::string& name);
  /// Opens a child of `parent` (which must belong to this trace and be
  /// open; an empty parent produces a root-level span).
  Span StartSpan(const std::string& name, const Span& parent);
  /// Opens a child of `parent` whose start is back-dated to `start_ns`
  /// (a reading of this trace's clock taken before the trace existed —
  /// the server uses this so rpc_recv covers frame receipt).
  Span StartSpanAt(const std::string& name, const Span& parent,
                   uint64_t start_ns);

  /// Records an already-finished span; returns its record index.
  int32_t AddCompleteSpan(const std::string& name, const Span& parent,
                          uint64_t start_ns, uint64_t end_ns);

  /// Splices a remote subtree under `parent`: parent indices inside
  /// `remote` are re-based onto this trace's record vector (roots of the
  /// subtree, parent < 0, hang off `parent`; out-of-range parents are
  /// clamped to `parent` rather than trusted). Every attached record is
  /// marked remote and attributed to `shard`. Timestamps are taken as
  /// already aligned to this trace's steady timeline — the wire layer
  /// applies the clock offset before calling (DESIGN.md §15).
  void AttachRemote(const Span& parent, std::vector<SpanRecord> remote,
                    int32_t shard);

  /// Snapshot of all records (open spans have end_ns == 0).
  std::vector<SpanRecord> Records() const;

  /// Adjusts the span cap (takes effect for subsequent spans only).
  void set_max_spans(size_t max_spans);
  size_t max_spans() const;
  /// Spans dropped at the cap (StartSpan/AddCompleteSpan/AttachRemote).
  uint64_t dropped_spans() const;

  /// Human-readable indented tree with per-span durations:
  ///   query 812us
  ///     embed 120us
  ///     search 650us
  std::string Render() const;

  /// One JSON object per span, one line each, with absolute unix
  /// timestamps (start_unix_ns) alongside the steady readings — the
  /// format tools/dump_trace emits for the bench harness.
  std::string RenderJsonl() const;

 private:
  friend class Span;
  void EndSpan(int32_t index);

  TraceClock clock_;
  uint64_t trace_id_ = 0;
  uint64_t epoch_unix_ns_ = 0;
  uint64_t epoch_steady_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  size_t max_spans_ = kDefaultMaxSpans;
  uint64_t dropped_spans_ = 0;
};

/// Shifts every record's timestamps by `offset_ns`, clamping at zero and
/// preserving end_ns == 0 (still-open) markers. The server side uses this
/// to re-base its spans onto the client's steady timeline before they go
/// on the wire: offset = server unix_minus_steady − client unix_minus_steady.
void ShiftSpanTimes(std::vector<Trace::SpanRecord>* records,
                    int64_t offset_ns);

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_TRACE_H_
