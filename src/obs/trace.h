// Span-based request tracing (DESIGN.md §10).
//
// A Trace owns the span records of one request; a Span is a move-only RAII
// handle that closes its record on destruction (or an explicit End()).
// Spans form a tree via parent indices, mapping onto the request lifecycle
// of §9: query → embed / admission / search → (ivf_route | adc_scan) /
// rerank. The clock is injectable so tests assert exact durations.
//
// Thread-safety: spans may be opened and closed from different threads
// (QueryBatch rows); Trace guards its record vector with a mutex. Tracing
// is strictly opt-in — a null Trace* costs one branch per span site.

#ifndef LIGHTLT_OBS_TRACE_H_
#define LIGHTLT_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace lightlt::obs {

/// Monotonic nanosecond clock; injectable for deterministic tests.
using TraceClock = std::function<uint64_t()>;

/// The default steady-clock nanosecond reading.
uint64_t SteadyNowNanos();

class Trace;

/// RAII handle to one open span. Move-only; destruction ends the span.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Closes the span (idempotent; a moved-from or default span is a no-op).
  void End();

  /// Index of this span's record inside its trace; -1 for an empty span.
  int32_t index() const { return index_; }

 private:
  friend class Trace;
  Span(Trace* trace, int32_t index) : trace_(trace), index_(index) {}

  Trace* trace_ = nullptr;
  int32_t index_ = -1;
};

/// One request's span tree.
class Trace {
 public:
  struct SpanRecord {
    std::string name;
    int32_t parent = -1;       ///< index of the parent record, -1 = root
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;       ///< 0 while still open
  };

  /// `clock` defaults to the steady clock.
  explicit Trace(TraceClock clock = {});

  /// Opens a root-level span.
  Span StartSpan(const std::string& name);
  /// Opens a child of `parent` (which must belong to this trace and be
  /// open; an empty parent produces a root-level span).
  Span StartSpan(const std::string& name, const Span& parent);

  /// Snapshot of all records (open spans have end_ns == 0).
  std::vector<SpanRecord> Records() const;

  /// Human-readable indented tree with per-span durations:
  ///   query 812us
  ///     embed 120us
  ///     search 650us
  std::string Render() const;

 private:
  friend class Span;
  void EndSpan(int32_t index);

  TraceClock clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_TRACE_H_
