#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace lightlt::obs {

size_t ThisThreadShard() {
  // A cheap stable per-thread slot: threads take consecutive slots in
  // creation order, which spreads a pool's workers across shards evenly.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1);
  return slot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile observation, 1-based; q=0 means rank 1.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(counts.size() - 1);
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.counts.assign(counts.size(), 0);
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t before = i < earlier.counts.size() ? earlier.counts[i] : 0;
    out.counts[i] = counts[i] > before ? counts[i] - before : 0;
    out.count += out.counts[i];
  }
  out.sum = sum - earlier.sum;
  if (out.sum < 0.0 || out.count == 0) out.sum = 0.0;
  return out;
}

Status HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return Status::Ok();
  }
  if (other.counts.empty()) return Status::Ok();
  if (counts.size() != other.counts.size()) {
    return Status::InvalidArgument(
        "HistogramSnapshot: layout mismatch, " + std::to_string(counts.size()) +
        " vs " + std::to_string(other.counts.size()) + " buckets");
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  return Status::Ok();
}

double Histogram::BucketRatio() {
  return std::exp2(1.0 / kSubBuckets);
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN clamp to the first bucket
  // value = m * 2^e with m in [0.5, 1): sub-bucket position from m.
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);
  if (exp <= kMinExponent) return 0;
  if (exp > kMaxExponent) return kNumBuckets - 1;
  // mantissa in [0.5, 1) -> sub in [0, kSubBuckets). The bucket's upper
  // bound is the first boundary at or above the value.
  const int sub = static_cast<int>(
      std::floor(std::log2(mantissa * 2.0) * kSubBuckets));
  const int clamped_sub =
      sub < 0 ? 0 : (sub >= kSubBuckets ? kSubBuckets - 1 : sub);
  const size_t idx = 1 +
                     static_cast<size_t>(exp - 1 - kMinExponent) * kSubBuckets +
                     static_cast<size_t>(clamped_sub);
  return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
}

double Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return std::exp2(kMinExponent);
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::exp2(kMinExponent +
                   static_cast<double>(i) / kSubBuckets);
}

double Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0.0;
  return BucketUpperBound(i - 1);
}

void Histogram::Record(double value) {
  Shard& shard = shards_[ThisThreadShard() % kShards];
  shard.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.assign(kNumBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value) {
  return base + "{" + key + "=\"" + EscapeLabelValue(value) + "\"}";
}

std::string AddLabel(const std::string& name, const std::string& key,
                     const std::string& value) {
  const std::string pair = key + "=\"" + EscapeLabelValue(value) + "\"";
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.empty() || name.back() != '}') {
    return name + "{" + pair + "}";
  }
  // `base{}` (degenerate) gets the pair without a leading comma.
  const bool empty_block = name.size() == brace + 2;
  return name.substr(0, name.size() - 1) + (empty_block ? "" : ",") + pair +
         "}";
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_[name] = std::move(fn);
}

namespace {

/// `name` up to the label block — what a `# TYPE` line describes.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splits `base{a="b"}` into `base` + `a="b"` (empty when unlabelled).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// True when `base` already carries the Prometheus counter suffix.
bool HasTotalSuffix(const std::string& base) {
  constexpr const char kSuffix[] = "_total";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  return base.size() >= kSuffixLen &&
         base.compare(base.size() - kSuffixLen, kSuffixLen, kSuffix) == 0;
}

/// Rebuilds a labelled name around a new base: `x{a="b"}` -> `x_total{a="b"}`.
std::string WithBase(const std::string& new_base, const std::string& labels) {
  return labels.empty() ? new_base : new_base + "{" + labels + "}";
}

/// Emits `# HELP` + `# TYPE` once per family (exposition conformance).
void AppendFamilyHeader(std::string* out, std::string* last_base,
                        const std::string& base, const char* type,
                        const std::map<std::string, std::string>& help) {
  if (base == *last_base) return;
  const auto it = help.find(base);
  out->append("# HELP " + base + " " +
              (it != help.end() ? it->second
                                : std::string("lightlt ") + type) +
              "\n");
  out->append("# TYPE " + base + " " + type + "\n");
  *last_base = base;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Re-labels `base{x="y"}` as `base_suffix{x="y",extra}` — the summary
/// quantile/sum/count naming.
std::string Relabel(const std::string& name, const std::string& suffix,
                    const std::string& extra_label) {
  std::string base, labels;
  SplitLabels(name, &base, &labels);
  std::string out = base + suffix;
  std::string all = labels;
  if (!extra_label.empty()) {
    all = all.empty() ? extra_label : all + "," + extra_label;
  }
  if (!all.empty()) out += "{" + all + "}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::SetHelp(const std::string& base_name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[base_name] = help;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_base;
  for (const auto& [name, counter] : counters_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (!HasTotalSuffix(base)) base += "_total";
    AppendFamilyHeader(&out, &last_base, base, "counter", help_);
    out += WithBase(base, labels) + " " + std::to_string(counter->Value()) +
           "\n";
  }
  last_base.clear();
  for (const auto& [name, gauge] : gauges_) {
    AppendFamilyHeader(&out, &last_base, BaseName(name), "gauge", help_);
    out += name + " " + FormatDouble(gauge->Value()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, fn] : callback_gauges_) {
    AppendFamilyHeader(&out, &last_base, BaseName(name), "gauge", help_);
    out += name + " " + FormatDouble(fn()) + "\n";
  }
  last_base.clear();
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    AppendFamilyHeader(&out, &last_base, BaseName(name), "summary", help_);
    for (double q : {0.5, 0.95, 0.99}) {
      out += Relabel(name, "", "quantile=\"" + FormatDouble(q) + "\"") + " " +
             FormatDouble(snap.Quantile(q)) + "\n";
    }
    out += Relabel(name, "_sum", "") + " " + FormatDouble(snap.sum) + "\n";
    out += Relabel(name, "_count", "") + " " + std::to_string(snap.count) +
           "\n";
  }
  return out;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size() + callback_gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, fn] : callback_gauges_) {
    snap.gauges.push_back({name, fn()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.push_back({name, hist->Snapshot()});
  }
  return snap;
}

std::string MetricsRegistry::RenderJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "{\"type\":\"counter\",\"name\":\"" + JsonEscape(name) +
           "\",\"value\":" + std::to_string(counter->Value()) + "}\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "{\"type\":\"gauge\",\"name\":\"" + JsonEscape(name) +
           "\",\"value\":" + FormatDouble(gauge->Value()) + "}\n";
  }
  for (const auto& [name, fn] : callback_gauges_) {
    out += "{\"type\":\"gauge\",\"name\":\"" + JsonEscape(name) +
           "\",\"value\":" + FormatDouble(fn()) + "}\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    out += "{\"type\":\"histogram\",\"name\":\"" + JsonEscape(name) +
           "\",\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + FormatDouble(snap.sum) +
           ",\"p50\":" + FormatDouble(snap.Quantile(0.5)) +
           ",\"p95\":" + FormatDouble(snap.Quantile(0.95)) +
           ",\"p99\":" + FormatDouble(snap.Quantile(0.99)) + "}\n";
  }
  return out;
}

Status MetricsRegistry::WriteJsonl(const std::string& path) const {
  const std::string body = RenderJsonl();
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IoError("MetricsRegistry: cannot open " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    return Status::IoError("MetricsRegistry: short write to " + path);
  }
  return Status::Ok();
}

}  // namespace lightlt::obs
