// Leveled structured logging (DESIGN.md §10).
//
// One event = level + component + message + typed key=value fields.
// Sinks: a key=value text stream (stderr by default), an optional JSONL
// file, and an optional in-process callback (tests). The global logger
// defaults to kWarn so library progress chatter (trainer epochs, dataset
// loads) stays silent under ctest; operators lower the level to kInfo or
// kDebug. An optional token-bucket rate limit (injectable clock) caps
// emission; suppressed events are counted, never dropped silently, and
// the first line after a suppression run is preceded by a one-line
// `suppressed=N` summary so the gap is visible in the log itself.

#ifndef LIGHTLT_OBS_LOG_H_
#define LIGHTLT_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lightlt::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// One typed key=value pair; values are stringified once at the call site.
struct LogField {
  LogField(std::string k, const std::string& v) : key(std::move(k)), value(v) {
    quoted = true;
  }
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {
    quoted = true;
  }
  LogField(std::string k, int64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, uint64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v);

  std::string key;
  std::string value;
  bool quoted = false;  ///< string-valued fields are quoted in both sinks
};

class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kWarn;
    /// Text sink; null disables it (useful with jsonl_path or callback).
    std::FILE* stream = stderr;
    /// When non-empty, events are appended to this file as JSON lines.
    std::string jsonl_path;
    /// When set, receives every emitted line (text form). Used by tests.
    std::function<void(const std::string&)> callback;
    /// Token-bucket rate limit across all events; <= 0 disables limiting.
    double rate_per_second = 0.0;
    double burst = 10.0;
    /// Injectable clock in seconds for the rate limiter.
    std::function<double()> clock;
  };

  Logger() : Logger(Options{}) {}
  explicit Logger(const Options& options);

  /// Emits one structured event if `level` clears the threshold and the
  /// rate limiter grants a token.
  void Log(LogLevel level, std::string_view component,
           std::string_view message, std::vector<LogField> fields = {});

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Events written to at least one sink / dropped by the rate limiter.
  uint64_t emitted_count() const { return emitted_.load(); }
  uint64_t suppressed_count() const { return suppressed_.load(); }

  /// Process-wide logger used when call sites are not handed one
  /// explicitly. Default threshold kWarn keeps test output quiet.
  static Logger& Global();

 private:
  /// Writes one already-formatted event to every sink. Requires mu_.
  void EmitLocked(const std::string& line, const std::string& json);

  Options options_;
  std::atomic<int> min_level_;
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::mutex mu_;     ///< serializes sink writes and the token bucket
  double tokens_ = 0.0;
  double last_refill_ = 0.0;
  /// Lines dropped since the last emission; reported in a one-line
  /// `suppressed=N` summary when the bucket next grants a token, so a
  /// suppression run is visible in the log itself, not only the counter.
  uint64_t pending_suppressed_ = 0;
};

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_LOG_H_
