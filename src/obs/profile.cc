#include "src/obs/profile.h"

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <utility>

namespace lightlt::obs {

uint64_t ThreadCpuNowNanos() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's phase stack. The owner thread writes frames then
/// release-stores depth; the sampler acquire-loads depth then reads frames
/// — a concurrent pop/push can at worst mis-attribute one sample to a
/// sibling stack, which is inherent to sampling and never unsafe.
struct ThreadStack {
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> frames[kMaxProfileDepth] = {};
  std::atomic<uint64_t> truncated{0};
  std::atomic<bool> alive{true};
  clockid_t cpu_clock{};
  bool cpu_clock_ok = false;
  /// Stable slot passed to the injectable cpu reader (assigned once).
  size_t slot = 0;
  // Sampler-side CPU cursor (only the sampler touches these, under the
  // registry mutex).
  uint64_t last_cpu_ns = 0;
  bool cpu_seen = false;
};

/// Process-wide registry of phase stacks. Stacks are pooled, never freed:
/// a thread's exit retires its stack for reuse by the next new thread, so
/// the sampler can hold pointers without lifetime hazards. Leaked
/// intentionally (like Logger::Global) so thread_local destructors running
/// late in shutdown still find it.
class StackRegistry {
 public:
  static StackRegistry& Instance() {
    static StackRegistry* instance = new StackRegistry();
    return *instance;
  }

  ThreadStack* Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      ThreadStack* s = free_.back();
      free_.pop_back();
      InitForThisThread(s);
      return s;
    }
    stacks_.push_back(std::make_unique<ThreadStack>());
    ThreadStack* s = stacks_.back().get();
    s->slot = stacks_.size() - 1;
    InitForThisThread(s);
    return s;
  }

  void Retire(ThreadStack* s) {
    std::lock_guard<std::mutex> lock(mu_);
    s->alive.store(false, std::memory_order_relaxed);
    s->depth.store(0, std::memory_order_release);
    free_.push_back(s);
  }

  /// Runs `fn(stack)` for every live stack under the registry lock — the
  /// sampler's iteration primitive.
  template <typename Fn>
  void ForEachLive(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : stacks_) {
      if (s->alive.load(std::memory_order_relaxed)) fn(s.get());
    }
  }

  uint64_t TruncatedPushes() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& s : stacks_) {
      total += s->truncated.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static void InitForThisThread(ThreadStack* s) {
    s->alive.store(true, std::memory_order_relaxed);
    s->depth.store(0, std::memory_order_release);
    s->cpu_clock_ok =
        pthread_getcpuclockid(pthread_self(), &s->cpu_clock) == 0;
    s->cpu_seen = false;
    s->last_cpu_ns = 0;
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadStack>> stacks_;
  std::vector<ThreadStack*> free_;
};

/// Thread-local handle; retires the stack at thread exit.
struct StackHolder {
  ThreadStack* stack = nullptr;
  ~StackHolder() {
    if (stack != nullptr) StackRegistry::Instance().Retire(stack);
  }
};

ThreadStack* ThisThreadStack() {
  thread_local StackHolder holder;
  if (holder.stack == nullptr) {
    holder.stack = StackRegistry::Instance().Acquire();
  }
  return holder.stack;
}

uint64_t ReadThreadCpu(const ThreadStack& s) {
  if (!s.cpu_clock_ok) return 0;
  struct timespec ts;
  if (clock_gettime(s.cpu_clock, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

ProfilePhase::ProfilePhase(const char* name) {
  ThreadStack* s = ThisThreadStack();
  const uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d >= kMaxProfileDepth) {
    s->truncated.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s->frames[d].store(name, std::memory_order_relaxed);
  s->depth.store(d + 1, std::memory_order_release);
  state_ = s;
}

ProfilePhase::~ProfilePhase() {
  if (state_ == nullptr) return;
  ThreadStack* s = static_cast<ThreadStack*>(state_);
  const uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d > 0) s->depth.store(d - 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// ProfileSnapshot
// ---------------------------------------------------------------------------

std::string ProfileSnapshot::CollapsedText() const {
  std::string out;
  for (const ProfileEntry& e : entries) {
    out += e.stack + " " + std::to_string(e.samples) + "\n";
  }
  return out;
}

std::string ProfileSnapshot::RenderJsonl() const {
  std::string out;
  for (const ProfileEntry& e : entries) {
    std::string stack;
    stack.reserve(e.stack.size() + 4);
    for (char c : e.stack) {
      if (c == '"' || c == '\\') stack.push_back('\\');
      stack.push_back(c);
    }
    out += "{\"stack\":\"" + stack +
           "\",\"samples\":" + std::to_string(e.samples) +
           ",\"wall_ns\":" + std::to_string(e.wall_ns) +
           ",\"cpu_ns\":" + std::to_string(e.cpu_ns) + "}\n";
  }
  return out;
}

void ProfileSnapshot::MergeFrom(const ProfileSnapshot& other) {
  std::map<std::string, ProfileEntry> merged;
  for (const ProfileEntry& e : entries) merged[e.stack] = e;
  for (const ProfileEntry& e : other.entries) {
    ProfileEntry& slot = merged[e.stack];
    slot.stack = e.stack;
    slot.samples += e.samples;
    slot.wall_ns += e.wall_ns;
    slot.cpu_ns += e.cpu_ns;
  }
  entries.clear();
  entries.reserve(merged.size());
  for (auto& [stack, entry] : merged) entries.push_back(std::move(entry));
  samples_total += other.samples_total;
  truncated_pushes += other.truncated_pushes;
}

ProfileSnapshot ProfileSnapshot::Delta(const ProfileSnapshot& earlier) const {
  std::map<std::string, const ProfileEntry*> before;
  for (const ProfileEntry& e : earlier.entries) before[e.stack] = &e;
  ProfileSnapshot out;
  for (const ProfileEntry& e : entries) {
    const auto it = before.find(e.stack);
    ProfileEntry d;
    d.stack = e.stack;
    if (it == before.end()) {
      d = e;
    } else {
      const ProfileEntry& b = *it->second;
      d.samples = e.samples > b.samples ? e.samples - b.samples : 0;
      d.wall_ns = e.wall_ns > b.wall_ns ? e.wall_ns - b.wall_ns : 0;
      d.cpu_ns = e.cpu_ns > b.cpu_ns ? e.cpu_ns - b.cpu_ns : 0;
    }
    if (d.samples > 0 || d.wall_ns > 0 || d.cpu_ns > 0) {
      out.entries.push_back(std::move(d));
    }
  }
  for (const ProfileEntry& e : out.entries) out.samples_total += e.samples;
  out.truncated_pushes = truncated_pushes > earlier.truncated_pushes
                             ? truncated_pushes - earlier.truncated_pushes
                             : 0;
  return out;
}

std::vector<PhaseSummary> SummarizePhases(const ProfileSnapshot& snapshot) {
  std::map<std::string, PhaseSummary> phases;
  std::vector<std::string> parts;
  for (const ProfileEntry& e : snapshot.entries) {
    parts.clear();
    size_t start = 0;
    while (start <= e.stack.size()) {
      size_t sep = e.stack.find(';', start);
      if (sep == std::string::npos) sep = e.stack.size();
      if (sep > start) parts.push_back(e.stack.substr(start, sep - start));
      start = sep + 1;
    }
    if (parts.empty()) continue;
    // Leaf gets self; every distinct phase on the stack gets total once.
    PhaseSummary& leaf = phases[parts.back()];
    leaf.phase = parts.back();
    leaf.self_samples += e.samples;
    leaf.self_wall_ns += e.wall_ns;
    leaf.self_cpu_ns += e.cpu_ns;
    std::vector<std::string> distinct = parts;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (const std::string& p : distinct) {
      PhaseSummary& ps = phases[p];
      ps.phase = p;
      ps.total_samples += e.samples;
      ps.total_wall_ns += e.wall_ns;
      ps.total_cpu_ns += e.cpu_ns;
    }
  }
  std::vector<PhaseSummary> out;
  out.reserve(phases.size());
  for (auto& [name, ps] : phases) out.push_back(std::move(ps));
  std::sort(out.begin(), out.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              if (a.total_samples != b.total_samples) {
                return a.total_samples > b.total_samples;
              }
              return a.phase < b.phase;
            });
  return out;
}

std::vector<PhaseDelta> DiffProfiles(const ProfileSnapshot& baseline,
                                     const ProfileSnapshot& current,
                                     size_t top_n) {
  if (baseline.samples_total == 0 || current.samples_total == 0) return {};
  std::map<std::string, PhaseDelta> deltas;
  for (const ProfileEntry& e : baseline.entries) {
    PhaseDelta& d = deltas[e.stack];
    d.stack = e.stack;
    d.baseline_fraction = static_cast<double>(e.samples) /
                          static_cast<double>(baseline.samples_total);
  }
  for (const ProfileEntry& e : current.entries) {
    PhaseDelta& d = deltas[e.stack];
    d.stack = e.stack;
    d.current_fraction = static_cast<double>(e.samples) /
                         static_cast<double>(current.samples_total);
  }
  std::vector<PhaseDelta> out;
  for (auto& [stack, d] : deltas) {
    d.delta = d.current_fraction - d.baseline_fraction;
    if (d.delta > 0.0) out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(), [](const PhaseDelta& a,
                                       const PhaseDelta& b) {
    if (a.delta != b.delta) return a.delta > b.delta;
    return a.stack < b.stack;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

Profiler::Profiler(Options options) : options_(std::move(options)) {
  if (!options_.clock) options_.clock = &SteadyNanos;
  if (options_.sample_interval_seconds <= 0.0) {
    options_.sample_interval_seconds = 0.010;
  }
  if (options_.window_ring_capacity == 0) options_.window_ring_capacity = 1;
  last_sample_ns_ = options_.clock();
  if (options_.registry != nullptr) {
    samples_counter_ =
        options_.registry->GetCounter(options_.metric_prefix +
                                      "samples_total");
    threads_busy_gauge_ =
        options_.registry->GetGauge(options_.metric_prefix + "threads_busy");
    truncated_counter_ = options_.registry->GetCounter(
        options_.metric_prefix + "truncated_pushes_total");
  }
}

Profiler::~Profiler() { Stop(); }

Status Profiler::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (!stop_) {
    return Status::FailedPrecondition("Profiler: sampler already running");
  }
  stop_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
  return Status::Ok();
}

void Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return !stop_;
}

void Profiler::SamplerLoop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.sample_interval_seconds));
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    cv_.wait_for(lock, interval);
    if (stop_) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void Profiler::SampleOnce() {
  const uint64_t now = options_.clock();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t wall_delta = now > last_sample_ns_ ? now - last_sample_ns_
                                                    : 0;
  last_sample_ns_ = now;

  size_t busy = 0;
  uint64_t sampled = 0;
  const char* frames[kMaxProfileDepth];
  StackRegistry::Instance().ForEachLive([&](ThreadStack* s) {
    const uint32_t depth = s->depth.load(std::memory_order_acquire);
    if (depth == 0) {
      // Idle thread: drop the CPU cursor so time burned outside any phase
      // is never attributed to the next phase it enters.
      s->cpu_seen = false;
      return;
    }
    const uint32_t d =
        depth > kMaxProfileDepth ? kMaxProfileDepth : depth;
    bool ok = true;
    for (uint32_t i = 0; i < d; ++i) {
      frames[i] = s->frames[i].load(std::memory_order_relaxed);
      if (frames[i] == nullptr) {
        ok = false;
        break;
      }
    }
    if (!ok) return;

    std::string key;
    for (uint32_t i = 0; i < d; ++i) {
      if (i > 0) key.push_back(';');
      key += frames[i];
    }

    const uint64_t cpu = options_.cpu_now ? options_.cpu_now(s->slot)
                                          : ReadThreadCpu(*s);
    uint64_t cpu_delta = 0;
    if (s->cpu_seen && cpu > s->last_cpu_ns) {
      cpu_delta = cpu - s->last_cpu_ns;
    }
    s->last_cpu_ns = cpu;
    s->cpu_seen = true;

    ProfileEntry& e = aggregate_[key];
    e.stack = key;
    e.samples += 1;
    e.wall_ns += wall_delta;
    e.cpu_ns += cpu_delta;
    ++busy;
    ++sampled;
  });
  samples_total_ += sampled;

  if (samples_counter_ != nullptr) samples_counter_->Increment(sampled);
  if (threads_busy_gauge_ != nullptr) {
    threads_busy_gauge_->Set(static_cast<double>(busy));
  }
  if (truncated_counter_ != nullptr) {
    const uint64_t truncated = StackRegistry::Instance().TruncatedPushes();
    const uint64_t have = truncated_counter_->Value();
    if (truncated > have) truncated_counter_->Increment(truncated - have);
  }
}

ProfileSnapshot Profiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileSnapshot snap;
  snap.entries.reserve(aggregate_.size());
  for (const auto& [stack, entry] : aggregate_) {
    snap.entries.push_back(entry);
  }
  snap.samples_total = samples_total_;
  snap.truncated_pushes = StackRegistry::Instance().TruncatedPushes();
  return snap;
}

ProfileSnapshot Profiler::CutWindow() {
  const ProfileSnapshot cumulative = Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  ProfileSnapshot window = cumulative.Delta(window_cursor_);
  window_cursor_ = cumulative;
  windows_.push_back(window);
  if (windows_.size() > options_.window_ring_capacity) {
    windows_.erase(windows_.begin());
  }
  return window;
}

std::vector<ProfileSnapshot> Profiler::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_;
}

bool Profiler::FreezeBaseline() {
  std::lock_guard<std::mutex> lock(mu_);
  if (windows_.empty()) return false;
  baseline_ = windows_.back();
  has_baseline_ = baseline_.samples_total > 0;
  return has_baseline_;
}

bool Profiler::has_baseline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_baseline_;
}

std::vector<PhaseDelta> Profiler::AttributeRegression(size_t top_n) const {
  const ProfileSnapshot cumulative = Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_baseline_) return {};
  const ProfileSnapshot live = cumulative.Delta(window_cursor_);
  return DiffProfiles(baseline_, live, top_n);
}

uint64_t Profiler::samples_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_total_;
}

SloTracker::AlertState CheckSloWithAttribution(SloTracker* tracker,
                                               const Profiler* profiler,
                                               Logger* logger,
                                               size_t top_n) {
  const bool was_firing = tracker->firing();
  SloTracker::AlertState state = tracker->Check();
  if (!state.firing || was_firing || profiler == nullptr ||
      logger == nullptr) {
    return state;
  }
  const std::vector<PhaseDelta> deltas =
      profiler->AttributeRegression(top_n);
  if (deltas.empty()) {
    logger->Log(LogLevel::kWarn, "profile",
                "slo burn fired; no profile baseline for attribution",
                {{"slo", tracker->options().name}});
    return state;
  }
  for (size_t i = 0; i < deltas.size(); ++i) {
    const PhaseDelta& d = deltas[i];
    logger->Log(LogLevel::kWarn, "profile", "slo burn attribution",
                {{"slo", tracker->options().name},
                 {"rank", static_cast<int>(i)},
                 {"stack", d.stack},
                 {"baseline_share", d.baseline_fraction},
                 {"current_share", d.current_fraction},
                 {"delta", d.delta}});
  }
  return state;
}

}  // namespace lightlt::obs
