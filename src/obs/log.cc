#include "src/obs/log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace lightlt::obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string EscapeQuotes(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatTextLine(LogLevel level, std::string_view component,
                           std::string_view message,
                           const std::vector<LogField>& fields) {
  // Text form: level=info component=trainer msg="epoch done" epoch=3 ...
  std::string line;
  line.reserve(64 + message.size());
  line += "level=";
  line += LogLevelName(level);
  line += " component=";
  line.append(component.data(), component.size());
  line += " msg=\"";
  line += EscapeQuotes(message);
  line += "\"";
  for (const LogField& f : fields) {
    line += " ";
    line += f.key;
    line += "=";
    if (f.quoted) {
      line += "\"" + EscapeQuotes(f.value) + "\"";
    } else {
      line += f.value;
    }
  }
  return line;
}

std::string FormatJsonLine(LogLevel level, std::string_view component,
                           std::string_view message,
                           const std::vector<LogField>& fields) {
  std::string json = "{\"level\":\"";
  json += LogLevelName(level);
  json += "\",\"component\":\"";
  json += EscapeQuotes(component);
  json += "\",\"msg\":\"";
  json += EscapeQuotes(message);
  json += "\"";
  for (const LogField& f : fields) {
    json += ",\"" + EscapeQuotes(f.key) + "\":";
    if (f.quoted) {
      json += "\"" + EscapeQuotes(f.value) + "\"";
    } else {
      json += f.value;
    }
  }
  json += "}";
  return json;
}

}  // namespace

Logger::Logger(const Options& options)
    : options_(options),
      min_level_(static_cast<int>(options.min_level)),
      tokens_(options.burst) {
  if (!options_.clock) options_.clock = &SteadyNowSeconds;
  last_refill_ = options_.clock();
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message, std::vector<LogField> fields) {
  if (!Enabled(level)) return;

  const std::string line = FormatTextLine(level, component, message, fields);

  std::lock_guard<std::mutex> lock(mu_);
  uint64_t resumed = 0;
  if (options_.rate_per_second > 0.0) {
    const double now = options_.clock();
    tokens_ = std::min(options_.burst,
                       tokens_ + (now - last_refill_) *
                                     options_.rate_per_second);
    last_refill_ = now;
    if (tokens_ < 1.0) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      ++pending_suppressed_;
      return;
    }
    tokens_ -= 1.0;
    // The bucket refilled after a suppression run: surface how much was
    // dropped before this line, so operators know the log has a gap.
    resumed = pending_suppressed_;
    pending_suppressed_ = 0;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);

  const bool want_json = !options_.jsonl_path.empty();
  if (resumed > 0) {
    const std::vector<LogField> summary_fields = {
        {"suppressed", resumed}};
    EmitLocked(FormatTextLine(LogLevel::kWarn, "logger",
                              "rate limit lifted", summary_fields),
               want_json ? FormatJsonLine(LogLevel::kWarn, "logger",
                                          "rate limit lifted",
                                          summary_fields)
                         : std::string());
  }
  EmitLocked(line, want_json
                       ? FormatJsonLine(level, component, message, fields)
                       : std::string());
}

void Logger::EmitLocked(const std::string& line, const std::string& json) {
  if (options_.stream != nullptr) {
    std::fprintf(options_.stream, "%s\n", line.c_str());
    std::fflush(options_.stream);
  }
  if (!options_.jsonl_path.empty()) {
    if (std::FILE* f = std::fopen(options_.jsonl_path.c_str(), "a")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  if (options_.callback) options_.callback(line);
}

Logger& Logger::Global() {
  static Logger* logger = new Logger(Options{});
  return *logger;
}

}  // namespace lightlt::obs
