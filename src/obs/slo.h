// SLO tracking with multi-window burn-rate alerts (DESIGN.md §11).
//
// An SloTracker watches one objective — e.g. "99% of queries under the
// latency bound" or "shadow recall@10 at least 0.9" — as a stream of
// good/bad events. The burn rate over a window is the observed bad
// fraction divided by the error budget (1 - objective): burn 1.0 spends
// the budget exactly at the objective's rate, burn 14 exhausts a 30-day
// budget in ~2 days. An alert fires only when BOTH a short and a long
// window exceed the threshold (the SRE multi-window pattern): the long
// window proves the problem is sustained, the short window proves it is
// still happening, so alerts both resist blips and clear promptly.
//
// Events land in a ring of fixed-width time buckets tagged with their
// epoch, so stale buckets are lazily reset instead of requiring a sweeper
// thread. The clock is injectable; tests walk time by hand.

#ifndef LIGHTLT_OBS_SLO_H_
#define LIGHTLT_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

namespace lightlt::obs {

/// One multi-window alert rule: fire when the burn rate over both windows
/// is at/above `threshold`.
struct BurnRateWindow {
  double short_seconds = 60.0;
  double long_seconds = 600.0;
  double threshold = 2.0;
};

class SloTracker {
 public:
  struct Options {
    std::string name = "slo";  ///< label on gauges and log events
    /// Target good fraction; the error budget is 1 - objective.
    double objective = 0.99;
    /// Alert rules; any rule with both windows over threshold fires.
    std::vector<BurnRateWindow> windows = {{60.0, 600.0, 2.0}};
    double bucket_seconds = 1.0;
    /// The ring covers this much history; must be >= every long window.
    double horizon_seconds = 3600.0;
    /// Seconds clock; defaults to the steady clock. Injectable for tests.
    std::function<double()> clock;
    Logger* logger = nullptr;              ///< fire/clear events (null = silent)
    MetricsRegistry* registry = nullptr;   ///< burn/firing gauges (optional)
    std::string metric_prefix = "slo_";
  };
  explicit SloTracker(Options options);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one event against the objective.
  void Record(bool good);

  /// Bad fraction / burn rate over the trailing window (0 with no events).
  double BadFraction(double window_seconds) const;
  double BurnRate(double window_seconds) const;

  struct AlertState {
    bool firing = false;
    /// Per-rule burn rates, parallel to Options::windows.
    std::vector<double> short_burn;
    std::vector<double> long_burn;
  };
  /// Re-evaluates every rule, updates gauges, and logs transitions.
  AlertState Check();

  bool firing() const;
  /// Total quiet→firing transitions.
  uint64_t fire_count() const;

  const Options& options() const { return options_; }

 private:
  struct Bucket {
    int64_t epoch = -1;  ///< bucket index since t=0; -1 = never used
    uint64_t good = 0;
    uint64_t bad = 0;
  };

  int64_t BucketEpoch(double now) const;
  /// Sums events in the trailing `window_seconds` ending at `now`.
  void SumWindow(double now, double window_seconds, uint64_t* good,
                 uint64_t* bad) const;  // requires mu_

  Options options_;
  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
  bool firing_ = false;
  uint64_t fire_count_ = 0;
};

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_SLO_H_
