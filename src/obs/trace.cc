#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

namespace lightlt::obs {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

namespace {

/// SplitMix64 over a process-wide counter seeded from the clock: cheap,
/// lock-free, and never returns 0 in practice (0 is reserved for "no
/// trace" in log lines).
uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{SteadyNowNanos() ^ UnixNowNanos()};
  uint64_t z = counter.fetch_add(0x9E3779B97F4A7C15ull,
                                 std::memory_order_relaxed) +
               0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

}  // namespace

Span::Span(Span&& other) noexcept
    : trace_(other.trace_), index_(other.index_) {
  other.trace_ = nullptr;
  other.index_ = -1;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    index_ = other.index_;
    other.trace_ = nullptr;
    other.index_ = -1;
  }
  return *this;
}

void Span::End() {
  if (trace_ != nullptr && index_ >= 0) {
    trace_->EndSpan(index_);
  }
  trace_ = nullptr;
  index_ = -1;
}

Trace::Trace(TraceClock clock, TraceClock wall_clock)
    : clock_(std::move(clock)) {
  if (!clock_) clock_ = &SteadyNowNanos;
  TraceClock wall = std::move(wall_clock);
  if (!wall) wall = &UnixNowNanos;
  trace_id_ = NextTraceId();
  epoch_steady_ns_ = clock_();
  epoch_unix_ns_ = wall();
}

uint64_t Trace::AbsoluteUnixNanos(uint64_t steady_ns) const {
  const int64_t abs_ns = static_cast<int64_t>(steady_ns) + unix_minus_steady();
  return abs_ns < 0 ? 0 : static_cast<uint64_t>(abs_ns);
}

Span Trace::StartSpan(const std::string& name) {
  return StartSpan(name, Span());
}

Span Trace::StartSpan(const std::string& name, const Span& parent) {
  return StartSpanAt(name, parent, clock_());
}

Span Trace::StartSpanAt(const std::string& name, const Span& parent,
                        uint64_t start_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= max_spans_) {
    ++dropped_spans_;
    return Span();
  }
  SpanRecord record;
  record.name = name;
  record.parent = parent.index_;
  record.start_ns = start_ns;
  records_.push_back(std::move(record));
  return Span(this, static_cast<int32_t>(records_.size() - 1));
}

int32_t Trace::AddCompleteSpan(const std::string& name, const Span& parent,
                               uint64_t start_ns, uint64_t end_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= max_spans_) {
    ++dropped_spans_;
    return -1;
  }
  SpanRecord record;
  record.name = name;
  record.parent = parent.index_;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  records_.push_back(std::move(record));
  return static_cast<int32_t>(records_.size() - 1);
}

void Trace::AttachRemote(const Span& parent,
                         std::vector<SpanRecord> remote, int32_t shard) {
  if (remote.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t base = static_cast<int32_t>(records_.size());
  const int32_t remote_count = static_cast<int32_t>(remote.size());
  for (int32_t i = 0; i < remote_count; ++i) {
    if (records_.size() >= max_spans_) {
      // Everything not yet attached is dropped; parents of the records
      // already attached stay valid (they only point backwards).
      dropped_spans_ += static_cast<uint64_t>(remote_count - i);
      return;
    }
    SpanRecord rec = std::move(remote[static_cast<size_t>(i)]);
    // A subtree root hangs off the local parent. A malformed parent index
    // (self/forward/out-of-range — remote payloads are not trusted) is
    // clamped to the local parent rather than allowed to alias an
    // unrelated local record.
    if (rec.parent < 0 || rec.parent >= i) {
      rec.parent = parent.index_;
    } else {
      rec.parent += base;
    }
    rec.remote = true;
    rec.shard = shard;
    records_.push_back(std::move(rec));
  }
}

void Trace::set_max_spans(size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = max_spans == 0 ? 1 : max_spans;
}

size_t Trace::max_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_spans_;
}

uint64_t Trace::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

void Trace::EndSpan(int32_t index) {
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= 0 && static_cast<size_t>(index) < records_.size() &&
      records_[index].end_ns == 0) {
    records_[index].end_ns = now;
  }
}

std::vector<Trace::SpanRecord> Trace::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

namespace {

void RenderSubtree(const std::vector<Trace::SpanRecord>& records,
                   int32_t parent, int depth, std::string* out) {
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (r.parent != parent) continue;
    out->append(static_cast<size_t>(depth) * 2, ' ');
    *out += r.name;
    if (r.end_ns >= r.start_ns && r.end_ns != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.0fus",
                    static_cast<double>(r.end_ns - r.start_ns) * 1e-3);
      *out += buf;
    } else {
      *out += " (open)";
    }
    if (r.remote) {
      *out += " [shard " + std::to_string(r.shard) + "]";
    }
    out->push_back('\n');
    RenderSubtree(records, static_cast<int32_t>(i), depth + 1, out);
  }
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string Trace::Render() const {
  const std::vector<SpanRecord> records = Records();
  std::string out;
  RenderSubtree(records, -1, 0, &out);
  return out;
}

std::string Trace::RenderJsonl() const {
  const std::vector<SpanRecord> records = Records();
  std::string out;
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    out += "{\"trace_id\":\"" + TraceIdHex(trace_id_) +
           "\",\"span\":" + std::to_string(i) + ",\"name\":\"";
    AppendJsonEscaped(r.name, &out);
    out += "\",\"parent\":" + std::to_string(r.parent) +
           ",\"start_unix_ns\":" + std::to_string(AbsoluteUnixNanos(r.start_ns)) +
           ",\"start_ns\":" + std::to_string(r.start_ns) + ",\"duration_ns\":" +
           std::to_string(r.end_ns >= r.start_ns && r.end_ns != 0
                              ? r.end_ns - r.start_ns
                              : 0) +
           ",\"shard\":" + std::to_string(r.shard) +
           ",\"remote\":" + (r.remote ? "true" : "false") + "}\n";
  }
  return out;
}

void ShiftSpanTimes(std::vector<Trace::SpanRecord>* records,
                    int64_t offset_ns) {
  for (Trace::SpanRecord& r : *records) {
    const int64_t start = static_cast<int64_t>(r.start_ns) + offset_ns;
    r.start_ns = start < 0 ? 0 : static_cast<uint64_t>(start);
    if (r.end_ns != 0) {
      const int64_t end = static_cast<int64_t>(r.end_ns) + offset_ns;
      r.end_ns = end < 1 ? 1 : static_cast<uint64_t>(end);
    }
  }
}

}  // namespace lightlt::obs
