#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <utility>

namespace lightlt::obs {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Span::Span(Span&& other) noexcept
    : trace_(other.trace_), index_(other.index_) {
  other.trace_ = nullptr;
  other.index_ = -1;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    index_ = other.index_;
    other.trace_ = nullptr;
    other.index_ = -1;
  }
  return *this;
}

void Span::End() {
  if (trace_ != nullptr && index_ >= 0) {
    trace_->EndSpan(index_);
  }
  trace_ = nullptr;
  index_ = -1;
}

Trace::Trace(TraceClock clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = &SteadyNowNanos;
}

Span Trace::StartSpan(const std::string& name) {
  return StartSpan(name, Span());
}

Span Trace::StartSpan(const std::string& name, const Span& parent) {
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.name = name;
  record.parent = parent.index_;
  record.start_ns = now;
  records_.push_back(std::move(record));
  return Span(this, static_cast<int32_t>(records_.size() - 1));
}

void Trace::EndSpan(int32_t index) {
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= 0 && static_cast<size_t>(index) < records_.size() &&
      records_[index].end_ns == 0) {
    records_[index].end_ns = now;
  }
}

std::vector<Trace::SpanRecord> Trace::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

namespace {

void RenderSubtree(const std::vector<Trace::SpanRecord>& records,
                   int32_t parent, int depth, std::string* out) {
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (r.parent != parent) continue;
    out->append(static_cast<size_t>(depth) * 2, ' ');
    *out += r.name;
    if (r.end_ns >= r.start_ns && r.end_ns != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %.0fus",
                    static_cast<double>(r.end_ns - r.start_ns) * 1e-3);
      *out += buf;
    } else {
      *out += " (open)";
    }
    out->push_back('\n');
    RenderSubtree(records, static_cast<int32_t>(i), depth + 1, out);
  }
}

}  // namespace

std::string Trace::Render() const {
  const std::vector<SpanRecord> records = Records();
  std::string out;
  RenderSubtree(records, -1, 0, &out);
  return out;
}

}  // namespace lightlt::obs
