#include "src/obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/util/check.h"

namespace lightlt::obs {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SloTracker::SloTracker(Options options) : options_(std::move(options)) {
  LIGHTLT_CHECK_GT(options_.bucket_seconds, 0.0);
  LIGHTLT_CHECK_GT(options_.objective, 0.0);
  LIGHTLT_CHECK_LT(options_.objective, 1.0);
  double longest = options_.horizon_seconds;
  for (const BurnRateWindow& w : options_.windows) {
    longest = std::max(longest, w.long_seconds);
  }
  if (!options_.clock) options_.clock = SteadyNowSeconds;
  const size_t buckets = static_cast<size_t>(
      std::ceil(longest / options_.bucket_seconds)) + 1;
  ring_.assign(buckets, Bucket{});
}

int64_t SloTracker::BucketEpoch(double now) const {
  return static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
}

void SloTracker::Record(bool good) {
  const double now = options_.clock();
  const int64_t epoch = BucketEpoch(now);
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = ring_[static_cast<size_t>(epoch % static_cast<int64_t>(
                             ring_.size()))];
  if (bucket.epoch != epoch) {
    bucket.epoch = epoch;
    bucket.good = 0;
    bucket.bad = 0;
  }
  if (good) {
    ++bucket.good;
  } else {
    ++bucket.bad;
  }
}

void SloTracker::SumWindow(double now, double window_seconds, uint64_t* good,
                           uint64_t* bad) const {
  *good = 0;
  *bad = 0;
  const int64_t now_epoch = BucketEpoch(now);
  const int64_t span = static_cast<int64_t>(
      std::ceil(window_seconds / options_.bucket_seconds));
  const int64_t first = now_epoch - span + 1;  // current bucket counts
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch >= first && bucket.epoch <= now_epoch) {
      *good += bucket.good;
      *bad += bucket.bad;
    }
  }
}

double SloTracker::BadFraction(double window_seconds) const {
  const double now = options_.clock();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t good = 0, bad = 0;
  SumWindow(now, window_seconds, &good, &bad);
  const uint64_t total = good + bad;
  return total == 0 ? 0.0
                    : static_cast<double>(bad) / static_cast<double>(total);
}

double SloTracker::BurnRate(double window_seconds) const {
  return BadFraction(window_seconds) / (1.0 - options_.objective);
}

SloTracker::AlertState SloTracker::Check() {
  const double now = options_.clock();
  AlertState state;
  bool was_firing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_firing = firing_;
    const double budget = 1.0 - options_.objective;
    bool any = false;
    for (const BurnRateWindow& rule : options_.windows) {
      uint64_t good = 0, bad = 0;
      SumWindow(now, rule.short_seconds, &good, &bad);
      uint64_t total = good + bad;
      const double short_burn =
          total == 0 ? 0.0 : (static_cast<double>(bad) / total) / budget;
      SumWindow(now, rule.long_seconds, &good, &bad);
      total = good + bad;
      const double long_burn =
          total == 0 ? 0.0 : (static_cast<double>(bad) / total) / budget;
      state.short_burn.push_back(short_burn);
      state.long_burn.push_back(long_burn);
      if (short_burn >= rule.threshold && long_burn >= rule.threshold) {
        any = true;
      }
    }
    firing_ = any;
    state.firing = any;
    if (any && !was_firing) ++fire_count_;
  }
  if (options_.registry != nullptr) {
    for (size_t i = 0; i < options_.windows.size(); ++i) {
      const std::string window =
          std::to_string(static_cast<int64_t>(options_.windows[i].long_seconds));
      options_.registry
          ->GetGauge(WithLabel(options_.metric_prefix + "burn_short_" + window,
                               "slo", options_.name))
          ->Set(state.short_burn[i]);
      options_.registry
          ->GetGauge(WithLabel(options_.metric_prefix + "burn_long_" + window,
                               "slo", options_.name))
          ->Set(state.long_burn[i]);
    }
    options_.registry
        ->GetGauge(
            WithLabel(options_.metric_prefix + "firing", "slo", options_.name))
        ->Set(state.firing ? 1.0 : 0.0);
  }
  if (options_.logger != nullptr && state.firing != was_firing) {
    if (state.firing) {
      double worst = 0.0;
      for (double b : state.short_burn) worst = std::max(worst, b);
      options_.logger->Log(LogLevel::kWarn, "slo", "burn-rate alert firing",
                           {{"slo", options_.name}, {"burn", worst}});
    } else {
      options_.logger->Log(LogLevel::kInfo, "slo", "burn-rate alert cleared",
                           {{"slo", options_.name}});
    }
  }
  return state;
}

bool SloTracker::firing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return firing_;
}

uint64_t SloTracker::fire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fire_count_;
}

}  // namespace lightlt::obs
