// Continuous profiling with per-thread phase stacks (DESIGN.md §16).
//
// Code annotates itself with RAII ProfilePhase tags ("serve", "adc_scan",
// "rerank", ...). Each thread keeps a small fixed-depth stack of tag names;
// pushing/popping is two relaxed/release atomic stores — cheap enough for
// request-path and scan-phase granularity (never per vector). A Profiler
// samples every annotated thread from a dedicated thread (no signals): each
// tick it walks the live phase stacks and accumulates one observation per
// busy thread into collapsed-stack aggregates ("serve;adc_scan" -> samples,
// wall-ns, cpu-ns). Wall time is attributed from the sampler's injectable
// clock; CPU time from the sampled thread's CLOCK_THREAD_CPUTIME_ID, so an
// off-CPU phase (lock waits, blocked I/O) shows wall without cpu.
//
// Determinism contract: Start() runs a real sampler thread on the steady
// clock, but tests drive SampleOnce() by hand with an injectable clock and
// get bit-identical collapsed stacks — there is no signal-based or
// timing-dependent sampling anywhere.
//
// On top of the cumulative aggregates sit windowed deltas (CutWindow into a
// bounded ring), a frozen baseline, and regression attribution: when an SLO
// burn alert fires, DiffProfiles(baseline, current window) names the phases
// whose share of samples grew the most — the "what changed" answer the
// alert itself cannot give.
//
// The same ProfileSnapshot is the wire payload of the profile admin frame
// (src/net/frame.h): per-shard snapshots merge exactly by summing entries
// with equal stacks, so a fleet view is as trustworthy as a local one.

#ifndef LIGHTLT_OBS_PROFILE_H_
#define LIGHTLT_OBS_PROFILE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/util/status.h"

namespace lightlt::obs {

/// Maximum phase-tag nesting per thread. Deeper pushes are dropped and
/// counted (never silently) — request paths are a handful of layers deep.
inline constexpr size_t kMaxProfileDepth = 24;

/// The calling thread's CPU time in nanoseconds (CLOCK_THREAD_CPUTIME_ID);
/// 0 if the platform cannot read it. Serving uses the delta across one
/// request as the cost vector's cpu-ns.
uint64_t ThreadCpuNowNanos();

/// RAII phase tag. `name` must have static storage duration (string
/// literals) — the sampler reads the pointer from another thread long after
/// the call site returned. Tags nest; a tag pushed past kMaxProfileDepth is
/// counted as truncated and pops nothing.
class ProfilePhase {
 public:
  explicit ProfilePhase(const char* name);
  ~ProfilePhase();

  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  void* state_ = nullptr;  ///< owning thread's stack; null when truncated
};

/// One collapsed stack ("a;b;c") with its sampled totals.
struct ProfileEntry {
  std::string stack;
  uint64_t samples = 0;
  uint64_t wall_ns = 0;
  uint64_t cpu_ns = 0;
};

/// Point-in-time (or windowed-delta) view of a profiler's aggregates.
/// Entries are sorted by stack, so equal inputs render byte-identically.
struct ProfileSnapshot {
  std::vector<ProfileEntry> entries;
  uint64_t samples_total = 0;
  /// ProfilePhase pushes dropped at kMaxProfileDepth since process start.
  uint64_t truncated_pushes = 0;

  /// Flamegraph-compatible collapsed-stack text: one `stack count` line
  /// per entry, sorted by stack (feed straight into flamegraph.pl).
  std::string CollapsedText() const;

  /// One JSON object per entry with samples/wall_ns/cpu_ns.
  std::string RenderJsonl() const;

  /// Exact merge: entries with equal stacks sum their samples/wall/cpu;
  /// new stacks are inserted. The fleet collector folds per-shard
  /// snapshots with this — conservation is exact by construction.
  void MergeFrom(const ProfileSnapshot& other);

  /// The samples observed between `earlier` and this snapshot of the same
  /// cumulative profile, saturating at 0 per stack (mirrors
  /// HistogramSnapshot::Delta).
  ProfileSnapshot Delta(const ProfileSnapshot& earlier) const;
};

/// Per-phase rollup of a snapshot: `self` counts samples where the phase
/// was the leaf; `total` counts samples where it appeared anywhere on the
/// stack (each stack contributes once per distinct phase).
struct PhaseSummary {
  std::string phase;
  uint64_t self_samples = 0;
  uint64_t total_samples = 0;
  uint64_t self_wall_ns = 0;
  uint64_t total_wall_ns = 0;
  uint64_t self_cpu_ns = 0;
  uint64_t total_cpu_ns = 0;
};

/// Rolls a snapshot up per phase, sorted by total_samples descending
/// (ties by name).
std::vector<PhaseSummary> SummarizePhases(const ProfileSnapshot& snapshot);

/// One attribution line: how a stack's share of samples moved between a
/// baseline window and the current one.
struct PhaseDelta {
  std::string stack;
  double baseline_fraction = 0.0;
  double current_fraction = 0.0;
  double delta = 0.0;  ///< current - baseline, in sample-share points
};

/// Diffs two (windowed) snapshots by normalized sample share and returns
/// the `top_n` stacks whose share grew the most (delta > 0, descending).
/// Empty when either window has no samples.
std::vector<PhaseDelta> DiffProfiles(const ProfileSnapshot& baseline,
                                     const ProfileSnapshot& current,
                                     size_t top_n = 5);

/// Samples every annotated thread into collapsed-stack aggregates.
class Profiler {
 public:
  struct Options {
    /// Sampler period. The default 10ms (100 Hz — the standard always-on
    /// cadence, cf. perf's 99 Hz) keeps the measured p95 overhead well
    /// under the 5% bench-gate budget even on a single-core host, where
    /// every sampler wakeup preempts the one serving thread.
    double sample_interval_seconds = 0.010;
    /// Nanosecond clock for wall attribution; defaults to the steady
    /// clock. Tests inject a manual clock and call SampleOnce() directly.
    std::function<uint64_t()> clock;
    /// Per-sampled-thread CPU reader override (argument: stable thread
    /// slot). Defaults to the thread's CLOCK_THREAD_CPUTIME_ID. Tests
    /// inject a deterministic reader.
    std::function<uint64_t(size_t)> cpu_now;
    /// Optional registry for `{metric_prefix}...` sampler instruments.
    MetricsRegistry* registry = nullptr;
    std::string metric_prefix = "profile_";
    /// Windowed deltas kept by CutWindow (oldest evicted when full).
    size_t window_ring_capacity = 16;
  };

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(Options options);
  ~Profiler();  ///< stops the sampler thread if running

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Starts the dedicated sampler thread (steady-clock cadence).
  /// kFailedPrecondition when already running.
  Status Start();
  /// Stops and joins the sampler thread; idempotent.
  void Stop();
  bool running() const;

  /// One sampling pass: reads every live phase stack once, attributing
  /// wall time from the injectable clock and CPU time from per-thread
  /// CPU clocks. The sampler thread calls this on its cadence; tests call
  /// it directly for deterministic aggregates.
  void SampleOnce();

  /// Cumulative aggregates since construction.
  ProfileSnapshot Snapshot() const;
  std::string CollapsedText() const { return Snapshot().CollapsedText(); }
  std::string RenderJsonl() const { return Snapshot().RenderJsonl(); }

  /// Cuts the window since the previous cut (or construction), pushes it
  /// into the window ring, and returns it.
  ProfileSnapshot CutWindow();
  /// Oldest-to-newest copy of the window ring.
  std::vector<ProfileSnapshot> Windows() const;
  /// Freezes the most recently cut window as the regression baseline.
  /// False when no window has been cut yet.
  bool FreezeBaseline();
  bool has_baseline() const;

  /// Top phase-share growth of the live window (samples since the last
  /// cut) against the frozen baseline. Empty without a baseline.
  std::vector<PhaseDelta> AttributeRegression(size_t top_n = 5) const;

  uint64_t samples_total() const;

 private:
  void SamplerLoop();

  Options options_;

  mutable std::mutex mu_;  ///< aggregates, windows, baseline
  std::map<std::string, ProfileEntry> aggregate_;
  uint64_t samples_total_ = 0;
  uint64_t last_sample_ns_ = 0;
  ProfileSnapshot window_cursor_;
  std::vector<ProfileSnapshot> windows_;
  ProfileSnapshot baseline_;
  bool has_baseline_ = false;

  mutable std::mutex thread_mu_;  ///< sampler thread lifecycle
  std::condition_variable cv_;
  bool stop_ = true;
  std::thread sampler_;

  Counter* samples_counter_ = nullptr;
  Gauge* threads_busy_gauge_ = nullptr;
  Counter* truncated_counter_ = nullptr;
};

/// Checks `tracker` and, on a quiet→firing transition, logs the top phase
/// deltas of `profiler`'s live window against its frozen baseline — the
/// regression-attribution hook (DESIGN.md §16). Returns the alert state.
/// `profiler` and `logger` may be null (plain Check() behaviour).
SloTracker::AlertState CheckSloWithAttribution(SloTracker* tracker,
                                               const Profiler* profiler,
                                               Logger* logger,
                                               size_t top_n = 3);

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_PROFILE_H_
