// Lock-cheap metrics primitives (DESIGN.md §10).
//
// Three metric kinds, all safe to touch from scan loops and worker threads:
//  * Counter — monotonically increasing, sharded across cache lines so the
//    hot path pays one relaxed fetch_add with no cross-core contention.
//  * Gauge — a point-in-time double (set/add); callback gauges are read at
//    render time (breaker state, queue depth).
//  * Histogram — log-bucketed (factor-2 octaves split into 4 sub-buckets,
//    ~19% relative resolution) with sharded bucket counters; Snapshot()
//    merges shards and answers p50/p95/p99 with bucket-bound guarantees:
//    Quantile(q) returns the upper bound of the bucket holding rank q, so
//    the true rank value lies in [bound / BucketRatio(), bound).
//
// A MetricsRegistry names and owns metrics. Names follow the
// `<layer>_<noun>_<unit>[_total]` scheme with optional Prometheus-style
// labels embedded in the name (`serving_requests_total{outcome="served"}`);
// the registry treats the full labelled string as the key and groups
// `# TYPE` lines by base name in RenderText(). RenderJsonl() emits one JSON
// object per metric so tools/ and bench/ can diff runs.

#ifndef LIGHTLT_OBS_METRICS_H_
#define LIGHTLT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lightlt::obs {

/// Adds `delta` to an atomic double with a CAS loop (fetch_add on
/// atomic<double> is not yet portable across the toolchains we build with).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

/// Returns a small stable shard slot for the calling thread.
size_t ThisThreadShard();

/// Monotonic counter, sharded so concurrent writers on different cores do
/// not bounce one cache line. Value() sums the shards (exact: every
/// increment lands in exactly one shard).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Increment(uint64_t n = 1) {
    shards_[ThisThreadShard() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Point-in-time value. Set/Add are relaxed; last writer wins on Set.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(&value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged point-in-time view of a Histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// counts[i] observations fell in
  /// [Histogram::BucketLowerBound(i), Histogram::BucketUpperBound(i)).
  std::vector<uint64_t> counts;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Upper bucket bound of the observation at rank ceil(q * count); the
  /// true value lies within one bucket ratio below the returned bound.
  /// 0 when empty.
  double Quantile(double q) const;

  /// The observations recorded between `earlier` and this snapshot of the
  /// same cumulative histogram — windowed quantiles and drift detection
  /// work off two cumulative snapshots without a second histogram.
  /// Underflow-guarded: bucket counts subtract saturating at 0 and the sum
  /// is floored at 0, so snapshots taken while shards were mid-merge (or
  /// accidentally swapped operands) yield an empty-ish window instead of
  /// wrapped 2^64 counts. `count` is recomputed from the guarded buckets.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;

  /// Layout-checked merge: adds `other`'s buckets, count and sum into this
  /// snapshot. Merging into an empty (bucketless) snapshot adopts `other`'s
  /// layout, so a zero-initialised accumulator works; otherwise the bucket
  /// vectors must have identical length (same kSubBuckets/exponent-range
  /// build) — a mismatch is kInvalidArgument and leaves this snapshot
  /// untouched. The fleet collector folds per-shard snapshots with this,
  /// and conservation is exact: merged counts equal the element-wise sum.
  Status MergeFrom(const HistogramSnapshot& other);
};

inline HistogramSnapshot operator-(const HistogramSnapshot& later,
                                   const HistogramSnapshot& earlier) {
  return later.Delta(earlier);
}

/// Log-bucketed histogram of non-negative doubles (typically seconds).
/// Record() is one relaxed fetch_add on a sharded bucket plus a relaxed
/// CAS for the running sum — cheap enough for per-chunk scan telemetry,
/// never used per vector.
class Histogram {
 public:
  /// 4 sub-buckets per power-of-two octave: relative bucket width
  /// 2^(1/4) ~= 1.19.
  static constexpr int kSubBuckets = 4;
  /// Finite range ~[2^-20, 2^20) ~= [1e-6, 1e6] — microseconds to days
  /// when recording seconds. Out-of-range values land in the clamp
  /// buckets at either end.
  static constexpr int kMinExponent = -20;
  static constexpr int kMaxExponent = 20;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 2;
  /// Upper/lower bound ratio of every finite bucket.
  static double BucketRatio();

  void Record(double value);

  /// Bucket index a value falls into (values <= 0 go to bucket 0).
  static size_t BucketIndex(double value);
  /// Exclusive upper bound of bucket i (+inf for the overflow bucket).
  static double BucketUpperBound(size_t i);
  /// Inclusive lower bound of bucket i (0 for the underflow bucket).
  static double BucketLowerBound(size_t i);

  HistogramSnapshot Snapshot() const;

 private:
  static constexpr size_t kShards = 4;
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kNumBuckets] = {};
    std::atomic<double> sum{0.0};
  };
  Shard shards_[kShards];
};

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and newline become \\, \" and \n.
std::string EscapeLabelValue(const std::string& value);

/// Builds `base{key="value"}` — the labelled-name convention the registry
/// keys on. `value` is escaped here, so the registry key is already valid
/// exposition text and RenderText can emit names verbatim.
std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value);

/// Adds one label to a possibly-already-labelled name:
/// `base` → `base{key="value"}`, `base{a="b"}` → `base{a="b",key="value"}`.
/// The fleet collector uses this to re-export remote series under
/// shard=/replica= labels without parsing the original label block.
std::string AddLabel(const std::string& name, const std::string& key,
                     const std::string& value);

/// Structured point-in-time dump of a whole registry — the payload of the
/// metrics admin frame (DESIGN.md §15). Callback gauges are evaluated into
/// plain gauge samples; histograms keep full bucket vectors so a collector
/// can merge them exactly (RenderText alone loses the buckets).
struct RegistrySnapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot snapshot;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;          ///< includes callback gauges
  std::vector<HistogramSample> histograms;
};

/// Named metric owner. Get* registers on first use and returns a stable
/// pointer — callers cache it and never pay the registry lock again.
/// Thread-safe; metrics live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Sets the `# HELP` text RenderText emits for a base (unlabelled) name.
  /// Metrics without explicit help get a generic line — the exposition
  /// format wants every family documented, even tersely.
  void SetHelp(const std::string& base_name, const std::string& help);

  /// A gauge whose value is computed at render/snapshot time (e.g. breaker
  /// state). The callback must be safe to invoke from any thread for the
  /// registry's lifetime; re-registering a name replaces the callback.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<double()> fn);

  /// Prometheus text exposition: counters, gauges, and summary-style
  /// histograms (quantile lines + _sum/_count), sorted by name. Conformant
  /// with the exposition format: every family gets `# HELP` and `# TYPE`
  /// lines, and counter sample names carry the `_total` suffix (appended
  /// here, before the label block, when the registered name lacks it —
  /// snapshots and JSONL keep the registered name, so the wire payload and
  /// fleet merges are unaffected).
  std::string RenderText() const;

  /// Structured dump: every counter/gauge value plus full histogram
  /// snapshots, each group sorted by name (callback gauges are evaluated
  /// here and appended after the plain gauges).
  RegistrySnapshot Snapshot() const;

  /// One JSON object per line per metric — machine-readable dump for
  /// diffing runs (tools/bench_smoke.sh).
  std::string RenderJsonl() const;

  /// Appends RenderJsonl() to `path` (creating it if needed).
  Status WriteJsonl(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> callback_gauges_;
  std::map<std::string, std::string> help_;  ///< base name -> HELP text
};

}  // namespace lightlt::obs

#endif  // LIGHTLT_OBS_METRICS_H_
