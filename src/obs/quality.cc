#include "src/obs/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lightlt::obs {

WilsonInterval WilsonScore(uint64_t successes, uint64_t trials, double z) {
  WilsonInterval out;
  if (trials == 0) return out;  // vacuous [0, 1]
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(std::min(successes, trials)) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  out.center = p;
  out.lower = std::max(0.0, center - spread);
  out.upper = std::min(1.0, center + spread);
  return out;
}

const char* RecallSegmentName(size_t segment) {
  static const char* const kNames[kNumRecallSegments] = {"overall", "head",
                                                         "mid", "tail"};
  return segment < kNumRecallSegments ? kNames[segment] : "unknown";
}

void StreamingRecallEstimator::Add(int class_bucket, uint64_t successes,
                                   uint64_t trials) {
  if (trials == 0) return;
  if (successes > trials) successes = trials;
  auto feed = [&](size_t segment) {
    Cell& cell = cells_[segment];
    cell.queries.fetch_add(1, std::memory_order_relaxed);
    cell.successes.fetch_add(successes, std::memory_order_relaxed);
    cell.trials.fetch_add(trials, std::memory_order_relaxed);
  };
  feed(0);
  if (class_bucket >= 0 && class_bucket < 3) {
    feed(static_cast<size_t>(class_bucket) + 1);
  }
}

StreamingRecallEstimator::SegmentSnapshot StreamingRecallEstimator::Snapshot(
    size_t segment) const {
  SegmentSnapshot snap;
  if (segment >= kNumRecallSegments) return snap;
  const Cell& cell = cells_[segment];
  // Loads are individually relaxed; a snapshot taken concurrently with Add
  // may tear across the three fields, which only shifts the estimate by
  // one in-flight query.
  snap.queries = cell.queries.load(std::memory_order_relaxed);
  snap.successes = cell.successes.load(std::memory_order_relaxed);
  snap.trials = cell.trials.load(std::memory_order_relaxed);
  snap.recall = WilsonScore(snap.successes, snap.trials, z_);
  return snap;
}

double PopulationStabilityIndex(const HistogramSnapshot& expected,
                                const HistogramSnapshot& observed,
                                double floor_probability) {
  if (expected.count == 0 || observed.count == 0) return 0.0;
  const size_t buckets = std::max(expected.counts.size(),
                                  observed.counts.size());
  const double en = static_cast<double>(expected.count);
  const double on = static_cast<double>(observed.count);
  double psi = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    const uint64_t ec = i < expected.counts.size() ? expected.counts[i] : 0;
    const uint64_t oc = i < observed.counts.size() ? observed.counts[i] : 0;
    if (ec == 0 && oc == 0) continue;
    const double p = std::max(static_cast<double>(ec) / en, floor_probability);
    const double q = std::max(static_cast<double>(oc) / on, floor_probability);
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

DriftDetector::DriftDetector(Options options) : options_(std::move(options)) {}

void DriftDetector::AddWatch(const std::string& name, const Histogram* live,
                             const DriftWatchOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  Watch& watch = watches_[name];
  watch.live = live;
  watch.options = options;
  watch.cursor = live->Snapshot();  // ignore traffic before the watch
}

bool DriftDetector::FreezeBaseline(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watches_.find(name);
  if (it == watches_.end()) return false;
  Watch& watch = it->second;
  const HistogramSnapshot now = watch.live->Snapshot();
  const HistogramSnapshot window = now.Delta(watch.cursor);
  if (window.count == 0) return false;
  watch.baseline = window;
  watch.cursor = now;
  watch.has_baseline = true;
  watch.strikes = 0;
  watch.drifted = false;
  watch.last_psi = 0.0;
  return true;
}

void DriftDetector::CheckAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, watch] : watches_) {
    if (!watch.has_baseline) continue;
    const HistogramSnapshot now = watch.live->Snapshot();
    const HistogramSnapshot window = now.Delta(watch.cursor);
    if (window.count < watch.options.min_window_count) {
      // Too little traffic to judge — let the window keep accumulating.
      continue;
    }
    watch.cursor = now;
    watch.last_psi = PopulationStabilityIndex(watch.baseline, window);
    const bool was_drifted = watch.drifted;
    if (watch.last_psi >= watch.options.psi_fire) {
      watch.strikes += 1;
      if (watch.strikes >= watch.options.consecutive) watch.drifted = true;
    } else if (watch.last_psi <= watch.options.psi_clear) {
      watch.strikes = 0;
      watch.drifted = false;
    }
    // PSI between clear and fire leaves both strikes and state untouched:
    // the hysteresis band.
    if (watch.drifted && !was_drifted) {
      fire_count_ += 1;
      if (options_.logger != nullptr) {
        options_.logger->Log(LogLevel::kWarn, "drift", "distribution drift",
                             {{"watch", name},
                              {"psi", watch.last_psi},
                              {"window_count", window.count}});
      }
    } else if (!watch.drifted && was_drifted && options_.logger != nullptr) {
      options_.logger->Log(LogLevel::kInfo, "drift", "drift cleared",
                           {{"watch", name}, {"psi", watch.last_psi}});
    }
    if (options_.registry != nullptr) {
      options_.registry
          ->GetGauge(WithLabel(options_.metric_prefix + "psi", "watch", name))
          ->Set(watch.last_psi);
      options_.registry
          ->GetGauge(
              WithLabel(options_.metric_prefix + "active", "watch", name))
          ->Set(watch.drifted ? 1.0 : 0.0);
    }
  }
}

bool DriftDetector::Drifted(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watches_.find(name);
  return it != watches_.end() && it->second.drifted;
}

double DriftDetector::LastPsi(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watches_.find(name);
  return it == watches_.end() ? 0.0 : it->second.last_psi;
}

uint64_t DriftDetector::fire_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fire_count_;
}

SlowQueryLog::SlowQueryLog(const Options& options) : options_(options) {
  ring_.reserve(options_.capacity);
}

void SlowQueryLog::Add(SlowQueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.id = next_id_++;
  if (options_.capacity == 0) {
    ++evicted_;
    return;
  }
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_slot_] = std::move(record);
    ++evicted_;
  }
  next_slot_ = (next_slot_ + 1) % options_.capacity;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;  // ring not yet wrapped: insertion order is slot order
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
    }
  }
  return out;
}

uint64_t SlowQueryLog::captured_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

uint64_t SlowQueryLog::evicted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

namespace {

std::string QualityJsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string QualityFormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string SlowQueryLog::RenderJsonl() const {
  std::string out;
  for (const SlowQueryRecord& rec : Snapshot()) {
    out += "{\"id\":" + std::to_string(rec.id) + ",\"kind\":\"" +
           QualityJsonEscape(rec.kind) + "\",\"outcome\":\"" +
           QualityJsonEscape(rec.outcome) + "\",\"trace_id\":\"" +
           TraceIdHex(rec.trace_id) +
           "\",\"latency_seconds\":" + QualityFormatDouble(rec.latency_seconds) +
           ",\"recall\":" + QualityFormatDouble(rec.recall) +
           ",\"explain\":{\"chunks\":" + std::to_string(rec.explain.chunks) +
           ",\"items\":" + std::to_string(rec.explain.items) +
           ",\"probed_cells\":" + std::to_string(rec.explain.probed_cells) +
           ",\"cpu_ns\":" + std::to_string(rec.explain.cpu_ns) +
           ",\"codes_decoded\":" + std::to_string(rec.explain.codes_decoded) +
           ",\"lut_builds\":" + std::to_string(rec.explain.lut_builds) +
           ",\"shortlist\":" + std::to_string(rec.explain.shortlist) +
           ",\"degraded\":" + (rec.explain.degraded ? "true" : "false") +
           ",\"flat_fallback\":" +
           (rec.explain.flat_fallback ? "true" : "false") +
           ",\"coverage\":" + QualityFormatDouble(rec.explain.coverage) +
           ",\"shards_answered\":" +
           std::to_string(rec.explain.shards_answered) +
           ",\"failovers\":" + std::to_string(rec.explain.failovers) +
           "},\"spans\":[";
    for (size_t i = 0; i < rec.spans.size(); ++i) {
      const Trace::SpanRecord& span = rec.spans[i];
      if (i > 0) out += ",";
      out += "{\"name\":\"" + QualityJsonEscape(span.name) +
             "\",\"parent\":" + std::to_string(span.parent) +
             ",\"start_ns\":" + std::to_string(span.start_ns) +
             ",\"end_ns\":" + std::to_string(span.end_ns) +
             ",\"shard\":" + std::to_string(span.shard) +
             ",\"remote\":" + (span.remote ? "true" : "false") + "}";
    }
    out += "]}\n";
  }
  return out;
}

Status SlowQueryLog::DumpJsonl(const std::string& path) const {
  const std::string body = RenderJsonl();
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IoError("SlowQueryLog: cannot open " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    return Status::IoError("SlowQueryLog: short write to " + path);
  }
  return Status::Ok();
}

}  // namespace lightlt::obs
