#include "src/clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace lightlt::clustering {
namespace {

/// k-means++ seeding: first centroid uniform, the rest proportional to
/// squared distance from the closest chosen centroid.
Matrix SeedPlusPlus(const Matrix& points, size_t k, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  LIGHTLT_CHECK_GE(n, k);
  Matrix centroids(k, d);

  size_t first = static_cast<size_t>(rng.NextIndex(n));
  std::copy(points.row(first), points.row(first) + d, centroids.row(0));

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  for (size_t c = 1; c < k; ++c) {
    // Update distances with the centroid added last.
    const float* last = centroids.row(c - 1);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* p = points.row(i);
      double acc = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = p[j] - last[j];
        acc += diff * diff;
      }
      dist2[i] = std::min(dist2[i], acc);
      total += dist2[i];
    }
    // Sample next centroid proportional to dist^2.
    double target = rng.NextDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    std::copy(points.row(chosen), points.row(chosen) + d, centroids.row(c));
  }
  return centroids;
}

}  // namespace

std::vector<uint32_t> AssignToNearest(const Matrix& points,
                                      const Matrix& centroids,
                                      ThreadPool* pool) {
  LIGHTLT_CHECK_EQ(points.cols(), centroids.cols());
  const size_t n = points.rows();
  const size_t k = centroids.rows();
  const size_t d = points.cols();
  std::vector<uint32_t> assignments(n, 0);

  const Matrix c_norms = centroids.RowSquaredNorms();
  ParallelFor(pool, n, [&](size_t i) {
    const float* p = points.row(i);
    float best = std::numeric_limits<float>::max();
    uint32_t best_j = 0;
    for (size_t j = 0; j < k; ++j) {
      const float* c = centroids.row(j);
      // -2 <p, c> + ||c||^2 ranks identically to full squared distance.
      float score = c_norms[j];
      for (size_t t = 0; t < d; ++t) score -= 2.0f * p[t] * c[t];
      if (score < best) {
        best = score;
        best_j = static_cast<uint32_t>(j);
      }
    }
    assignments[i] = best_j;
  });
  return assignments;
}

KMeansResult KMeans(const Matrix& points, const KMeansOptions& options) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const size_t k = std::min(options.num_clusters, n);
  LIGHTLT_CHECK_GT(k, 0u);

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);

  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.assignments =
        AssignToNearest(points, result.centroids, options.pool);

    // Recompute centroids.
    Matrix sums(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t a = result.assignments[i];
      float* srow = sums.row(a);
      const float* p = points.row(i);
      for (size_t j = 0; j < d; ++j) srow[j] += p[j];
      ++counts[a];
    }

    // Inertia under the new assignment / old centroids is fine for the
    // stopping test; compute exactly with current centroids for reporting.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float* p = points.row(i);
      const float* c = result.centroids.row(result.assignments[i]);
      for (size_t j = 0; j < d; ++j) {
        const double diff = p[j] - c[j];
        inertia += diff * diff;
      }
    }
    result.inertia = inertia;
    result.iterations_run = iter + 1;

    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster from the point farthest from its centroid.
        size_t worst = 0;
        double worst_dist = -1.0;
        for (size_t i = 0; i < n; ++i) {
          const float* p = points.row(i);
          const float* cc = result.centroids.row(result.assignments[i]);
          double acc = 0.0;
          for (size_t j = 0; j < d; ++j) {
            const double diff = p[j] - cc[j];
            acc += diff * diff;
          }
          if (acc > worst_dist) {
            worst_dist = acc;
            worst = i;
          }
        }
        std::copy(points.row(worst), points.row(worst) + d,
                  result.centroids.row(c));
      } else {
        const float inv = 1.0f / static_cast<float>(counts[c]);
        float* crow = result.centroids.row(c);
        const float* srow = sums.row(c);
        for (size_t j = 0; j < d; ++j) crow[j] = srow[j] * inv;
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          (prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (rel >= 0.0 && rel < options.convergence_tol) break;
    }
    prev_inertia = inertia;
  }

  result.assignments = AssignToNearest(points, result.centroids, options.pool);
  return result;
}

}  // namespace lightlt::clustering
