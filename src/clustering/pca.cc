#include "src/clustering/pca.h"

#include <cmath>

#include "src/clustering/linalg.h"
#include "src/util/check.h"

namespace lightlt::clustering {

Result<Pca> Pca::Fit(const Matrix& x, size_t num_components, bool whiten) {
  if (x.rows() < 2) {
    return Status::InvalidArgument("Pca: need at least 2 samples");
  }
  if (num_components == 0 || num_components > x.cols()) {
    return Status::InvalidArgument("Pca: bad component count");
  }

  Matrix centered = x;
  Pca pca;
  pca.mean_ = linalg::CenterColumns(centered);
  const Matrix cov = linalg::Covariance(centered);

  std::vector<float> evals;
  Matrix evecs;
  Status st = linalg::SymmetricEigen(cov, &evals, &evecs);
  if (!st.ok()) return st;

  pca.components_ = Matrix(x.cols(), num_components);
  pca.explained_variance_.resize(num_components);
  for (size_t c = 0; c < num_components; ++c) {
    const float ev = std::max(0.0f, evals[c]);
    pca.explained_variance_[c] = ev;
    float scale = 1.0f;
    if (whiten) scale = 1.0f / std::sqrt(ev + 1e-8f);
    for (size_t r = 0; r < x.cols(); ++r) {
      pca.components_.at(r, c) = evecs.at(r, c) * scale;
    }
  }
  return pca;
}

Matrix Pca::Transform(const Matrix& x) const {
  LIGHTLT_CHECK_EQ(x.cols(), mean_.cols());
  Matrix centered = x;
  for (size_t i = 0; i < centered.rows(); ++i) {
    float* r = centered.row(i);
    for (size_t j = 0; j < centered.cols(); ++j) r[j] -= mean_[j];
  }
  return centered.MatMul(components_);
}

}  // namespace lightlt::clustering
