// Lloyd's k-means with k-means++ seeding. The training algorithm behind the
// PQ and RQ baselines, and the codebook initializer option for LightLT.

#ifndef LIGHTLT_CLUSTERING_KMEANS_H_
#define LIGHTLT_CLUSTERING_KMEANS_H_

#include <cstddef>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/util/threadpool.h"

namespace lightlt::clustering {

struct KMeansOptions {
  size_t num_clusters = 256;
  int max_iterations = 25;
  /// Relative improvement in total inertia below which we stop early.
  double convergence_tol = 1e-4;
  uint64_t seed = 0x5eed;
  /// Optional pool for parallel assignment; nullptr = serial.
  ThreadPool* pool = nullptr;
};

struct KMeansResult {
  Matrix centroids;                 ///< (k x d)
  std::vector<uint32_t> assignments;  ///< per-point nearest centroid
  double inertia = 0.0;             ///< sum of squared distances
  int iterations_run = 0;
};

/// Runs k-means on row-sample matrix `points` (n x d). Empty clusters are
/// re-seeded from the point farthest from its centroid.
KMeansResult KMeans(const Matrix& points, const KMeansOptions& options);

/// Assigns each row of `points` to its nearest centroid (squared L2).
std::vector<uint32_t> AssignToNearest(const Matrix& points,
                                      const Matrix& centroids,
                                      ThreadPool* pool = nullptr);

}  // namespace lightlt::clustering

#endif  // LIGHTLT_CLUSTERING_KMEANS_H_
