// Principal component analysis built on the Jacobi eigensolver. Used by the
// PCAH / ITQ / KNNH hash baselines and the Fig. 8 2-D visualizations.

#ifndef LIGHTLT_CLUSTERING_PCA_H_
#define LIGHTLT_CLUSTERING_PCA_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace lightlt::clustering {

/// Fitted PCA projection.
class Pca {
 public:
  /// Fits the top `num_components` principal directions of X (n x d).
  /// If `whiten`, projected coordinates are scaled to unit variance.
  static Result<Pca> Fit(const Matrix& x, size_t num_components,
                         bool whiten = false);

  /// Projects rows of X (n x d) -> (n x num_components).
  Matrix Transform(const Matrix& x) const;

  size_t num_components() const { return components_.cols(); }
  const Matrix& components() const { return components_; }
  const Matrix& mean() const { return mean_; }
  const std::vector<float>& explained_variance() const {
    return explained_variance_;
  }

 private:
  Pca() = default;

  Matrix mean_;        // 1 x d
  Matrix components_;  // d x num_components (columns are directions)
  std::vector<float> explained_variance_;
};

}  // namespace lightlt::clustering

#endif  // LIGHTLT_CLUSTERING_PCA_H_
