#include "src/clustering/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.h"

namespace lightlt::linalg {

Status SymmetricEigen(const Matrix& a, std::vector<float>* eigenvalues,
                      Matrix* eigenvectors, int max_sweeps, float tolerance) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix not square");
  }
  const size_t n = a.rows();
  Matrix d = a;                       // working copy, becomes diagonal
  Matrix v = Matrix::Identity(n);     // accumulated rotations

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of off-diagonal magnitudes decides convergence.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += std::fabs(d.at(i, j));
    }
    if (off < tolerance) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const float apq = d.at(p, q);
        if (std::fabs(apq) < 1e-12f) continue;
        const float app = d.at(p, p);
        const float aqq = d.at(q, q);
        const float theta = 0.5f * (aqq - app) / apq;
        const float t =
            (theta >= 0.0f ? 1.0f : -1.0f) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0f));
        const float c = 1.0f / std::sqrt(t * t + 1.0f);
        const float s = t * c;

        // Apply rotation to rows/cols p and q of D.
        for (size_t k = 0; k < n; ++k) {
          const float dkp = d.at(k, p);
          const float dkq = d.at(k, q);
          d.at(k, p) = c * dkp - s * dkq;
          d.at(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const float dpk = d.at(p, k);
          const float dqk = d.at(q, k);
          d.at(p, k) = c * dpk - s * dqk;
          d.at(q, k) = s * dpk + c * dqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          const float vkp = v.at(k, p);
          const float vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return d.at(i, i) > d.at(j, j);
  });

  eigenvalues->resize(n);
  *eigenvectors = Matrix(n, n);
  for (size_t c2 = 0; c2 < n; ++c2) {
    (*eigenvalues)[c2] = d.at(order[c2], order[c2]);
    for (size_t r = 0; r < n; ++r) {
      eigenvectors->at(r, c2) = v.at(r, order[c2]);
    }
  }
  return Status::Ok();
}

Status ThinSvd(const Matrix& a, Matrix* u, std::vector<float>* singular_values,
               Matrix* v) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("ThinSvd: requires rows >= cols");
  }
  const Matrix ata = a.TransposedMatMul(a);  // n x n
  std::vector<float> evals;
  Matrix evecs;
  LIGHTLT_RETURN_IF_ERROR(SymmetricEigen(ata, &evals, &evecs));

  const size_t n = a.cols();
  singular_values->resize(n);
  *v = evecs;
  Matrix av = a.MatMul(evecs);  // m x n, columns = sigma_i * u_i
  *u = Matrix(a.rows(), n);
  for (size_t i = 0; i < n; ++i) {
    const float sigma = std::sqrt(std::max(0.0f, evals[i]));
    (*singular_values)[i] = sigma;
    const float inv = sigma > 1e-8f ? 1.0f / sigma : 0.0f;
    for (size_t r = 0; r < a.rows(); ++r) {
      u->at(r, i) = av.at(r, i) * inv;
    }
  }
  return Status::Ok();
}

Status SolveSpd(const Matrix& a, const Matrix& b, Matrix* x, float ridge) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveSpd: matrix not square");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("SolveSpd: dimension mismatch");
  }
  const size_t n = a.rows();
  // Cholesky factorization A = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = a.at(i, j) + (i == j ? ridge : 0.0f);
      for (size_t k = 0; k < j; ++k) acc -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (acc <= 0.0) {
          return Status::FailedPrecondition("SolveSpd: matrix not SPD");
        }
        l.at(i, i) = static_cast<float>(std::sqrt(acc));
      } else {
        l.at(i, j) = static_cast<float>(acc / l.at(j, j));
      }
    }
  }
  // Forward/backward substitution per column of B.
  *x = Matrix(n, b.cols());
  std::vector<double> y(n);
  for (size_t c = 0; c < b.cols(); ++c) {
    for (size_t i = 0; i < n; ++i) {
      double acc = b.at(i, c);
      for (size_t k = 0; k < i; ++k) acc -= l.at(i, k) * y[k];
      y[i] = acc / l.at(i, i);
    }
    for (size_t ii = n; ii-- > 0;) {
      double acc = y[ii];
      for (size_t k = ii + 1; k < n; ++k) acc -= l.at(k, ii) * x->at(k, c);
      x->at(ii, c) = static_cast<float>(acc / l.at(ii, ii));
    }
  }
  return Status::Ok();
}

Status ProcrustesRotation(const Matrix& a, const Matrix& b, Matrix* rotation) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument("Procrustes: shape mismatch");
  }
  const Matrix m = a.TransposedMatMul(b);  // n x n
  Matrix u, v;
  std::vector<float> s;
  // Square case of ThinSvd: m is (n x n).
  LIGHTLT_RETURN_IF_ERROR(ThinSvd(m, &u, &s, &v));
  *rotation = u.MatMulTransposed(v);  // U V^T
  return Status::Ok();
}

Matrix CenterColumns(Matrix& x) {
  Matrix mean = x.ColSums();
  mean.ScaleInPlace(1.0f / static_cast<float>(x.rows()));
  for (size_t i = 0; i < x.rows(); ++i) {
    float* r = x.row(i);
    for (size_t j = 0; j < x.cols(); ++j) r[j] -= mean[j];
  }
  return mean;
}

Matrix Covariance(const Matrix& x) {
  Matrix cov = x.TransposedMatMul(x);
  cov.ScaleInPlace(1.0f / static_cast<float>(x.rows() > 1 ? x.rows() - 1 : 1));
  return cov;
}

}  // namespace lightlt::linalg
