// Small dense linear-algebra kernels: symmetric eigendecomposition (Jacobi),
// SVD via the eigendecomposition of A^T A, and SPD linear solves (Cholesky).
// Used by PCA, ITQ's Procrustes rotation and SDH's ridge regressions.

#ifndef LIGHTLT_CLUSTERING_LINALG_H_
#define LIGHTLT_CLUSTERING_LINALG_H_

#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace lightlt::linalg {

/// Eigendecomposition of a symmetric matrix A (n x n) by cyclic Jacobi
/// rotations. On return `eigenvalues` are sorted descending and
/// `eigenvectors` holds the matching eigenvectors as *columns*.
Status SymmetricEigen(const Matrix& a, std::vector<float>* eigenvalues,
                      Matrix* eigenvectors, int max_sweeps = 64,
                      float tolerance = 1e-9f);

/// Thin SVD A = U S V^T for A (m x n), m >= n, via eigen of A^T A.
/// U is (m x n), singular_values has length n (descending), V is (n x n).
Status ThinSvd(const Matrix& a, Matrix* u, std::vector<float>* singular_values,
               Matrix* v);

/// Solves (A + ridge*I) X = B for symmetric positive definite A (n x n),
/// B (n x k), via Cholesky. Fails if A + ridge*I is not SPD.
Status SolveSpd(const Matrix& a, const Matrix& b, Matrix* x,
                float ridge = 0.0f);

/// Orthogonal Procrustes: the rotation R minimizing ||B - A R||_F, i.e.
/// R = V U^T where A^T B = U S V^T... computed as R = U V^T of svd(A^T B).
Status ProcrustesRotation(const Matrix& a, const Matrix& b, Matrix* rotation);

/// Centers columns of X in place; returns the removed mean (1 x d).
Matrix CenterColumns(Matrix& x);

/// Covariance (d x d) of row-sample matrix X (n x d), assuming centered.
Matrix Covariance(const Matrix& x);

}  // namespace lightlt::linalg

#endif  // LIGHTLT_CLUSTERING_LINALG_H_
