#include "src/eval/efficiency.h"

#include <cmath>

#include "src/index/codes.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace lightlt::eval {

double TheoreticalCompressRatio(size_t n, size_t d, size_t m, size_t k) {
  const double raw = 4.0 * static_cast<double>(n) * static_cast<double>(d);
  const double quantized =
      4.0 * static_cast<double>(k) * static_cast<double>(m) *
          static_cast<double>(d) +
      static_cast<double>(n) * static_cast<double>(m) *
          static_cast<double>(index::BitsPerCode(k)) / 8.0 +
      4.0 * static_cast<double>(n);
  return raw / quantized;
}

double TheoreticalSpeedup(size_t n, size_t d, size_t m, size_t k) {
  const double exhaustive = static_cast<double>(n) * static_cast<double>(d);
  const double adc = static_cast<double>(d) * static_cast<double>(m) *
                         static_cast<double>(k) +
                     static_cast<double>(n) * static_cast<double>(m);
  return exhaustive / adc;
}

EfficiencyReport MeasureEfficiency(const index::FlatIndex& flat,
                                   const index::AdcIndex& adc,
                                   const Matrix& queries, int repeats) {
  LIGHTLT_CHECK_EQ(flat.num_items(), adc.num_items());
  LIGHTLT_CHECK_GT(queries.rows(), 0u);
  LIGHTLT_CHECK_GT(repeats, 0);

  EfficiencyReport report;
  report.database_size = flat.num_items();

  std::vector<float> scores;
  // Warm-up pass so first-touch page faults don't pollute the timing.
  flat.ComputeScores(queries.row(0), &scores);
  adc.ComputeScores(queries.row(0), &scores);

  // Per-query ScopedTimer recordings: the histogram sum replaces the old
  // one-stopwatch-per-phase total and additionally yields latency tails.
  obs::Histogram flat_hist;
  for (int r = 0; r < repeats; ++r) {
    for (size_t q = 0; q < queries.rows(); ++q) {
      ScopedTimer timer(&flat_hist);
      flat.ComputeScores(queries.row(q), &scores);
    }
  }
  const obs::HistogramSnapshot flat_snap = flat_hist.Snapshot();
  const double flat_seconds = flat_snap.sum;

  obs::Histogram adc_hist;
  for (int r = 0; r < repeats; ++r) {
    for (size_t q = 0; q < queries.rows(); ++q) {
      ScopedTimer timer(&adc_hist);
      adc.ComputeScores(queries.row(q), &scores);
    }
  }
  const obs::HistogramSnapshot adc_snap = adc_hist.Snapshot();
  const double adc_seconds = adc_snap.sum;

  const double total_queries =
      static_cast<double>(queries.rows()) * repeats;
  report.flat_query_micros = flat_seconds * 1e6 / total_queries;
  report.adc_query_micros = adc_seconds * 1e6 / total_queries;
  report.flat_p50_micros = flat_snap.Quantile(0.50) * 1e6;
  report.flat_p95_micros = flat_snap.Quantile(0.95) * 1e6;
  report.flat_p99_micros = flat_snap.Quantile(0.99) * 1e6;
  report.adc_p50_micros = adc_snap.Quantile(0.50) * 1e6;
  report.adc_p95_micros = adc_snap.Quantile(0.95) * 1e6;
  report.adc_p99_micros = adc_snap.Quantile(0.99) * 1e6;
  report.measured_speedup = flat_seconds / std::max(adc_seconds, 1e-12);
  report.measured_compress_ratio =
      static_cast<double>(flat.MemoryBytes()) /
      static_cast<double>(adc.MemoryBytes());
  report.theoretical_speedup =
      TheoreticalSpeedup(flat.num_items(), flat.dim(), adc.num_codebooks(),
                         adc.num_codewords());
  report.theoretical_compress_ratio =
      TheoreticalCompressRatio(flat.num_items(), flat.dim(),
                               adc.num_codebooks(), adc.num_codewords());
  return report;
}

}  // namespace lightlt::eval
