#include "src/eval/bench_gate.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lightlt::eval {
namespace {

/// Position just past `"key"` followed by optional space and a colon, or
/// npos. Matches quoted keys only, so values cannot alias keys.
size_t FindKey(const std::string& json, const std::string& key, size_t from) {
  const std::string quoted = "\"" + key + "\"";
  size_t at = json.find(quoted, from);
  while (at != std::string::npos) {
    size_t p = at + quoted.size();
    while (p < json.size() && (json[p] == ' ' || json[p] == '\t')) ++p;
    if (p < json.size() && json[p] == ':') return p + 1;
    at = json.find(quoted, at + 1);
  }
  return std::string::npos;
}

bool ParseNumberAt(const std::string& json, size_t at, double* value,
                   size_t* end) {
  while (at < json.size() &&
         (json[at] == ' ' || json[at] == '\t' || json[at] == '\n')) {
    ++at;
  }
  if (at >= json.size()) return false;
  const char* start = json.c_str() + at;
  char* parsed_end = nullptr;
  const double v = std::strtod(start, &parsed_end);
  if (parsed_end == start) return false;
  *value = v;
  if (end != nullptr) *end = at + static_cast<size_t>(parsed_end - start);
  return true;
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* value) {
  const size_t at = FindKey(json, key, 0);
  if (at == std::string::npos) return false;
  return ParseNumberAt(json, at, value, nullptr);
}

std::vector<std::pair<std::string, double>> ExtractMicroBenchTimes(
    const std::string& json) {
  std::vector<std::pair<std::string, double>> out;
  // google-benchmark emits, per entry: "name": "<bench>", ... "real_time":
  // <ns>. The context block has no "name" key, so pairing consecutive
  // occurrences is exact.
  size_t cursor = 0;
  while (true) {
    size_t name_at = FindKey(json, "name", cursor);
    if (name_at == std::string::npos) break;
    while (name_at < json.size() && json[name_at] == ' ') ++name_at;
    if (name_at >= json.size() || json[name_at] != '"') {
      cursor = name_at;
      continue;
    }
    const size_t name_end = json.find('"', name_at + 1);
    if (name_end == std::string::npos) break;
    const std::string name = json.substr(name_at + 1, name_end - name_at - 1);
    const size_t time_at = FindKey(json, "real_time", name_end);
    if (time_at == std::string::npos) break;
    double value = 0.0;
    size_t time_end = time_at;
    if (ParseNumberAt(json, time_at, &value, &time_end)) {
      out.emplace_back(name, value);
    }
    cursor = time_end;
  }
  return out;
}

std::string GateReport::Render() const {
  std::string out;
  for (const GateFinding& finding : regressions) {
    out += "REGRESSION " + finding.metric + ": baseline " +
           FormatNumber(finding.baseline) + " -> candidate " +
           FormatNumber(finding.candidate) + " (" + finding.detail + ")\n";
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  if (regressions.empty()) out += "bench gate: OK\n";
  return out;
}

GateReport CompareServingBench(const std::string& baseline_json,
                               const std::string& candidate_json,
                               const GateThresholds& thresholds) {
  GateReport report;
  double base = 0.0, cand = 0.0;

  const bool base_p95 = ExtractJsonNumber(baseline_json, "p95", &base);
  const bool cand_p95 = ExtractJsonNumber(candidate_json, "p95", &cand);
  if (base_p95 && cand_p95) {
    const double limit = base * (1.0 + thresholds.max_p95_regress_pct / 100.0);
    if (base > 0.0 && cand > limit) {
      report.regressions.push_back(
          {"serving_p95_ms", base, cand,
           "limit +" + FormatNumber(thresholds.max_p95_regress_pct) + "%"});
    }
  } else {
    report.notes.push_back("p95 missing from a run; latency check skipped");
  }

  const bool base_qps = ExtractJsonNumber(baseline_json, "qps", &base);
  const bool cand_qps = ExtractJsonNumber(candidate_json, "qps", &cand);
  if (base_qps && cand_qps) {
    if (base > 0.0 && cand < base * thresholds.min_qps_ratio) {
      report.regressions.push_back(
          {"qps", base, cand,
           "limit x" + FormatNumber(thresholds.min_qps_ratio)});
    }
  } else {
    report.notes.push_back("qps missing from a run; throughput check skipped");
  }

  const bool base_recall =
      ExtractJsonNumber(baseline_json, "shadow_recall", &base);
  const bool cand_recall =
      ExtractJsonNumber(candidate_json, "shadow_recall", &cand);
  if (base_recall && cand_recall) {
    if (base >= 0.0 && cand >= 0.0 &&
        cand < base - thresholds.max_recall_drop) {
      report.regressions.push_back(
          {"shadow_recall", base, cand,
           "limit -" + FormatNumber(thresholds.max_recall_drop)});
    }
  } else {
    report.notes.push_back(
        "shadow_recall missing from a run; recall check skipped");
  }

  // Candidate-only check: profiling overhead is an absolute budget, not a
  // baseline comparison, so older baselines without the key still gate.
  if (ExtractJsonNumber(candidate_json, "profiler_overhead_pct", &cand)) {
    if (cand > thresholds.max_profiler_overhead_pct) {
      double off_p95 = 0.0;
      (void)ExtractJsonNumber(candidate_json, "profiler_off_p95_ms", &off_p95);
      report.regressions.push_back(
          {"profiler_overhead_pct", off_p95, cand,
           "limit " + FormatNumber(thresholds.max_profiler_overhead_pct) +
               "% of p95"});
    }
  } else {
    report.notes.push_back(
        "profiler_overhead_pct missing from candidate; overhead check "
        "skipped");
  }
  return report;
}

GateReport CompareMicroBench(const std::string& baseline_json,
                             const std::string& candidate_json,
                             const GateThresholds& thresholds) {
  GateReport report;
  const auto base = ExtractMicroBenchTimes(baseline_json);
  const auto cand = ExtractMicroBenchTimes(candidate_json);
  for (const auto& [name, base_time] : base) {
    const std::pair<std::string, double>* match = nullptr;
    for (const auto& entry : cand) {
      if (entry.first == name) {
        match = &entry;
        break;
      }
    }
    if (match == nullptr) {
      report.notes.push_back("benchmark only in baseline: " + name);
      continue;
    }
    const double limit =
        base_time * (1.0 + thresholds.max_micro_regress_pct / 100.0);
    if (base_time > 0.0 && match->second > limit) {
      report.regressions.push_back(
          {name, base_time, match->second,
           "limit +" + FormatNumber(thresholds.max_micro_regress_pct) + "%"});
    }
  }
  for (const auto& [name, time] : cand) {
    bool known = false;
    for (const auto& entry : base) {
      if (entry.first == name) {
        known = true;
        break;
      }
    }
    if (!known) report.notes.push_back("benchmark only in candidate: " + name);
  }
  return report;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("bench_gate: cannot open " + path);
  }
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IoError("bench_gate: read failed on " + path);
  return out;
}

}  // namespace lightlt::eval
