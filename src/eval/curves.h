// Precision/recall-at-k curves over a query set — the standard companion
// plots to MAP for analyzing retrieval behaviour at different depths.

#ifndef LIGHTLT_EVAL_CURVES_H_
#define LIGHTLT_EVAL_CURVES_H_

#include <vector>

#include "src/eval/metrics.h"

namespace lightlt::eval {

/// One point of a retrieval curve.
struct CurvePoint {
  size_t k = 0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Mean precision@k and recall@k over all queries at each depth in `ks`
/// (must be positive and ascending).
std::vector<CurvePoint> PrecisionRecallCurve(
    const RankingFn& rank_query, const std::vector<size_t>& query_labels,
    const std::vector<size_t>& db_labels, const std::vector<size_t>& ks,
    ThreadPool* pool = nullptr);

/// Recall@k of an approximate ranking against an exact one: the fraction of
/// the exact top-k ids that appear in the approximate top-k, averaged over
/// queries. This is the ANN-benchmark notion of recall, used to evaluate
/// IVF probing.
double RecallAgainstExact(const RankingFn& approx, const RankingFn& exact,
                          size_t num_queries, size_t k,
                          ThreadPool* pool = nullptr);

}  // namespace lightlt::eval

#endif  // LIGHTLT_EVAL_CURVES_H_
