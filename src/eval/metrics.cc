#include "src/eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace lightlt::eval {

double AveragePrecision(const std::vector<uint32_t>& ranking,
                        const std::vector<size_t>& db_labels,
                        size_t query_label) {
  size_t hits = 0;
  double precision_sum = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    LIGHTLT_CHECK_LT(ranking[i], db_labels.size());
    if (db_labels[ranking[i]] == query_label) {
      ++hits;
      precision_sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  if (hits == 0) return 0.0;
  return precision_sum / static_cast<double>(hits);
}

double PrecisionAtK(const std::vector<uint32_t>& ranking,
                    const std::vector<size_t>& db_labels, size_t query_label,
                    size_t k) {
  LIGHTLT_CHECK_GT(k, 0u);
  const size_t limit = std::min(k, ranking.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (db_labels[ranking[i]] == query_label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const std::vector<uint32_t>& ranking,
                 const std::vector<size_t>& db_labels, size_t query_label,
                 size_t k) {
  size_t total_relevant = 0;
  for (size_t label : db_labels) {
    if (label == query_label) ++total_relevant;
  }
  if (total_relevant == 0) return 0.0;
  const size_t limit = std::min(k, ranking.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (db_labels[ranking[i]] == query_label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total_relevant);
}

double MeanAveragePrecision(const RankingFn& rank_query,
                            const std::vector<size_t>& query_labels,
                            const std::vector<size_t>& db_labels,
                            ThreadPool* pool) {
  std::vector<bool> all(query_labels.empty() ? 0 : *std::max_element(
                            query_labels.begin(), query_labels.end()) + 1,
                        true);
  return MeanAveragePrecisionForClasses(rank_query, query_labels, db_labels,
                                        all, pool);
}

double MeanAveragePrecisionForClasses(const RankingFn& rank_query,
                                      const std::vector<size_t>& query_labels,
                                      const std::vector<size_t>& db_labels,
                                      const std::vector<bool>& class_subset,
                                      ThreadPool* pool) {
  if (query_labels.empty()) return 0.0;
  std::vector<double> ap(query_labels.size(), -1.0);
  ParallelFor(
      pool, query_labels.size(),
      [&](size_t q) {
        const size_t label = query_labels[q];
        if (label >= class_subset.size() || !class_subset[label]) return;
        ap[q] = AveragePrecision(rank_query(q), db_labels, label);
      },
      /*min_chunk=*/8);
  double total = 0.0;
  size_t count = 0;
  for (double v : ap) {
    if (v >= 0.0) {
      total += v;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

std::vector<int> HeadMidTailBuckets(const std::vector<size_t>& class_counts) {
  const size_t c = class_counts.size();
  std::vector<size_t> by_count(c);
  std::iota(by_count.begin(), by_count.end(), 0);
  std::stable_sort(by_count.begin(), by_count.end(), [&](size_t a, size_t b) {
    return class_counts[a] > class_counts[b];
  });
  std::vector<int> bucket(c, 2);
  const size_t third = (c + 2) / 3;
  for (size_t rank = 0; rank < c; ++rank) {
    bucket[by_count[rank]] =
        static_cast<int>(std::min<size_t>(rank / third, 2));
  }
  return bucket;
}

const char* const kHeadMidTailNames[3] = {"head", "mid", "tail"};

}  // namespace lightlt::eval
