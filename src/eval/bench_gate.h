// Bench regression gate (DESIGN.md §11): compares two bench_smoke runs —
// BENCH_serving.json (end-to-end QPS / latency / recall) and the
// google-benchmark BENCH_micro_index.json (scan kernels) — and reports
// regressions beyond configurable thresholds. Library form so the logic is
// unit-testable; tools/bench_gate.cc is the CLI wired into
// tools/bench_smoke.sh --gate.
//
// Parsing: the repo carries no JSON library, and both artifacts are
// machine-written with unique scalar keys, so a first-occurrence
// `"key": <number>` scanner is exact for them (and only them — this is not
// a general JSON parser).

#ifndef LIGHTLT_EVAL_BENCH_GATE_H_
#define LIGHTLT_EVAL_BENCH_GATE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace lightlt::eval {

// Defaults are sized from measured run-to-run variance of the smoke
// profile on an otherwise-idle machine (5 identical runs): p95 jitters up
// to ~41% (histogram-bucket quantization on a sub-millisecond path), QPS
// up to ~14%, shadow recall within 0.006 absolute at ~500 realized
// samples. Each threshold leaves roughly 1.5x headroom over the worst
// observed pair so the gate flags real regressions, not scheduler noise.
struct GateThresholds {
  /// Serving p95 latency may grow at most this percent over baseline.
  double max_p95_regress_pct = 60.0;
  /// Candidate QPS must stay at/above this fraction of baseline.
  double min_qps_ratio = 0.65;
  /// Shadow recall may drop at most this much (absolute). Skipped when
  /// either run lacks the shadow_recall key (older baselines).
  double max_recall_drop = 0.05;
  /// Per-benchmark real_time in the micro suite may grow at most this
  /// percent over baseline.
  double max_micro_regress_pct = 30.0;
  /// Continuous profiling at the default cadence may cost at most this
  /// percent of serving p95 (candidate's profiler_overhead_pct key —
  /// candidate-only, no baseline needed). Skipped (with a note) when the
  /// candidate predates the key.
  double max_profiler_overhead_pct = 5.0;
};

struct GateFinding {
  std::string metric;  ///< "serving_p95_ms", "qps", "BM_AdcScan/..."
  double baseline = 0.0;
  double candidate = 0.0;
  std::string detail;
};

struct GateReport {
  std::vector<GateFinding> regressions;
  /// Non-fatal observations: keys missing from a run, benchmarks present
  /// in only one file. Never silent — a gate that skips a check says so.
  std::vector<std::string> notes;

  bool ok() const { return regressions.empty(); }
  /// Human-readable verdict, one line per regression/note.
  std::string Render() const;
};

/// First occurrence of `"key": <number>` in `json`; false when absent or
/// malformed.
bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* value);

/// All `"name": "<benchmark>"` / `"real_time": <ns>` pairs of a
/// google-benchmark JSON file, in file order.
std::vector<std::pair<std::string, double>> ExtractMicroBenchTimes(
    const std::string& json);

/// Gates candidate vs baseline BENCH_serving.json contents.
GateReport CompareServingBench(const std::string& baseline_json,
                               const std::string& candidate_json,
                               const GateThresholds& thresholds);

/// Gates candidate vs baseline BENCH_micro_index.json contents; benchmarks
/// are matched by name, unmatched ones are noted.
GateReport CompareMicroBench(const std::string& baseline_json,
                             const std::string& candidate_json,
                             const GateThresholds& thresholds);

/// Whole-file read for the CLI (IoError on open/read failure).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace lightlt::eval

#endif  // LIGHTLT_EVAL_BENCH_GATE_H_
