// Retrieval quality metrics. The paper evaluates with MAP over the full
// database ranking (§V-A3); precision/recall@k are provided for analysis.

#ifndef LIGHTLT_EVAL_METRICS_H_
#define LIGHTLT_EVAL_METRICS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/threadpool.h"

namespace lightlt::eval {

/// AP@n for one query: ranking is the database ids in retrieved order;
/// an item is relevant iff db_labels[id] == query_label (paper §V-A3).
/// Returns 0 when the database holds no relevant item.
double AveragePrecision(const std::vector<uint32_t>& ranking,
                        const std::vector<size_t>& db_labels,
                        size_t query_label);

/// Precision among the first k retrieved items.
double PrecisionAtK(const std::vector<uint32_t>& ranking,
                    const std::vector<size_t>& db_labels, size_t query_label,
                    size_t k);

/// Fraction of all relevant items found in the first k.
double RecallAtK(const std::vector<uint32_t>& ranking,
                 const std::vector<size_t>& db_labels, size_t query_label,
                 size_t k);

/// Produces the full database ranking for query `q`.
using RankingFn = std::function<std::vector<uint32_t>(size_t query_index)>;

/// MAP over all queries, parallelized across a thread pool.
double MeanAveragePrecision(const RankingFn& rank_query,
                            const std::vector<size_t>& query_labels,
                            const std::vector<size_t>& db_labels,
                            ThreadPool* pool = nullptr);

/// MAP restricted to queries whose label is in `class_subset` — used for
/// head-vs-tail breakdowns.
double MeanAveragePrecisionForClasses(const RankingFn& rank_query,
                                      const std::vector<size_t>& query_labels,
                                      const std::vector<size_t>& db_labels,
                                      const std::vector<bool>& class_subset,
                                      ThreadPool* pool = nullptr);

/// Long-tail evaluation buckets: thirds of the class list ranked by
/// training count, most populous first (paper §V's head/mid/tail split).
/// Returns bucket index 0 (head) / 1 (mid) / 2 (tail) per class. Shared by
/// the trainer's per-epoch accuracy breakdown and the serving layer's
/// shadow-recall segmentation.
std::vector<int> HeadMidTailBuckets(const std::vector<size_t>& class_counts);

/// Display names for the three buckets: "head", "mid", "tail".
extern const char* const kHeadMidTailNames[3];

}  // namespace lightlt::eval

#endif  // LIGHTLT_EVAL_METRICS_H_
