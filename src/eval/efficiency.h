// Inference and storage efficiency measurements (paper §V-E, Fig. 7).
//
// Speedup ratio = exhaustive-search time / ADC-search time (measured on the
// distance-computation phase, matching the paper's complexity analysis).
// Compress ratio = float storage / quantized storage. Theoretical values use
// the closed forms of §IV: ops nd vs dMK + nM; bytes 4nd vs
// 4KMd + n*M*log2(K)/8 + 4n.

#ifndef LIGHTLT_EVAL_EFFICIENCY_H_
#define LIGHTLT_EVAL_EFFICIENCY_H_

#include <cstddef>

#include "src/index/adc_index.h"
#include "src/index/flat_index.h"
#include "src/tensor/matrix.h"

namespace lightlt::eval {

/// One row of the Fig. 7 sweep. Mean latencies feed the speedup ratio;
/// the p50/p95/p99 tails come from per-query ScopedTimer recordings into
/// a log-bucketed Histogram (upper-bound quantiles, ~19% resolution).
struct EfficiencyReport {
  size_t database_size = 0;
  double measured_speedup = 0.0;
  double theoretical_speedup = 0.0;
  double measured_compress_ratio = 0.0;
  double theoretical_compress_ratio = 0.0;
  double flat_query_micros = 0.0;
  double adc_query_micros = 0.0;
  double flat_p50_micros = 0.0;
  double flat_p95_micros = 0.0;
  double flat_p99_micros = 0.0;
  double adc_p50_micros = 0.0;
  double adc_p95_micros = 0.0;
  double adc_p99_micros = 0.0;
};

/// Times `repeats` full passes of ComputeScores over all queries against
/// both indexes and fills the ratios. The indexes must cover the same items.
EfficiencyReport MeasureEfficiency(const index::FlatIndex& flat,
                                   const index::AdcIndex& adc,
                                   const Matrix& queries, int repeats = 3);

/// Closed-form compress ratio 4nd / (4KMd + n*M*log2(K)/8 + 4n), §IV-A.
double TheoreticalCompressRatio(size_t n, size_t d, size_t m, size_t k);

/// Closed-form speedup nd / (dMK + nM), §IV-B.
double TheoreticalSpeedup(size_t n, size_t d, size_t m, size_t k);

}  // namespace lightlt::eval

#endif  // LIGHTLT_EVAL_EFFICIENCY_H_
