#include "src/eval/curves.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/check.h"

namespace lightlt::eval {

std::vector<CurvePoint> PrecisionRecallCurve(
    const RankingFn& rank_query, const std::vector<size_t>& query_labels,
    const std::vector<size_t>& db_labels, const std::vector<size_t>& ks,
    ThreadPool* pool) {
  LIGHTLT_CHECK(!ks.empty());
  for (size_t i = 1; i < ks.size(); ++i) LIGHTLT_CHECK_LT(ks[i - 1], ks[i]);

  std::vector<std::vector<double>> precisions(query_labels.size());
  std::vector<std::vector<double>> recalls(query_labels.size());
  ParallelFor(
      pool, query_labels.size(),
      [&](size_t q) {
        const auto ranking = rank_query(q);
        precisions[q].reserve(ks.size());
        recalls[q].reserve(ks.size());
        for (size_t k : ks) {
          precisions[q].push_back(
              PrecisionAtK(ranking, db_labels, query_labels[q], k));
          recalls[q].push_back(
              RecallAtK(ranking, db_labels, query_labels[q], k));
        }
      },
      /*min_chunk=*/8);

  std::vector<CurvePoint> curve(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    curve[i].k = ks[i];
    for (size_t q = 0; q < query_labels.size(); ++q) {
      curve[i].precision += precisions[q][i];
      curve[i].recall += recalls[q][i];
    }
    if (!query_labels.empty()) {
      curve[i].precision /= static_cast<double>(query_labels.size());
      curve[i].recall /= static_cast<double>(query_labels.size());
    }
  }
  return curve;
}

double RecallAgainstExact(const RankingFn& approx, const RankingFn& exact,
                          size_t num_queries, size_t k, ThreadPool* pool) {
  if (num_queries == 0 || k == 0) return 0.0;
  std::vector<double> recalls(num_queries, 0.0);
  ParallelFor(
      pool, num_queries,
      [&](size_t q) {
        const auto truth = exact(q);
        const auto guess = approx(q);
        const size_t depth = std::min(k, truth.size());
        if (depth == 0) return;
        // The whole returned truth list is the valid set: callers may pass
        // more than k ids to make the metric tie-aware (any k-subset of a
        // tie group is a correct answer).
        std::unordered_set<uint32_t> truth_ids(truth.begin(), truth.end());
        size_t hit = 0;
        for (size_t i = 0; i < guess.size() && i < k; ++i) {
          hit += truth_ids.count(guess[i]);
        }
        recalls[q] =
            static_cast<double>(hit) / static_cast<double>(depth);
      },
      /*min_chunk=*/4);
  double total = 0.0;
  for (double r : recalls) total += r;
  return total / static_cast<double>(num_queries);
}

}  // namespace lightlt::eval
