// Long-tail class-size law (paper Definition 1).
//
// Class sizes follow Zipf's law: pi_i = pi_1 * i^{-p}. The imbalance factor
// IF = pi_1 / pi_C determines the exponent p = log(IF) / log(C).

#ifndef LIGHTLT_DATA_LONGTAIL_H_
#define LIGHTLT_DATA_LONGTAIL_H_

#include <cstddef>
#include <vector>

namespace lightlt::data {

/// Parameters of a long-tail (Zipf) class-size distribution.
struct LongTailSpec {
  size_t num_classes = 100;  ///< C
  size_t head_size = 500;    ///< pi_1, size of the largest class
  double imbalance_factor = 50.0;  ///< IF = pi_1 / pi_C
  size_t min_class_size = 1;       ///< floor applied after rounding
};

/// Zipf exponent p such that pi_C = pi_1 * C^{-p} = pi_1 / IF.
double ZipfExponent(size_t num_classes, double imbalance_factor);

/// Class sizes pi_1 >= pi_2 >= ... >= pi_C per Definition 1.
/// sizes[i] = max(min_class_size, round(head_size * (i+1)^{-p})).
std::vector<size_t> LongTailClassSizes(const LongTailSpec& spec);

/// Empirical imbalance factor of a size vector (largest / smallest).
double MeasuredImbalanceFactor(const std::vector<size_t>& sizes);

}  // namespace lightlt::data

#endif  // LIGHTLT_DATA_LONGTAIL_H_
