// Labelled feature datasets and the synthetic long-tail generator.
//
// The generator stands in for "pretrained backbone features of a real
// dataset" (see DESIGN.md §2): each class is a random low-rank Gaussian
// cluster in R^d, class sizes follow Zipf's law (Definition 1), and a
// separation knob controls task difficulty so the four paper datasets keep
// their relative MAP ordering.

#ifndef LIGHTLT_DATA_DATASET_H_
#define LIGHTLT_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/longtail.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace lightlt::data {

/// A labelled feature set: features (n x d) with labels in [0, C).
struct Dataset {
  Matrix features;
  std::vector<size_t> labels;
  size_t num_classes = 0;

  size_t size() const { return labels.size(); }
  size_t dim() const { return features.cols(); }

  /// Per-class counts (length num_classes).
  std::vector<size_t> ClassCounts() const;
};

/// Train / query / database triple for a retrieval experiment (Table I).
/// Training data is long-tailed; query and database sets are balanced,
/// following the LTHNet evaluation protocol the paper adopts.
struct RetrievalBenchmark {
  std::string name;
  Dataset train;
  Dataset query;
  Dataset database;
};

/// Generation parameters for one synthetic dataset.
///
/// Class clusters live in a `latent_dim`-dimensional latent space; observed
/// features are produced by a fixed random one-hidden-layer nonlinear warp
/// x = tanh(z W1 + b1) W2 + eps. The warp models what pretrained-backbone
/// features look like in practice: class structure is present but *not*
/// axis-aligned or linearly clustered, so unsupervised geometric methods
/// (PQ, ITQ, ...) under-perform supervised ones that can learn to unwarp —
/// the regime the paper evaluates in. Set nonlinear_warp=false for plain
/// Gaussian clusters.
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_classes = 100;
  size_t feature_dim = 64;
  size_t latent_dim = 16;
  bool nonlinear_warp = true;
  float observation_noise = 0.05f;

  /// Class-irrelevant structured variance: every sample additionally gets
  /// u B with u ~ N(0, I_rank) and a fixed random B. Pretrained-backbone
  /// features carry exactly this kind of dominant nuisance variance (style,
  /// background, register); unsupervised quantizers spend their bit budget
  /// on it while supervised methods learn to project it out — the mechanism
  /// behind the paper's deep >> shallow gap.
  size_t nuisance_rank = 16;
  float nuisance_scale = 1.0f;

  /// Long-tail law of the training split.
  LongTailSpec train_spec;

  size_t queries_per_class = 10;
  size_t database_per_class = 50;

  /// Distance between class means relative to within-class noise; larger is
  /// easier. Class means are drawn N(0, separation^2 * I).
  float class_separation = 3.0f;
  /// Isotropic within-class noise sigma.
  float noise_sigma = 1.0f;
  /// Rank of the class-specific covariance factor (0 = isotropic only).
  size_t covariance_rank = 4;
  /// Scale of the low-rank covariance directions.
  float covariance_scale = 1.0f;

  /// Latent modes per class (>= 1). Real classes are multimodal (an "apple"
  /// is a photo of a red apple, a green apple, a cut apple); methods that
  /// model one center per class (CSQ) degrade on multimodal data while
  /// prototype-free ranking methods do not.
  size_t modes_per_class = 1;
  /// Distance of the secondary modes from the primary one, as a multiple of
  /// noise_sigma.
  float mode_spread = 3.0f;

  uint64_t seed = 0x11157;
};

/// Samples a complete benchmark: one cluster model per class shared by all
/// three splits, Zipf-distributed train sizes, balanced query/database.
RetrievalBenchmark GenerateSynthetic(const SyntheticConfig& config);

}  // namespace lightlt::data

#endif  // LIGHTLT_DATA_DATASET_H_
