#include "src/data/dataset.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace lightlt::data {

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(num_classes, 0);
  for (size_t label : labels) {
    LIGHTLT_CHECK_LT(label, num_classes);
    ++counts[label];
  }
  return counts;
}

namespace {

/// Per-class generative model in the latent space: a mixture of
/// `modes_per_class` components sharing one covariance factor:
/// z = modes[m] + factors^T u + sigma * eps.
struct ClassModel {
  Matrix modes;    // modes_per_class x latent
  Matrix factors;  // rank x latent
};

/// Fixed random nonlinearity shared by all splits of one dataset:
/// x = tanh(z W1 + b1) W2 + u N + observation noise,
/// where u N is the class-irrelevant nuisance component.
struct WarpModel {
  Matrix w1;  // latent x d
  Matrix b1;  // 1 x d
  Matrix w2;  // d x d
  Matrix nuisance;  // rank x d, zero-sized = no nuisance
  bool active = false;
};

size_t LatentDim(const SyntheticConfig& cfg) {
  return cfg.nonlinear_warp ? cfg.latent_dim : cfg.feature_dim;
}

std::vector<ClassModel> MakeClassModels(const SyntheticConfig& cfg,
                                        Rng& rng) {
  const size_t latent = LatentDim(cfg);
  std::vector<ClassModel> models;
  models.reserve(cfg.num_classes);
  const size_t modes = std::max<size_t>(1, cfg.modes_per_class);
  for (size_t c = 0; c < cfg.num_classes; ++c) {
    ClassModel m;
    m.modes = Matrix(modes, latent);
    Matrix primary = Matrix::RandomGaussian(1, latent, rng,
                                            cfg.class_separation);
    for (size_t k = 0; k < modes; ++k) {
      for (size_t j = 0; j < latent; ++j) {
        float v = primary[j];
        if (k > 0) {
          v += cfg.mode_spread * cfg.noise_sigma *
               static_cast<float>(rng.NextGaussian());
        }
        m.modes.at(k, j) = v;
      }
    }
    if (cfg.covariance_rank > 0) {
      m.factors = Matrix::RandomGaussian(cfg.covariance_rank, latent, rng,
                                         cfg.covariance_scale);
    }
    models.push_back(std::move(m));
  }
  return models;
}

WarpModel MakeWarp(const SyntheticConfig& cfg, Rng& rng) {
  WarpModel warp;
  warp.active = cfg.nonlinear_warp;
  const size_t d = cfg.feature_dim;
  if (warp.active) {
    const size_t latent = cfg.latent_dim;
    // Column scales keep pre-activation variance O(1) per unit so tanh
    // folds without fully saturating.
    warp.w1 = Matrix::RandomGaussian(
        latent, d, rng, 1.0f / std::sqrt(static_cast<float>(latent)));
    warp.b1 = Matrix::RandomGaussian(1, d, rng, 0.3f);
    warp.w2 = Matrix::RandomGaussian(d, d, rng,
                                     1.0f / std::sqrt(static_cast<float>(d)));
  }
  if (cfg.nuisance_rank > 0 && cfg.nuisance_scale > 0.0f) {
    warp.nuisance = Matrix::RandomGaussian(
        cfg.nuisance_rank, d, rng,
        cfg.nuisance_scale / std::sqrt(static_cast<float>(cfg.nuisance_rank)));
  }
  return warp;
}

Matrix SampleLatent(const std::vector<ClassModel>& models,
                    const SyntheticConfig& cfg,
                    const std::vector<size_t>& per_class,
                    std::vector<size_t>& labels, Rng& rng) {
  const size_t latent = LatentDim(cfg);
  size_t total = 0;
  for (size_t n : per_class) total += n;
  Matrix z(total, latent);
  labels.resize(total);

  size_t cursor = 0;
  for (size_t c = 0; c < cfg.num_classes; ++c) {
    const ClassModel& model = models[c];
    const size_t rank = model.factors.rows();
    for (size_t s = 0; s < per_class[c]; ++s) {
      float* row = z.row(cursor);
      const size_t mode =
          static_cast<size_t>(rng.NextIndex(model.modes.rows()));
      const float* mean = model.modes.row(mode);
      for (size_t j = 0; j < latent; ++j) {
        row[j] = mean[j] +
                 cfg.noise_sigma * static_cast<float>(rng.NextGaussian());
      }
      for (size_t r = 0; r < rank; ++r) {
        const float u = static_cast<float>(rng.NextGaussian());
        const float* f = model.factors.row(r);
        for (size_t j = 0; j < latent; ++j) row[j] += u * f[j];
      }
      labels[cursor] = c;
      ++cursor;
    }
  }
  LIGHTLT_CHECK_EQ(cursor, total);
  return z;
}

Matrix ApplyWarp(const Matrix& z, const WarpModel& warp,
                 const SyntheticConfig& cfg, Rng& rng) {
  Matrix x;
  if (warp.active) {
    Matrix hidden = z.MatMul(warp.w1);
    for (size_t i = 0; i < hidden.rows(); ++i) {
      float* r = hidden.row(i);
      for (size_t j = 0; j < hidden.cols(); ++j) {
        r[j] = std::tanh(r[j] + warp.b1[j]);
      }
    }
    x = hidden.MatMul(warp.w2);
  } else {
    x = z;
  }
  if (!warp.nuisance.empty()) {
    // Class-irrelevant factors: u B per sample.
    const size_t rank = warp.nuisance.rows();
    for (size_t i = 0; i < x.rows(); ++i) {
      float* r = x.row(i);
      for (size_t f = 0; f < rank; ++f) {
        const float u = static_cast<float>(rng.NextGaussian());
        const float* b = warp.nuisance.row(f);
        for (size_t j = 0; j < x.cols(); ++j) r[j] += u * b[j];
      }
    }
  }
  if (cfg.observation_noise > 0.0f) {
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] += cfg.observation_noise * static_cast<float>(rng.NextGaussian());
    }
  }
  return x;
}

Dataset SampleSplit(const std::vector<ClassModel>& models,
                    const WarpModel& warp, const SyntheticConfig& cfg,
                    const std::vector<size_t>& per_class, Rng& rng) {
  Dataset out;
  out.num_classes = cfg.num_classes;
  Matrix z = SampleLatent(models, cfg, per_class, out.labels, rng);
  out.features = ApplyWarp(z, warp, cfg, rng);

  // Shuffle rows so batches mix classes.
  const size_t total = out.labels.size();
  std::vector<size_t> perm(total);
  for (size_t i = 0; i < total; ++i) perm[i] = i;
  rng.Shuffle(perm);
  Matrix shuffled = out.features.GatherRows(perm);
  std::vector<size_t> shuffled_labels(total);
  for (size_t i = 0; i < total; ++i) shuffled_labels[i] = out.labels[perm[i]];
  out.features = std::move(shuffled);
  out.labels = std::move(shuffled_labels);
  return out;
}

}  // namespace

RetrievalBenchmark GenerateSynthetic(const SyntheticConfig& config) {
  LIGHTLT_CHECK_GT(config.num_classes, 1u);
  LIGHTLT_CHECK_EQ(config.train_spec.num_classes, config.num_classes);
  if (config.nonlinear_warp) {
    LIGHTLT_CHECK_GT(config.latent_dim, 0u);
  }

  Rng rng(config.seed);
  const auto models = MakeClassModels(config, rng);
  const WarpModel warp = MakeWarp(config, rng);

  RetrievalBenchmark bench;
  bench.name = config.name;

  const std::vector<size_t> train_sizes = LongTailClassSizes(config.train_spec);
  bench.train = SampleSplit(models, warp, config, train_sizes, rng);

  const std::vector<size_t> query_sizes(config.num_classes,
                                        config.queries_per_class);
  bench.query = SampleSplit(models, warp, config, query_sizes, rng);

  const std::vector<size_t> db_sizes(config.num_classes,
                                     config.database_per_class);
  bench.database = SampleSplit(models, warp, config, db_sizes, rng);

  return bench;
}

}  // namespace lightlt::data
