// Dataset persistence and interchange: a compact binary format for
// features+labels, and a TSV importer so externally extracted
// (ResNet/BERT/...) features can be used instead of the synthetic presets.

#ifndef LIGHTLT_DATA_DATA_IO_H_
#define LIGHTLT_DATA_DATA_IO_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace lightlt::data {

/// Writes a dataset (versioned binary; features as float32).
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& path);

/// Saves the full train/query/database triple into one file.
Status SaveBenchmark(const RetrievalBenchmark& bench, const std::string& path);

/// Loads a benchmark written by SaveBenchmark.
Result<RetrievalBenchmark> LoadBenchmark(const std::string& path);

/// Imports a TSV file: one row per item, `label \t f0 \t f1 \t ... \t fd-1`.
/// All rows must have the same dimensionality; labels must be non-negative
/// integers. `num_classes` is inferred as max(label)+1 unless overridden.
Result<Dataset> LoadTsv(const std::string& path, size_t num_classes = 0);

/// Exports a dataset in the same TSV layout (for inspection / plotting).
Status SaveTsv(const Dataset& dataset, const std::string& path);

}  // namespace lightlt::data

#endif  // LIGHTLT_DATA_DATA_IO_H_
