#include "src/data/presets.h"

#include "src/util/check.h"

namespace lightlt::data {

std::string PresetName(PresetId id) {
  switch (id) {
    case PresetId::kCifar100ish:
      return "Cifar100ish";
    case PresetId::kImageNet100ish:
      return "ImageNet100ish";
    case PresetId::kNcish:
      return "NCish";
    case PresetId::kQbaish:
      return "QBAish";
  }
  return "Unknown";
}

std::vector<PresetId> AllPresets() {
  return {PresetId::kCifar100ish, PresetId::kImageNet100ish, PresetId::kNcish,
          PresetId::kQbaish};
}

SyntheticConfig MakePresetConfig(PresetId id, double imbalance_factor,
                                 bool full_scale, uint64_t seed) {
  LIGHTLT_CHECK_GE(imbalance_factor, 1.0);
  SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.train_spec.imbalance_factor = imbalance_factor;
  cfg.train_spec.min_class_size = 2;

  switch (id) {
    case PresetId::kCifar100ish:
      // Table I: C=100, pi_1=500, N_query=10k, N_db=50k. Hardest dataset:
      // backbone was not pretrained on it -> lowest class separation.
      cfg.num_classes = 100;
      cfg.class_separation = 5.0f;
      cfg.nuisance_scale = 1.0f;
      cfg.modes_per_class = 2;
      cfg.noise_sigma = 1.0f;
      cfg.covariance_rank = 4;
      cfg.covariance_scale = 0.55f;
      if (full_scale) {
        cfg.feature_dim = 512;
        cfg.train_spec.head_size = 500;
        cfg.queries_per_class = 100;   // 10k queries
        cfg.database_per_class = 500;  // 50k database
      } else {
        cfg.feature_dim = 64;
        cfg.train_spec.head_size = 120;
        cfg.queries_per_class = 8;
        cfg.database_per_class = 40;
      }
      break;

    case PresetId::kImageNet100ish:
      // Table I: C=100, pi_1=1.3k, N_query=5k, N_db=130k. Backbone is
      // pretrained on the superset -> well-separated representations.
      cfg.num_classes = 100;
      cfg.class_separation = 14.0f;
      cfg.nuisance_scale = 1.0f;
      cfg.modes_per_class = 2;
      cfg.noise_sigma = 1.0f;
      cfg.covariance_rank = 4;
      cfg.covariance_scale = 0.5f;
      if (full_scale) {
        cfg.feature_dim = 512;
        cfg.train_spec.head_size = 1300;
        cfg.queries_per_class = 50;     // 5k queries
        cfg.database_per_class = 1300;  // 130k database
      } else {
        cfg.feature_dim = 64;
        cfg.train_spec.head_size = 150;
        cfg.queries_per_class = 8;
        cfg.database_per_class = 40;
      }
      break;

    case PresetId::kNcish:
      // Table I: C=10, pi_1=29k, N_query=2k, N_db=65k/72k. Few classes but
      // high within-class variance (text) -> moderate separation, strong
      // low-rank spread.
      cfg.num_classes = 10;
      cfg.class_separation = 2.5f;
      cfg.nuisance_scale = 1.0f;
      cfg.modes_per_class = 2;
      cfg.noise_sigma = 1.0f;
      cfg.covariance_rank = 8;
      cfg.covariance_scale = 0.8f;
      if (full_scale) {
        cfg.feature_dim = 768;
        cfg.train_spec.head_size = 29000;
        cfg.queries_per_class = 200;     // 2k queries
        cfg.database_per_class = 6500;   // 65k database
      } else {
        cfg.feature_dim = 64;
        cfg.train_spec.head_size = 700;
        cfg.queries_per_class = 60;
        cfg.database_per_class = 500;
      }
      break;

    case PresetId::kQbaish:
      // Table I: C=25, pi_1=10k, N_query=5k, N_db=636k/642k. Query data is
      // noisy (short queries) -> low separation; biggest database, used for
      // the efficiency study (Fig. 7).
      cfg.num_classes = 25;
      cfg.class_separation = 2.5f;
      cfg.nuisance_scale = 1.2f;
      cfg.modes_per_class = 2;
      cfg.noise_sigma = 1.0f;
      cfg.covariance_rank = 6;
      cfg.covariance_scale = 0.7f;
      if (full_scale) {
        cfg.feature_dim = 768;
        cfg.train_spec.head_size = 10000;
        cfg.queries_per_class = 200;      // 5k queries
        cfg.database_per_class = 25500;   // ~636k database
      } else {
        cfg.feature_dim = 64;
        cfg.train_spec.head_size = 500;
        cfg.queries_per_class = 30;
        cfg.database_per_class = 800;  // 20k database for Fig. 7 sweeps
      }
      break;
  }
  cfg.train_spec.num_classes = cfg.num_classes;
  cfg.name = PresetName(id);
  return cfg;
}

RetrievalBenchmark GeneratePreset(PresetId id, double imbalance_factor,
                                  bool full_scale, uint64_t seed) {
  return GenerateSynthetic(
      MakePresetConfig(id, imbalance_factor, full_scale, seed));
}

}  // namespace lightlt::data
