// Dataset presets mirroring Table I of the paper.
//
// Each preset exists at two scales:
//  * scaled (default): shrunk sizes/dimensions so a full benchmark harness
//    finishes in minutes on CPU;
//  * full: the exact Table I statistics (C, pi_1, N_query, N_db) with a
//    512-dim feature space standing in for the pretrained representations.
//
// The per-preset separation/noise knobs are calibrated so the *relative*
// difficulty ordering of the paper holds: ImageNet100 (pretrained on the
// superset, easiest) > NC > QBA > Cifar100.

#ifndef LIGHTLT_DATA_PRESETS_H_
#define LIGHTLT_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace lightlt::data {

/// The four evaluation datasets of the paper (Table I).
enum class PresetId {
  kCifar100ish,     ///< image-like, 100 classes, hard
  kImageNet100ish,  ///< image-like, 100 classes, easy (pretrained backbone)
  kNcish,           ///< text-like (Amazon News), 10 classes
  kQbaish,          ///< text-like (Amazon query), 25 classes, large database
};

/// Human-readable preset name, e.g. "Cifar100ish".
std::string PresetName(PresetId id);

/// All four presets in Table I order.
std::vector<PresetId> AllPresets();

/// Builds the generation config for a preset at the given imbalance factor
/// (the paper uses IF in {50, 100}).
SyntheticConfig MakePresetConfig(PresetId id, double imbalance_factor,
                                 bool full_scale = false,
                                 uint64_t seed = 0x11157);

/// Convenience: generate the benchmark directly.
RetrievalBenchmark GeneratePreset(PresetId id, double imbalance_factor,
                                  bool full_scale = false,
                                  uint64_t seed = 0x11157);

}  // namespace lightlt::data

#endif  // LIGHTLT_DATA_PRESETS_H_
