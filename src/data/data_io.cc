#include "src/data/data_io.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/log.h"
#include "src/util/io.h"

namespace lightlt::data {
namespace {

constexpr uint32_t kDatasetMagic = 0x4c54'4453;  // "LTDS"
constexpr uint32_t kBenchMagic = 0x4c54'4242;    // "LTBB"
// v1: no integrity data. v2: same layout + checksum footer, atomic write.
constexpr uint32_t kVersion = 2;

// Shared header/trailer handling for both dataset-family formats.
Status CheckHeader(BinaryReader& r, uint32_t want_magic,
                   const std::string& what, const std::string& path,
                   uint32_t* version) {
  const uint32_t magic = r.ReadU32();
  if (!r.status().ok()) return r.status();
  if (magic != want_magic) {
    return Status::IoError("not a " + what + " file: " + path);
  }
  *version = r.ReadU32();
  if (!r.status().ok()) return r.status();
  if (*version < 1 || *version > kVersion) {
    return Status::IoError("unsupported " + what + " version");
  }
  return Status::Ok();
}

Status CheckTrailer(BinaryReader& r, uint32_t version) {
  return version >= 2 ? r.VerifyFooter() : r.ExpectEof();
}

void WriteDatasetBody(BinaryWriter& w, const Dataset& dataset) {
  w.WriteU64(dataset.features.rows());
  w.WriteU64(dataset.features.cols());
  w.WriteU64(dataset.num_classes);
  w.WriteF32Vector(dataset.features.storage());
  std::vector<uint32_t> labels(dataset.labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<uint32_t>(dataset.labels[i]);
  }
  w.WriteU32Vector(labels);
}

Result<Dataset> ReadDatasetBody(BinaryReader& r) {
  const size_t rows = r.ReadU64();
  const size_t cols = r.ReadU64();
  const size_t num_classes = r.ReadU64();
  std::vector<float> features = r.ReadF32Vector();
  std::vector<uint32_t> labels = r.ReadU32Vector();
  if (!r.status().ok()) return r.status();
  // rows * cols can wrap for corrupt headers; divide instead of multiplying.
  if (rows != 0 && (cols == 0 || features.size() / rows != cols)) {
    return Status::IoError("dataset payload size mismatch");
  }
  if (features.size() != rows * cols || labels.size() != rows) {
    return Status::IoError("dataset payload size mismatch");
  }
  Dataset out;
  out.num_classes = num_classes;
  out.features = Matrix(rows, cols, std::move(features));
  out.labels.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    if (labels[i] >= num_classes) {
      return Status::IoError("dataset label out of range");
    }
    out.labels[i] = labels[i];
  }
  return out;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kDatasetMagic);
  w.WriteU32(kVersion);
  WriteDatasetBody(w, dataset);
  return w.Close();
}

Result<Dataset> LoadDataset(const std::string& path) {
  BinaryReader r(path);
  uint32_t version = 0;
  LIGHTLT_RETURN_IF_ERROR(
      CheckHeader(r, kDatasetMagic, "dataset", path, &version));
  auto body = ReadDatasetBody(r);
  if (!body.ok()) return body.status();
  LIGHTLT_RETURN_IF_ERROR(CheckTrailer(r, version));
  obs::Logger::Global().Log(obs::LogLevel::kDebug, "data_io",
                            "loaded dataset",
                            {{"path", path},
                             {"rows", body.value().size()},
                             {"dim", body.value().dim()},
                             {"classes", body.value().num_classes}});
  return body;
}

Status SaveBenchmark(const RetrievalBenchmark& bench,
                     const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kBenchMagic);
  w.WriteU32(kVersion);
  w.WriteString(bench.name);
  WriteDatasetBody(w, bench.train);
  WriteDatasetBody(w, bench.query);
  WriteDatasetBody(w, bench.database);
  return w.Close();
}

Result<RetrievalBenchmark> LoadBenchmark(const std::string& path) {
  BinaryReader r(path);
  uint32_t version = 0;
  LIGHTLT_RETURN_IF_ERROR(
      CheckHeader(r, kBenchMagic, "benchmark", path, &version));
  RetrievalBenchmark bench;
  bench.name = r.ReadString();
  auto train = ReadDatasetBody(r);
  if (!train.ok()) return train.status();
  bench.train = std::move(train).value();
  auto query = ReadDatasetBody(r);
  if (!query.ok()) return query.status();
  bench.query = std::move(query).value();
  auto database = ReadDatasetBody(r);
  if (!database.ok()) return database.status();
  bench.database = std::move(database).value();
  LIGHTLT_RETURN_IF_ERROR(CheckTrailer(r, version));
  obs::Logger::Global().Log(obs::LogLevel::kDebug, "data_io",
                            "loaded benchmark",
                            {{"path", path},
                             {"name", bench.name},
                             {"train_rows", bench.train.size()},
                             {"query_rows", bench.query.size()},
                             {"database_rows", bench.database.size()}});
  return bench;
}

Result<Dataset> LoadTsv(const std::string& path, size_t num_classes) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot open " + path);

  std::vector<float> values;
  std::vector<size_t> labels;
  size_t dim = 0;
  size_t max_label = 0;
  std::string line;
  char buf[1 << 16];
  size_t line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    line = buf;
    if (line.empty() || line[0] == '\n' || line[0] == '#') continue;

    const char* p = line.c_str();
    char* end = nullptr;
    const long label = std::strtol(p, &end, 10);
    if (end == p || label < 0) {
      std::fclose(f);
      return Status::IoError("bad label at line " + std::to_string(line_no));
    }
    labels.push_back(static_cast<size_t>(label));
    max_label = std::max(max_label, static_cast<size_t>(label));

    size_t row_dim = 0;
    p = end;
    for (;;) {
      while (*p == '\t' || *p == ' ') ++p;
      if (*p == '\0' || *p == '\n' || *p == '\r') break;
      const float v = std::strtof(p, &end);
      if (end == p) {
        std::fclose(f);
        return Status::IoError("bad feature at line " +
                               std::to_string(line_no));
      }
      values.push_back(v);
      ++row_dim;
      p = end;
    }
    if (dim == 0) {
      dim = row_dim;
    } else if (row_dim != dim) {
      std::fclose(f);
      return Status::IoError("inconsistent dimensionality at line " +
                             std::to_string(line_no));
    }
  }
  std::fclose(f);

  if (labels.empty() || dim == 0) {
    return Status::IoError("no data rows in " + path);
  }
  Dataset out;
  out.num_classes = num_classes == 0 ? max_label + 1 : num_classes;
  if (max_label >= out.num_classes) {
    return Status::InvalidArgument("label exceeds num_classes");
  }
  out.features = Matrix(labels.size(), dim, std::move(values));
  out.labels = std::move(labels);
  return out;
}

Status SaveTsv(const Dataset& dataset, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  for (size_t i = 0; i < dataset.size(); ++i) {
    std::fprintf(f, "%zu", dataset.labels[i]);
    const float* row = dataset.features.row(i);
    for (size_t j = 0; j < dataset.dim(); ++j) {
      std::fprintf(f, "\t%.6g", row[j]);
    }
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed");
  return Status::Ok();
}

}  // namespace lightlt::data
