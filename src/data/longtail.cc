#include "src/data/longtail.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace lightlt::data {

double ZipfExponent(size_t num_classes, double imbalance_factor) {
  LIGHTLT_CHECK_GT(num_classes, 1u);
  LIGHTLT_CHECK_GE(imbalance_factor, 1.0);
  return std::log(imbalance_factor) /
         std::log(static_cast<double>(num_classes));
}

std::vector<size_t> LongTailClassSizes(const LongTailSpec& spec) {
  const double p = ZipfExponent(spec.num_classes, spec.imbalance_factor);
  std::vector<size_t> sizes(spec.num_classes);
  for (size_t i = 0; i < spec.num_classes; ++i) {
    const double size =
        static_cast<double>(spec.head_size) *
        std::pow(static_cast<double>(i + 1), -p);
    sizes[i] = std::max(spec.min_class_size,
                        static_cast<size_t>(std::llround(size)));
  }
  return sizes;
}

double MeasuredImbalanceFactor(const std::vector<size_t>& sizes) {
  LIGHTLT_CHECK(!sizes.empty());
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());
  LIGHTLT_CHECK_GT(*min_it, 0u);
  return static_cast<double>(*max_it) / static_cast<double>(*min_it);
}

}  // namespace lightlt::data
