#include "src/serving/health.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "src/util/check.h"

namespace lightlt::serving {

const char* ReplicaHealthName(ReplicaHealth state) {
  switch (state) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDown:
      return "down";
    case ReplicaHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

ReplicaHealthMonitor::ReplicaHealthMonitor(size_t num_shards,
                                           size_t num_replicas,
                                           const HealthOptions& options)
    : num_shards_(num_shards), num_replicas_(num_replicas), options_(options) {
  LIGHTLT_CHECK(num_shards > 0);
  LIGHTLT_CHECK(num_replicas > 0);
  cells_.resize(num_shards * num_replicas);
}

double ReplicaHealthMonitor::Now() const {
  if (options_.clock) return options_.clock();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ReplicaHealthMonitor::Cell& ReplicaHealthMonitor::CellAt(size_t shard,
                                                         size_t replica) {
  return cells_[shard * num_replicas_ + replica];
}

const ReplicaHealthMonitor::Cell& ReplicaHealthMonitor::CellAt(
    size_t shard, size_t replica) const {
  return cells_[shard * num_replicas_ + replica];
}

void ReplicaHealthMonitor::MaybePromoteLocked(Cell* cell) const {
  if (cell->state != ReplicaHealth::kDown) return;
  if (Now() - cell->downed_at < options_.down_cooldown_seconds) return;
  cell->state = ReplicaHealth::kProbing;
  cell->success_streak = 0;
  cell->probes_in_flight = 0;
  ++transitions_;
}

void ReplicaHealthMonitor::ReleaseProbeLocked(Cell* cell) {
  if (cell->probes_in_flight > 0) --cell->probes_in_flight;
}

void ReplicaHealthMonitor::FailureSignalLocked(Cell* cell) {
  cell->success_streak = 0;
  ++cell->failure_streak;
  switch (cell->state) {
    case ReplicaHealth::kHealthy:
      if (cell->failure_streak >= options_.failures_to_suspect) {
        cell->state = ReplicaHealth::kSuspect;
        ++transitions_;
      }
      break;
    case ReplicaHealth::kSuspect:
      if (cell->failure_streak >= options_.failures_to_down) {
        cell->state = ReplicaHealth::kDown;
        cell->downed_at = Now();
        ++transitions_;
      }
      break;
    case ReplicaHealth::kProbing:
      // One failed probe sends the replica straight back to DOWN with a
      // fresh cooldown — the half-open re-open rule.
      cell->state = ReplicaHealth::kDown;
      cell->downed_at = Now();
      cell->failure_streak = std::max(cell->failure_streak,
                                      options_.failures_to_down);
      ++transitions_;
      break;
    case ReplicaHealth::kDown:
      // A straggler verdict from an attempt that began before the replica
      // went down; nothing further to demote.
      break;
  }
}

void ReplicaHealthMonitor::SuccessSignalLocked(Cell* cell) {
  cell->failure_streak = 0;
  ++cell->success_streak;
  switch (cell->state) {
    case ReplicaHealth::kSuspect:
    case ReplicaHealth::kProbing:
      if (cell->success_streak >= options_.successes_to_recover) {
        cell->state = ReplicaHealth::kHealthy;
        ++transitions_;
      }
      break;
    case ReplicaHealth::kHealthy:
    case ReplicaHealth::kDown:
      break;
  }
}

std::vector<size_t> ReplicaHealthMonitor::Candidates(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  // Preference order: healthy, then suspect, then probing; stable by
  // replica index within each class so failover is deterministic.
  std::vector<size_t> out;
  out.reserve(num_replicas_);
  for (const ReplicaHealth want :
       {ReplicaHealth::kHealthy, ReplicaHealth::kSuspect,
        ReplicaHealth::kProbing}) {
    for (size_t r = 0; r < num_replicas_; ++r) {
      Cell& cell = CellAt(shard, r);
      MaybePromoteLocked(&cell);
      if (cell.state == want) out.push_back(r);
    }
  }
  return out;
}

bool ReplicaHealthMonitor::BeginAttempt(size_t shard, size_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = CellAt(shard, replica);
  MaybePromoteLocked(&cell);
  switch (cell.state) {
    case ReplicaHealth::kHealthy:
    case ReplicaHealth::kSuspect:
      return true;
    case ReplicaHealth::kProbing:
      if (cell.probes_in_flight >= options_.probe_budget) return false;
      ++cell.probes_in_flight;
      return true;
    case ReplicaHealth::kDown:
      return false;
  }
  return false;
}

void ReplicaHealthMonitor::RecordSuccess(size_t shard, size_t replica,
                                         double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = CellAt(shard, replica);
  ReleaseProbeLocked(&cell);
  const bool slow = options_.slow_latency_seconds > 0.0 &&
                    latency_seconds > options_.slow_latency_seconds;
  if (slow) {
    FailureSignalLocked(&cell);
  } else {
    SuccessSignalLocked(&cell);
  }
}

void ReplicaHealthMonitor::RecordFailure(size_t shard, size_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = CellAt(shard, replica);
  ReleaseProbeLocked(&cell);
  FailureSignalLocked(&cell);
}

void ReplicaHealthMonitor::RecordTimeout(size_t shard, size_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  ++timeouts_;
  Cell& cell = CellAt(shard, replica);
  ReleaseProbeLocked(&cell);
  FailureSignalLocked(&cell);
}

void ReplicaHealthMonitor::RecordAbandoned(size_t shard, size_t replica) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = CellAt(shard, replica);
  ReleaseProbeLocked(&cell);
  // No verdict: streaks and state untouched, mirroring
  // CircuitBreaker::RecordAbandoned.
}

ReplicaHealth ReplicaHealthMonitor::state(size_t shard,
                                          size_t replica) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Cell& cell = CellAt(shard, replica);
  // Observers must see DOWN→PROBING as soon as the clock allows it.
  MaybePromoteLocked(const_cast<Cell*>(&cell));
  return cell.state;
}

bool ReplicaHealthMonitor::ShardServable(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t r = 0; r < num_replicas_; ++r) {
    const Cell& cell = CellAt(shard, r);
    MaybePromoteLocked(const_cast<Cell*>(&cell));
    if (cell.state != ReplicaHealth::kDown) return true;
  }
  return false;
}

uint64_t ReplicaHealthMonitor::transition_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

uint64_t ReplicaHealthMonitor::timeout_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeouts_;
}

void ReplicaHealthMonitor::InstrumentGauges(
    obs::MetricsRegistry* registry, const std::string& prefix,
    const std::shared_ptr<ReplicaHealthMonitor>& self) {
  LIGHTLT_CHECK(self.get() == this);
  for (size_t s = 0; s < num_shards_; ++s) {
    for (size_t r = 0; r < num_replicas_; ++r) {
      // Hand-built two-label name; WithLabel only composes a single label.
      const std::string name = prefix + "replica_health{shard=\"" +
                               std::to_string(s) + "\",replica=\"" +
                               std::to_string(r) + "\"}";
      registry->RegisterCallbackGauge(name, [self, s, r]() {
        return static_cast<double>(static_cast<int>(self->state(s, r)));
      });
    }
  }
  registry->RegisterCallbackGauge(
      prefix + "health_transitions_total",
      [self]() { return static_cast<double>(self->transition_count()); });
}

}  // namespace lightlt::serving
