// Sharded search building blocks (DESIGN.md §13).
//
// ReplicaSearcher is the single-partition search engine extracted from
// RetrievalService: a flat ADC index that always covers its partition, an
// optional IVF accelerator behind a CircuitBreaker, and the optional exact
// re-rank — with the same degradation ladder (breaker-gated IVF → flat
// fallback) and the same deterministic (distance, id) ordering. One
// RetrievalService owns exactly one; a ShardSet owns a grid of them.
//
// ShardSet partitions a database's rows into `num_shards` contiguous
// ranges and builds `num_replicas` independent ReplicaSearcher copies per
// shard, each with its own AdmissionController budget, so one hot or dead
// replica cannot take its siblings down. Search results come back in
// *global* database ids (partition offset + local id), ready for the
// Router's k-way merge. Per-replica chaos hooks (ChaosOnReplicaSearch)
// make kills, latency spikes and flap storms injectable per (shard,
// replica) pair.

#ifndef LIGHTLT_SERVING_SHARD_H_
#define LIGHTLT_SERVING_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/index/adc_index.h"
#include "src/index/ivf_index.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/admission.h"
#include "src/serving/circuit_breaker.h"
#include "src/tensor/matrix.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace lightlt::serving {

/// Per-searcher configuration, shared by the single-node service and every
/// cluster replica.
struct SearcherOptions {
  /// Candidate pool size fetched before re-ranking; 0 = exactly top_k.
  size_t rerank_pool = 0;
  /// Re-rank the candidate pool by exact distance to the reconstructions.
  bool exact_rerank = false;
  /// Use the IVF-accelerated index.
  bool use_ivf = false;
  index::IvfOptions ivf;
  /// Circuit breaker around the IVF path; irrelevant without use_ivf.
  CircuitBreakerOptions breaker;
};

/// One partition's breaker-gated search engine: flat ADC (always present),
/// optional IVF, optional exact re-rank. Moveable; not copyable.
class ReplicaSearcher {
 public:
  /// `embedded` is the partition's embedded vectors (rows of the database
  /// slice), `codebooks`/`codes` the DSQ artifacts for exactly those rows.
  static Result<ReplicaSearcher> Build(
      const Matrix& embedded, const std::vector<Matrix>& codebooks,
      const std::vector<std::vector<uint32_t>>& codes,
      const SearcherOptions& options);

  /// Candidate retrieval + rerank with graceful degradation: IVF behind
  /// the breaker, flat fallback on IVF failure/shortfall, deterministic
  /// (distance, id) order. `degraded` skips the optional work (IVF path,
  /// over-fetch, rerank). `used_fallback` (may be null) reports whether the
  /// flat scan served although IVF was enabled. Span names: ivf_route /
  /// adc_scan / rerank under `parent` when `trace` is non-null.
  Result<std::vector<index::SearchHit>> Search(const float* query,
                                               size_t top_k,
                                               const ScanControl& control,
                                               bool degraded,
                                               obs::Trace* trace,
                                               const obs::Span* parent,
                                               bool* used_fallback) const;

  /// Registers `{prefix}adc_*` / `{prefix}ivf_*` scan instruments. Call
  /// once after Build; the registry must outlive the searcher's scans.
  void InstrumentScans(obs::MetricsRegistry* registry,
                       const std::string& prefix);

  /// Counter bumped whenever the flat scan serves although IVF was enabled.
  /// The owner names it (the single-node service reuses its historical
  /// `serving_flat_fallbacks_total`; ShardSet registers one per replica).
  void set_flat_fallback_counter(obs::Counter* counter) {
    flat_fallbacks_ = counter;
  }

  size_t num_items() const { return adc_ ? adc_->num_items() : 0; }
  size_t dim() const { return adc_ ? adc_->dim() : 0; }
  size_t MemoryBytes() const;
  Matrix Reconstruct(size_t item) const { return adc_->Reconstruct(item); }
  bool has_ivf() const { return ivf_ != nullptr; }
  /// Null unless IVF is enabled. Shared so callback gauges can co-own it.
  const std::shared_ptr<CircuitBreaker>& breaker() const { return breaker_; }
  uint64_t flat_fallback_count() const {
    return flat_fallbacks_ ? flat_fallbacks_->Value() : 0;
  }

 private:
  ReplicaSearcher() = default;

  SearcherOptions options_;
  std::unique_ptr<index::AdcIndex> adc_;
  std::unique_ptr<index::IvfAdcIndex> ivf_;
  std::shared_ptr<CircuitBreaker> breaker_;  // null unless IVF enabled
  obs::Counter* flat_fallbacks_ = nullptr;   // null until instrumented
};

/// Configuration of a ShardSet grid.
struct ShardSetOptions {
  size_t num_shards = 1;
  size_t num_replicas = 1;
  SearcherOptions searcher;
  /// Per-replica admission budget (each replica gets its own controller,
  /// so a hot shard sheds without starving its siblings). Defaults admit
  /// everything.
  AdmissionOptions replica_admission;
};

/// Outcome of one replica search attempt, as the router needs to see it:
/// hits are in global database ids.
struct ReplicaAttempt {
  Status status;
  std::vector<index::SearchHit> hits;
  /// Seconds the attempt took (health latency signal).
  double latency_seconds = 0.0;
  /// The replica shed the request at its admission budget (kUnavailable
  /// with no health verdict about the replica's machinery).
  bool shed = false;
};

/// A grid of num_shards x num_replicas ReplicaSearchers over contiguous
/// row partitions of one embedded database.
class ShardSet {
 public:
  /// Partitions `embedded`/`codes` into contiguous shard ranges (the same
  /// floor-boundary split ParallelFor uses: shard s covers rows
  /// [s*n/S, (s+1)*n/S)) and builds every replica. All replicas of a shard
  /// hold independent index copies of the same partition.
  static Result<ShardSet> Build(const Matrix& embedded,
                                const std::vector<Matrix>& codebooks,
                                const std::vector<std::vector<uint32_t>>& codes,
                                const ShardSetOptions& options);

  /// One search attempt on (shard, replica): chaos hook → admission →
  /// breaker-gated search, local ids translated to global. Never throws;
  /// all failure modes land in ReplicaAttempt::status.
  ReplicaAttempt SearchReplica(size_t shard, size_t replica,
                               const float* query, size_t top_k,
                               const ScanControl& control,
                               obs::Trace* trace,
                               const obs::Span* parent) const;

  size_t num_shards() const { return options_.num_shards; }
  size_t num_replicas() const { return options_.num_replicas; }
  /// First global row id of `shard`'s partition.
  size_t shard_offset(size_t shard) const { return offsets_[shard]; }
  /// Number of database rows in `shard`'s partition.
  size_t shard_items(size_t shard) const {
    return offsets_[shard + 1] - offsets_[shard];
  }
  size_t total_items() const { return offsets_.back(); }
  size_t MemoryBytes() const;

  const ReplicaSearcher& searcher(size_t shard, size_t replica) const {
    return *replicas_[shard * options_.num_replicas + replica];
  }

  /// Registers per-replica instruments under
  /// `{prefix}s<shard>_r<replica>_...`.
  void Instrument(obs::MetricsRegistry* registry, const std::string& prefix);

 private:
  ShardSet() = default;

  ShardSetOptions options_;
  /// num_shards + 1 partition boundaries (offsets_[0] == 0).
  std::vector<size_t> offsets_;
  /// Row-major [shard * num_replicas + replica]. unique_ptr so the set is
  /// moveable while searchers stay address-stable.
  std::vector<std::unique_ptr<ReplicaSearcher>> replicas_;
  /// One admission controller per replica, same layout. shared_ptr so
  /// callback gauges may co-own them later.
  std::vector<std::shared_ptr<AdmissionController>> admissions_;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_SHARD_H_
