#include "src/serving/shard.h"

#include <algorithm>
#include <utility>

#include "src/util/chaos.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace lightlt::serving {
namespace {

/// Rerank hits checked this often against the request deadline/token.
constexpr size_t kRerankCheckEvery = 64;

obs::Span MaybeSpan(obs::Trace* trace, const char* name,
                    const obs::Span* parent) {
  if (trace == nullptr) return obs::Span();
  if (parent != nullptr) return trace->StartSpan(name, *parent);
  return trace->StartSpan(name);
}

}  // namespace

Result<ReplicaSearcher> ReplicaSearcher::Build(
    const Matrix& embedded, const std::vector<Matrix>& codebooks,
    const std::vector<std::vector<uint32_t>>& codes,
    const SearcherOptions& options) {
  if (embedded.rows() == 0) {
    return Status::InvalidArgument("ReplicaSearcher: empty partition");
  }
  if (embedded.rows() != codes.size()) {
    return Status::InvalidArgument(
        "ReplicaSearcher: embedded rows / codes count mismatch");
  }
  ReplicaSearcher searcher;
  searcher.options_ = options;
  if (options.use_ivf) {
    auto ivf =
        index::IvfAdcIndex::Build(embedded, codebooks, codes, options.ivf);
    if (!ivf.ok()) return ivf.status();
    searcher.ivf_ =
        std::make_unique<index::IvfAdcIndex>(std::move(ivf).value());
    searcher.breaker_ = std::make_shared<CircuitBreaker>(options.breaker);
  }
  // The flat ADC index is always kept: it serves re-ranking lookups
  // (Reconstruct) and is the fallback scan path.
  auto adc = index::AdcIndex::Build(codebooks, codes);
  if (!adc.ok()) return adc.status();
  searcher.adc_ = std::make_unique<index::AdcIndex>(std::move(adc).value());
  return searcher;
}

void ReplicaSearcher::InstrumentScans(obs::MetricsRegistry* registry,
                                      const std::string& prefix) {
  adc_->Instrument(registry, prefix + "adc_");
  if (ivf_ != nullptr) ivf_->Instrument(registry, prefix + "ivf_");
}

Result<std::vector<index::SearchHit>> ReplicaSearcher::Search(
    const float* query, size_t top_k, const ScanControl& control,
    bool degraded, obs::Trace* trace, const obs::Span* parent,
    bool* used_fallback) const {
  // Degraded requests shed the optional work: no over-fetch, no exact
  // rerank, and the flat scan instead of the IVF path.
  const bool rerank = options_.exact_rerank && !degraded;
  const size_t pool = std::max(top_k, rerank ? options_.rerank_pool : top_k);

  std::vector<index::SearchHit> hits;
  bool have_hits = false;
  if (ivf_ != nullptr && !degraded) {
    obs::Span ivf_span = MaybeSpan(trace, "ivf_route", parent);
    // Graceful degradation: the flat ADC index covers the whole partition,
    // so if the IVF path fails or its probed cells yield fewer candidates
    // than the flat scan would, fall back rather than fail or silently
    // shortchange the caller. Repeated failures open the breaker, which
    // routes straight to the flat scan until a cooldown probe succeeds.
    const size_t expected = std::min(pool, adc_->num_items());
    if (breaker_->AllowRequest()) {
      auto ivf_hits = ivf_->Search(query, pool, control, /*nprobe=*/0);
      if (ivf_hits.ok()) {
        if (ivf_hits.value().size() >= expected) {
          breaker_->RecordSuccess();
          hits = std::move(ivf_hits).value();
          have_hits = true;
        } else {
          breaker_->RecordFailure();  // shortfall
        }
      } else if (ivf_hits.status().code() == StatusCode::kDeadlineExceeded ||
                 ivf_hits.status().code() == StatusCode::kCancelled) {
        // The request ran out of budget mid-scan — that says nothing about
        // IVF health, so the breaker gets no verdict.
        breaker_->RecordAbandoned();
        return ivf_hits.status();
      } else {
        breaker_->RecordFailure();
      }
    }
    if (!have_hits) {
      if (flat_fallbacks_ != nullptr) flat_fallbacks_->Increment();
      if (used_fallback != nullptr) *used_fallback = true;
    }
  }
  if (!have_hits) {
    obs::Span scan_span = MaybeSpan(trace, "adc_scan", parent);
    auto flat = adc_->Search(query, pool, control);
    if (!flat.ok()) return flat.status();
    hits = std::move(flat).value();
  }

  if (rerank) {
    obs::Span rerank_span = MaybeSpan(trace, "rerank", parent);
    // Re-rank the pool by exact distance to the reconstructions: the ADC
    // score already is that distance up to a query-constant, so re-ranking
    // only matters when the candidate pool came from a lossier path (IVF
    // probing) or a future approximate scorer; it is cheap either way.
    const size_t d = adc_->dim();
    for (size_t i = 0; i < hits.size(); ++i) {
      if (i % kRerankCheckEvery == 0 && !control.Trivial()) {
        LIGHTLT_RETURN_IF_ERROR(control.Check());
      }
      auto& hit = hits[i];
      const Matrix recon = adc_->Reconstruct(hit.id);
      float dist = 0.0f;
      for (size_t j = 0; j < d; ++j) {
        const float diff = query[j] - recon[j];
        dist += diff * diff;
      }
      hit.distance = dist;
    }
    std::sort(hits.begin(), hits.end(),
              [](const index::SearchHit& a, const index::SearchHit& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.id < b.id);
              });
  }

  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

size_t ReplicaSearcher::MemoryBytes() const {
  size_t bytes = adc_ ? adc_->MemoryBytes() : 0;
  if (ivf_) bytes += ivf_->MemoryBytes();
  return bytes;
}

Result<ShardSet> ShardSet::Build(
    const Matrix& embedded, const std::vector<Matrix>& codebooks,
    const std::vector<std::vector<uint32_t>>& codes,
    const ShardSetOptions& options) {
  const size_t n = embedded.rows();
  const size_t shards = options.num_shards;
  if (shards == 0 || options.num_replicas == 0) {
    return Status::InvalidArgument(
        "ShardSet: need at least one shard and one replica");
  }
  if (n < shards) {
    return Status::InvalidArgument(
        "ShardSet: fewer database rows than shards");
  }
  if (codes.size() != n) {
    return Status::InvalidArgument(
        "ShardSet: embedded rows / codes count mismatch");
  }

  ShardSet set;
  set.options_ = options;
  // Contiguous floor-boundary partition, the same deterministic split
  // ParallelFor uses: shard s covers [s*n/S, (s+1)*n/S).
  set.offsets_.resize(shards + 1);
  for (size_t s = 0; s <= shards; ++s) set.offsets_[s] = (n * s) / shards;

  set.replicas_.reserve(shards * options.num_replicas);
  set.admissions_.reserve(shards * options.num_replicas);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = set.offsets_[s];
    const size_t rows = set.offsets_[s + 1] - begin;
    Matrix part(rows, embedded.cols());
    std::copy(embedded.row(begin), embedded.row(begin) + rows * embedded.cols(),
              part.data());
    const std::vector<std::vector<uint32_t>> part_codes(
        codes.begin() + static_cast<ptrdiff_t>(begin),
        codes.begin() + static_cast<ptrdiff_t>(begin + rows));
    for (size_t r = 0; r < options.num_replicas; ++r) {
      // Replicas are deliberately independent copies — index, breaker and
      // admission budget — so per-replica failure injection and health
      // verdicts model real isolated processes.
      auto searcher =
          ReplicaSearcher::Build(part, codebooks, part_codes, options.searcher);
      if (!searcher.ok()) return searcher.status();
      set.replicas_.push_back(std::make_unique<ReplicaSearcher>(
          std::move(searcher).value()));
      set.admissions_.push_back(
          std::make_shared<AdmissionController>(options.replica_admission));
    }
  }
  return set;
}

ReplicaAttempt ShardSet::SearchReplica(size_t shard, size_t replica,
                                       const float* query, size_t top_k,
                                       const ScanControl& control,
                                       obs::Trace* trace,
                                       const obs::Span* parent) const {
  LIGHTLT_CHECK(shard < options_.num_shards);
  LIGHTLT_CHECK(replica < options_.num_replicas);
  const size_t flat = shard * options_.num_replicas + replica;
  ReplicaAttempt attempt;
  WallTimer timer;

  // Chaos first: a killed replica fails every request before its admission
  // or index sees it, exactly like a dead process behind a socket.
  Status chaos = ChaosOnReplicaSearch(shard, replica);
  if (!chaos.ok()) {
    attempt.latency_seconds = timer.ElapsedSeconds();
    attempt.status = std::move(chaos);
    return attempt;
  }
  // Entry budget check: a small partition's scan may finish inside one
  // chunk without ever polling the control, so an attempt that burned its
  // sub-deadline in the chaos hook (an injected latency spike standing in
  // for a slow network or replica) must observe the expiry here.
  if (!control.Trivial()) {
    Status entry = control.Check();
    if (!entry.ok()) {
      attempt.latency_seconds = timer.ElapsedSeconds();
      attempt.status = std::move(entry);
      return attempt;
    }
  }

  const AdmissionOutcome outcome = admissions_[flat]->TryAdmit();
  if (outcome == AdmissionOutcome::kShed) {
    attempt.latency_seconds = timer.ElapsedSeconds();
    attempt.shed = true;
    attempt.status =
        Status::Unavailable("ShardSet: replica admission shed the request");
    return attempt;
  }
  AdmissionTicket ticket(admissions_[flat].get());
  const bool degraded = outcome == AdmissionOutcome::kDegrade;

  auto result = replicas_[flat]->Search(query, top_k, control, degraded,
                                        trace, parent,
                                        /*used_fallback=*/nullptr);
  attempt.latency_seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    attempt.status = result.status();
    return attempt;
  }
  attempt.hits = std::move(result).value();
  // Local partition ids → global database ids.
  const uint32_t offset = static_cast<uint32_t>(offsets_[shard]);
  for (index::SearchHit& hit : attempt.hits) hit.id += offset;
  return attempt;
}

size_t ShardSet::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& replica : replicas_) bytes += replica->MemoryBytes();
  return bytes;
}

void ShardSet::Instrument(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  for (size_t s = 0; s < options_.num_shards; ++s) {
    for (size_t r = 0; r < options_.num_replicas; ++r) {
      ReplicaSearcher* searcher = replicas_[s * options_.num_replicas + r].get();
      const std::string replica_prefix =
          prefix + "s" + std::to_string(s) + "_r" + std::to_string(r) + "_";
      searcher->InstrumentScans(registry, replica_prefix);
      searcher->set_flat_fallback_counter(
          registry->GetCounter(replica_prefix + "flat_fallbacks_total"));
    }
  }
}

}  // namespace lightlt::serving
