// Admission control for RetrievalService (DESIGN.md §9): bounded in-flight
// occupancy, observed-backlog shedding and a token-bucket rate limiter,
// with a configurable soft-overload response (reject vs. serve degraded).
//
// Decision ladder, evaluated per request in this order:
//   1. token bucket empty            → shed (kUnavailable) — rate pressure
//   2. in_flight >= max_in_flight    → shed — hard occupancy cap
//   3. backlog > max_queue_depth     → soft overload
//   4. in_flight >= degrade_in_flight→ soft overload
// Soft overload resolves per `on_overload`: kShed rejects, kDegrade admits
// the request in degraded mode (the service then drops exact re-ranking,
// shrinks the rerank pool to top_k and forces the flat scan path).
//
// Thread-safe; the token-bucket clock is injectable for deterministic
// tests.

#ifndef LIGHTLT_SERVING_ADMISSION_H_
#define LIGHTLT_SERVING_ADMISSION_H_

#include <cstddef>
#include <functional>
#include <mutex>

namespace lightlt::serving {

struct AdmissionOptions {
  /// Hard cap on concurrently admitted requests; at the cap new requests
  /// are shed (0 = unlimited).
  size_t max_in_flight = 0;
  /// Soft cap: at or above this many in-flight requests, new requests are
  /// soft-overloaded (0 = off). Meaningful only below max_in_flight.
  size_t degrade_in_flight = 0;
  /// Observed executor backlog (e.g. ThreadPool::ApproxQueueDepth())
  /// above which new requests are soft-overloaded (0 = off).
  size_t max_queue_depth = 0;
  /// Token-bucket rate limit: sustained requests/second and burst size
  /// (rate 0 = unlimited; burst tokens accrue up to `burst`).
  double rate_per_second = 0.0;
  double burst = 1.0;
  enum class OverloadPolicy { kShed, kDegrade };
  OverloadPolicy on_overload = OverloadPolicy::kShed;
  /// Injectable monotonic clock (seconds); defaults to the steady clock.
  std::function<double()> clock;
};

enum class AdmissionOutcome {
  kAdmit,    // serve at full quality
  kDegrade,  // serve, but shed optional work (rerank, IVF)
  kShed,     // reject with kUnavailable
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Decides one request's fate. `observed_queue_depth` is the caller's
  /// view of executor backlog (0 when it has none). kAdmit/kDegrade count
  /// against in-flight and MUST be paired with Release(); kShed must not.
  AdmissionOutcome TryAdmit(size_t observed_queue_depth = 0);

  /// One admitted (or degraded-admitted) request finished.
  void Release();

  size_t InFlight() const;

 private:
  double Now() const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  size_t in_flight_ = 0;
  double tokens_ = 0.0;
  double last_refill_ = 0.0;
  bool bucket_started_ = false;
};

/// RAII pairing for TryAdmit: releases the slot on destruction. Only
/// meaningful for kAdmit/kDegrade outcomes.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  void Release() {
    if (controller_ != nullptr) {
      controller_->Release();
      controller_ = nullptr;
    }
  }

 private:
  AdmissionController* controller_ = nullptr;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_ADMISSION_H_
