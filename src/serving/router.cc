#include "src/serving/router.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "src/core/pipeline.h"
#include "src/obs/profile.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace lightlt::serving {
namespace {

bool AllFinite(const Matrix& m) {
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

obs::Span MaybeSpan(obs::Trace* trace, const std::string& name,
                    const obs::Span* parent) {
  if (trace == nullptr) return obs::Span();
  if (parent != nullptr) return trace->StartSpan(name, *parent);
  return trace->StartSpan(name);
}

}  // namespace

Router::Router(std::shared_ptr<const SearchTransport> transport,
               std::shared_ptr<ReplicaHealthMonitor> health,
               const RouterOptions& options)
    : transport_(std::move(transport)),
      health_(std::move(health)),
      options_(options) {
  LIGHTLT_CHECK(transport_ != nullptr);
  LIGHTLT_CHECK(health_ != nullptr);
  LIGHTLT_CHECK(health_->num_shards() == transport_->num_shards());
  LIGHTLT_CHECK(health_->num_replicas() == transport_->num_replicas());
  if (options_.max_attempts_per_shard < 1) options_.max_attempts_per_shard = 1;
  if (options_.min_attempt_budget_seconds < 0.0) {
    options_.min_attempt_budget_seconds = 0.0;
  }
}

Router::Router(std::shared_ptr<const ShardSet> shards,
               std::shared_ptr<ReplicaHealthMonitor> health,
               const RouterOptions& options)
    : Router(std::make_shared<LocalShardTransport>(std::move(shards)), health,
             options) {}

Router::ShardOutcome Router::SearchShard(size_t shard, const float* query,
                                         size_t top_k,
                                         const Deadline& deadline,
                                         const CancellationToken& cancel,
                                         obs::Trace* trace,
                                         const obs::Span* parent) const {
  ShardOutcome outcome;
  obs::ProfilePhase shard_phase("shard_search");
  obs::Span shard_span =
      MaybeSpan(trace, "shard_" + std::to_string(shard), parent);
  const obs::Span* shard_parent = trace ? &shard_span : nullptr;

  // Every failover verdict is logged with the request's trace id, so a
  // stitched trace dump and the router's log lines join by grep
  // (trace_id=0000... on untraced requests).
  const uint64_t trace_id = trace != nullptr ? trace->trace_id() : 0;
  auto log_verdict = [&](const char* verdict, size_t replica,
                         const Status& s) {
    if (options_.logger == nullptr) return;
    options_.logger->Log(
        obs::LogLevel::kWarn, "router", "replica attempt failed",
        {obs::LogField("trace_id", obs::TraceIdHex(trace_id)),
         obs::LogField("shard", static_cast<uint64_t>(shard)),
         obs::LogField("replica", static_cast<uint64_t>(replica)),
         obs::LogField("verdict", verdict),
         obs::LogField("code", Status::CodeName(s.code())),
         obs::LogField("error", s.message())});
  };

  const std::vector<size_t> candidates = health_->Candidates(shard);
  if (candidates.empty()) {
    outcome.status =
        Status::Unavailable("router: every replica of the shard is down");
    return outcome;
  }
  const uint32_t max_attempts = static_cast<uint32_t>(
      std::min<size_t>(static_cast<size_t>(options_.max_attempts_per_shard),
                       candidates.size()));

  const ScanControl request_budget{deadline, cancel};
  Status last = Status::Unavailable("router: all replica attempts failed");
  for (size_t i = 0;
       i < candidates.size() && outcome.attempts < max_attempts; ++i) {
    Status budget = request_budget.Check();
    if (!budget.ok()) {
      outcome.status = std::move(budget);
      return outcome;
    }
    const size_t replica = candidates[i];

    // Sub-deadline: an even split of the remaining request budget over the
    // attempts still allowed, so the first attempt leaves room for a
    // failover and the last one gets everything that is left. Computed
    // before the attempt slot is claimed: a zero-or-near-zero slice cannot
    // finish any scan, so dispatching it would only charge the replica a
    // bogus timeout verdict (and, over a remote transport, burn a wire
    // round trip) — fail fast instead.
    Deadline sub = deadline;
    if (!deadline.IsInfinite()) {
      const uint32_t attempts_left = max_attempts - outcome.attempts;
      const double budget = std::max(0.0, deadline.RemainingSeconds()) /
                            static_cast<double>(attempts_left);
      if (budget <= options_.min_attempt_budget_seconds) {
        outcome.status = Status::DeadlineExceeded(
            "router: no budget left for a replica attempt");
        return outcome;
      }
      sub = Deadline::After(budget);
    }

    // A denied claim (probe budget exhausted, or the replica raced to DOWN
    // since Candidates ran) consumes no attempt: move to the next candidate.
    if (!health_->BeginAttempt(shard, replica)) continue;
    ++outcome.attempts;
    const ScanControl control{sub, cancel, options_.scan_check_every};
    ReplicaAttempt attempt = transport_->SearchReplica(
        shard, replica, query, top_k, control, trace, shard_parent);

    if (attempt.status.ok()) {
      // Health still hears about slow successes (slow_latency_seconds);
      // the hits are served either way — they arrived inside the budget.
      health_->RecordSuccess(shard, replica, attempt.latency_seconds);
      outcome.status = Status::Ok();
      outcome.hits = std::move(attempt.hits);
      return outcome;
    }
    switch (attempt.status.code()) {
      case StatusCode::kCancelled:
        // The caller pulled the plug — no verdict about the replica.
        health_->RecordAbandoned(shard, replica);
        outcome.status = std::move(attempt.status);
        return outcome;
      case StatusCode::kDeadlineExceeded:
        if (!deadline.Expired()) {
          // The sub-deadline fired while the request still has budget: the
          // replica was too slow to answer in its share — a timeout signal,
          // and grounds to fail over.
          health_->RecordTimeout(shard, replica);
          log_verdict("timeout", replica, attempt.status);
          ++outcome.timeouts;
          last = std::move(attempt.status);
          break;
        }
        // The request's own budget is gone; the replica was never really
        // given a chance.
        health_->RecordAbandoned(shard, replica);
        outcome.status = std::move(attempt.status);
        return outcome;
      default:
        // Error or admission shed — both count against the replica.
        health_->RecordFailure(shard, replica);
        log_verdict("failure", replica, attempt.status);
        last = std::move(attempt.status);
        break;
    }
  }
  if (options_.logger != nullptr && !last.ok()) {
    options_.logger->Log(
        obs::LogLevel::kWarn, "router", "shard exhausted its replicas",
        {obs::LogField("trace_id", obs::TraceIdHex(trace_id)),
         obs::LogField("shard", static_cast<uint64_t>(shard)),
         obs::LogField("attempts", static_cast<uint64_t>(outcome.attempts)),
         obs::LogField("code", Status::CodeName(last.code()))});
  }
  outcome.status = std::move(last);
  return outcome;
}

RoutedResult Router::Search(const float* query, size_t top_k,
                            const Deadline& deadline,
                            const CancellationToken& cancel,
                            obs::Trace* trace,
                            const obs::Span* parent) const {
  const size_t num_shards = transport_->num_shards();
  RoutedResult result;
  result.shard_status.resize(num_shards);

  obs::Span router_span = MaybeSpan(trace, "router", parent);
  const obs::Span* router_parent = trace ? &router_span : nullptr;

  // Scatter: one task per shard. Each task observes the request deadline
  // internally (sub-deadlines bound every attempt), so a plain Wait()
  // returns promptly after expiry — at most one chunk of scan work late.
  std::vector<ShardOutcome> outcomes(num_shards);
  {
    obs::ProfilePhase scatter_phase("router_scatter");
    TaskGroup group(options_.pool);
    for (size_t s = 0; s < num_shards; ++s) {
      group.Submit([&, s] {
        try {
          outcomes[s] = SearchShard(s, query, top_k, deadline, cancel, trace,
                                    router_parent);
        } catch (const std::exception& e) {
          outcomes[s].status = Status::Internal(
              std::string("router: shard task failed: ") + e.what());
        } catch (...) {
          outcomes[s].status = Status::Internal("router: shard task failed");
        }
      });
    }
    group.Wait();
  }

  // Gather: successful shards contribute hits and coverage; failed shards
  // contribute their status to the terminal verdict.
  obs::ProfilePhase merge_phase("router_merge");
  std::vector<index::SearchHit> merged;
  size_t covered = 0;
  bool saw_expired = false;
  bool saw_cancelled = false;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardOutcome& outcome = outcomes[s];
    result.shard_status[s] = outcome.status;
    if (outcome.attempts > 0) result.failovers += outcome.attempts - 1;
    result.timeouts += outcome.timeouts;
    if (outcome.status.ok()) {
      ++result.shards_answered;
      covered += transport_->shard_items(s);
      merged.insert(merged.end(), outcome.hits.begin(), outcome.hits.end());
    } else if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
      saw_expired = true;
    } else if (outcome.status.code() == StatusCode::kCancelled) {
      saw_cancelled = true;
    }
  }
  const size_t total = transport_->total_items();
  result.coverage =
      total == 0 ? 0.0
                 : static_cast<double>(covered) / static_cast<double>(total);

  if (result.shards_answered > 0 &&
      result.coverage >= options_.quorum_coverage) {
    // Deterministic k-way merge: each shard's local top-k is already a
    // superset of its contribution to the global top-k, so one exact
    // (distance, id) sort over the union reproduces the single-shard order
    // bit for bit.
    std::sort(merged.begin(), merged.end(),
              [](const index::SearchHit& a, const index::SearchHit& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.id < b.id);
              });
    if (merged.size() > top_k) merged.resize(top_k);
    result.hits = std::move(merged);
    result.status = Status::Ok();
    return result;
  }
  // Below quorum. The caller's own lifecycle signals outrank a generic
  // unavailability verdict: cancel is the explicit stop request (same
  // precedence as ScanControl::Check), then the deadline.
  if (saw_cancelled) {
    result.status = Status::Cancelled("router: request cancelled");
  } else if (saw_expired) {
    result.status =
        Status::DeadlineExceeded("router: request deadline exceeded");
  } else {
    result.status = Status::Unavailable(
        "router: coverage below quorum, too many shards unavailable");
  }
  return result;
}

void MaybeCaptureSlowQuery(obs::SlowQueryLog* log, const RoutedResult& routed,
                           double elapsed_seconds, const obs::Trace* trace) {
  if (log == nullptr || log->options().latency_threshold_seconds <= 0.0 ||
      elapsed_seconds < log->options().latency_threshold_seconds) {
    return;
  }
  obs::SlowQueryRecord record;
  record.kind = "latency";
  record.outcome =
      routed.status.ok() ? "ok" : Status::CodeName(routed.status.code());
  record.trace_id = trace != nullptr ? trace->trace_id() : 0;
  record.latency_seconds = elapsed_seconds;
  record.explain.coverage = routed.coverage;
  record.explain.shards_answered = routed.shards_answered;
  record.explain.failovers = routed.failovers;
  // The request's root span is typically still open here; closed child
  // spans — including stitched remote subtrees with shard attribution —
  // carry the useful timing.
  if (trace != nullptr) record.spans = trace->Records();
  log->Add(std::move(record));
}

void ClusterService::Instruments::Register(obs::MetricsRegistry* registry,
                                           const std::string& prefix) {
  const std::string requests = prefix + "requests_total";
  served = registry->GetCounter(obs::WithLabel(requests, "outcome", "served"));
  partial =
      registry->GetCounter(obs::WithLabel(requests, "outcome", "partial"));
  shed = registry->GetCounter(obs::WithLabel(requests, "outcome", "shed"));
  expired =
      registry->GetCounter(obs::WithLabel(requests, "outcome", "expired"));
  cancelled =
      registry->GetCounter(obs::WithLabel(requests, "outcome", "cancelled"));
  failed = registry->GetCounter(obs::WithLabel(requests, "outcome", "failed"));
  failovers = registry->GetCounter(prefix + "failovers_total");
  timeouts = registry->GetCounter(prefix + "timeouts_total");
  coverage = registry->GetHistogram(prefix + "coverage");
  const std::string latency = prefix + "latency_seconds";
  latency_served =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "served"));
  latency_failed =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "error"));
}

Result<ClusterService> ClusterService::Build(
    std::shared_ptr<const core::LightLtModel> model,
    const Matrix& db_features, const ClusterOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("ClusterService: null model");
  }
  if (db_features.rows() == 0) {
    return Status::InvalidArgument("ClusterService: empty database");
  }
  if (db_features.cols() != model->config().input_dim) {
    return Status::InvalidArgument(
        "ClusterService: database feature dim mismatch");
  }
  if (options.router.quorum_coverage < 0.0 ||
      options.router.quorum_coverage > 1.0) {
    return Status::InvalidArgument(
        "ClusterService: quorum_coverage must be in [0, 1]");
  }
  // Same artifact validation as the single-node service: a damaged model or
  // a NaN database must be rejected at Build, not discovered as garbage
  // neighbours in production.
  for (const auto& p : model->Parameters()) {
    if (!AllFinite(p->value())) {
      return Status::FailedPrecondition(
          "ClusterService: model has non-finite weights");
    }
  }
  const size_t embed_dim = model->config().embed_dim;
  for (const Matrix& cb : model->Codebooks()) {
    if (cb.cols() != embed_dim) {
      return Status::FailedPrecondition(
          "ClusterService: codebook/embedding dim mismatch");
    }
  }
  if (!AllFinite(db_features)) {
    return Status::InvalidArgument(
        "ClusterService: database features contain NaN/Inf");
  }

  ClusterService service;
  service.options_ = options;
  service.model_ = model;
  service.metrics_ = options.metrics
                         ? options.metrics
                         : std::make_shared<obs::MetricsRegistry>();
  service.inst_.Register(service.metrics_.get(), options.metric_prefix);
  if (options.slow_query.latency_threshold_seconds > 0.0) {
    service.slow_log_ = std::make_shared<obs::SlowQueryLog>(options.slow_query);
  }

  const Matrix embedded = core::EmbedInChunks(*model, db_features);
  std::vector<std::vector<uint32_t>> codes;
  model->dsq().Encode(embedded, &codes);

  ShardSetOptions shard_options;
  shard_options.num_shards = options.num_shards;
  shard_options.num_replicas = options.num_replicas;
  shard_options.searcher = options.searcher;
  shard_options.replica_admission = options.replica_admission;
  auto shards =
      ShardSet::Build(embedded, model->Codebooks(), codes, shard_options);
  if (!shards.ok()) return shards.status();
  auto shard_set = std::make_shared<ShardSet>(std::move(shards).value());
  shard_set->Instrument(service.metrics_.get(), options.metric_prefix);
  service.shards_ = shard_set;

  service.health_ = std::make_shared<ReplicaHealthMonitor>(
      options.num_shards, options.num_replicas, options.health);
  service.health_->InstrumentGauges(service.metrics_.get(),
                                    options.metric_prefix, service.health_);

  service.router_ = std::make_unique<Router>(service.shards_, service.health_,
                                             options.router);
  return service;
}

Result<ClusterResponse> ClusterService::Query(const Matrix& features,
                                              size_t top_k) const {
  return Query(features, top_k, RequestOptions{});
}

Result<ClusterResponse> ClusterService::Query(
    const Matrix& features, size_t top_k,
    const RequestOptions& request) const {
  if (features.rows() != 1 ||
      features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("Query: expected a 1 x input_dim vector");
  }
  if (!AllFinite(features)) {
    return Status::InvalidArgument("Query: features contain NaN/Inf");
  }
  WallTimer timer;
  // Slow-query capture needs the stitched span tree even when the caller
  // did not opt into tracing, so an internal per-call trace stands in
  // (same pattern as RetrievalService).
  obs::Trace internal_trace;
  obs::Trace* trace = request.trace;
  if (slow_log_ != nullptr && trace == nullptr) trace = &internal_trace;
  obs::Span query_span = MaybeSpan(trace, "cluster_query", nullptr);
  const obs::Span* query_parent = trace ? &query_span : nullptr;
  Matrix embedded;
  {
    obs::Span embed_span = MaybeSpan(trace, "embed", query_parent);
    embedded = model_->Embed(features);
  }
  const RoutedResult routed =
      router_->Search(embedded.row(0), top_k, request.deadline, request.cancel,
                      trace, query_parent);
  const double elapsed = timer.ElapsedSeconds();
  MaybeCaptureSlowQuery(slow_log_.get(), routed, elapsed, trace);
  inst_.failovers->Increment(routed.failovers);
  inst_.timeouts->Increment(routed.timeouts);
  if (routed.status.ok()) {
    if (routed.coverage < 1.0) {
      inst_.partial->Increment();
    } else {
      inst_.served->Increment();
    }
    inst_.coverage->Record(routed.coverage);
    inst_.latency_served->Record(elapsed);
    ClusterResponse response;
    response.coverage = routed.coverage;
    response.shards_answered = routed.shards_answered;
    response.failovers = routed.failovers;
    response.hits.reserve(routed.hits.size());
    for (const index::SearchHit& hit : routed.hits) {
      response.hits.push_back({hit.id, hit.distance});
    }
    return response;
  }
  switch (routed.status.code()) {
    case StatusCode::kUnavailable:
      inst_.shed->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      inst_.expired->Increment();
      break;
    case StatusCode::kCancelled:
      inst_.cancelled->Increment();
      break;
    default:
      inst_.failed->Increment();
      break;
  }
  inst_.latency_failed->Record(elapsed);
  return routed.status;
}

ClusterStats ClusterService::Stats() const {
  ClusterStats s;
  s.served = inst_.served->Value();
  s.partial = inst_.partial->Value();
  s.shed = inst_.shed->Value();
  s.expired = inst_.expired->Value();
  s.cancelled = inst_.cancelled->Value();
  s.failed = inst_.failed->Value();
  s.failovers = inst_.failovers->Value();
  s.timeouts = inst_.timeouts->Value();
  s.health_transitions = health_->transition_count();
  s.coverage = inst_.coverage->Snapshot();
  return s;
}

}  // namespace lightlt::serving
