// Shadow verification of served queries (DESIGN.md §11).
//
// A ShadowVerifier re-runs a deterministic, seeded fraction of served
// queries against the exact FlatIndex over the embedded database —
// asynchronously, on the serving thread pool — and feeds a streaming
// recall@k estimator segmented by head/mid/tail class bucket. This turns
// "is the compressed index still good?" from an offline eval question into
// a live gauge with a Wilson confidence interval.
//
// Cost model: a shadow task is one exact O(nd) scan. At sample rate r the
// added load is r * (flat cost / served cost) of the serving budget;
// `max_in_flight` strictly bounds queued shadow work so a pool stall can
// never pile up unbounded copies (overflow is skipped and counted, the
// estimator stays unbiased because selection is decided before the budget
// check). Shadow tasks bypass admission entirely — they are background
// work on the pool, not requests.

#ifndef LIGHTLT_SERVING_SHADOW_H_
#define LIGHTLT_SERVING_SHADOW_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/index/flat_index.h"
#include "src/obs/metrics.h"
#include "src/obs/quality.h"
#include "src/tensor/matrix.h"
#include "src/util/threadpool.h"

namespace lightlt::serving {

struct ShadowOptions {
  /// Fraction of served queries to shadow-verify; 0 disables, 1 verifies
  /// every query. Selection is a pure function of (seed, query ordinal),
  /// so runs are reproducible.
  double sample_rate = 0.0;
  uint64_t seed = 0x51ad0u;
  /// Hard cap on shadow tasks queued or running at once. At the cap a
  /// selected query is skipped (counted), never enqueued.
  size_t max_in_flight = 4;
  /// k of the recall@k estimate; also how many served ids are compared.
  size_t recall_k = 10;
  /// Pool for the asynchronous exact scans; null runs them inline on the
  /// serving thread (deterministic — used by tests). Must outlive the
  /// verifier.
  ThreadPool* pool = nullptr;
  /// Optional head/mid/tail segmentation: per-database-item class label
  /// plus per-class training counts (eval::HeadMidTailBuckets). A query is
  /// bucketed by its exact top-1 neighbour's class. Leave empty to pool
  /// every query into the overall segment.
  std::vector<size_t> db_labels;
  std::vector<size_t> class_counts;
  /// Per-query recall at/below this counts as a recall miss (counted and
  /// reported via on_recall_miss); 0 disables.
  double recall_miss_threshold = 0.0;
  /// Invoked from the shadow task (pool thread) for each recall miss.
  std::function<void(double recall, uint64_t successes, uint64_t trials)>
      on_recall_miss;
};

/// Owns the exact oracle index and the streaming estimator. Thread-safe:
/// Acquire/Submit may race across serving threads; the estimator and all
/// instruments are lock-free.
class ShadowVerifier {
 public:
  /// `exact_vectors` is the embedded database (the space the ADC index
  /// approximates). Registers shadow_* instruments and per-segment recall
  /// gauges on `registry`; gauge closures capture only shared state, so a
  /// registry that outlives the verifier stays safe.
  ShadowVerifier(Matrix exact_vectors, ShadowOptions options,
                 const std::shared_ptr<obs::MetricsRegistry>& registry);
  ~ShadowVerifier();

  ShadowVerifier(const ShadowVerifier&) = delete;
  ShadowVerifier& operator=(const ShadowVerifier&) = delete;

  /// Decides whether the current served query is shadow-verified: advances
  /// the query ordinal, applies the seeded selection, then tries to take an
  /// in-flight slot. On true the caller MUST follow with exactly one
  /// Submit() — the slot is held until the shadow task finishes.
  bool Acquire();

  /// Enqueues the exact re-run for a query Acquire() selected. `query` is
  /// copied before returning; `served_ids` are the ids the approximate
  /// path returned (order irrelevant — recall is set intersection).
  void Submit(const float* query, std::vector<uint32_t> served_ids);

  /// Blocks until every enqueued shadow task has completed (tests;
  /// rethrows the first captured task exception, as TaskGroup::Wait).
  void Flush();

  const obs::StreamingRecallEstimator& estimator() const {
    return *estimator_;
  }

  uint64_t sampled_count() const { return sampled_->Value(); }
  uint64_t skipped_budget_count() const { return skipped_budget_->Value(); }
  uint64_t completed_count() const { return completed_->Value(); }
  uint64_t recall_miss_count() const { return recall_miss_->Value(); }

  const ShadowOptions& options() const { return options_; }

 private:
  void RunShadow(const std::vector<float>& query,
                 const std::vector<uint32_t>& served_ids);

  ShadowOptions options_;
  uint64_t selection_threshold_ = 0;  ///< sample iff hash < threshold
  index::FlatIndex flat_;
  /// Head/mid/tail bucket per database item (-1 when unsegmented).
  std::vector<int> item_bucket_;
  std::shared_ptr<obs::StreamingRecallEstimator> estimator_;

  std::atomic<uint64_t> query_ordinal_{0};
  std::atomic<size_t> in_flight_{0};

  obs::Counter* sampled_ = nullptr;
  obs::Counter* skipped_budget_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* recall_miss_ = nullptr;
  obs::Histogram* query_recall_ = nullptr;

  /// Declared last: destroyed first, draining in-flight shadow tasks
  /// before the members they use go away.
  TaskGroup group_;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_SHADOW_H_
