// Circuit breaker for the IVF search path (DESIGN.md §9).
//
// Generalizes the per-query IVF→flat fallback: when the IVF path fails or
// comes up short N times in a row, the breaker opens and the service stops
// paying for doomed IVF attempts entirely, serving from the flat scan.
// After a cooldown it half-opens and lets a bounded number of probe
// requests through; enough successes close it, any failure re-opens it.
//
//            failures >= threshold            cooldown elapsed
//   CLOSED ───────────────────────▶ OPEN ───────────────────────▶ HALF-OPEN
//     ▲                              ▲                                │
//     │   successes >= probe quota   │          any failure           │
//     └──────────────────────────────┼────────────────────────────────┤
//                                    └────────────────────────────────┘
//
// Thread-safe; the clock is injectable so tests drive the cooldown
// deterministically.

#ifndef LIGHTLT_SERVING_CIRCUIT_BREAKER_H_
#define LIGHTLT_SERVING_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>

namespace lightlt::serving {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that open the breaker. 0 disables it (always
  /// closed, every request allowed).
  int failure_threshold = 5;
  /// Seconds the breaker stays open before half-opening.
  double cooldown_seconds = 5.0;
  /// Consecutive half-open successes required to close again.
  int half_open_successes_to_close = 1;
  /// Probe requests allowed through while half-open (in excess of this,
  /// requests are routed around the protected path until a verdict).
  int half_open_max_probes = 1;
  /// Injectable monotonic clock (seconds); defaults to the steady clock.
  std::function<double()> clock;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// True when the protected path may be attempted: always when closed,
  /// never when open (until the cooldown promotes it to half-open), and
  /// for up to `half_open_max_probes` outstanding probes when half-open.
  /// A true return must be matched by RecordSuccess() or RecordFailure().
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  /// The attempt ended without a verdict on the protected path's health
  /// (the request's deadline expired or it was cancelled mid-attempt).
  /// Balances AllowRequest()'s half-open probe accounting; no state
  /// transition and the consecutive-failure streak is left untouched.
  void RecordAbandoned();

  BreakerState state() const;
  uint64_t open_transitions() const;
  bool enabled() const { return options_.failure_threshold > 0; }

 private:
  double Now() const;
  /// Promotes kOpen → kHalfOpen once the cooldown has elapsed. Caller
  /// holds mu_. Const (and the promoted fields mutable) because observers
  /// like state() must see the promotion as soon as the clock allows it.
  void MaybeHalfOpenLocked() const;

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  mutable BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  mutable int half_open_successes_ = 0;
  mutable int half_open_probes_in_flight_ = 0;
  double opened_at_ = 0.0;
  uint64_t open_transitions_ = 0;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_CIRCUIT_BREAKER_H_
