// Cluster router and serving facade (DESIGN.md §13).
//
// Router scatter-gathers one query across every shard of a ShardSet on a
// ThreadPool: each shard task walks the ReplicaHealthMonitor's candidate
// list (healthy → suspect → probing), claims an attempt slot, and runs the
// replica search under a *sub-deadline* carved from the request's remaining
// budget — remaining/attempts_left, so the first attempt leaves room for a
// failover and the last one gets everything that is left. Attempt verdicts
// feed the monitor (success+latency / failure / timeout / abandoned), which
// is what drives the next request's failover order.
//
// Per-shard top-k results merge by the deterministic (distance, id) order in
// global database ids: with every shard healthy the merged top-k is
// bit-identical to a single-shard search over the same corpus (each shard's
// local top-k is a superset of its contribution to the global top-k; ADC
// distances depend only on codebooks+codes, not on the partition).
//
// Degradation contract: a shard whose every usable replica fails costs
// *coverage*, not availability — the query succeeds with `coverage` = the
// fraction of database rows actually searched, as long as coverage stays at
// or above RouterOptions::quorum_coverage. Below quorum the query fails
// with kUnavailable (or the stronger kDeadlineExceeded / kCancelled when
// the request's own budget was the cause).
//
// ClusterService is the deployment-facing facade over model + ShardSet +
// ReplicaHealthMonitor + Router, with the same exact-counter ServiceStats
// discipline as RetrievalService: every query ends in exactly one of
// served / partial / shed / expired / cancelled / failed.

#ifndef LIGHTLT_SERVING_ROUTER_H_
#define LIGHTLT_SERVING_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/lightlt_model.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/quality.h"
#include "src/serving/health.h"
#include "src/serving/service.h"
#include "src/serving/shard.h"
#include "src/serving/transport.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::serving {

struct RouterOptions {
  /// Replica attempts allowed per shard per request, including the first
  /// (failover cap). Clamped to the replica count.
  int max_attempts_per_shard = 2;
  /// Minimum fraction of database rows successful shards must cover for
  /// the query to succeed; below it the query fails (kUnavailable, or the
  /// request's own deadline/cancel status when that was the cause).
  double quorum_coverage = 0.5;
  /// Items scanned between deadline/cancel checks inside replica scans.
  size_t scan_check_every = 1024;
  /// Pool the scatter runs on (null = shards searched inline, in order).
  ThreadPool* pool = nullptr;
  /// A replica attempt whose carved sub-deadline would be at or below this
  /// many seconds fails fast with kDeadlineExceeded instead of dispatching:
  /// an already-expired or near-zero budget cannot finish any scan, and
  /// dispatching it would charge the replica a bogus timeout verdict (worse
  /// over a remote transport, where dialing alone would eat the budget).
  double min_attempt_budget_seconds = 1e-6;
  /// Optional structured logger: every failover verdict (timeout/failure
  /// that moves the walk to the next replica) and terminal shard failure
  /// is logged with the request's trace id, so log lines and trace dumps
  /// join by grep (DESIGN.md §15).
  obs::Logger* logger = nullptr;
};

/// Outcome of one routed query. `status` is the single terminal verdict;
/// the fan-out metadata is populated either way so callers can count
/// failovers and timeouts even on a failed request.
struct RoutedResult {
  Status status;
  /// Merged top-k in global database ids, (distance, id) ascending.
  std::vector<index::SearchHit> hits;
  /// Fraction of database rows covered by successful shards (1.0 = full).
  double coverage = 0.0;
  uint32_t shards_answered = 0;
  /// Replica attempts beyond the first, summed over shards.
  uint32_t failovers = 0;
  /// Attempts that burned their sub-deadline (health timeout signals).
  uint32_t timeouts = 0;
  /// Per-shard terminal status, index = shard id.
  std::vector<Status> shard_status;
};

/// Captures one routed query into a slow-query explain ring when it
/// crossed the ring's latency threshold: terminal outcome, coverage /
/// shards-answered / failover attribution, and the request's full span
/// tree (stitched remote subtrees carry per-span shard attribution).
/// Null `log` and untraced requests are fine; sub-threshold queries are
/// ignored. ClusterService::Query calls this internally; callers driving
/// Router directly (e.g. over a RemoteTransport) use it to get the same
/// ring records.
void MaybeCaptureSlowQuery(obs::SlowQueryLog* log, const RoutedResult& routed,
                           double elapsed_seconds, const obs::Trace* trace);

/// Scatter-gather search over a SearchTransport with health-driven
/// failover. Transport-agnostic: in-process ShardSet and remote shard
/// servers merge bit-identically (see src/serving/transport.h).
/// Thread-safe: holds shared immutable state plus the (internally locked)
/// health monitor.
class Router {
 public:
  Router(std::shared_ptr<const SearchTransport> transport,
         std::shared_ptr<ReplicaHealthMonitor> health,
         const RouterOptions& options);

  /// Convenience overload: routes over an in-process ShardSet.
  Router(std::shared_ptr<const ShardSet> shards,
         std::shared_ptr<ReplicaHealthMonitor> health,
         const RouterOptions& options);

  /// Routes one embedded query. `deadline`/`cancel` bound the whole
  /// fan-out; each shard attempt gets a sub-deadline derived from the
  /// remaining budget. Span tree when `trace` is non-null:
  /// router → shard_<s> → (ivf_route | adc_scan) / rerank.
  RoutedResult Search(const float* query, size_t top_k,
                      const Deadline& deadline,
                      const CancellationToken& cancel, obs::Trace* trace,
                      const obs::Span* parent) const;

  const SearchTransport& transport() const { return *transport_; }
  ReplicaHealthMonitor& health() const { return *health_; }
  const RouterOptions& options() const { return options_; }

 private:
  /// One shard's failover walk: candidates in health order, sub-deadline
  /// per attempt, verdicts recorded into the monitor.
  struct ShardOutcome {
    Status status;
    std::vector<index::SearchHit> hits;
    uint32_t attempts = 0;
    uint32_t timeouts = 0;
  };
  ShardOutcome SearchShard(size_t shard, const float* query, size_t top_k,
                           const Deadline& deadline,
                           const CancellationToken& cancel, obs::Trace* trace,
                           const obs::Span* parent) const;

  std::shared_ptr<const SearchTransport> transport_;
  std::shared_ptr<ReplicaHealthMonitor> health_;
  RouterOptions options_;
};

/// Configuration of a ClusterService stack.
struct ClusterOptions {
  size_t num_shards = 2;
  size_t num_replicas = 2;
  /// Per-replica search engine (rerank, IVF, breaker).
  SearcherOptions searcher;
  /// Per-replica admission budget.
  AdmissionOptions replica_admission;
  HealthOptions health;
  RouterOptions router;
  /// Metrics registry (null: the service creates its own). Shared so
  /// callback gauges co-own the components they read.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Prefix of every cluster metric (`{prefix}requests_total{outcome=...}`,
  /// `{prefix}coverage`, per-replica scan instruments, health gauges).
  std::string metric_prefix = "cluster_";
  /// Slow-query explain ring (latency_threshold_seconds > 0 enables it).
  /// Captured records carry the full stitched span tree — remote subtrees
  /// included, with per-span shard attribution — plus coverage/failover
  /// accounting, so one ring entry explains where a slow fan-out spent its
  /// time (DESIGN.md §15).
  obs::SlowQueryLog::Options slow_query;
};

/// One successful cluster answer: merged hits plus how much of the
/// database stood behind them.
struct ClusterResponse {
  std::vector<ServedHit> hits;
  double coverage = 1.0;
  uint32_t shards_answered = 0;
  uint32_t failovers = 0;
};

/// Point-in-time cluster counters; every terminal query outcome increments
/// exactly one of served/partial/shed/expired/cancelled/failed.
struct ClusterStats {
  uint64_t served = 0;     ///< full coverage
  uint64_t partial = 0;    ///< served with coverage < 1
  uint64_t shed = 0;       ///< kUnavailable (below quorum)
  uint64_t expired = 0;    ///< kDeadlineExceeded
  uint64_t cancelled = 0;  ///< kCancelled
  uint64_t failed = 0;     ///< any other terminal error
  uint64_t failovers = 0;
  uint64_t timeouts = 0;
  uint64_t health_transitions = 0;
  /// Coverage distribution of successful (served + partial) queries.
  obs::HistogramSnapshot coverage;
};

/// The sharded deployment facade: model (query encoder) + ShardSet +
/// ReplicaHealthMonitor + Router.
class ClusterService {
 public:
  /// Builds the cluster from a trained model and raw database features:
  /// embeds and encodes the database once, partitions it across
  /// `options.num_shards` contiguous shards and builds `options.num_replicas`
  /// independent replica searchers per shard. The model is shared (not
  /// copied) and must outlive the service.
  static Result<ClusterService> Build(
      std::shared_ptr<const core::LightLtModel> model,
      const Matrix& db_features, const ClusterOptions& options = {});

  /// Top-k search for one raw feature vector (1 x input_dim). Succeeds —
  /// possibly with partial coverage — whenever surviving shards cover at
  /// least `router.quorum_coverage` of the database.
  Result<ClusterResponse> Query(const Matrix& features, size_t top_k) const;
  Result<ClusterResponse> Query(const Matrix& features, size_t top_k,
                                const RequestOptions& request) const;

  size_t num_items() const { return shards_->total_items(); }
  size_t num_shards() const { return shards_->num_shards(); }
  size_t num_replicas() const { return shards_->num_replicas(); }
  size_t IndexMemoryBytes() const { return shards_->MemoryBytes(); }
  const ClusterOptions& options() const { return options_; }

  const Router& router() const { return *router_; }
  ReplicaHealthMonitor& health() const { return *health_; }
  const ShardSet& shards() const { return *shards_; }

  /// The slow-query explain ring, when ClusterOptions::slow_query enabled
  /// one (null otherwise).
  obs::SlowQueryLog* SlowQueries() const { return slow_log_.get(); }

  /// Exact counter snapshot (same conservation discipline as
  /// RetrievalService::Stats: one terminal outcome per query).
  ClusterStats Stats() const;

  obs::MetricsRegistry& Metrics() const { return *metrics_; }

 private:
  ClusterService() = default;

  struct Instruments {
    obs::Counter* served = nullptr;
    obs::Counter* partial = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Histogram* coverage = nullptr;
    /// Query latency per terminal outcome bucket, seconds.
    obs::Histogram* latency_served = nullptr;
    obs::Histogram* latency_failed = nullptr;

    void Register(obs::MetricsRegistry* registry, const std::string& prefix);
  };

  ClusterOptions options_;
  std::shared_ptr<const core::LightLtModel> model_;
  std::shared_ptr<const ShardSet> shards_;
  std::shared_ptr<ReplicaHealthMonitor> health_;
  std::unique_ptr<Router> router_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::SlowQueryLog> slow_log_;  // null unless capture on
  Instruments inst_;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_ROUTER_H_
