#include "src/serving/shadow.h"

#include <algorithm>
#include <utility>

#include "src/eval/metrics.h"

namespace lightlt::serving {
namespace {

/// SplitMix64 finalizer: a cheap, well-mixed hash of the query ordinal so
/// sampling is deterministic per (seed, ordinal) yet uncorrelated with any
/// traffic pattern.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t SelectionThreshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~0ULL;
  return static_cast<uint64_t>(rate * 18446744073709551616.0);  // rate * 2^64
}

}  // namespace

ShadowVerifier::ShadowVerifier(
    Matrix exact_vectors, ShadowOptions options,
    const std::shared_ptr<obs::MetricsRegistry>& registry)
    : options_(std::move(options)),
      selection_threshold_(SelectionThreshold(options_.sample_rate)),
      flat_(std::move(exact_vectors)),
      estimator_(std::make_shared<obs::StreamingRecallEstimator>()),
      group_(options_.pool) {
  if (!options_.db_labels.empty() && !options_.class_counts.empty()) {
    const std::vector<int> class_bucket =
        eval::HeadMidTailBuckets(options_.class_counts);
    item_bucket_.reserve(options_.db_labels.size());
    for (size_t label : options_.db_labels) {
      item_bucket_.push_back(
          label < class_bucket.size() ? class_bucket[label] : -1);
    }
  }
  sampled_ = registry->GetCounter("shadow_sampled_total");
  skipped_budget_ = registry->GetCounter("shadow_skipped_budget_total");
  completed_ = registry->GetCounter("shadow_completed_total");
  recall_miss_ = registry->GetCounter("shadow_recall_miss_total");
  query_recall_ = registry->GetHistogram("shadow_query_recall");
  // The recall gauges capture only the shared estimator, so an external
  // registry outliving this verifier keeps reading valid state.
  for (size_t segment = 0; segment < obs::kNumRecallSegments; ++segment) {
    const std::string label = obs::RecallSegmentName(segment);
    std::shared_ptr<obs::StreamingRecallEstimator> estimator = estimator_;
    registry->RegisterCallbackGauge(
        obs::WithLabel("shadow_recall", "segment", label),
        [estimator, segment]() {
          return estimator->Snapshot(segment).recall.center;
        });
    registry->RegisterCallbackGauge(
        obs::WithLabel("shadow_recall_lower", "segment", label),
        [estimator, segment]() {
          return estimator->Snapshot(segment).recall.lower;
        });
    registry->RegisterCallbackGauge(
        obs::WithLabel("shadow_recall_queries", "segment", label),
        [estimator, segment]() {
          return static_cast<double>(estimator->Snapshot(segment).queries);
        });
  }
}

ShadowVerifier::~ShadowVerifier() {
  // ~TaskGroup drains remaining shadow tasks (group_ is the first member
  // destroyed), so no task can touch flat_/estimator_ after they die.
}

bool ShadowVerifier::Acquire() {
  if (selection_threshold_ == 0) return false;
  const uint64_t ordinal =
      query_ordinal_.fetch_add(1, std::memory_order_relaxed);
  if (SplitMix64(options_.seed ^ ordinal) >= selection_threshold_) {
    return false;
  }
  // Take an in-flight slot; at the cap the query is skipped, keeping shadow
  // memory and pool backlog strictly bounded under overload.
  size_t current = in_flight_.load(std::memory_order_relaxed);
  while (true) {
    if (current >= options_.max_in_flight) {
      skipped_budget_->Increment();
      return false;
    }
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_acq_rel)) {
      sampled_->Increment();
      return true;
    }
  }
}

void ShadowVerifier::Submit(const float* query,
                            std::vector<uint32_t> served_ids) {
  std::vector<float> copy(query, query + flat_.dim());
  group_.Submit([this, copy = std::move(copy),
                 ids = std::move(served_ids)]() {
    // The slot is released even when the scan throws (the exception is
    // captured by the TaskGroup and surfaces at Flush()).
    try {
      RunShadow(copy, ids);
    } catch (...) {
      in_flight_.fetch_sub(1, std::memory_order_release);
      throw;
    }
    in_flight_.fetch_sub(1, std::memory_order_release);
  });
}

void ShadowVerifier::RunShadow(const std::vector<float>& query,
                               const std::vector<uint32_t>& served_ids) {
  const std::vector<index::SearchHit> exact =
      flat_.Search(query.data(), options_.recall_k);
  uint64_t successes = 0;
  for (const index::SearchHit& hit : exact) {
    for (uint32_t id : served_ids) {
      if (id == hit.id) {
        ++successes;
        break;
      }
    }
  }
  const uint64_t trials = exact.size();
  int bucket = -1;
  if (!exact.empty() && exact[0].id < item_bucket_.size()) {
    bucket = item_bucket_[exact[0].id];
  }
  estimator_->Add(bucket, successes, trials);
  const double recall =
      trials == 0 ? 0.0
                  : static_cast<double>(successes) / static_cast<double>(trials);
  query_recall_->Record(recall);
  completed_->Increment();
  if (options_.recall_miss_threshold > 0.0 &&
      recall <= options_.recall_miss_threshold) {
    recall_miss_->Increment();
    if (options_.on_recall_miss) {
      options_.on_recall_miss(recall, successes, trials);
    }
  }
}

void ShadowVerifier::Flush() { group_.Wait(); }

}  // namespace lightlt::serving
