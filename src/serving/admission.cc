#include "src/serving/admission.h"

#include <algorithm>
#include <chrono>

namespace lightlt::serving {

namespace {
double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

double AdmissionController::Now() const {
  return options_.clock ? options_.clock() : SteadyNowSeconds();
}

AdmissionOutcome AdmissionController::TryAdmit(size_t observed_queue_depth) {
  std::lock_guard<std::mutex> lock(mu_);

  // Token bucket: refill by elapsed time, then demand one token. The
  // bucket starts full so a fresh service serves its burst immediately.
  if (options_.rate_per_second > 0.0) {
    const double now = Now();
    if (!bucket_started_) {
      tokens_ = std::max(1.0, options_.burst);
      bucket_started_ = true;
    } else {
      tokens_ = std::min(std::max(1.0, options_.burst),
                         tokens_ + (now - last_refill_) *
                                       options_.rate_per_second);
    }
    last_refill_ = now;
    if (tokens_ < 1.0) return AdmissionOutcome::kShed;
  }

  if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
    return AdmissionOutcome::kShed;
  }

  const bool soft_overloaded =
      (options_.max_queue_depth > 0 &&
       observed_queue_depth > options_.max_queue_depth) ||
      (options_.degrade_in_flight > 0 &&
       in_flight_ >= options_.degrade_in_flight);
  if (soft_overloaded &&
      options_.on_overload == AdmissionOptions::OverloadPolicy::kShed) {
    return AdmissionOutcome::kShed;
  }

  if (options_.rate_per_second > 0.0) tokens_ -= 1.0;
  ++in_flight_;
  return soft_overloaded ? AdmissionOutcome::kDegrade
                         : AdmissionOutcome::kAdmit;
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
}

size_t AdmissionController::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace lightlt::serving
