#include "src/serving/circuit_breaker.h"

#include <chrono>

namespace lightlt::serving {

namespace {
double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {}

double CircuitBreaker::Now() const {
  return options_.clock ? options_.clock() : SteadyNowSeconds();
}

void CircuitBreaker::MaybeHalfOpenLocked() const {
  if (state_ == BreakerState::kOpen &&
      Now() - opened_at_ >= options_.cooldown_seconds) {
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    half_open_probes_in_flight_ = 0;
  }
}

bool CircuitBreaker::AllowRequest() {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  MaybeHalfOpenLocked();
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (half_open_probes_in_flight_ >= options_.half_open_max_probes) {
        return false;
      }
      ++half_open_probes_in_flight_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (half_open_probes_in_flight_ > 0) --half_open_probes_in_flight_;
    if (++half_open_successes_ >= options_.half_open_successes_to_close) {
      state_ = BreakerState::kClosed;
    }
  }
}

void CircuitBreaker::RecordAbandoned() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen && half_open_probes_in_flight_ > 0) {
    --half_open_probes_in_flight_;
  }
}

void CircuitBreaker::RecordFailure() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately: the cooldown restarts.
    state_ = BreakerState::kOpen;
    opened_at_ = Now();
    ++open_transitions_;
    consecutive_failures_ = 0;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = Now();
    ++open_transitions_;
    consecutive_failures_ = 0;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Report the cooldown promotion lazily, so an observer sees half-open
  // as soon as the clock allows it (not only after the next request).
  MaybeHalfOpenLocked();
  return state_;
}

uint64_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_transitions_;
}

}  // namespace lightlt::serving
