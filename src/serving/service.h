// RetrievalService: the deployment-facing facade. Owns a trained LightLT
// model plus a compressed index and serves labelled top-k queries, with
// optional exact re-ranking of the candidate pool and optional IVF
// acceleration for large databases.
//
// Robustness contract: artifacts are validated at Build (finite weights and
// database features, consistent dimensions), non-finite query features are
// rejected as InvalidArgument, and an IVF search that fails or comes up
// short degrades to the always-present flat ADC scan instead of failing the
// query (observable via Stats().flat_fallbacks / degraded_query_count()).
//
// Request lifecycle (DESIGN.md §9): every query passes through
//   deadline/cancel check → admission → (breaker-gated IVF | flat scan)
//   → rerank → served
// and ends in exactly one outcome — served, shed (kUnavailable), expired
// (kDeadlineExceeded), cancelled (kCancelled) or failed — all visible in
// the ServiceStats snapshot.

#ifndef LIGHTLT_SERVING_SERVICE_H_
#define LIGHTLT_SERVING_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/lightlt_model.h"
#include "src/index/adc_index.h"
#include "src/index/ivf_index.h"
#include "src/obs/metrics.h"
#include "src/obs/quality.h"
#include "src/obs/trace.h"
#include "src/serving/admission.h"
#include "src/serving/circuit_breaker.h"
#include "src/serving/shadow.h"
#include "src/serving/shard.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::serving {

/// Self-monitoring for scan-distribution drift (DESIGN.md §11): the service
/// watches its own scan histograms (adc_scan_chunk_seconds, and with IVF
/// ivf_probed_cells / ivf_scanned_fraction, plus the served-latency
/// histogram), freezes the traffic of the first `warmup_queries` served
/// queries as the baseline, then sweeps CheckAll() every `check_every`
/// served queries.
struct ServiceDriftOptions {
  bool enabled = false;
  /// Served queries accumulated before the baseline freezes.
  uint64_t warmup_queries = 1000;
  /// Served queries between CheckAll() sweeps once frozen.
  uint64_t check_every = 500;
  /// Thresholds/hysteresis applied to every watch.
  obs::DriftWatchOptions watch;
  std::string metric_prefix = "serving_drift_";
  /// Structured-log sink for fire/clear events (null = silent).
  obs::Logger* logger = nullptr;
};

struct ServiceOptions {
  /// Candidate pool size fetched from the compressed index before
  /// re-ranking; 0 = exactly top_k (no over-fetch).
  size_t rerank_pool = 0;
  /// Re-rank the candidate pool by exact distance to the stored
  /// reconstructions (cheap) — mitigates quantization error in the head of
  /// the ranking.
  bool exact_rerank = false;
  /// Use the IVF-accelerated index (requires ivf options at Build time).
  bool use_ivf = false;
  index::IvfOptions ivf;
  /// Overload policy: in-flight caps, backlog shedding, token bucket.
  /// Defaults leave every limit off (always admit).
  AdmissionOptions admission;
  /// Circuit breaker around the IVF path; irrelevant without use_ivf.
  CircuitBreakerOptions breaker;
  /// Items scanned between deadline/cancellation checks inside index scan
  /// loops; bounds deadline overshoot to roughly one chunk of work.
  size_t scan_check_every = 1024;
  /// Metrics registry the service records into (serving counters, latency
  /// histograms, index scan telemetry). Null: the service creates its own,
  /// reachable via Metrics(). Shared so external registries (one per
  /// process, many services) outlive in-flight callback gauges.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Online quality monitoring (DESIGN.md §11): shadow-verify a seeded
  /// fraction of served queries against the exact flat index. sample_rate 0
  /// keeps the verifier (and its flat copy of the database) out entirely.
  ShadowOptions shadow;
  /// Slow-query capture: single queries at/above latency_threshold_seconds
  /// — and shadow recall misses, when both features are on — land in a ring
  /// with their span tree and scan "explain" record. Threshold 0 disables.
  obs::SlowQueryLog::Options slow_query;
  /// Scan-distribution drift self-monitoring; off by default.
  ServiceDriftOptions drift;
};

/// Per-request resource vector (DESIGN.md §16): what one request actually
/// cost, not just how long it took. cpu_ns is the serving thread's CPU time
/// across the post-embedding lifecycle (CLOCK_THREAD_CPUTIME_ID delta), the
/// scan stats are the index layer's exact per-request accounting.
struct RequestCost {
  uint64_t cpu_ns = 0;
  ScanStats scan;
};

/// Per-request lifecycle knobs. Default: no deadline, not cancellable.
struct RequestOptions {
  Deadline deadline;
  CancellationToken cancel;
  /// Opt-in span tracing for single-query calls: Query() records the
  /// query → embed / admission / search → (ivf_route|adc_scan) / rerank
  /// tree into this trace. Null (default) costs one branch per span site.
  /// QueryBatch rows are not traced (metrics cover the aggregate path).
  obs::Trace* trace = nullptr;
  /// When set, Query() fills it with the request's resource vector. Must
  /// outlive the call and belong to this request alone, so QueryBatch
  /// (one shared RequestOptions across rows) leaves it null.
  RequestCost* cost = nullptr;
  /// Head/mid/tail class-frequency bucket of the query (0/1/2), -1 when
  /// unknown. Routes the serving_cost_* counters' segment label so per-
  /// segment cost accounting mirrors the recall estimator's segmentation.
  int class_bucket = -1;
};

/// One retrieval result with its database payload.
struct ServedHit {
  uint32_t id = 0;
  float distance = 0.0f;
};

/// Point-in-time counter snapshot; every terminal request outcome
/// increments exactly one of served/shed/expired/cancelled/failed.
struct ServiceStats {
  uint64_t admitted = 0;    // passed admission (includes degraded)
  uint64_t degraded_admissions = 0;  // admitted in degraded mode
  uint64_t served = 0;      // returned hits to the caller
  uint64_t shed = 0;        // rejected by admission (kUnavailable)
  uint64_t expired = 0;     // kDeadlineExceeded
  uint64_t cancelled = 0;   // kCancelled
  uint64_t failed = 0;      // any other terminal error after admission
  uint64_t flat_fallbacks = 0;  // served by flat scan though IVF was on
  uint64_t breaker_open_transitions = 0;
  uint64_t in_flight = 0;
  BreakerState breaker_state = BreakerState::kClosed;
  /// Served-request latency distribution at snapshot time (cumulative).
  obs::HistogramSnapshot served_latency;
};

/// Windowed view between two Stats() snapshots of the same service: counter
/// differences plus the served-latency HistogramSnapshot delta, so callers
/// can report per-interval p95 instead of since-boot aggregates.
ServiceStats StatsSince(const ServiceStats& later, const ServiceStats& earlier);

/// A ready-to-serve retrieval stack: model (query encoder) + compressed
/// database index.
class RetrievalService {
 public:
  /// Builds the service from a trained model and raw database features.
  /// The model is shared (not copied); it must outlive the service.
  static Result<RetrievalService> Build(
      std::shared_ptr<const core::LightLtModel> model,
      const Matrix& db_features, const ServiceOptions& options = {});

  /// Top-k search for one raw feature vector (1 x input_dim).
  Result<std::vector<ServedHit>> Query(const Matrix& features,
                                       size_t top_k) const;
  Result<std::vector<ServedHit>> Query(const Matrix& features, size_t top_k,
                                       const RequestOptions& request) const;

  /// Batched search; parallelized across the pool when provided. The outer
  /// Status covers batch-level malformation only (dimension mismatch); each
  /// row carries its own Result so one poisoned or deadline-expired row
  /// cannot fail its siblings. Rows that never started when the batch
  /// deadline expired report kDeadlineExceeded.
  Result<std::vector<Result<std::vector<ServedHit>>>> QueryBatch(
      const Matrix& features, size_t top_k, ThreadPool* pool = nullptr,
      const RequestOptions& request = {}) const;

  size_t num_items() const { return searcher_ ? searcher_->num_items() : 0; }
  size_t IndexMemoryBytes() const;
  const ServiceOptions& options() const { return options_; }

  /// Lifecycle counters as a point-in-time view over the metrics registry.
  /// Exact, not sampled: every outcome increments exactly one registry
  /// counter and Counter::Value() sums its shards losslessly, so the chaos
  /// tests' conservation law (admitted + shed + pre-admission terminals ==
  /// total requests) holds on this snapshot.
  ServiceStats Stats() const;

  /// The registry this service records into (its own unless
  /// ServiceOptions::metrics supplied one). Render with
  /// Metrics().RenderText() for Prometheus-style exposition.
  obs::MetricsRegistry& Metrics() const { return *metrics_; }

  /// Number of queries served by the flat-scan fallback because the IVF
  /// path failed, came up short, or was breaker-disallowed. Always 0 when
  /// IVF is not enabled. (Alias of Stats().flat_fallbacks.)
  uint64_t degraded_query_count() const {
    return inst_.flat_fallbacks ? inst_.flat_fallbacks->Value() : 0;
  }

  /// The shadow verifier, when ServiceOptions::shadow enabled one.
  ShadowVerifier* Shadow() const { return shadow_.get(); }

  /// The slow-query ring, when ServiceOptions::slow_query enabled one.
  obs::SlowQueryLog* SlowQueries() const { return slow_log_.get(); }

  /// The drift detector, when ServiceOptions::drift enabled one. Watches
  /// fire only after the warmup baseline froze and a CheckAll sweep ran.
  obs::DriftDetector* Drift() const {
    return drift_ ? &drift_->detector : nullptr;
  }
  /// True once the warmup window has been frozen as the drift baseline.
  bool DriftBaselineFrozen() const {
    return drift_ != nullptr && drift_->frozen.load(std::memory_order_acquire);
  }

 private:
  RetrievalService() = default;

  /// Registry-backed handles shared by QueryBatch workers; counters are
  /// sharded relaxed atomics (Counter) so the worker hot path stays
  /// contention-free. Raw pointers into metrics_, stable for its lifetime;
  /// the struct is trivially copyable so the service stays movable.
  struct Instruments {
    obs::Counter* admitted = nullptr;
    obs::Counter* degraded_admissions = nullptr;
    obs::Counter* served = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* flat_fallbacks = nullptr;
    /// Request latency per terminal outcome, seconds.
    obs::Histogram* latency_served = nullptr;
    obs::Histogram* latency_shed = nullptr;
    obs::Histogram* latency_expired = nullptr;
    obs::Histogram* latency_cancelled = nullptr;
    obs::Histogram* latency_failed = nullptr;
    /// Pool backlog observed by QueryBatch rows (ApproxQueueDepth).
    obs::Gauge* queue_depth = nullptr;
    /// Cost accounting (DESIGN.md §16): the per-request resource vector
    /// rolled up into exact counters per segment — index 0 "overall",
    /// then the head/mid/tail class-frequency buckets. Every request lands
    /// in overall; segmented rows need RequestOptions::class_bucket.
    obs::Counter* cost_cpu_ns[obs::kNumRecallSegments] = {};
    obs::Counter* cost_items[obs::kNumRecallSegments] = {};
    obs::Counter* cost_codes_decoded[obs::kNumRecallSegments] = {};
    obs::Counter* cost_lut_builds[obs::kNumRecallSegments] = {};
    obs::Counter* cost_shortlist[obs::kNumRecallSegments] = {};

    void Register(obs::MetricsRegistry* registry);
  };

  /// Records a terminal non-OK outcome (and its latency) for an admitted
  /// (or pre-admission expired/cancelled) request.
  void CountOutcome(const Status& status, double elapsed_seconds) const;

  /// Full post-embedding lifecycle for one query: deadline/cancel check,
  /// admission, breaker-gated search, outcome and cost accounting. `trace`
  /// (may be null) hangs lifecycle spans under `parent`; `class_bucket`
  /// segments the cost counters; `cost` (may be null) receives the
  /// request's resource vector.
  Result<std::vector<ServedHit>> ServeEmbedded(const float* query,
                                               size_t top_k,
                                               const ScanControl& control,
                                               size_t observed_depth,
                                               obs::Trace* trace,
                                               const obs::Span* parent,
                                               int class_bucket,
                                               RequestCost* cost) const;

  /// Drift self-monitoring state: the detector plus the served-query
  /// cadence that freezes the baseline and paces CheckAll sweeps.
  /// shared_ptr so the (const) serving path can mutate it and the service
  /// stays movable.
  struct DriftMonitor {
    explicit DriftMonitor(obs::DriftDetector::Options options)
        : detector(std::move(options)) {}
    obs::DriftDetector detector;
    std::vector<std::string> watches;
    std::atomic<uint64_t> served{0};
    std::atomic<bool> frozen{false};
    uint64_t warmup = 0;
    uint64_t check_every = 0;
  };

  /// Advances the drift cadence after one served query: freezes the
  /// baseline when the warmup count is reached, then sweeps CheckAll every
  /// `check_every` served queries.
  void TickDrift() const;

  ServiceOptions options_;
  std::shared_ptr<const core::LightLtModel> model_;
  /// The breaker-gated search engine (flat ADC + optional IVF + rerank) —
  /// the same unit a ClusterService replicates per shard.
  std::unique_ptr<ReplicaSearcher> searcher_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  Instruments inst_;
  std::shared_ptr<AdmissionController> admission_;
  std::shared_ptr<ShadowVerifier> shadow_;   // null unless sampling enabled
  std::shared_ptr<obs::SlowQueryLog> slow_log_;  // null unless capture on
  std::shared_ptr<DriftMonitor> drift_;      // null unless drift enabled
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_SERVICE_H_
