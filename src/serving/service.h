// RetrievalService: the deployment-facing facade. Owns a trained LightLT
// model plus a compressed index and serves labelled top-k queries, with
// optional exact re-ranking of the candidate pool and optional IVF
// acceleration for large databases.
//
// Robustness contract: artifacts are validated at Build (finite weights and
// database features, consistent dimensions), non-finite query features are
// rejected as InvalidArgument, and an IVF search that fails or comes up
// short degrades to the always-present flat ADC scan instead of failing the
// query (observable via degraded_query_count()).

#ifndef LIGHTLT_SERVING_SERVICE_H_
#define LIGHTLT_SERVING_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/lightlt_model.h"
#include "src/index/adc_index.h"
#include "src/index/ivf_index.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::serving {

struct ServiceOptions {
  /// Candidate pool size fetched from the compressed index before
  /// re-ranking; 0 = exactly top_k (no over-fetch).
  size_t rerank_pool = 0;
  /// Re-rank the candidate pool by exact distance to the stored
  /// reconstructions (cheap) — mitigates quantization error in the head of
  /// the ranking.
  bool exact_rerank = false;
  /// Use the IVF-accelerated index (requires ivf options at Build time).
  bool use_ivf = false;
  index::IvfOptions ivf;
};

/// One retrieval result with its database payload.
struct ServedHit {
  uint32_t id = 0;
  float distance = 0.0f;
};

/// A ready-to-serve retrieval stack: model (query encoder) + compressed
/// database index.
class RetrievalService {
 public:
  /// Builds the service from a trained model and raw database features.
  /// The model is shared (not copied); it must outlive the service.
  static Result<RetrievalService> Build(
      std::shared_ptr<const core::LightLtModel> model,
      const Matrix& db_features, const ServiceOptions& options = {});

  /// Top-k search for one raw feature vector (1 x input_dim).
  Result<std::vector<ServedHit>> Query(const Matrix& features,
                                       size_t top_k) const;

  /// Batched search; parallelized across the pool when provided.
  Result<std::vector<std::vector<ServedHit>>> QueryBatch(
      const Matrix& features, size_t top_k,
      ThreadPool* pool = nullptr) const;

  size_t num_items() const { return adc_ ? adc_->num_items() : 0; }
  size_t IndexMemoryBytes() const;
  const ServiceOptions& options() const { return options_; }

  /// Number of queries served by the flat-scan fallback because the IVF
  /// path failed or returned fewer candidates than the flat index could.
  /// Always 0 when IVF is not enabled.
  uint64_t degraded_query_count() const {
    return degraded_queries_ ? degraded_queries_->load() : 0;
  }

 private:
  RetrievalService() = default;

  std::vector<ServedHit> SearchEmbedded(const float* query,
                                        size_t top_k) const;

  ServiceOptions options_;
  std::shared_ptr<const core::LightLtModel> model_;
  std::unique_ptr<index::AdcIndex> adc_;
  std::unique_ptr<index::IvfAdcIndex> ivf_;
  /// Heap-allocated so the service stays movable; incremented from
  /// QueryBatch worker threads.
  std::shared_ptr<std::atomic<uint64_t>> degraded_queries_;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_SERVICE_H_
