// Replica health monitoring for the in-process cluster (DESIGN.md §13).
//
// A ReplicaHealthMonitor tracks one health state per (shard, replica) pair
// and drives the router's failover decisions. The state machine is closed —
// every transition below is the only way to move between states — and
// driven purely by per-attempt signals (success + latency, failure,
// timeout) plus an injectable clock, so tests walk it deterministically:
//
//               failure streak >= failures_to_suspect
//   HEALTHY ─────────────────────────────────────────▶ SUSPECT
//      ▲                                                 │ │
//      │ success streak >= successes_to_recover          │ │ failure streak
//      ├─────────────────────────────────────────────────┘ │ >= failures_to_down
//      │                                                   ▼
//      │ success streak >= successes_to_recover          DOWN ◀──┐
//      └───────────────── PROBING ◀──────────────────────┘       │
//                            │        cooldown elapsed           │
//                            └───────────────────────────────────┘
//                              any failure/timeout while probing
//
// Hysteresis: SUSPECT replicas still serve (they rank after HEALTHY ones)
// and need `successes_to_recover` consecutive successes to clear, so one
// good reply cannot mask a flapping replica. DOWN replicas serve nothing;
// after `down_cooldown_seconds` they are promoted to PROBING, where at most
// `probe_budget` concurrent probe attempts are allowed through (the
// half-open pattern of the CircuitBreaker, per replica). Successes slower
// than `slow_latency_seconds` count as failure signals — a replica that
// answers too late is as useless as one that errors.
//
// Thread-safe: the router's scatter tasks record signals from pool workers.

#ifndef LIGHTLT_SERVING_HEALTH_H_
#define LIGHTLT_SERVING_HEALTH_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace lightlt::serving {

enum class ReplicaHealth { kHealthy, kSuspect, kDown, kProbing };

const char* ReplicaHealthName(ReplicaHealth state);

struct HealthOptions {
  /// Consecutive failure signals that demote HEALTHY → SUSPECT.
  int failures_to_suspect = 1;
  /// Consecutive failure signals (counted from the streak's start, so
  /// including the ones that caused SUSPECT) that demote SUSPECT → DOWN.
  int failures_to_down = 3;
  /// Consecutive successes that promote SUSPECT or PROBING → HEALTHY.
  int successes_to_recover = 2;
  /// Seconds a DOWN replica stays unservable before probing again.
  double down_cooldown_seconds = 5.0;
  /// Concurrent probe attempts allowed while PROBING; excess attempts are
  /// denied (BeginAttempt returns false) until a verdict frees a slot.
  int probe_budget = 1;
  /// Successes slower than this count as failure signals (0 = off).
  double slow_latency_seconds = 0.0;
  /// Injectable monotonic clock (seconds); defaults to the steady clock.
  std::function<double()> clock;
};

class ReplicaHealthMonitor {
 public:
  ReplicaHealthMonitor(size_t num_shards, size_t num_replicas,
                       const HealthOptions& options);

  ReplicaHealthMonitor(const ReplicaHealthMonitor&) = delete;
  ReplicaHealthMonitor& operator=(const ReplicaHealthMonitor&) = delete;

  /// Replicas of `shard` in failover preference order: HEALTHY first, then
  /// SUSPECT, then PROBING (ties broken by replica index, so selection is
  /// deterministic). DOWN replicas whose cooldown elapsed are promoted to
  /// PROBING here; replicas still DOWN are excluded entirely.
  std::vector<size_t> Candidates(size_t shard);

  /// Claims an attempt slot on (shard, replica). Always true for HEALTHY /
  /// SUSPECT; for PROBING, true only while fewer than `probe_budget` probes
  /// are outstanding; always false for DOWN. A true return MUST be matched
  /// by exactly one RecordSuccess / RecordFailure / RecordTimeout /
  /// RecordAbandoned call.
  bool BeginAttempt(size_t shard, size_t replica);

  /// The attempt succeeded in `latency_seconds`. Slow successes (past
  /// HealthOptions::slow_latency_seconds) count as failure signals.
  void RecordSuccess(size_t shard, size_t replica, double latency_seconds);

  /// The attempt failed on the replica (error or shed) — a failure signal.
  void RecordFailure(size_t shard, size_t replica);

  /// The attempt hit its per-shard sub-deadline on this replica — a failure
  /// signal (a replica that cannot answer inside its budget is unhealthy),
  /// counted separately for observability.
  void RecordTimeout(size_t shard, size_t replica);

  /// The attempt ended without a verdict about the replica (the *request*
  /// ran out of budget before the replica was really tried, or was
  /// cancelled). Balances BeginAttempt's probe accounting only.
  void RecordAbandoned(size_t shard, size_t replica);

  ReplicaHealth state(size_t shard, size_t replica) const;

  /// True when at least one replica of `shard` could be attempted right now
  /// (not DOWN, or DOWN with an elapsed cooldown).
  bool ShardServable(size_t shard) const;

  size_t num_shards() const { return num_shards_; }
  size_t num_replicas() const { return num_replicas_; }

  /// Cumulative state-machine transitions (any edge), for tests and gauges.
  uint64_t transition_count() const;
  /// Timeout signals recorded (subset of failure signals).
  uint64_t timeout_count() const;

  /// Registers one callback health-state gauge per replica
  /// (`{prefix}replica_health{shard="s",replica="r"}`, value 0 healthy /
  /// 1 suspect / 2 down / 3 probing) plus `{prefix}health_transitions_total`.
  /// The registry must not outlive this monitor's owner-supplied closure
  /// lifetime contract (callers keep the monitor in a shared_ptr).
  void InstrumentGauges(obs::MetricsRegistry* registry,
                        const std::string& prefix,
                        const std::shared_ptr<ReplicaHealthMonitor>& self);

 private:
  struct Cell {
    ReplicaHealth state = ReplicaHealth::kHealthy;
    int failure_streak = 0;
    int success_streak = 0;
    int probes_in_flight = 0;
    double downed_at = 0.0;
  };

  double Now() const;
  Cell& CellAt(size_t shard, size_t replica);
  const Cell& CellAt(size_t shard, size_t replica) const;
  /// DOWN → PROBING once the cooldown has elapsed. Caller holds mu_.
  void MaybePromoteLocked(Cell* cell) const;
  /// Applies one failure signal. Caller holds mu_.
  void FailureSignalLocked(Cell* cell);
  /// Applies one success signal. Caller holds mu_.
  void SuccessSignalLocked(Cell* cell);
  /// Releases a PROBING attempt slot if one was held. Caller holds mu_.
  void ReleaseProbeLocked(Cell* cell);

  const size_t num_shards_;
  const size_t num_replicas_;
  HealthOptions options_;
  mutable std::mutex mu_;
  /// Flat [shard * num_replicas + replica]; states are mutable through
  /// const observers (state(), ShardServable()) because a DOWN cell whose
  /// cooldown elapsed must read as PROBING as soon as the clock allows,
  /// mirroring CircuitBreaker::MaybeHalfOpenLocked.
  mutable std::vector<Cell> cells_;
  mutable uint64_t transitions_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_HEALTH_H_
