#include "src/serving/service.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "src/core/pipeline.h"
#include "src/obs/profile.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace lightlt::serving {
namespace {

bool AllFinite(const Matrix& m) {
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool RowFinite(const Matrix& m, size_t row) {
  const float* data = m.row(row);
  for (size_t j = 0; j < m.cols(); ++j) {
    if (!std::isfinite(data[j])) return false;
  }
  return true;
}

/// Opens `name` under `parent` when tracing is on; an empty Span otherwise.
obs::Span MaybeSpan(obs::Trace* trace, const char* name,
                    const obs::Span* parent) {
  if (trace == nullptr) return obs::Span();
  if (parent != nullptr) return trace->StartSpan(name, *parent);
  return trace->StartSpan(name);
}

}  // namespace

void RetrievalService::Instruments::Register(obs::MetricsRegistry* registry) {
  admitted = registry->GetCounter("serving_admitted_total");
  degraded_admissions =
      registry->GetCounter("serving_degraded_admissions_total");
  flat_fallbacks = registry->GetCounter("serving_flat_fallbacks_total");
  const std::string requests = "serving_requests_total";
  served = registry->GetCounter(obs::WithLabel(requests, "outcome", "served"));
  shed = registry->GetCounter(obs::WithLabel(requests, "outcome", "shed"));
  expired =
      registry->GetCounter(obs::WithLabel(requests, "outcome", "expired"));
  cancelled =
      registry->GetCounter(obs::WithLabel(requests, "outcome", "cancelled"));
  failed = registry->GetCounter(obs::WithLabel(requests, "outcome", "failed"));
  const std::string latency = "serving_latency_seconds";
  latency_served =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "served"));
  latency_shed =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "shed"));
  latency_expired =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "expired"));
  latency_cancelled =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "cancelled"));
  latency_failed =
      registry->GetHistogram(obs::WithLabel(latency, "outcome", "failed"));
  queue_depth = registry->GetGauge("serving_queue_depth");
  for (size_t s = 0; s < obs::kNumRecallSegments; ++s) {
    const char* segment = obs::RecallSegmentName(s);
    cost_cpu_ns[s] = registry->GetCounter(
        obs::WithLabel("serving_cost_cpu_ns_total", "segment", segment));
    cost_items[s] = registry->GetCounter(
        obs::WithLabel("serving_cost_items_total", "segment", segment));
    cost_codes_decoded[s] = registry->GetCounter(obs::WithLabel(
        "serving_cost_codes_decoded_total", "segment", segment));
    cost_lut_builds[s] = registry->GetCounter(
        obs::WithLabel("serving_cost_lut_builds_total", "segment", segment));
    cost_shortlist[s] = registry->GetCounter(
        obs::WithLabel("serving_cost_shortlist_total", "segment", segment));
  }
}

Result<RetrievalService> RetrievalService::Build(
    std::shared_ptr<const core::LightLtModel> model,
    const Matrix& db_features, const ServiceOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("RetrievalService: null model");
  }
  if (db_features.rows() == 0) {
    return Status::InvalidArgument("RetrievalService: empty database");
  }
  if (db_features.cols() != model->config().input_dim) {
    return Status::InvalidArgument(
        "RetrievalService: database feature dim mismatch");
  }
  // Artifact validation: a model deserialized from a damaged or stale file
  // (or a database with NaN features) must be rejected here, not discovered
  // as garbage neighbours in production queries.
  for (const auto& p : model->Parameters()) {
    if (!AllFinite(p->value())) {
      return Status::FailedPrecondition(
          "RetrievalService: model has non-finite weights");
    }
  }
  const size_t embed_dim = model->config().embed_dim;
  for (const Matrix& cb : model->Codebooks()) {
    if (cb.cols() != embed_dim) {
      return Status::FailedPrecondition(
          "RetrievalService: codebook/embedding dim mismatch");
    }
  }
  if (!AllFinite(db_features)) {
    return Status::InvalidArgument(
        "RetrievalService: database features contain NaN/Inf");
  }

  RetrievalService service;
  service.options_ = options;
  service.model_ = model;
  service.metrics_ = options.metrics ? options.metrics
                                     : std::make_shared<obs::MetricsRegistry>();
  service.inst_.Register(service.metrics_.get());
  service.admission_ = std::make_shared<AdmissionController>(options.admission);

  // Callback gauges capture shared_ptr copies, never `this`: they stay
  // valid after the service moves, and a shared external registry cannot
  // dangle as long as it holds the closures (it co-owns the components).
  {
    std::shared_ptr<AdmissionController> admission = service.admission_;
    service.metrics_->RegisterCallbackGauge(
        "serving_in_flight", [admission]() {
          return static_cast<double>(admission->InFlight());
        });
  }

  const Matrix embedded = core::EmbedInChunks(*model, db_features);
  std::vector<std::vector<uint32_t>> codes;
  model->dsq().Encode(embedded, &codes);

  // The search engine is one ReplicaSearcher — the same breaker-gated
  // flat-ADC + optional-IVF + rerank unit a ClusterService replicates per
  // shard. Instrumented under the service's historical metric names
  // ("adc_*"/"ivf_*" scan telemetry, serving_flat_fallbacks_total).
  SearcherOptions searcher_options;
  searcher_options.rerank_pool = options.rerank_pool;
  searcher_options.exact_rerank = options.exact_rerank;
  searcher_options.use_ivf = options.use_ivf;
  searcher_options.ivf = options.ivf;
  searcher_options.breaker = options.breaker;
  auto searcher = ReplicaSearcher::Build(embedded, model->Codebooks(), codes,
                                         searcher_options);
  if (!searcher.ok()) return searcher.status();
  service.searcher_ =
      std::make_unique<ReplicaSearcher>(std::move(searcher).value());
  service.searcher_->InstrumentScans(service.metrics_.get(), "");
  service.searcher_->set_flat_fallback_counter(service.inst_.flat_fallbacks);
  if (options.use_ivf) {
    std::shared_ptr<CircuitBreaker> breaker = service.searcher_->breaker();
    service.metrics_->RegisterCallbackGauge(
        "serving_breaker_state", [breaker]() {
          // 0 closed, 1 open, 2 half-open.
          return static_cast<double>(static_cast<int>(breaker->state()));
        });
    service.metrics_->RegisterCallbackGauge(
        "serving_breaker_open_transitions", [breaker]() {
          return static_cast<double>(breaker->open_transitions());
        });
  }

  if (options.drift.enabled) {
    obs::DriftDetector::Options drift_options;
    drift_options.logger = options.drift.logger;
    drift_options.registry = service.metrics_.get();
    drift_options.metric_prefix = options.drift.metric_prefix;
    service.drift_ = std::make_shared<DriftMonitor>(std::move(drift_options));
    service.drift_->warmup = std::max<uint64_t>(1, options.drift.warmup_queries);
    service.drift_->check_every =
        std::max<uint64_t>(1, options.drift.check_every);
    // Watch the service's own scan telemetry: per-chunk scan cost always,
    // the IVF routing distributions when that path exists, and the served
    // latency distribution. All registered above, so GetHistogram returns
    // the very instruments the scans record into.
    std::vector<std::string> names = {"adc_scan_chunk_seconds"};
    if (options.use_ivf) {
      names.push_back("ivf_probed_cells");
      names.push_back("ivf_scanned_fraction");
    }
    names.push_back(
        obs::WithLabel("serving_latency_seconds", "outcome", "served"));
    for (const std::string& name : names) {
      service.drift_->detector.AddWatch(
          name, service.metrics_->GetHistogram(name), options.drift.watch);
    }
    service.drift_->watches = std::move(names);
  }

  if (options.slow_query.latency_threshold_seconds > 0.0 ||
      (options.shadow.sample_rate > 0.0 &&
       options.shadow.recall_miss_threshold > 0.0)) {
    service.slow_log_ =
        std::make_shared<obs::SlowQueryLog>(options.slow_query);
  }
  if (options.shadow.sample_rate > 0.0) {
    ShadowOptions shadow_options = options.shadow;
    if (service.slow_log_ != nullptr && !shadow_options.on_recall_miss) {
      // Recall misses land in the slow-query ring next to latency outliers;
      // the shadow task is asynchronous, so there is no span tree or scan
      // accounting to attach.
      std::shared_ptr<obs::SlowQueryLog> slow_log = service.slow_log_;
      shadow_options.on_recall_miss = [slow_log](double recall,
                                                 uint64_t /*successes*/,
                                                 uint64_t /*trials*/) {
        obs::SlowQueryRecord record;
        record.kind = "recall_miss";
        record.outcome = "ok";
        record.recall = recall;
        slow_log->Add(std::move(record));
      };
    }
    // The verifier needs the exact embedded database as its oracle; this is
    // the one place that copy is justified — it is what "shadow
    // verification against the exact index" means.
    service.shadow_ = std::make_shared<ShadowVerifier>(
        embedded, std::move(shadow_options), service.metrics_);
  }
  return service;
}

ServiceStats StatsSince(const ServiceStats& later,
                        const ServiceStats& earlier) {
  ServiceStats window = later;
  window.admitted -= earlier.admitted;
  window.degraded_admissions -= earlier.degraded_admissions;
  window.served -= earlier.served;
  window.shed -= earlier.shed;
  window.expired -= earlier.expired;
  window.cancelled -= earlier.cancelled;
  window.failed -= earlier.failed;
  window.flat_fallbacks -= earlier.flat_fallbacks;
  window.breaker_open_transitions -= earlier.breaker_open_transitions;
  // in_flight and breaker_state are instantaneous, not cumulative: keep
  // the later reading.
  window.served_latency = later.served_latency.Delta(earlier.served_latency);
  return window;
}

void RetrievalService::CountOutcome(const Status& status,
                                    double elapsed_seconds) const {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      inst_.expired->Increment();
      inst_.latency_expired->Record(elapsed_seconds);
      break;
    case StatusCode::kCancelled:
      inst_.cancelled->Increment();
      inst_.latency_cancelled->Record(elapsed_seconds);
      break;
    default:
      inst_.failed->Increment();
      inst_.latency_failed->Record(elapsed_seconds);
      break;
  }
}

void RetrievalService::TickDrift() const {
  const uint64_t n =
      drift_->served.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (n >= drift_->warmup &&
      !drift_->frozen.exchange(true, std::memory_order_acq_rel)) {
    // Exactly one thread freezes: everything served during warmup becomes
    // the baseline distribution for every watch.
    for (const std::string& name : drift_->watches) {
      drift_->detector.FreezeBaseline(name);
    }
    return;
  }
  if (n > drift_->warmup && (n - drift_->warmup) % drift_->check_every == 0) {
    drift_->detector.CheckAll();
  }
}

Result<std::vector<ServedHit>> RetrievalService::ServeEmbedded(
    const float* query, size_t top_k, const ScanControl& control,
    size_t observed_depth, obs::Trace* trace, const obs::Span* parent,
    int class_bucket, RequestCost* cost) const {
  WallTimer timer;
  obs::ProfilePhase request_phase("request");
  // The whole post-embedding lifecycle runs on this thread (per-query scan
  // work is single-threaded; parallelism is across queries), so the
  // thread-CPU delta is exactly the request's compute.
  const uint64_t cpu_start = obs::ThreadCpuNowNanos();
  // Rolls the request's resource vector into the segmented cost counters
  // (overall always; head/mid/tail when the caller told us the bucket) and
  // hands it to the caller's RequestCost. Runs on every terminal path so
  // conservation holds: the sum of per-request vectors equals the counter
  // deltas exactly.
  const auto account_cost = [&]() {
    const uint64_t cpu_end = obs::ThreadCpuNowNanos();
    const uint64_t cpu_ns = cpu_end > cpu_start ? cpu_end - cpu_start : 0;
    const ScanStats scan =
        control.stats != nullptr ? *control.stats : ScanStats{};
    for (size_t s = 0; s < obs::kNumRecallSegments; ++s) {
      if (s != 0 && static_cast<int>(s) != class_bucket + 1) continue;
      inst_.cost_cpu_ns[s]->Increment(cpu_ns);
      inst_.cost_items[s]->Increment(scan.items);
      inst_.cost_codes_decoded[s]->Increment(scan.codes_decoded);
      inst_.cost_lut_builds[s]->Increment(scan.lut_builds);
      inst_.cost_shortlist[s]->Increment(scan.shortlist);
    }
    if (cost != nullptr) {
      cost->cpu_ns = cpu_ns;
      cost->scan = scan;
    }
    return cpu_ns;
  };

  // A request that arrives already expired or cancelled consumes no
  // admission slot and no rate-limiter token.
  Status pre = control.Check();
  if (!pre.ok()) {
    CountOutcome(pre, timer.ElapsedSeconds());
    account_cost();
    return pre;
  }

  AdmissionOutcome outcome;
  {
    obs::Span admission_span = MaybeSpan(trace, "admission", parent);
    outcome = admission_->TryAdmit(observed_depth);
  }
  if (outcome == AdmissionOutcome::kShed) {
    inst_.shed->Increment();
    inst_.latency_shed->Record(timer.ElapsedSeconds());
    account_cost();
    return Status::Unavailable("RetrievalService: overloaded, request shed");
  }
  AdmissionTicket ticket(admission_.get());
  const bool degraded = outcome == AdmissionOutcome::kDegrade;
  inst_.admitted->Increment();
  if (degraded) {
    inst_.degraded_admissions->Increment();
  }

  bool used_fallback = false;
  auto result = [&]() -> Result<std::vector<ServedHit>> {
    obs::Span search_span = MaybeSpan(trace, "search", parent);
    auto hits = searcher_->Search(query, top_k, control, degraded, trace,
                                  trace ? &search_span : nullptr,
                                  &used_fallback);
    if (!hits.ok()) return hits.status();
    std::vector<ServedHit> out(hits.value().size());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = {hits.value()[i].id, hits.value()[i].distance};
    }
    return out;
  }();
  const double elapsed = timer.ElapsedSeconds();
  if (result.ok()) {
    inst_.served->Increment();
    inst_.latency_served->Record(elapsed);
    if (drift_ != nullptr) TickDrift();
    // Shadow verification rides after the response is accounted: selection
    // and budget are decided in Acquire(), the exact re-run happens on the
    // pool (or inline when no pool is configured), never on the caller's
    // latency path beyond one query copy.
    if (shadow_ != nullptr && shadow_->Acquire()) {
      std::vector<uint32_t> ids;
      ids.reserve(result.value().size());
      for (const ServedHit& hit : result.value()) ids.push_back(hit.id);
      shadow_->Submit(query, std::move(ids));
    }
  } else {
    CountOutcome(result.status(), elapsed);
  }
  const uint64_t cpu_ns = account_cost();
  if (slow_log_ != nullptr &&
      slow_log_->options().latency_threshold_seconds > 0.0 &&
      elapsed >= slow_log_->options().latency_threshold_seconds) {
    obs::SlowQueryRecord record;
    record.kind = "latency";
    record.outcome =
        result.ok() ? "ok" : Status::CodeName(result.status().code());
    record.trace_id = trace != nullptr ? trace->trace_id() : 0;
    record.latency_seconds = elapsed;
    record.explain.cpu_ns = cpu_ns;
    if (control.stats != nullptr) {
      record.explain.chunks = control.stats->chunks;
      record.explain.items = control.stats->items;
      record.explain.probed_cells = control.stats->probed_cells;
      record.explain.codes_decoded = control.stats->codes_decoded;
      record.explain.lut_builds = control.stats->lut_builds;
      record.explain.shortlist = control.stats->shortlist;
    }
    record.explain.degraded = degraded;
    record.explain.flat_fallback = used_fallback;
    // The root query span is typically still open here (end_ns == 0); the
    // closed child spans carry the useful timing.
    if (trace != nullptr) record.spans = trace->Records();
    slow_log_->Add(std::move(record));
  }
  return result;
}

Result<std::vector<ServedHit>> RetrievalService::Query(const Matrix& features,
                                                       size_t top_k) const {
  return Query(features, top_k, RequestOptions{});
}

Result<std::vector<ServedHit>> RetrievalService::Query(
    const Matrix& features, size_t top_k,
    const RequestOptions& request) const {
  if (features.rows() != 1 ||
      features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("Query: expected a 1 x input_dim vector");
  }
  if (!AllFinite(features)) {
    return Status::InvalidArgument("Query: features contain NaN/Inf");
  }
  obs::ProfilePhase serve_phase("serve");
  ScanStats scan_stats;
  ScanControl control{request.deadline, request.cancel,
                      options_.scan_check_every};
  // Slow-query capture and the caller's resource vector both need scan
  // accounting even when the caller did not opt into tracing, so an
  // internal per-call trace / stats block stands in; QueryBatch rows keep
  // both off (shared ScanControl).
  obs::Trace internal_trace;
  obs::Trace* trace = request.trace;
  if (slow_log_ != nullptr || request.cost != nullptr) {
    control.stats = &scan_stats;
  }
  if (slow_log_ != nullptr && trace == nullptr) {
    trace = &internal_trace;
  }
  obs::Span query_span = MaybeSpan(trace, "query", nullptr);
  Matrix embedded;
  {
    obs::Span embed_span =
        MaybeSpan(trace, "embed", trace ? &query_span : nullptr);
    embedded = model_->Embed(features);
  }
  return ServeEmbedded(embedded.row(0), top_k, control,
                       /*observed_depth=*/0, trace,
                       trace ? &query_span : nullptr, request.class_bucket,
                       request.cost);
}

Result<std::vector<Result<std::vector<ServedHit>>>>
RetrievalService::QueryBatch(const Matrix& features, size_t top_k,
                             ThreadPool* pool,
                             const RequestOptions& request) const {
  using RowResult = Result<std::vector<ServedHit>>;
  if (features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("QueryBatch: feature dim mismatch");
  }
  const size_t n = features.rows();
  // Rows start out expired: any row the batch deadline prevents from
  // running keeps this status, so callers always get one Result per row.
  std::vector<RowResult> rows;
  rows.reserve(n);
  for (size_t q = 0; q < n; ++q) {
    rows.emplace_back(Status::DeadlineExceeded(
        "QueryBatch: deadline expired before this row started"));
  }
  if (n == 0) return rows;

  const ScanControl control{request.deadline, request.cancel,
                            options_.scan_check_every};
  try {
    // Embedding is a dense matrix product; non-finite rows embed to
    // non-finite garbage but are rejected per-row below, before any scan.
    const Matrix embedded =
        core::EmbedInChunks(*model_, features, /*chunk=*/4096, pool);

    // One task per row so a deadline can cut the batch between rows:
    // CancelPending() drops rows that never started, and running rows stop
    // at their next chunk check. Each call runs under its own TaskGroup, so
    // concurrent QueryBatch calls sharing one pool wait only on their own
    // queries. No exceptions cross the serving API: each row converts its
    // own failure to a per-row Status.
    TaskGroup group(pool);
    for (size_t q = 0; q < n; ++q) {
      group.Submit([&, q]() {
        try {
          if (!RowFinite(features, q)) {
            rows[q] = Status::InvalidArgument(
                "QueryBatch: row features contain NaN/Inf");
            return;
          }
          const size_t depth = pool ? pool->ApproxQueueDepth() : 0;
          inst_.queue_depth->Set(static_cast<double>(depth));
          rows[q] = ServeEmbedded(embedded.row(q), top_k, control, depth,
                                  /*trace=*/nullptr, /*parent=*/nullptr,
                                  request.class_bucket, /*cost=*/nullptr);
        } catch (const std::exception& e) {
          rows[q] = Status::Internal(
              std::string("QueryBatch: worker failed: ") + e.what());
        } catch (...) {
          rows[q] = Status::Internal("QueryBatch: worker failed");
        }
      });
    }
    if (request.deadline.IsInfinite()) {
      group.Wait();
    } else if (!group.WaitUntil(request.deadline.time_point())) {
      const size_t dropped = group.CancelPending();
      inst_.expired->Increment(dropped);
      // Rows already running observe the deadline at their next chunk
      // check, so this second wait is bounded by one chunk of work.
      group.Wait();
    }
    return rows;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("QueryBatch: batch failed: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("QueryBatch: batch failed");
  }
}

ServiceStats RetrievalService::Stats() const {
  // A view over the registry: Counter::Value() sums shards exactly, so
  // this snapshot satisfies the same conservation laws the old private
  // atomics did (asserted by the chaos tests).
  ServiceStats s;
  s.admitted = inst_.admitted->Value();
  s.degraded_admissions = inst_.degraded_admissions->Value();
  s.served = inst_.served->Value();
  s.shed = inst_.shed->Value();
  s.expired = inst_.expired->Value();
  s.cancelled = inst_.cancelled->Value();
  s.failed = inst_.failed->Value();
  s.flat_fallbacks = inst_.flat_fallbacks->Value();
  s.in_flight = admission_->InFlight();
  s.served_latency = inst_.latency_served->Snapshot();
  if (searcher_ && searcher_->breaker()) {
    s.breaker_open_transitions = searcher_->breaker()->open_transitions();
    s.breaker_state = searcher_->breaker()->state();
  }
  return s;
}

size_t RetrievalService::IndexMemoryBytes() const {
  return searcher_ ? searcher_->MemoryBytes() : 0;
}

}  // namespace lightlt::serving
