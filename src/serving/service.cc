#include "src/serving/service.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "src/core/pipeline.h"
#include "src/util/check.h"

namespace lightlt::serving {
namespace {

bool AllFinite(const Matrix& m) {
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool RowFinite(const Matrix& m, size_t row) {
  const float* data = m.row(row);
  for (size_t j = 0; j < m.cols(); ++j) {
    if (!std::isfinite(data[j])) return false;
  }
  return true;
}

/// Rerank hits checked this often against the request deadline/token.
constexpr size_t kRerankCheckEvery = 64;

}  // namespace

Result<RetrievalService> RetrievalService::Build(
    std::shared_ptr<const core::LightLtModel> model,
    const Matrix& db_features, const ServiceOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("RetrievalService: null model");
  }
  if (db_features.rows() == 0) {
    return Status::InvalidArgument("RetrievalService: empty database");
  }
  if (db_features.cols() != model->config().input_dim) {
    return Status::InvalidArgument(
        "RetrievalService: database feature dim mismatch");
  }
  // Artifact validation: a model deserialized from a damaged or stale file
  // (or a database with NaN features) must be rejected here, not discovered
  // as garbage neighbours in production queries.
  for (const auto& p : model->Parameters()) {
    if (!AllFinite(p->value())) {
      return Status::FailedPrecondition(
          "RetrievalService: model has non-finite weights");
    }
  }
  const size_t embed_dim = model->config().embed_dim;
  for (const Matrix& cb : model->Codebooks()) {
    if (cb.cols() != embed_dim) {
      return Status::FailedPrecondition(
          "RetrievalService: codebook/embedding dim mismatch");
    }
  }
  if (!AllFinite(db_features)) {
    return Status::InvalidArgument(
        "RetrievalService: database features contain NaN/Inf");
  }

  RetrievalService service;
  service.options_ = options;
  service.model_ = model;
  service.counters_ = std::make_shared<Counters>();
  service.admission_ = std::make_shared<AdmissionController>(options.admission);

  const Matrix embedded = core::EmbedInChunks(*model, db_features);
  std::vector<std::vector<uint32_t>> codes;
  model->dsq().Encode(embedded, &codes);

  if (options.use_ivf) {
    auto ivf = index::IvfAdcIndex::Build(embedded, model->Codebooks(), codes,
                                         options.ivf);
    if (!ivf.ok()) return ivf.status();
    service.ivf_ =
        std::make_unique<index::IvfAdcIndex>(std::move(ivf).value());
    service.breaker_ = std::make_shared<CircuitBreaker>(options.breaker);
  }
  // The flat ADC index is always kept: it serves re-ranking lookups
  // (Reconstruct) and is the fallback scan path.
  auto adc = index::AdcIndex::Build(model->Codebooks(), codes);
  if (!adc.ok()) return adc.status();
  service.adc_ = std::make_unique<index::AdcIndex>(std::move(adc).value());
  return service;
}

void RetrievalService::CountOutcome(const Status& status) const {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      counters_->expired.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
      counters_->cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      counters_->failed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

Result<std::vector<ServedHit>> RetrievalService::SearchEmbedded(
    const float* query, size_t top_k, const ScanControl& control,
    bool degraded) const {
  // Degraded admissions shed the optional work: no over-fetch, no exact
  // rerank, and the flat scan instead of the IVF path.
  const bool rerank = options_.exact_rerank && !degraded;
  const size_t pool =
      std::max(top_k, rerank ? options_.rerank_pool : top_k);

  std::vector<index::SearchHit> hits;
  bool have_hits = false;
  if (ivf_ != nullptr && !degraded) {
    // Graceful degradation: the flat ADC index covers the whole database,
    // so if the IVF path fails or its probed cells yield fewer candidates
    // than the flat scan would, fall back rather than fail or silently
    // shortchange the caller. Repeated failures open the breaker, which
    // routes straight to the flat scan until a cooldown probe succeeds.
    const size_t expected = std::min(pool, adc_->num_items());
    if (breaker_->AllowRequest()) {
      auto ivf_hits = ivf_->Search(query, pool, control, /*nprobe=*/0);
      if (ivf_hits.ok()) {
        if (ivf_hits.value().size() >= expected) {
          breaker_->RecordSuccess();
          hits = std::move(ivf_hits).value();
          have_hits = true;
        } else {
          breaker_->RecordFailure();  // shortfall
        }
      } else if (ivf_hits.status().code() == StatusCode::kDeadlineExceeded ||
                 ivf_hits.status().code() == StatusCode::kCancelled) {
        // The request ran out of budget mid-scan — that says nothing about
        // IVF health, so the breaker gets no verdict.
        breaker_->RecordAbandoned();
        return ivf_hits.status();
      } else {
        breaker_->RecordFailure();
      }
    }
    if (!have_hits) {
      counters_->flat_fallbacks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!have_hits) {
    auto flat = adc_->Search(query, pool, control);
    if (!flat.ok()) return flat.status();
    hits = std::move(flat).value();
  }

  if (rerank) {
    // Re-rank the pool by exact distance to the reconstructions: the ADC
    // score already is that distance up to a query-constant, so re-ranking
    // only matters when the candidate pool came from a lossier path (IVF
    // probing) or a future approximate scorer; it is cheap either way.
    const size_t d = adc_->dim();
    for (size_t i = 0; i < hits.size(); ++i) {
      if (i % kRerankCheckEvery == 0 && !control.Trivial()) {
        LIGHTLT_RETURN_IF_ERROR(control.Check());
      }
      auto& hit = hits[i];
      const Matrix recon = adc_->Reconstruct(hit.id);
      float dist = 0.0f;
      for (size_t j = 0; j < d; ++j) {
        const float diff = query[j] - recon[j];
        dist += diff * diff;
      }
      hit.distance = dist;
    }
    std::sort(hits.begin(), hits.end(),
              [](const index::SearchHit& a, const index::SearchHit& b) {
                return a.distance < b.distance;
              });
  }

  const size_t keep = std::min(top_k, hits.size());
  std::vector<ServedHit> out(keep);
  for (size_t i = 0; i < keep; ++i) out[i] = {hits[i].id, hits[i].distance};
  return out;
}

Result<std::vector<ServedHit>> RetrievalService::ServeEmbedded(
    const float* query, size_t top_k, const ScanControl& control,
    size_t observed_depth) const {
  // A request that arrives already expired or cancelled consumes no
  // admission slot and no rate-limiter token.
  Status pre = control.Check();
  if (!pre.ok()) {
    CountOutcome(pre);
    return pre;
  }

  const AdmissionOutcome outcome = admission_->TryAdmit(observed_depth);
  if (outcome == AdmissionOutcome::kShed) {
    counters_->shed.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("RetrievalService: overloaded, request shed");
  }
  AdmissionTicket ticket(admission_.get());
  const bool degraded = outcome == AdmissionOutcome::kDegrade;
  counters_->admitted.fetch_add(1, std::memory_order_relaxed);
  if (degraded) {
    counters_->degraded_admissions.fetch_add(1, std::memory_order_relaxed);
  }

  auto result = SearchEmbedded(query, top_k, control, degraded);
  if (result.ok()) {
    counters_->served.fetch_add(1, std::memory_order_relaxed);
  } else {
    CountOutcome(result.status());
  }
  return result;
}

Result<std::vector<ServedHit>> RetrievalService::Query(const Matrix& features,
                                                       size_t top_k) const {
  return Query(features, top_k, RequestOptions{});
}

Result<std::vector<ServedHit>> RetrievalService::Query(
    const Matrix& features, size_t top_k,
    const RequestOptions& request) const {
  if (features.rows() != 1 ||
      features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("Query: expected a 1 x input_dim vector");
  }
  if (!AllFinite(features)) {
    return Status::InvalidArgument("Query: features contain NaN/Inf");
  }
  const ScanControl control{request.deadline, request.cancel,
                            options_.scan_check_every};
  const Matrix embedded = model_->Embed(features);
  return ServeEmbedded(embedded.row(0), top_k, control,
                       /*observed_depth=*/0);
}

Result<std::vector<Result<std::vector<ServedHit>>>>
RetrievalService::QueryBatch(const Matrix& features, size_t top_k,
                             ThreadPool* pool,
                             const RequestOptions& request) const {
  using RowResult = Result<std::vector<ServedHit>>;
  if (features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("QueryBatch: feature dim mismatch");
  }
  const size_t n = features.rows();
  // Rows start out expired: any row the batch deadline prevents from
  // running keeps this status, so callers always get one Result per row.
  std::vector<RowResult> rows;
  rows.reserve(n);
  for (size_t q = 0; q < n; ++q) {
    rows.emplace_back(Status::DeadlineExceeded(
        "QueryBatch: deadline expired before this row started"));
  }
  if (n == 0) return rows;

  const ScanControl control{request.deadline, request.cancel,
                            options_.scan_check_every};
  try {
    // Embedding is a dense matrix product; non-finite rows embed to
    // non-finite garbage but are rejected per-row below, before any scan.
    const Matrix embedded =
        core::EmbedInChunks(*model_, features, /*chunk=*/4096, pool);

    // One task per row so a deadline can cut the batch between rows:
    // CancelPending() drops rows that never started, and running rows stop
    // at their next chunk check. Each call runs under its own TaskGroup, so
    // concurrent QueryBatch calls sharing one pool wait only on their own
    // queries. No exceptions cross the serving API: each row converts its
    // own failure to a per-row Status.
    TaskGroup group(pool);
    for (size_t q = 0; q < n; ++q) {
      group.Submit([&, q]() {
        try {
          if (!RowFinite(features, q)) {
            rows[q] = Status::InvalidArgument(
                "QueryBatch: row features contain NaN/Inf");
            return;
          }
          const size_t depth = pool ? pool->ApproxQueueDepth() : 0;
          rows[q] = ServeEmbedded(embedded.row(q), top_k, control, depth);
        } catch (const std::exception& e) {
          rows[q] = Status::Internal(
              std::string("QueryBatch: worker failed: ") + e.what());
        } catch (...) {
          rows[q] = Status::Internal("QueryBatch: worker failed");
        }
      });
    }
    if (request.deadline.IsInfinite()) {
      group.Wait();
    } else if (!group.WaitUntil(request.deadline.time_point())) {
      const size_t dropped = group.CancelPending();
      counters_->expired.fetch_add(dropped, std::memory_order_relaxed);
      // Rows already running observe the deadline at their next chunk
      // check, so this second wait is bounded by one chunk of work.
      group.Wait();
    }
    return rows;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("QueryBatch: batch failed: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("QueryBatch: batch failed");
  }
}

ServiceStats RetrievalService::Stats() const {
  ServiceStats s;
  s.admitted = counters_->admitted.load(std::memory_order_relaxed);
  s.degraded_admissions =
      counters_->degraded_admissions.load(std::memory_order_relaxed);
  s.served = counters_->served.load(std::memory_order_relaxed);
  s.shed = counters_->shed.load(std::memory_order_relaxed);
  s.expired = counters_->expired.load(std::memory_order_relaxed);
  s.cancelled = counters_->cancelled.load(std::memory_order_relaxed);
  s.failed = counters_->failed.load(std::memory_order_relaxed);
  s.flat_fallbacks = counters_->flat_fallbacks.load(std::memory_order_relaxed);
  s.in_flight = admission_->InFlight();
  if (breaker_) {
    s.breaker_open_transitions = breaker_->open_transitions();
    s.breaker_state = breaker_->state();
  }
  return s;
}

size_t RetrievalService::IndexMemoryBytes() const {
  size_t bytes = adc_ ? adc_->MemoryBytes() : 0;
  if (ivf_) bytes += ivf_->MemoryBytes();
  return bytes;
}

}  // namespace lightlt::serving
