#include "src/serving/service.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>

#include "src/core/pipeline.h"
#include "src/util/check.h"

namespace lightlt::serving {
namespace {

bool AllFinite(const Matrix& m) {
  const float* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

}  // namespace

Result<RetrievalService> RetrievalService::Build(
    std::shared_ptr<const core::LightLtModel> model,
    const Matrix& db_features, const ServiceOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("RetrievalService: null model");
  }
  if (db_features.rows() == 0) {
    return Status::InvalidArgument("RetrievalService: empty database");
  }
  if (db_features.cols() != model->config().input_dim) {
    return Status::InvalidArgument(
        "RetrievalService: database feature dim mismatch");
  }
  // Artifact validation: a model deserialized from a damaged or stale file
  // (or a database with NaN features) must be rejected here, not discovered
  // as garbage neighbours in production queries.
  for (const auto& p : model->Parameters()) {
    if (!AllFinite(p->value())) {
      return Status::FailedPrecondition(
          "RetrievalService: model has non-finite weights");
    }
  }
  const size_t embed_dim = model->config().embed_dim;
  for (const Matrix& cb : model->Codebooks()) {
    if (cb.cols() != embed_dim) {
      return Status::FailedPrecondition(
          "RetrievalService: codebook/embedding dim mismatch");
    }
  }
  if (!AllFinite(db_features)) {
    return Status::InvalidArgument(
        "RetrievalService: database features contain NaN/Inf");
  }

  RetrievalService service;
  service.options_ = options;
  service.model_ = model;
  service.degraded_queries_ = std::make_shared<std::atomic<uint64_t>>(0);

  const Matrix embedded = core::EmbedInChunks(*model, db_features);
  std::vector<std::vector<uint32_t>> codes;
  model->dsq().Encode(embedded, &codes);

  if (options.use_ivf) {
    auto ivf = index::IvfAdcIndex::Build(embedded, model->Codebooks(), codes,
                                         options.ivf);
    if (!ivf.ok()) return ivf.status();
    service.ivf_ =
        std::make_unique<index::IvfAdcIndex>(std::move(ivf).value());
  }
  // The flat ADC index is always kept: it serves re-ranking lookups
  // (Reconstruct) and is the fallback scan path.
  auto adc = index::AdcIndex::Build(model->Codebooks(), codes);
  if (!adc.ok()) return adc.status();
  service.adc_ = std::make_unique<index::AdcIndex>(std::move(adc).value());
  return service;
}

std::vector<ServedHit> RetrievalService::SearchEmbedded(const float* query,
                                                        size_t top_k) const {
  const size_t pool = std::max(
      top_k, options_.exact_rerank ? options_.rerank_pool : top_k);

  std::vector<index::SearchHit> hits;
  if (ivf_ != nullptr) {
    // Graceful degradation: the flat ADC index covers the whole database, so
    // if the IVF path throws or its probed cells yield fewer candidates than
    // the flat scan would, fall back rather than fail or silently shortchange
    // the caller. The counter makes degraded mode observable.
    const size_t expected = std::min(pool, adc_->num_items());
    bool degraded = false;
    try {
      hits = ivf_->Search(query, pool);
      if (hits.size() < expected) degraded = true;
    } catch (...) {
      degraded = true;
    }
    if (degraded) {
      hits = adc_->Search(query, pool);
      if (degraded_queries_) degraded_queries_->fetch_add(1);
    }
  } else {
    hits = adc_->Search(query, pool);
  }

  if (options_.exact_rerank) {
    // Re-rank the pool by exact distance to the reconstructions: the ADC
    // score already is that distance up to a query-constant, so re-ranking
    // only matters when the candidate pool came from a lossier path (IVF
    // probing) or a future approximate scorer; it is cheap either way.
    const size_t d = adc_->dim();
    for (auto& hit : hits) {
      const Matrix recon = adc_->Reconstruct(hit.id);
      float dist = 0.0f;
      for (size_t j = 0; j < d; ++j) {
        const float diff = query[j] - recon[j];
        dist += diff * diff;
      }
      hit.distance = dist;
    }
    std::sort(hits.begin(), hits.end(),
              [](const index::SearchHit& a, const index::SearchHit& b) {
                return a.distance < b.distance;
              });
  }

  const size_t keep = std::min(top_k, hits.size());
  std::vector<ServedHit> out(keep);
  for (size_t i = 0; i < keep; ++i) out[i] = {hits[i].id, hits[i].distance};
  return out;
}

Result<std::vector<ServedHit>> RetrievalService::Query(const Matrix& features,
                                                       size_t top_k) const {
  if (features.rows() != 1 ||
      features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("Query: expected a 1 x input_dim vector");
  }
  if (!AllFinite(features)) {
    return Status::InvalidArgument("Query: features contain NaN/Inf");
  }
  const Matrix embedded = model_->Embed(features);
  return SearchEmbedded(embedded.row(0), top_k);
}

Result<std::vector<std::vector<ServedHit>>> RetrievalService::QueryBatch(
    const Matrix& features, size_t top_k, ThreadPool* pool) const {
  if (features.cols() != model_->config().input_dim) {
    return Status::InvalidArgument("QueryBatch: feature dim mismatch");
  }
  if (features.rows() == 0) return std::vector<std::vector<ServedHit>>{};
  if (!AllFinite(features)) {
    return Status::InvalidArgument("QueryBatch: features contain NaN/Inf");
  }
  // Each call runs under its own TaskGroup, so concurrent QueryBatch calls
  // sharing one pool wait only on their own queries. A worker exception is
  // rethrown by ParallelFor and converted to Status here (no exceptions
  // cross the serving API).
  try {
    const Matrix embedded =
        core::EmbedInChunks(*model_, features, /*chunk=*/4096, pool);
    std::vector<std::vector<ServedHit>> results(features.rows());
    ParallelFor(
        pool, features.rows(),
        [&](size_t q) { results[q] = SearchEmbedded(embedded.row(q), top_k); },
        /*min_chunk=*/4);
    return results;
  } catch (const std::exception& e) {
    return Status::Internal(std::string("QueryBatch: worker failed: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("QueryBatch: worker failed");
  }
}

size_t RetrievalService::IndexMemoryBytes() const {
  size_t bytes = adc_ ? adc_->MemoryBytes() : 0;
  if (ivf_) bytes += ivf_->MemoryBytes();
  return bytes;
}

}  // namespace lightlt::serving
