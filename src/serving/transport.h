// The Router's transport seam (DESIGN.md §14).
//
// SearchTransport is the surface the Router actually needs from a cluster:
// the shard/replica grid shape, the partition layout (for coverage math),
// and one attempt primitive — SearchReplica returning a ReplicaAttempt in
// global database ids. LocalShardTransport adapts an in-process ShardSet;
// net::RemoteTransport (src/net/client.h) speaks the same contract over
// the wire. Because hits come back in global ids with deterministic
// (distance, id) order either way, the Router's k-way merge is
// bit-identical no matter which transport carried the attempts — the
// loopback e2e test asserts exactly that.
//
// Implementations must be thread-safe: the Router calls SearchReplica from
// one task per shard, concurrently.

#ifndef LIGHTLT_SERVING_TRANSPORT_H_
#define LIGHTLT_SERVING_TRANSPORT_H_

#include <memory>
#include <utility>

#include "src/obs/trace.h"
#include "src/serving/shard.h"
#include "src/util/deadline.h"

namespace lightlt::serving {

/// Abstract replica-attempt carrier. Error mapping contract (the health
/// monitor interprets attempt statuses uniformly across transports):
///  * kUnavailable       — replica (or its link) failed; retryable.
///  * kDeadlineExceeded  — the attempt's budget expired; not retryable.
///  * kCancelled         — the caller abandoned the request; no verdict.
class SearchTransport {
 public:
  virtual ~SearchTransport() = default;

  virtual size_t num_shards() const = 0;
  virtual size_t num_replicas() const = 0;
  /// Database rows held by `shard` (coverage accounting).
  virtual size_t shard_items(size_t shard) const = 0;
  virtual size_t total_items() const = 0;

  /// One search attempt on (shard, replica). Never throws; every failure
  /// mode lands in ReplicaAttempt::status, hits are global database ids.
  virtual ReplicaAttempt SearchReplica(size_t shard, size_t replica,
                                       const float* query, size_t top_k,
                                       const ScanControl& control,
                                       obs::Trace* trace,
                                       const obs::Span* parent) const = 0;
};

/// In-process transport: forwards straight to a ShardSet.
class LocalShardTransport : public SearchTransport {
 public:
  explicit LocalShardTransport(std::shared_ptr<const ShardSet> shards)
      : shards_(std::move(shards)) {}

  size_t num_shards() const override { return shards_->num_shards(); }
  size_t num_replicas() const override { return shards_->num_replicas(); }
  size_t shard_items(size_t shard) const override {
    return shards_->shard_items(shard);
  }
  size_t total_items() const override { return shards_->total_items(); }

  ReplicaAttempt SearchReplica(size_t shard, size_t replica,
                               const float* query, size_t top_k,
                               const ScanControl& control, obs::Trace* trace,
                               const obs::Span* parent) const override {
    return shards_->SearchReplica(shard, replica, query, top_k, control,
                                  trace, parent);
  }

  const ShardSet& shards() const { return *shards_; }

 private:
  std::shared_ptr<const ShardSet> shards_;
};

}  // namespace lightlt::serving

#endif  // LIGHTLT_SERVING_TRANSPORT_H_
