// Deadline-aware TCP sockets for the shard RPC transport (DESIGN.md §14).
//
// Socket wraps one non-blocking TCP connection: every operation polls in
// short ticks against a ScanControl, so a blocked send/recv observes the
// request's deadline and cancellation token within one tick instead of
// hanging in a syscall. Listener wraps a bound accept socket the same way.
//
// Error mapping contract (the health monitor depends on it):
//  * connect refused / unreachable / peer reset / EOF mid-buffer
//      → kUnavailable  (retryable: the replica may come back)
//  * deadline expired while connecting, sending or receiving
//      → kDeadlineExceeded  (never retryable: the budget is spent)
//  * cancellation token raised
//      → kCancelled
//
// NetFaultPlan (src/net/fault.h) injects at this layer: connect refusal,
// send truncation + hard close, received-byte flips, stalls, and resets
// after N frames — each socket captures the armed plan at creation and
// applies it with per-connection counters.

#ifndef LIGHTLT_NET_SOCKET_H_
#define LIGHTLT_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/net/fault.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace lightlt::net {

/// One TCP connection. Move-only; the destructor closes the descriptor.
/// Not thread-safe except ShutdownNow(), which may interrupt a blocked
/// peer thread (the server's drain path does exactly that).
class Socket {
 public:
  Socket() = default;
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Dials host:port, bounded by `deadline`. Applies the armed
  /// NetFaultPlan's connect refusal first.
  static Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                                   const Deadline& deadline);

  /// Sends exactly `size` bytes, polling `control` between partial writes.
  Status SendAll(const void* data, size_t size, const ScanControl& control);

  /// Receives exactly `size` bytes, polling `control` between partial
  /// reads. A peer close before the buffer fills is kUnavailable ("closed
  /// by peer" at offset 0 of the call, "truncated" mid-buffer).
  Status RecvAll(void* data, size_t size, const ScanControl& control);

  /// Frame-boundary hook for the codec: applies reset_after_frames and
  /// counts one written frame. Returns non-OK when the injected reset
  /// fired (the socket is shut down in both directions).
  Status NotifyFrameWritten();

  /// Shuts the connection down in both directions, waking any thread
  /// blocked in SendAll/RecvAll on it with kUnavailable. Thread-safe,
  /// idempotent; does not release the descriptor (the owner still closes).
  void ShutdownNow();

  void Close();
  bool valid() const { return fd_.load() >= 0; }
  int fd() const { return fd_.load(); }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  friend class Listener;
  explicit Socket(int fd);

  /// Sleeps the injected stall (if any), charging it against `control`.
  Status ApplyStall(const ScanControl& control);

  /// Atomic because ShutdownNow() is called from a stopping thread while
  /// the owning handler thread reads/writes/closes the socket.
  std::atomic<int> fd_{-1};
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t frames_written_ = 0;
  bool fault_armed_ = false;
  bool truncated_ = false;  // send_truncate_at fired; socket is dead
  NetFaultPlan fault_;
};

/// A bound, listening TCP socket. Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds host:port (port 0 = ephemeral; see port()) and listens.
  static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog = 64);

  /// Accepts one connection, waiting at most `timeout_seconds`. Returns
  /// kDeadlineExceeded on timeout (the caller's poll tick, not an error)
  /// and kUnavailable once the listener is closed.
  Result<Socket> Accept(double timeout_seconds);

  /// The locally bound port (resolves port 0 after Bind).
  uint16_t port() const { return port_; }

  /// Closes the accept socket, waking a blocked Accept. Thread-safe.
  void Close();
  bool valid() const { return fd_ >= 0; }

 private:
  /// Atomic because Close() races the accept thread's poll tick: the
  /// stopping thread exchanges the fd out while Accept() snapshots it.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_SOCKET_H_
