#include "src/net/fleet.h"

#include <chrono>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/deadline.h"

namespace lightlt::net {
namespace {

constexpr double kPollTickSeconds = 0.002;

double SteadySeconds() {
  return static_cast<double>(obs::SteadyNowNanos()) * 1e-9;
}

/// Inserts `suffix` into a possibly-labelled metric name before its label
/// block: `base` → `base_p95`, `base{a="b"}` → `base_p95{a="b"}` — keeps
/// derived series (quantiles of a remote histogram) valid exposition text.
std::string SuffixedName(const std::string& name, const std::string& suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

FleetCollector::FleetCollector(std::vector<FleetEndpoint> endpoints,
                               const FleetCollectorOptions& options)
    : options_(options) {
  clock_ = options_.clock ? options_.clock
                          : std::function<double()>(&SteadySeconds);
  members_.reserve(endpoints.size());
  for (const FleetEndpoint& ep : endpoints) {
    auto member = std::make_unique<Member>();
    member->where = ep;
    member->view.shard = ep.shard;
    member->view.replica = ep.replica;
    member->client =
        std::make_unique<RemoteSearcherClient>(ep.endpoint, options_.client);
    members_.push_back(std::move(member));
  }
  if (options_.registry != nullptr) {
    const std::string& p = options_.metric_prefix;
    polls_ok_counter_ = options_.registry->GetCounter(
        obs::WithLabel(p + "polls_total", "outcome", "ok"));
    polls_failed_counter_ = options_.registry->GetCounter(
        obs::WithLabel(p + "polls_total", "outcome", "failed"));
    payload_drops_counter_ =
        options_.registry->GetCounter(p + "payload_drops_total");
    members_reachable_gauge_ =
        options_.registry->GetGauge(p + "members_reachable");
  }
}

FleetCollector::~FleetCollector() { Stop(); }

Status FleetCollector::PollMember(Member* member) {
  const uint64_t wire_errors_before = member->client->stats().wire_errors;
  Result<WireMetricsResponse> resp =
      member->client->GetMetrics(Deadline::After(options_.poll_timeout_seconds));
  if (!resp.ok()) {
    // A wire-error bump means the member answered but the payload was
    // corrupt (CRC/decode) — that is a payload drop, not an outage.
    if (member->client->stats().wire_errors > wire_errors_before) {
      payload_drops_++;
      if (payload_drops_counter_ != nullptr) payload_drops_counter_->Increment();
    }
    member->view.reachable = false;
    return resp.status();
  }
  const WireMetricsResponse& m = resp.value();
  if (m.code != static_cast<int32_t>(StatusCode::kOk)) {
    member->view.reachable = false;
    return Status(static_cast<StatusCode>(m.code), m.message);
  }
  // A remote built with different histogram constants would merge buckets
  // that mean different latencies; refuse the whole payload.
  if (m.sub_buckets != static_cast<uint32_t>(obs::Histogram::kSubBuckets) ||
      m.min_exponent != obs::Histogram::kMinExponent ||
      m.max_exponent != obs::Histogram::kMaxExponent) {
    payload_drops_++;
    layout_rejects_++;
    if (payload_drops_counter_ != nullptr) payload_drops_counter_->Increment();
    member->view.reachable = false;
    return Status::InvalidArgument(
        "fleet: remote histogram bucket layout does not match this build");
  }
  member->view.reachable = true;
  member->view.polls_ok++;
  member->view.prometheus_text = m.prometheus_text;
  member->view.snapshot = m.snapshot;
  ReExport(*member);
  return Status::Ok();
}

void FleetCollector::PollMemberProfile(Member* member) {
  const uint64_t wire_errors_before = member->client->stats().wire_errors;
  Result<WireProfileResponse> resp =
      member->client->GetProfile(Deadline::After(options_.poll_timeout_seconds));
  Status s = Status::Ok();
  if (!resp.ok()) {
    s = resp.status();
    // Same classification as metrics polls: a wire-error bump means the
    // member answered but the payload was corrupt, not that it is down.
    if (member->client->stats().wire_errors > wire_errors_before) {
      profile_payload_drops_++;
      if (payload_drops_counter_ != nullptr) payload_drops_counter_->Increment();
    }
  } else if (resp.value().code != static_cast<int32_t>(StatusCode::kOk)) {
    s = Status(StatusCodeFromWire(resp.value().code), resp.value().message);
  }
  if (!s.ok()) {
    // Keep the member's last good profile — a skipped profile poll only
    // means the fleet merge is as stale as that member's previous pull.
    profile_polls_failed_++;
    if (options_.logger != nullptr) {
      options_.logger->Log(
          obs::LogLevel::kWarn, "fleet", "profile poll skipped",
          {obs::LogField("shard", static_cast<uint64_t>(member->where.shard)),
           obs::LogField("replica",
                         static_cast<uint64_t>(member->where.replica)),
           obs::LogField("code", Status::CodeName(s.code())),
           obs::LogField("error", s.message())});
    }
    return;
  }
  member->view.profile = std::move(resp.value().profile);
  member->view.profile_polls_ok++;
  profile_polls_ok_++;
}

void FleetCollector::ReExport(const Member& member) {
  obs::MetricsRegistry* reg = options_.registry;
  if (reg == nullptr) return;
  const std::string& p = options_.metric_prefix;
  const std::string shard = std::to_string(member.where.shard);
  const std::string replica = std::to_string(member.where.replica);
  auto labelled = [&](const std::string& name) {
    return obs::AddLabel(obs::AddLabel(p + name, "shard", shard), "replica",
                         replica);
  };
  // The collector mirrors observed values, so remote counters re-export as
  // gauges (Set, not Increment — a re-poll must not double-count).
  for (const auto& c : member.view.snapshot.counters) {
    reg->GetGauge(labelled(c.name))->Set(static_cast<double>(c.value));
  }
  for (const auto& g : member.view.snapshot.gauges) {
    reg->GetGauge(labelled(g.name))->Set(g.value);
  }
  for (const auto& h : member.view.snapshot.histograms) {
    reg->GetGauge(labelled(SuffixedName(h.name, "_count")))
        ->Set(static_cast<double>(h.snapshot.count));
    reg->GetGauge(labelled(SuffixedName(h.name, "_sum")))->Set(h.snapshot.sum);
    reg->GetGauge(labelled(SuffixedName(h.name, "_p50")))
        ->Set(h.snapshot.Quantile(0.50));
    reg->GetGauge(labelled(SuffixedName(h.name, "_p95")))
        ->Set(h.snapshot.Quantile(0.95));
    reg->GetGauge(labelled(SuffixedName(h.name, "_p99")))
        ->Set(h.snapshot.Quantile(0.99));
  }
}

void FleetCollector::RebuildMerged() {
  merged_.clear();
  merged_profile_ = obs::ProfileSnapshot{};
  size_t reachable = 0;
  for (const auto& member : members_) {
    // Stacks travel verbatim, so the fleet profile is the exact sum of the
    // members' latest accepted snapshots regardless of poll timing.
    if (member->view.profile_polls_ok > 0) {
      merged_profile_.MergeFrom(member->view.profile);
    }
    if (!member->view.reachable && member->view.polls_ok == 0) continue;
    if (member->view.reachable) reachable++;
    for (const auto& h : member->view.snapshot.histograms) {
      // Layout already checked against this build at accept time, so a
      // merge failure here would be a bug, not remote data; drop silently
      // rather than poison the map.
      (void)merged_[h.name].MergeFrom(h.snapshot);
    }
  }
  if (members_reachable_gauge_ != nullptr) {
    members_reachable_gauge_->Set(static_cast<double>(reachable));
  }
  if (options_.registry != nullptr) {
    const std::string& p = options_.metric_prefix;
    for (const auto& [name, snap] : merged_) {
      options_.registry->GetGauge(p + SuffixedName(name, "_merged_count"))
          ->Set(static_cast<double>(snap.count));
      options_.registry->GetGauge(p + SuffixedName(name, "_merged_p95"))
          ->Set(snap.Quantile(0.95));
    }
  }
}

Status FleetCollector::PollOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first_error = Status::Ok();
  for (auto& member : members_) {
    polls_attempted_++;
    if (options_.collect_profiles) PollMemberProfile(member.get());
    Status s = PollMember(member.get());
    if (s.ok()) {
      polls_ok_++;
      if (polls_ok_counter_ != nullptr) polls_ok_counter_->Increment();
    } else {
      polls_failed_++;
      if (polls_failed_counter_ != nullptr) polls_failed_counter_->Increment();
      if (options_.logger != nullptr) {
        options_.logger->Log(
            obs::LogLevel::kWarn, "fleet", "metrics poll skipped",
            {obs::LogField("shard",
                           static_cast<uint64_t>(member->where.shard)),
             obs::LogField("replica",
                           static_cast<uint64_t>(member->where.replica)),
             obs::LogField("code", Status::CodeName(s.code())),
             obs::LogField("error", s.message())});
      }
      if (first_error.ok()) first_error = s;
    }
  }
  RebuildMerged();
  return first_error;
}

void FleetCollector::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
}

void FleetCollector::Stop() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  running_.store(false, std::memory_order_release);
  if (poll_thread_.joinable()) poll_thread_.join();
}

void FleetCollector::PollLoop() {
  // First poll fires immediately; later ones gate on the injectable clock.
  double last_poll = clock_() - options_.poll_interval_seconds;
  while (running_.load(std::memory_order_acquire)) {
    const double now = clock_();
    if (now - last_poll >= options_.poll_interval_seconds) {
      (void)PollOnce();
      last_poll = now;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(kPollTickSeconds));
  }
}

FleetView FleetCollector::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetView view;
  view.members.reserve(members_.size());
  for (const auto& member : members_) {
    view.members.push_back(member->view);
  }
  view.merged = merged_;
  view.merged_profile = merged_profile_;
  view.polls_attempted = polls_attempted_;
  view.polls_ok = polls_ok_;
  view.polls_failed = polls_failed_;
  view.payload_drops = payload_drops_;
  view.layout_rejects = layout_rejects_;
  view.profile_polls_ok = profile_polls_ok_;
  view.profile_polls_failed = profile_polls_failed_;
  view.profile_payload_drops = profile_payload_drops_;
  return view;
}

}  // namespace lightlt::net
