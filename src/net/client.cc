#include "src/net/client.h"

#include <algorithm>
#include <utility>

#include "src/util/timer.h"

namespace lightlt::net {

RemoteSearcherClient::RemoteSearcherClient(const Endpoint& endpoint,
                                           const RemoteClientOptions& options)
    : endpoint_(endpoint), options_(options) {
  if (options_.max_pooled_connections == 0) {
    options_.max_pooled_connections = 1;
  }
  RegisterMetrics();
}

void RemoteSearcherClient::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  const std::string ep =
      endpoint_.host + ":" + std::to_string(endpoint_.port);
  const std::string& p = options_.metric_prefix;
  pooled_connections_gauge_ = reg->GetGauge(
      obs::WithLabel(p + "pooled_connections", "endpoint", ep));
  connects_counter_ =
      reg->GetCounter(obs::WithLabel(p + "connects_total", "endpoint", ep));
  reconnects_counter_ =
      reg->GetCounter(obs::WithLabel(p + "reconnects_total", "endpoint", ep));
  frames_sent_counter_ = reg->GetCounter(
      obs::WithLabel(p + "frames_sent_total", "endpoint", ep));
  frames_received_counter_ = reg->GetCounter(
      obs::WithLabel(p + "frames_received_total", "endpoint", ep));
  const std::string errors = p + "wire_errors_total";
  errors_refused_counter_ =
      reg->GetCounter(obs::WithLabel(errors, "kind", "refused"));
  errors_reset_counter_ =
      reg->GetCounter(obs::WithLabel(errors, "kind", "reset"));
  errors_timeout_counter_ =
      reg->GetCounter(obs::WithLabel(errors, "kind", "timeout"));
  errors_corrupt_counter_ =
      reg->GetCounter(obs::WithLabel(errors, "kind", "corrupt"));
  trace_drops_counter_ = reg->GetCounter(
      obs::WithLabel(p + "trace_drops_total", "endpoint", ep));
}

void RemoteSearcherClient::LogTransportError(const char* op,
                                             uint64_t trace_id,
                                             const Status& status) {
  if (options_.logger == nullptr) return;
  options_.logger->Log(
      obs::LogLevel::kWarn, "net_client", "transport error",
      {{"op", op},
       {"endpoint", endpoint_.host + ":" + std::to_string(endpoint_.port)},
       {"trace_id", obs::TraceIdHex(trace_id)},
       {"code", std::string(Status::CodeName(status.code()))},
       {"error", status.message()}});
}

Result<Socket> RemoteSearcherClient::Acquire(const ScanControl& control) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      Socket sock = std::move(pool_.back());
      pool_.pop_back();
      if (pooled_connections_gauge_ != nullptr) {
        pooled_connections_gauge_->Set(static_cast<double>(pool_.size()));
      }
      return sock;
    }
  }
  // Dial under the attempt's remaining budget with jittered-exponential
  // backoff between failures; each individual dial is additionally capped
  // so one black-hole SYN cannot eat the whole budget.
  Result<Socket> dialed = CallWithRetry(
      options_.dial_retry,
      [&]() -> Result<Socket> {
        LIGHTLT_RETURN_IF_ERROR(control.Check());
        Deadline dial = Deadline::After(
            std::min(options_.dial_timeout_seconds,
                     control.deadline.RemainingSeconds()));
        return Socket::ConnectTcp(endpoint_.host, endpoint_.port, dial);
      },
      control.deadline);
  if (!dialed.ok()) {
    dial_failures_.fetch_add(1, std::memory_order_relaxed);
    if (dialed.status().code() == StatusCode::kUnavailable &&
        errors_refused_counter_ != nullptr) {
      errors_refused_counter_->Increment();
    }
    return dialed;
  }
  bool reconnect;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    reconnect = connected_once_;
    connected_once_ = true;
  }
  connects_.fetch_add(1, std::memory_order_relaxed);
  if (connects_counter_ != nullptr) connects_counter_->Increment();
  if (reconnect) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (reconnects_counter_ != nullptr) reconnects_counter_->Increment();
  }
  return dialed;
}

void RemoteSearcherClient::Release(Socket sock) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < options_.max_pooled_connections) {
    pool_.push_back(std::move(sock));
  }
  if (pooled_connections_gauge_ != nullptr) {
    pooled_connections_gauge_->Set(static_cast<double>(pool_.size()));
  }
}

void RemoteSearcherClient::CloseIdleConnections() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.clear();
  if (pooled_connections_gauge_ != nullptr) pooled_connections_gauge_->Set(0);
}

Status RemoteSearcherClient::Exchange(Socket* sock, FrameType request_type,
                                      const std::vector<uint8_t>& request_body,
                                      FrameType expected_response,
                                      Frame* response,
                                      const ScanControl& control) {
  requests_sent_.fetch_add(1, std::memory_order_relaxed);
  LIGHTLT_RETURN_IF_ERROR(
      WriteFrame(sock, request_type, request_body, control));
  if (frames_sent_counter_ != nullptr) frames_sent_counter_->Increment();
  LIGHTLT_RETURN_IF_ERROR(
      ReadFrame(sock, response, control, options_.max_frame_body));
  if (frames_received_counter_ != nullptr) {
    frames_received_counter_->Increment();
  }
  if (response->type != expected_response) {
    return Status::IoError("net: unexpected response frame type");
  }
  return Status::Ok();
}

serving::ReplicaAttempt RemoteSearcherClient::Search(
    uint32_t shard, uint32_t replica, const float* query, size_t dim,
    size_t top_k, const ScanControl& control, obs::Trace* trace,
    const obs::Span* parent) {
  serving::ReplicaAttempt attempt;
  WallTimer timer;
  auto finish = [&](Status status) {
    attempt.status = std::move(status);
    attempt.latency_seconds = timer.ElapsedSeconds();
    return attempt;
  };

  Status entry = control.Check();
  if (!entry.ok()) return finish(std::move(entry));

  // The rpc span covers dial + send + server turnaround + receive; the
  // stitched server subtree lands under it, so per-hop wire time shows up
  // as the gap between this span's start and the remote rpc_recv start.
  obs::Span rpc_span;
  const uint64_t trace_id = trace != nullptr ? trace->trace_id() : 0;
  if (trace != nullptr) {
    rpc_span = parent != nullptr ? trace->StartSpan("rpc", *parent)
                                 : trace->StartSpan("rpc");
  }

  Result<Socket> acquired = Acquire(control);
  if (!acquired.ok()) {
    LogTransportError("search_dial", trace_id, acquired.status());
    return finish(acquired.status());
  }
  Socket sock = std::move(acquired).value();

  WireSearchRequest req;
  req.shard = shard;
  req.replica = replica;
  req.top_k = static_cast<uint32_t>(top_k);
  // Propagate the *remaining* budget, not the original: dialing and
  // backoff already spent their share, and the server re-materialises
  // this number as its own scan deadline.
  req.budget_seconds = control.deadline.IsInfinite()
                           ? -1.0
                           : std::max(0.0,
                                      control.deadline.RemainingSeconds());
  req.query.assign(query, query + dim);
  if (trace != nullptr) {
    req.trace.trace_id = trace_id;
    req.trace.parent_span = rpc_span.index();
    req.trace.sampled = true;
    req.trace.unix_minus_steady = trace->unix_minus_steady();
  }

  Frame response;
  Status status = Exchange(&sock, FrameType::kSearchRequest,
                           EncodeSearchRequest(req),
                           FrameType::kSearchResponse, &response, control);
  WireSearchResponse resp;
  if (status.ok()) {
    status = DecodeSearchResponse(response.body, &resp);
  }
  if (!status.ok()) {
    // The stream is poisoned either way — never pool it.
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    LogTransportError("search", trace_id, status);
    switch (status.code()) {
      case StatusCode::kIoError:
        // Corrupt or mis-typed frame: the CRC (or framing) caught in-flight
        // damage. The connection is dead but the replica may be fine —
        // surface as retryable so failover proceeds.
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (errors_corrupt_counter_ != nullptr) {
          errors_corrupt_counter_->Increment();
        }
        return finish(Status::Unavailable("net: corrupt response frame: " +
                                          status.message()));
      case StatusCode::kDeadlineExceeded:
        if (errors_timeout_counter_ != nullptr) {
          errors_timeout_counter_->Increment();
        }
        return finish(std::move(status));
      case StatusCode::kUnavailable:
        if (errors_reset_counter_ != nullptr) {
          errors_reset_counter_->Increment();
        }
        return finish(std::move(status));
      default:  // kCancelled and anything else pass through untouched
        return finish(std::move(status));
    }
  }

  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  Release(std::move(sock));

  // Stitch the server's subtree (already on our steady timeline) under
  // the rpc span; a corrupt trailer was discarded by the lenient decoder
  // and only bumps the drop counter — the hits below are still served.
  if (resp.trace_corrupt) {
    trace_drops_.fetch_add(1, std::memory_order_relaxed);
    if (trace_drops_counter_ != nullptr) trace_drops_counter_->Increment();
  } else if (trace != nullptr && !resp.spans.empty()) {
    trace->AttachRemote(rpc_span, std::move(resp.spans),
                        static_cast<int32_t>(shard));
  }
  rpc_span.End();

  const StatusCode code = StatusCodeFromWire(resp.code);
  attempt.shed = resp.shed;
  if (code == StatusCode::kOk) {
    attempt.hits = std::move(resp.hits);
    return finish(Status::Ok());
  }
  // The server's verdict travels back verbatim (kDeadlineExceeded from a
  // server-side scan cut stays a deadline signal, not a transport error).
  return finish(Status(code, "remote: " + resp.message));
}

Result<WireInfoResponse> RemoteSearcherClient::GetInfo(
    uint32_t shard, const Deadline& deadline) {
  const ScanControl control{deadline, CancellationToken()};
  Result<Socket> acquired = Acquire(control);
  if (!acquired.ok()) return acquired.status();
  Socket sock = std::move(acquired).value();

  Frame response;
  Status status =
      Exchange(&sock, FrameType::kInfoRequest, EncodeInfoRequest(shard),
               FrameType::kInfoResponse, &response, control);
  WireInfoResponse resp;
  if (status.ok()) {
    status = DecodeInfoResponse(response.body, &resp);
  }
  if (!status.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    if (status.code() == StatusCode::kIoError) {
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      if (errors_corrupt_counter_ != nullptr) {
        errors_corrupt_counter_->Increment();
      }
      return Status::Unavailable("net: corrupt response frame: " +
                                 status.message());
    }
    return status;
  }
  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  Release(std::move(sock));
  const StatusCode code = StatusCodeFromWire(resp.code);
  if (code != StatusCode::kOk) {
    return Status(code, "remote: " + resp.message);
  }
  return resp;
}

Result<WireMetricsResponse> RemoteSearcherClient::GetMetrics(
    const Deadline& deadline) {
  const ScanControl control{deadline, CancellationToken()};
  Result<Socket> acquired = Acquire(control);
  if (!acquired.ok()) return acquired.status();
  Socket sock = std::move(acquired).value();

  Frame response;
  Status status =
      Exchange(&sock, FrameType::kMetricsRequest, EncodeMetricsRequest(),
               FrameType::kMetricsResponse, &response, control);
  WireMetricsResponse resp;
  if (status.ok()) {
    status = DecodeMetricsResponse(response.body, &resp);
  }
  if (!status.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    LogTransportError("get_metrics", 0, status);
    if (status.code() == StatusCode::kIoError) {
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      if (errors_corrupt_counter_ != nullptr) {
        errors_corrupt_counter_->Increment();
      }
      return Status::Unavailable("net: corrupt response frame: " +
                                 status.message());
    }
    return status;
  }
  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  Release(std::move(sock));
  const StatusCode code = StatusCodeFromWire(resp.code);
  if (code != StatusCode::kOk) {
    return Status(code, "remote: " + resp.message);
  }
  return resp;
}

Result<WireProfileResponse> RemoteSearcherClient::GetProfile(
    const Deadline& deadline) {
  const ScanControl control{deadline, CancellationToken()};
  Result<Socket> acquired = Acquire(control);
  if (!acquired.ok()) return acquired.status();
  Socket sock = std::move(acquired).value();

  Frame response;
  Status status =
      Exchange(&sock, FrameType::kProfileRequest, EncodeProfileRequest(),
               FrameType::kProfileResponse, &response, control);
  WireProfileResponse resp;
  if (status.ok()) {
    status = DecodeProfileResponse(response.body, &resp);
  }
  if (!status.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    LogTransportError("get_profile", 0, status);
    if (status.code() == StatusCode::kIoError) {
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      if (errors_corrupt_counter_ != nullptr) {
        errors_corrupt_counter_->Increment();
      }
      return Status::Unavailable("net: corrupt response frame: " +
                                 status.message());
    }
    return status;
  }
  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  Release(std::move(sock));
  const StatusCode code = StatusCodeFromWire(resp.code);
  if (code != StatusCode::kOk) {
    return Status(code, "remote: " + resp.message);
  }
  return resp;
}

Status RemoteSearcherClient::Ping(const Deadline& deadline) {
  const ScanControl control{deadline, CancellationToken()};
  Result<Socket> acquired = Acquire(control);
  if (!acquired.ok()) return acquired.status();
  Socket sock = std::move(acquired).value();
  Frame response;
  Status status = Exchange(&sock, FrameType::kPing, {}, FrameType::kPong,
                           &response, control);
  if (!status.ok()) {
    transport_errors_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  responses_ok_.fetch_add(1, std::memory_order_relaxed);
  Release(std::move(sock));
  return Status::Ok();
}

RemoteClientStats RemoteSearcherClient::stats() const {
  RemoteClientStats s;
  s.connects = connects_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.dial_failures = dial_failures_.load(std::memory_order_relaxed);
  s.requests_sent = requests_sent_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.transport_errors = transport_errors_.load(std::memory_order_relaxed);
  s.wire_errors = wire_errors_.load(std::memory_order_relaxed);
  s.trace_drops = trace_drops_.load(std::memory_order_relaxed);
  {
    auto* self = const_cast<RemoteSearcherClient*>(this);
    std::lock_guard<std::mutex> lock(self->pool_mu_);
    s.pooled_connections = pool_.size();
  }
  return s;
}

// ---------------------------------------------------------------------------
// RemoteTransport
// ---------------------------------------------------------------------------

Result<std::shared_ptr<RemoteTransport>> RemoteTransport::Connect(
    const std::vector<std::vector<Endpoint>>& endpoints,
    const RemoteClientOptions& options, const Deadline& deadline) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("RemoteTransport: no shards");
  }
  const size_t num_replicas = endpoints.front().size();
  if (num_replicas == 0) {
    return Status::InvalidArgument("RemoteTransport: no replicas");
  }
  for (const auto& shard_eps : endpoints) {
    if (shard_eps.size() != num_replicas) {
      return Status::InvalidArgument(
          "RemoteTransport: ragged endpoint grid (every shard must list "
          "the same number of replicas)");
    }
  }

  auto transport = std::shared_ptr<RemoteTransport>(new RemoteTransport());
  transport->num_shards_ = endpoints.size();
  transport->num_replicas_ = num_replicas;
  transport->items_.resize(endpoints.size(), 0);
  for (size_t s = 0; s < endpoints.size(); ++s) {
    for (size_t r = 0; r < num_replicas; ++r) {
      transport->clients_.push_back(std::make_unique<RemoteSearcherClient>(
          endpoints[s][r], options));
    }
  }

  // Learn the partition layout from each shard (first replica that
  // answers); all shards must agree on total size and dimension.
  for (size_t s = 0; s < transport->num_shards_; ++s) {
    Status last = Status::Unavailable(
        "RemoteTransport: no replica of shard " + std::to_string(s) +
        " answered an info request");
    bool got = false;
    for (size_t r = 0; r < num_replicas && !got; ++r) {
      Result<WireInfoResponse> info = transport->client(s, r).GetInfo(
          static_cast<uint32_t>(s), deadline);
      if (!info.ok()) {
        last = info.status();
        continue;
      }
      const WireInfoResponse& layout = info.value();
      transport->items_[s] = layout.items;
      if (s == 0) {
        transport->total_items_ = layout.total_items;
        transport->dim_ = layout.dim;
      } else if (transport->total_items_ != layout.total_items ||
                 transport->dim_ != layout.dim) {
        return Status::FailedPrecondition(
            "RemoteTransport: shards disagree on corpus layout");
      }
      got = true;
    }
    if (!got) return last;
  }
  return transport;
}

serving::ReplicaAttempt RemoteTransport::SearchReplica(
    size_t shard, size_t replica, const float* query, size_t top_k,
    const ScanControl& control, obs::Trace* trace,
    const obs::Span* parent) const {
  return client(shard, replica)
      .Search(static_cast<uint32_t>(shard), static_cast<uint32_t>(replica),
              query, dim_, top_k, control, trace, parent);
}

}  // namespace lightlt::net
