// Remote shard clients (DESIGN.md §14).
//
// RemoteSearcherClient speaks the frame protocol to one ShardServer
// endpoint. It owns a small connection pool: an attempt pops a pooled
// connection (or dials a fresh one under the jittered-exponential
// RetryPolicy, bounded by the attempt's remaining deadline), runs one
// request/response exchange, and returns the connection to the pool only
// if the exchange was clean — any transport error discards the socket, so
// a poisoned stream can never serve a later request. Reconnects after a
// server restart therefore need no client restart: the next attempt simply
// dials again.
//
// Error mapping (what ReplicaHealthMonitor sees, identical to in-process
// failures): refused/reset/EOF → kUnavailable (retryable, drives
// suspect→down), expired budget → kDeadlineExceeded (timeout signal),
// caller cancel → kCancelled (no verdict). A server-side Status travels
// back verbatim in the response body and outranks transport guesses.
//
// RemoteTransport implements the Router's SearchTransport over a
// shard×replica endpoint grid, learning the partition layout (items,
// offsets, dim) from InfoRequest at Connect() time — the Router merges
// remote attempts bit-identically to local ones.

#ifndef LIGHTLT_NET_CLIENT_H_
#define LIGHTLT_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/transport.h"
#include "src/util/deadline.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace lightlt::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RemoteClientOptions {
  /// Reconnect/backoff schedule for dialing (jittered exponential, reused
  /// from artifact I/O retries). The dial loop is additionally bounded by
  /// the attempt's remaining deadline.
  RetryPolicy dial_retry;
  /// Per-dial cap inside the retry loop, so one SYN into a black hole
  /// cannot eat the whole attempt budget.
  double dial_timeout_seconds = 1.0;
  /// Connections kept warm per endpoint.
  size_t max_pooled_connections = 2;
  size_t max_frame_body = kMaxFrameBody;
  /// Optional registry for `{metric_prefix}...` instruments; must outlive
  /// every client created with it.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "net_client_";
  /// Optional structured logger for transport errors; every line carries
  /// the request's trace_id so logs and traces correlate by grep.
  obs::Logger* logger = nullptr;
};

/// Exact per-client counters (one client = one endpoint).
struct RemoteClientStats {
  uint64_t connects = 0;    ///< successful dials
  uint64_t reconnects = 0;  ///< successful dials after the first
  uint64_t dial_failures = 0;
  uint64_t requests_sent = 0;
  uint64_t responses_ok = 0;     ///< clean exchange, any response code
  uint64_t transport_errors = 0; ///< exchange died on the wire
  uint64_t wire_errors = 0;      ///< corrupt/unexpected response frames
  /// Telemetry trailers discarded because they were corrupt — the search
  /// result was kept (degradation contract, DESIGN.md §15).
  uint64_t trace_drops = 0;
  uint64_t pooled_connections = 0;
};

class RemoteSearcherClient {
 public:
  RemoteSearcherClient(const Endpoint& endpoint,
                       const RemoteClientOptions& options);
  ~RemoteSearcherClient() = default;

  RemoteSearcherClient(const RemoteSearcherClient&) = delete;
  RemoteSearcherClient& operator=(const RemoteSearcherClient&) = delete;

  /// One remote replica attempt. Never throws; transport and server
  /// failures all land in ReplicaAttempt::status with the mapping above.
  /// With a non-null `trace`, opens an `rpc` span under `parent`,
  /// propagates the trace context on the wire, and stitches the server's
  /// span subtree back under the rpc span — a corrupt telemetry trailer
  /// degrades to a dropped subtree (counted), never a failed search.
  serving::ReplicaAttempt Search(uint32_t shard, uint32_t replica,
                                 const float* query, size_t dim,
                                 size_t top_k, const ScanControl& control,
                                 obs::Trace* trace = nullptr,
                                 const obs::Span* parent = nullptr);

  /// Fetches the hosted-shard layout (items, global offset, dim).
  Result<WireInfoResponse> GetInfo(uint32_t shard, const Deadline& deadline);

  /// Pulls the server's full MetricsRegistry snapshot over the metrics
  /// admin frame (the FleetCollector's poll primitive).
  Result<WireMetricsResponse> GetMetrics(const Deadline& deadline);

  /// Pulls the server's cumulative profile snapshot over the profile
  /// admin frame (kFailedPrecondition when the server has no profiler).
  Result<WireProfileResponse> GetProfile(const Deadline& deadline);

  /// Round-trips an empty ping (liveness probe).
  Status Ping(const Deadline& deadline);

  /// Drops every pooled connection (the next attempt dials fresh).
  void CloseIdleConnections();

  const Endpoint& endpoint() const { return endpoint_; }
  RemoteClientStats stats() const;

 private:
  /// Pops a pooled connection or dials with retry/backoff under `control`.
  Result<Socket> Acquire(const ScanControl& control);
  /// Returns a healthy connection to the pool (or closes it if full).
  void Release(Socket sock);
  /// One request/response exchange on an acquired connection. A non-OK
  /// status means the socket must be discarded.
  Status Exchange(Socket* sock, FrameType request_type,
                  const std::vector<uint8_t>& request_body,
                  FrameType expected_response, Frame* response,
                  const ScanControl& control);
  void RegisterMetrics();

  Endpoint endpoint_;
  RemoteClientOptions options_;

  std::mutex pool_mu_;
  std::vector<Socket> pool_;
  bool connected_once_ = false;

  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> dial_failures_{0};
  std::atomic<uint64_t> requests_sent_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> transport_errors_{0};
  std::atomic<uint64_t> wire_errors_{0};
  std::atomic<uint64_t> trace_drops_{0};

  obs::Gauge* pooled_connections_gauge_ = nullptr;
  obs::Counter* connects_counter_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* frames_sent_counter_ = nullptr;
  obs::Counter* frames_received_counter_ = nullptr;
  obs::Counter* errors_refused_counter_ = nullptr;
  obs::Counter* errors_reset_counter_ = nullptr;
  obs::Counter* errors_timeout_counter_ = nullptr;
  obs::Counter* errors_corrupt_counter_ = nullptr;
  obs::Counter* trace_drops_counter_ = nullptr;

  /// Logs one transport-level failure with trace-id correlation.
  void LogTransportError(const char* op, uint64_t trace_id,
                         const Status& status);
};

/// SearchTransport over a shard×replica endpoint grid. Each (shard,
/// replica) pair maps to one RemoteSearcherClient; the Router's failover
/// walk across replicas therefore walks across endpoints.
class RemoteTransport : public serving::SearchTransport {
 public:
  /// `endpoints[shard][replica]` — every shard must list the same number
  /// of replicas. Connect() fetches each shard's layout via InfoRequest
  /// (trying replicas in order) and fails if any shard is unreachable or
  /// the layouts disagree.
  static Result<std::shared_ptr<RemoteTransport>> Connect(
      const std::vector<std::vector<Endpoint>>& endpoints,
      const RemoteClientOptions& options, const Deadline& deadline);

  size_t num_shards() const override { return num_shards_; }
  size_t num_replicas() const override { return num_replicas_; }
  size_t shard_items(size_t shard) const override { return items_[shard]; }
  size_t total_items() const override { return total_items_; }

  serving::ReplicaAttempt SearchReplica(size_t shard, size_t replica,
                                        const float* query, size_t top_k,
                                        const ScanControl& control,
                                        obs::Trace* trace,
                                        const obs::Span* parent)
      const override;

  RemoteSearcherClient& client(size_t shard, size_t replica) const {
    return *clients_[shard * num_replicas_ + replica];
  }
  uint32_t dim() const { return dim_; }

 private:
  RemoteTransport() = default;

  size_t num_shards_ = 0;
  size_t num_replicas_ = 0;
  std::vector<size_t> items_;
  size_t total_items_ = 0;
  uint32_t dim_ = 0;
  /// Row-major [shard * num_replicas + replica]; unique_ptr for address
  /// stability (clients hold mutexes).
  std::vector<std::unique_ptr<RemoteSearcherClient>> clients_;
};

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_CLIENT_H_
