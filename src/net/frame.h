// Length-prefixed binary RPC frames for out-of-process shard serving
// (DESIGN.md §14), reusing the src/util/io checksum discipline on the wire.
//
// Frame layout (little-endian):
//
//   offset 0   u32  magic      'LTRP' (0x4C545250)
//          4   u8   version    kFrameVersion
//          5   u8   type       FrameType
//          6   u16  flags      reserved, must be zero
//          8   u32  body_len   <= kMaxFrameBody
//         12   u8[] body
//  12+body_len u32  crc32      CRC32 over header + body (same polynomial
//                              as the artifact files' footer)
//
// Hardened decode contract, mirroring the PR 2 loaders: the 12-byte header
// is validated (magic, version, zero flags, known type, bounded body_len)
// BEFORE any allocation, so a corrupt or adversarial length can never make
// the receiver allocate attacker-controlled sizes; the CRC is verified over
// every byte before the body is interpreted; message decoders read through
// a bounds-checked WireReader that rejects container counts larger than
// the bytes remaining. Every failure is a clean Status — never a crash,
// never a partial parse.

#ifndef LIGHTLT_NET_FRAME_H_
#define LIGHTLT_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/index/adc_index.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace lightlt::net {

inline constexpr uint32_t kFrameMagic = 0x4C545250;  // "LTRP"
/// v2 (PR 9): search requests carry a trace context, search responses a
/// telemetry trailer of span records, and the metrics admin frames exist.
inline constexpr uint8_t kFrameVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameFooterBytes = 4;
/// Upper bound on a frame body. Large enough for a 64k-hit response with
/// room to spare, small enough that a corrupt length cannot balloon memory.
inline constexpr size_t kMaxFrameBody = 1u << 22;  // 4 MiB
/// Upper bound on span records in a response's telemetry trailer; the
/// server drops (and counts) the excess rather than ballooning replies.
inline constexpr size_t kMaxWireSpans = 512;

enum class FrameType : uint8_t {
  kSearchRequest = 1,
  kSearchResponse = 2,
  kInfoRequest = 3,
  kInfoResponse = 4,
  kPing = 5,
  kPong = 6,
  kMetricsRequest = 7,
  kMetricsResponse = 8,
  // Profile admin frames (additive — no version bump): a shard process's
  // collapsed-stack profile snapshot, pulled like the metrics frames.
  kProfileRequest = 9,
  kProfileResponse = 10,
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> body;
};

// ---------------------------------------------------------------------------
// In-memory bounded serialization (the wire twin of Binary{Writer,Reader})
// ---------------------------------------------------------------------------

/// Appends little-endian scalars and containers to a byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// u32 length prefix + raw bytes.
  void PutString(const std::string& s);
  /// u32 count prefix + packed f32s.
  void PutF32Array(const float* data, size_t count);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Reads little-endian scalars and containers from a bounded view. Sticky:
/// after the first failure every read returns zero values; containers are
/// rejected before allocation when their count cannot fit the remaining
/// bytes (the FitsRemaining discipline of BinaryReader).
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  uint8_t TakeU8();
  uint16_t TakeU16();
  uint32_t TakeU32();
  uint64_t TakeU64();
  int32_t TakeI32() { return static_cast<int32_t>(TakeU32()); }
  float TakeF32();
  double TakeF64();
  std::string TakeString();
  std::vector<float> TakeF32Array();

  /// Fails the reader unless every byte has been consumed — trailing bytes
  /// in a message body are corruption, exactly like ExpectEof on files.
  Status ExpectConsumed();

  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  bool Take(void* out, size_t n);
  void Fail(const std::string& message);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  Status status_;
};

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Serializes a full frame (header + body + CRC footer).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& body);

/// Validates a 12-byte header; on success reports type and body length.
/// Never allocates.
Status DecodeFrameHeader(const uint8_t* header, FrameType* type,
                         uint32_t* body_len, size_t max_body = kMaxFrameBody);

/// Decodes one complete frame from a contiguous buffer (the fuzz surface:
/// every truncation and byte flip of a valid frame must fail cleanly).
/// Requires the buffer to contain exactly one frame.
Status DecodeFrameBytes(const uint8_t* data, size_t size, Frame* out,
                        size_t max_body = kMaxFrameBody);

/// Writes one frame to the socket and applies the frame-count fault hook.
Status WriteFrame(Socket* sock, FrameType type,
                  const std::vector<uint8_t>& body,
                  const ScanControl& control);

/// Reads one frame: header first (validated before the body allocation),
/// then body + CRC, verified before `out` is populated.
Status ReadFrame(Socket* sock, Frame* out, const ScanControl& control,
                 size_t max_body = kMaxFrameBody);

/// Second half of ReadFrame for callers that receive the 12-byte header
/// themselves — the server waits for headers under its drain token but
/// finishes a committed request under a harder stop token.
Status ReadFrameGivenHeader(Socket* sock,
                            const uint8_t header[kFrameHeaderBytes],
                            Frame* out, const ScanControl& control,
                            size_t max_body = kMaxFrameBody);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// Distributed trace context carried by every v2 search request
/// (DESIGN.md §15). `unix_minus_steady` is the client trace's
/// epoch-anchored clock offset: the server uses it to re-base its own
/// steady-clock spans onto the client's timeline before replying, so the
/// stitched tree shows per-hop wire time as the gap between client-send
/// and server-recv spans.
struct WireTraceContext {
  uint64_t trace_id = 0;
  int32_t parent_span = -1;  ///< client-side span the remote subtree joins
  bool sampled = false;      ///< false = server skips its span tree
  int64_t unix_minus_steady = 0;
};

/// One search call, shard-addressed (a server may host several shards).
/// `budget_seconds` propagates the request's *remaining* deadline so the
/// server can cut scans server-side via ScanControl; negative = infinite.
struct WireSearchRequest {
  uint32_t shard = 0;
  uint32_t replica = 0;
  uint32_t top_k = 0;
  double budget_seconds = -1.0;
  std::vector<float> query;
  WireTraceContext trace;
};

/// The server's verdict: the replica searcher's Status (code + message)
/// plus hits in *global* database ids when OK.
struct WireSearchResponse {
  int32_t code = 0;  // StatusCode as i32
  std::string message;
  std::vector<index::SearchHit> hits;
  double server_seconds = 0.0;
  /// The replica shed the request at its admission budget (forwarded so
  /// the client-side ReplicaAttempt keeps the same shape as a local one).
  bool shed = false;
  /// Telemetry trailer: the server's span records, already re-based onto
  /// the requesting trace's steady timeline. Decoded *leniently* — a
  /// corrupt trailer inside a CRC-valid frame clears `spans`, sets
  /// `trace_corrupt`, and the search result still decodes OK (the
  /// degradation contract of DESIGN.md §15).
  std::vector<obs::Trace::SpanRecord> spans;
  /// Spans the server dropped at the kMaxWireSpans cap.
  uint32_t spans_dropped = 0;
  /// Decode-side only (never encoded): the trailer failed to parse and
  /// was discarded.
  bool trace_corrupt = false;
};

/// Corpus layout of one hosted shard, fetched by clients at connect time.
struct WireInfoResponse {
  int32_t code = 0;
  std::string message;
  uint32_t shard = 0;
  uint64_t items = 0;
  uint64_t global_offset = 0;
  uint64_t total_items = 0;
  uint32_t dim = 0;
};

/// A shard process's full MetricsRegistry dump, pulled over the metrics
/// admin frame: Prometheus text for humans plus the structured snapshot
/// (full histogram bucket vectors) the FleetCollector merges exactly.
/// The bucket-layout triple is declared once so a collector can reject a
/// snapshot built with different histogram constants before merging.
struct WireMetricsResponse {
  int32_t code = 0;  // StatusCode as i32
  std::string message;
  std::string prometheus_text;
  uint32_t sub_buckets = 0;
  int32_t min_exponent = 0;
  int32_t max_exponent = 0;
  obs::RegistrySnapshot snapshot;
};

std::vector<uint8_t> EncodeSearchRequest(const WireSearchRequest& req);
Status DecodeSearchRequest(const std::vector<uint8_t>& body,
                           WireSearchRequest* out);

std::vector<uint8_t> EncodeSearchResponse(const WireSearchResponse& resp);
Status DecodeSearchResponse(const std::vector<uint8_t>& body,
                            WireSearchResponse* out);

/// Info request body: u32 shard id.
std::vector<uint8_t> EncodeInfoRequest(uint32_t shard);
Status DecodeInfoRequest(const std::vector<uint8_t>& body, uint32_t* shard);

/// Metrics request body: empty (the reply dumps the whole registry).
std::vector<uint8_t> EncodeMetricsRequest();
Status DecodeMetricsRequest(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeMetricsResponse(const WireMetricsResponse& resp);
Status DecodeMetricsResponse(const std::vector<uint8_t>& body,
                             WireMetricsResponse* out);

/// A shard process's cumulative profile snapshot, pulled over the profile
/// admin frame. Stacks travel verbatim, so per-shard snapshots merge
/// exactly (ProfileSnapshot::MergeFrom) into a fleet view.
struct WireProfileResponse {
  int32_t code = 0;  // StatusCode as i32
  std::string message;
  obs::ProfileSnapshot profile;
};

/// Profile request body: empty (the reply dumps the cumulative snapshot).
std::vector<uint8_t> EncodeProfileRequest();
Status DecodeProfileRequest(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeProfileResponse(const WireProfileResponse& resp);
Status DecodeProfileResponse(const std::vector<uint8_t>& body,
                             WireProfileResponse* out);

std::vector<uint8_t> EncodeInfoResponse(const WireInfoResponse& resp);
Status DecodeInfoResponse(const std::vector<uint8_t>& body,
                          WireInfoResponse* out);

/// Round-trips a StatusCode through its wire i32, clamping unknown values
/// to kInternal so a corrupt code cannot masquerade as OK.
StatusCode StatusCodeFromWire(int32_t code);

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_FRAME_H_
