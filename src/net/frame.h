// Length-prefixed binary RPC frames for out-of-process shard serving
// (DESIGN.md §14), reusing the src/util/io checksum discipline on the wire.
//
// Frame layout (little-endian):
//
//   offset 0   u32  magic      'LTRP' (0x4C545250)
//          4   u8   version    kFrameVersion
//          5   u8   type       FrameType
//          6   u16  flags      reserved, must be zero
//          8   u32  body_len   <= kMaxFrameBody
//         12   u8[] body
//  12+body_len u32  crc32      CRC32 over header + body (same polynomial
//                              as the artifact files' footer)
//
// Hardened decode contract, mirroring the PR 2 loaders: the 12-byte header
// is validated (magic, version, zero flags, known type, bounded body_len)
// BEFORE any allocation, so a corrupt or adversarial length can never make
// the receiver allocate attacker-controlled sizes; the CRC is verified over
// every byte before the body is interpreted; message decoders read through
// a bounds-checked WireReader that rejects container counts larger than
// the bytes remaining. Every failure is a clean Status — never a crash,
// never a partial parse.

#ifndef LIGHTLT_NET_FRAME_H_
#define LIGHTLT_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/index/adc_index.h"
#include "src/net/socket.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace lightlt::net {

inline constexpr uint32_t kFrameMagic = 0x4C545250;  // "LTRP"
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameFooterBytes = 4;
/// Upper bound on a frame body. Large enough for a 64k-hit response with
/// room to spare, small enough that a corrupt length cannot balloon memory.
inline constexpr size_t kMaxFrameBody = 1u << 22;  // 4 MiB

enum class FrameType : uint8_t {
  kSearchRequest = 1,
  kSearchResponse = 2,
  kInfoRequest = 3,
  kInfoResponse = 4,
  kPing = 5,
  kPong = 6,
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> body;
};

// ---------------------------------------------------------------------------
// In-memory bounded serialization (the wire twin of Binary{Writer,Reader})
// ---------------------------------------------------------------------------

/// Appends little-endian scalars and containers to a byte buffer.
class WireWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// u32 length prefix + raw bytes.
  void PutString(const std::string& s);
  /// u32 count prefix + packed f32s.
  void PutF32Array(const float* data, size_t count);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Reads little-endian scalars and containers from a bounded view. Sticky:
/// after the first failure every read returns zero values; containers are
/// rejected before allocation when their count cannot fit the remaining
/// bytes (the FitsRemaining discipline of BinaryReader).
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  uint8_t TakeU8();
  uint16_t TakeU16();
  uint32_t TakeU32();
  uint64_t TakeU64();
  int32_t TakeI32() { return static_cast<int32_t>(TakeU32()); }
  float TakeF32();
  double TakeF64();
  std::string TakeString();
  std::vector<float> TakeF32Array();

  /// Fails the reader unless every byte has been consumed — trailing bytes
  /// in a message body are corruption, exactly like ExpectEof on files.
  Status ExpectConsumed();

  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - offset_; }

 private:
  bool Take(void* out, size_t n);
  void Fail(const std::string& message);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
  Status status_;
};

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Serializes a full frame (header + body + CRC footer).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& body);

/// Validates a 12-byte header; on success reports type and body length.
/// Never allocates.
Status DecodeFrameHeader(const uint8_t* header, FrameType* type,
                         uint32_t* body_len, size_t max_body = kMaxFrameBody);

/// Decodes one complete frame from a contiguous buffer (the fuzz surface:
/// every truncation and byte flip of a valid frame must fail cleanly).
/// Requires the buffer to contain exactly one frame.
Status DecodeFrameBytes(const uint8_t* data, size_t size, Frame* out,
                        size_t max_body = kMaxFrameBody);

/// Writes one frame to the socket and applies the frame-count fault hook.
Status WriteFrame(Socket* sock, FrameType type,
                  const std::vector<uint8_t>& body,
                  const ScanControl& control);

/// Reads one frame: header first (validated before the body allocation),
/// then body + CRC, verified before `out` is populated.
Status ReadFrame(Socket* sock, Frame* out, const ScanControl& control,
                 size_t max_body = kMaxFrameBody);

/// Second half of ReadFrame for callers that receive the 12-byte header
/// themselves — the server waits for headers under its drain token but
/// finishes a committed request under a harder stop token.
Status ReadFrameGivenHeader(Socket* sock,
                            const uint8_t header[kFrameHeaderBytes],
                            Frame* out, const ScanControl& control,
                            size_t max_body = kMaxFrameBody);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// One search call, shard-addressed (a server may host several shards).
/// `budget_seconds` propagates the request's *remaining* deadline so the
/// server can cut scans server-side via ScanControl; negative = infinite.
struct WireSearchRequest {
  uint32_t shard = 0;
  uint32_t replica = 0;
  uint32_t top_k = 0;
  double budget_seconds = -1.0;
  std::vector<float> query;
};

/// The server's verdict: the replica searcher's Status (code + message)
/// plus hits in *global* database ids when OK.
struct WireSearchResponse {
  int32_t code = 0;  // StatusCode as i32
  std::string message;
  std::vector<index::SearchHit> hits;
  double server_seconds = 0.0;
  /// The replica shed the request at its admission budget (forwarded so
  /// the client-side ReplicaAttempt keeps the same shape as a local one).
  bool shed = false;
};

/// Corpus layout of one hosted shard, fetched by clients at connect time.
struct WireInfoResponse {
  int32_t code = 0;
  std::string message;
  uint32_t shard = 0;
  uint64_t items = 0;
  uint64_t global_offset = 0;
  uint64_t total_items = 0;
  uint32_t dim = 0;
};

std::vector<uint8_t> EncodeSearchRequest(const WireSearchRequest& req);
Status DecodeSearchRequest(const std::vector<uint8_t>& body,
                           WireSearchRequest* out);

std::vector<uint8_t> EncodeSearchResponse(const WireSearchResponse& resp);
Status DecodeSearchResponse(const std::vector<uint8_t>& body,
                            WireSearchResponse* out);

/// Info request body: u32 shard id.
std::vector<uint8_t> EncodeInfoRequest(uint32_t shard);
Status DecodeInfoRequest(const std::vector<uint8_t>& body, uint32_t* shard);

std::vector<uint8_t> EncodeInfoResponse(const WireInfoResponse& resp);
Status DecodeInfoResponse(const std::vector<uint8_t>& body,
                          WireInfoResponse* out);

/// Round-trips a StatusCode through its wire i32, clamping unknown values
/// to kInternal so a corrupt code cannot masquerade as OK.
StatusCode StatusCodeFromWire(int32_t code);

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_FRAME_H_
