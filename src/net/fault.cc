#include "src/net/fault.h"

#include <atomic>
#include <mutex>

namespace lightlt::net {
namespace {

std::mutex g_mu;
bool g_armed = false;
NetFaultPlan g_plan;
int g_connects_seen = 0;

std::atomic<uint64_t> g_connects_attempted{0};
std::atomic<uint64_t> g_connects_refused{0};
std::atomic<uint64_t> g_sends_truncated{0};
std::atomic<uint64_t> g_bytes_flipped{0};
std::atomic<uint64_t> g_stalls_injected{0};
std::atomic<uint64_t> g_resets_injected{0};

}  // namespace

void ArmNetFaults(const NetFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed = true;
  g_plan = plan;
  g_connects_seen = 0;
  g_connects_attempted.store(0, std::memory_order_relaxed);
  g_connects_refused.store(0, std::memory_order_relaxed);
  g_sends_truncated.store(0, std::memory_order_relaxed);
  g_bytes_flipped.store(0, std::memory_order_relaxed);
  g_stalls_injected.store(0, std::memory_order_relaxed);
  g_resets_injected.store(0, std::memory_order_relaxed);
}

void DisarmNetFaults() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed = false;
}

bool NetFaultsArmed() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_armed;
}

NetFaultCounters NetFaultCountersSnapshot() {
  NetFaultCounters c;
  c.connects_attempted = g_connects_attempted.load(std::memory_order_relaxed);
  c.connects_refused = g_connects_refused.load(std::memory_order_relaxed);
  c.sends_truncated = g_sends_truncated.load(std::memory_order_relaxed);
  c.bytes_flipped = g_bytes_flipped.load(std::memory_order_relaxed);
  c.stalls_injected = g_stalls_injected.load(std::memory_order_relaxed);
  c.resets_injected = g_resets_injected.load(std::memory_order_relaxed);
  return c;
}

namespace internal {

bool CaptureNetFaultPlan(NetFaultPlan* plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_armed) return false;
  *plan = g_plan;
  return true;
}

bool ConsumeConnectRefusal() {
  bool refuse = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_armed || g_plan.refuse_first_n_connects == 0) return false;
    ++g_connects_seen;
    refuse = g_plan.refuse_first_n_connects < 0 ||
             g_connects_seen <= g_plan.refuse_first_n_connects;
  }
  g_connects_attempted.fetch_add(1, std::memory_order_relaxed);
  if (refuse) g_connects_refused.fetch_add(1, std::memory_order_relaxed);
  return refuse;
}

void CountConnectAttempt() {
  g_connects_attempted.fetch_add(1, std::memory_order_relaxed);
}
void CountConnectRefused() {
  g_connects_refused.fetch_add(1, std::memory_order_relaxed);
}
void CountSendTruncated() {
  g_sends_truncated.fetch_add(1, std::memory_order_relaxed);
}
void CountByteFlipped() {
  g_bytes_flipped.fetch_add(1, std::memory_order_relaxed);
}
void CountStallInjected() {
  g_stalls_injected.fetch_add(1, std::memory_order_relaxed);
}
void CountResetInjected() {
  g_resets_injected.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace lightlt::net
