#include "src/net/frame.h"

#include <cstring>

#include "src/util/io.h"

namespace lightlt::net {
namespace {

bool KnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kSearchRequest) &&
         t <= static_cast<uint8_t>(FrameType::kProfileResponse);
}

void PutLe(std::vector<uint8_t>* out, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + n);
}

}  // namespace

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::PutU16(uint16_t v) { PutLe(&bytes_, &v, sizeof(v)); }
void WireWriter::PutU32(uint32_t v) { PutLe(&bytes_, &v, sizeof(v)); }
void WireWriter::PutU64(uint64_t v) { PutLe(&bytes_, &v, sizeof(v)); }
void WireWriter::PutF32(float v) { PutLe(&bytes_, &v, sizeof(v)); }
void WireWriter::PutF64(double v) { PutLe(&bytes_, &v, sizeof(v)); }

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutLe(&bytes_, s.data(), s.size());
}

void WireWriter::PutF32Array(const float* data, size_t count) {
  PutU32(static_cast<uint32_t>(count));
  PutLe(&bytes_, data, count * sizeof(float));
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

bool WireReader::Take(void* out, size_t n) {
  if (!status_.ok()) {
    std::memset(out, 0, n);
    return false;
  }
  if (n > size_ - offset_) {
    Fail("net: message truncated");
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_ + offset_, n);
  offset_ += n;
  return true;
}

void WireReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

uint8_t WireReader::TakeU8() {
  uint8_t v;
  Take(&v, sizeof(v));
  return v;
}
uint16_t WireReader::TakeU16() {
  uint16_t v;
  Take(&v, sizeof(v));
  return v;
}
uint32_t WireReader::TakeU32() {
  uint32_t v;
  Take(&v, sizeof(v));
  return v;
}
uint64_t WireReader::TakeU64() {
  uint64_t v;
  Take(&v, sizeof(v));
  return v;
}
float WireReader::TakeF32() {
  float v;
  Take(&v, sizeof(v));
  return v;
}
double WireReader::TakeF64() {
  double v;
  Take(&v, sizeof(v));
  return v;
}

std::string WireReader::TakeString() {
  const uint32_t len = TakeU32();
  if (!status_.ok()) return {};
  // Bound the count by the bytes actually present before allocating.
  if (len > size_ - offset_) {
    Fail("net: string length exceeds message");
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + offset_), len);
  offset_ += len;
  return s;
}

std::vector<float> WireReader::TakeF32Array() {
  const uint32_t count = TakeU32();
  if (!status_.ok()) return {};
  if (count > (size_ - offset_) / sizeof(float)) {
    Fail("net: array count exceeds message");
    return {};
  }
  std::vector<float> out(count);
  std::memcpy(out.data(), data_ + offset_, count * sizeof(float));
  offset_ += count * sizeof(float);
  return out;
}

Status WireReader::ExpectConsumed() {
  LIGHTLT_RETURN_IF_ERROR(status_);
  if (offset_ != size_) {
    return Status::IoError("net: trailing bytes in message body");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& body) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + body.size() + kFrameFooterBytes);
  const uint32_t magic = kFrameMagic;
  PutLe(&out, &magic, sizeof(magic));
  out.push_back(kFrameVersion);
  out.push_back(static_cast<uint8_t>(type));
  const uint16_t flags = 0;
  PutLe(&out, &flags, sizeof(flags));
  const uint32_t body_len = static_cast<uint32_t>(body.size());
  PutLe(&out, &body_len, sizeof(body_len));
  out.insert(out.end(), body.begin(), body.end());
  const uint32_t crc = Crc32(0, out.data(), out.size());
  PutLe(&out, &crc, sizeof(crc));
  return out;
}

Status DecodeFrameHeader(const uint8_t* header, FrameType* type,
                         uint32_t* body_len, size_t max_body) {
  uint32_t magic;
  std::memcpy(&magic, header, sizeof(magic));
  if (magic != kFrameMagic) {
    return Status::IoError("net: bad frame magic");
  }
  if (header[4] != kFrameVersion) {
    return Status::IoError("net: unsupported frame version " +
                           std::to_string(int{header[4]}));
  }
  if (!KnownFrameType(header[5])) {
    return Status::IoError("net: unknown frame type " +
                           std::to_string(int{header[5]}));
  }
  uint16_t flags;
  std::memcpy(&flags, header + 6, sizeof(flags));
  if (flags != 0) {
    return Status::IoError("net: nonzero reserved frame flags");
  }
  uint32_t len;
  std::memcpy(&len, header + 8, sizeof(len));
  if (len > max_body) {
    return Status::IoError("net: frame body length " + std::to_string(len) +
                           " exceeds limit " + std::to_string(max_body));
  }
  *type = static_cast<FrameType>(header[5]);
  *body_len = len;
  return Status::Ok();
}

Status DecodeFrameBytes(const uint8_t* data, size_t size, Frame* out,
                        size_t max_body) {
  if (size < kFrameHeaderBytes + kFrameFooterBytes) {
    return Status::IoError("net: frame shorter than header + footer");
  }
  FrameType type;
  uint32_t body_len;
  LIGHTLT_RETURN_IF_ERROR(DecodeFrameHeader(data, &type, &body_len, max_body));
  const size_t expect = kFrameHeaderBytes + body_len + kFrameFooterBytes;
  if (size != expect) {
    return Status::IoError("net: frame size mismatch (have " +
                           std::to_string(size) + ", header says " +
                           std::to_string(expect) + ")");
  }
  uint32_t wire_crc;
  std::memcpy(&wire_crc, data + kFrameHeaderBytes + body_len,
              sizeof(wire_crc));
  const uint32_t crc = Crc32(0, data, kFrameHeaderBytes + body_len);
  if (crc != wire_crc) {
    return Status::IoError("net: frame CRC mismatch");
  }
  out->type = type;
  out->body.assign(data + kFrameHeaderBytes,
                   data + kFrameHeaderBytes + body_len);
  return Status::Ok();
}

Status WriteFrame(Socket* sock, FrameType type,
                  const std::vector<uint8_t>& body,
                  const ScanControl& control) {
  const std::vector<uint8_t> bytes = EncodeFrame(type, body);
  LIGHTLT_RETURN_IF_ERROR(sock->SendAll(bytes.data(), bytes.size(), control));
  return sock->NotifyFrameWritten();
}

Status ReadFrame(Socket* sock, Frame* out, const ScanControl& control,
                 size_t max_body) {
  uint8_t header[kFrameHeaderBytes];
  LIGHTLT_RETURN_IF_ERROR(
      sock->RecvAll(header, kFrameHeaderBytes, control));
  return ReadFrameGivenHeader(sock, header, out, control, max_body);
}

Status ReadFrameGivenHeader(Socket* sock,
                            const uint8_t header[kFrameHeaderBytes],
                            Frame* out, const ScanControl& control,
                            size_t max_body) {
  FrameType type;
  uint32_t body_len;
  LIGHTLT_RETURN_IF_ERROR(
      DecodeFrameHeader(header, &type, &body_len, max_body));
  std::vector<uint8_t> body(body_len);
  if (body_len > 0) {
    LIGHTLT_RETURN_IF_ERROR(sock->RecvAll(body.data(), body_len, control));
  }
  uint8_t footer[kFrameFooterBytes];
  LIGHTLT_RETURN_IF_ERROR(sock->RecvAll(footer, sizeof(footer), control));
  uint32_t wire_crc;
  std::memcpy(&wire_crc, footer, sizeof(wire_crc));
  uint32_t crc = Crc32(0, header, kFrameHeaderBytes);
  crc = Crc32(crc, body.data(), body.size());
  if (crc != wire_crc) {
    return Status::IoError("net: frame CRC mismatch");
  }
  out->type = type;
  out->body = std::move(body);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeSearchRequest(const WireSearchRequest& req) {
  WireWriter w;
  w.PutU32(req.shard);
  w.PutU32(req.replica);
  w.PutU32(req.top_k);
  w.PutF64(req.budget_seconds);
  w.PutF32Array(req.query.data(), req.query.size());
  w.PutU64(req.trace.trace_id);
  w.PutI32(req.trace.parent_span);
  w.PutU8(req.trace.sampled ? 1 : 0);
  w.PutU64(static_cast<uint64_t>(req.trace.unix_minus_steady));
  return w.Take();
}

Status DecodeSearchRequest(const std::vector<uint8_t>& body,
                           WireSearchRequest* out) {
  WireReader r(body);
  out->shard = r.TakeU32();
  out->replica = r.TakeU32();
  out->top_k = r.TakeU32();
  out->budget_seconds = r.TakeF64();
  out->query = r.TakeF32Array();
  out->trace.trace_id = r.TakeU64();
  out->trace.parent_span = r.TakeI32();
  out->trace.sampled = r.TakeU8() != 0;
  out->trace.unix_minus_steady = static_cast<int64_t>(r.TakeU64());
  return r.ExpectConsumed();
}

namespace {

/// Smallest possible span record on the wire: empty name (u32 len) +
/// parent i32 + start/end u64 — the pre-allocation bound for the count.
constexpr size_t kMinSpanWireBytes = 4 + 4 + 8 + 8;

/// Decodes the telemetry trailer (spans_dropped + span records) from
/// whatever remains in `r`. Returns false on any structural violation —
/// the caller discards the trailer instead of failing the response.
bool DecodeSpanTrailer(WireReader* r, std::vector<obs::Trace::SpanRecord>* spans,
                       uint32_t* spans_dropped) {
  *spans_dropped = r->TakeU32();
  const uint32_t num_spans = r->TakeU32();
  if (!r->status().ok()) return false;
  if (num_spans > kMaxWireSpans ||
      num_spans > r->remaining() / kMinSpanWireBytes) {
    return false;
  }
  spans->clear();
  spans->reserve(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) {
    obs::Trace::SpanRecord rec;
    rec.name = r->TakeString();
    rec.parent = r->TakeI32();
    rec.start_ns = r->TakeU64();
    rec.end_ns = r->TakeU64();
    if (!r->status().ok()) return false;
    spans->push_back(std::move(rec));
  }
  return r->ExpectConsumed().ok();
}

}  // namespace

std::vector<uint8_t> EncodeSearchResponse(const WireSearchResponse& resp) {
  WireWriter w;
  w.PutI32(resp.code);
  w.PutString(resp.message);
  w.PutF64(resp.server_seconds);
  w.PutU8(resp.shed ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(resp.hits.size()));
  for (const index::SearchHit& h : resp.hits) {
    w.PutU32(h.id);
    w.PutF32(h.distance);
  }
  // Telemetry trailer — everything after the hits is droppable without
  // affecting the search result. The cap is enforced at encode time too,
  // so a span-happy server cannot emit an undecodable reply.
  const size_t keep =
      resp.spans.size() > kMaxWireSpans ? kMaxWireSpans : resp.spans.size();
  const uint32_t dropped =
      resp.spans_dropped + static_cast<uint32_t>(resp.spans.size() - keep);
  w.PutU32(dropped);
  w.PutU32(static_cast<uint32_t>(keep));
  for (size_t i = 0; i < keep; ++i) {
    const obs::Trace::SpanRecord& rec = resp.spans[i];
    w.PutString(rec.name);
    w.PutI32(rec.parent);
    w.PutU64(rec.start_ns);
    w.PutU64(rec.end_ns);
  }
  return w.Take();
}

Status DecodeSearchResponse(const std::vector<uint8_t>& body,
                            WireSearchResponse* out) {
  WireReader r(body);
  out->code = r.TakeI32();
  out->message = r.TakeString();
  out->server_seconds = r.TakeF64();
  out->shed = r.TakeU8() != 0;
  const uint32_t num_hits = r.TakeU32();
  if (!r.status().ok()) return r.status();
  constexpr size_t kHitWireBytes = sizeof(uint32_t) + sizeof(float);
  if (num_hits > r.remaining() / kHitWireBytes) {
    return Status::IoError("net: hit count exceeds message");
  }
  out->hits.clear();
  out->hits.reserve(num_hits);
  for (uint32_t i = 0; i < num_hits; ++i) {
    index::SearchHit h;
    h.id = r.TakeU32();
    h.distance = r.TakeF32();
    out->hits.push_back(h);
  }
  if (!r.status().ok()) return r.status();
  // Lenient telemetry trailer: a truncated or corrupt trailer degrades to
  // a partial (empty) trace, never to a failed search (DESIGN.md §15).
  out->spans.clear();
  out->spans_dropped = 0;
  out->trace_corrupt = false;
  if (r.remaining() > 0 &&
      !DecodeSpanTrailer(&r, &out->spans, &out->spans_dropped)) {
    out->spans.clear();
    out->spans_dropped = 0;
    out->trace_corrupt = true;
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeInfoRequest(uint32_t shard) {
  WireWriter w;
  w.PutU32(shard);
  return w.Take();
}

Status DecodeInfoRequest(const std::vector<uint8_t>& body, uint32_t* shard) {
  WireReader r(body);
  *shard = r.TakeU32();
  return r.ExpectConsumed();
}

std::vector<uint8_t> EncodeInfoResponse(const WireInfoResponse& resp) {
  WireWriter w;
  w.PutI32(resp.code);
  w.PutString(resp.message);
  w.PutU32(resp.shard);
  w.PutU64(resp.items);
  w.PutU64(resp.global_offset);
  w.PutU64(resp.total_items);
  w.PutU32(resp.dim);
  return w.Take();
}

Status DecodeInfoResponse(const std::vector<uint8_t>& body,
                          WireInfoResponse* out) {
  WireReader r(body);
  out->code = r.TakeI32();
  out->message = r.TakeString();
  out->shard = r.TakeU32();
  out->items = r.TakeU64();
  out->global_offset = r.TakeU64();
  out->total_items = r.TakeU64();
  out->dim = r.TakeU32();
  return r.ExpectConsumed();
}

std::vector<uint8_t> EncodeMetricsRequest() { return {}; }

Status DecodeMetricsRequest(const std::vector<uint8_t>& body) {
  if (!body.empty()) {
    return Status::IoError("net: metrics request body must be empty");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeMetricsResponse(const WireMetricsResponse& resp) {
  WireWriter w;
  w.PutI32(resp.code);
  w.PutString(resp.message);
  w.PutString(resp.prometheus_text);
  w.PutU32(resp.sub_buckets);
  w.PutI32(resp.min_exponent);
  w.PutI32(resp.max_exponent);
  w.PutU32(static_cast<uint32_t>(resp.snapshot.counters.size()));
  for (const auto& c : resp.snapshot.counters) {
    w.PutString(c.name);
    w.PutU64(c.value);
  }
  w.PutU32(static_cast<uint32_t>(resp.snapshot.gauges.size()));
  for (const auto& g : resp.snapshot.gauges) {
    w.PutString(g.name);
    w.PutF64(g.value);
  }
  w.PutU32(static_cast<uint32_t>(resp.snapshot.histograms.size()));
  for (const auto& h : resp.snapshot.histograms) {
    w.PutString(h.name);
    w.PutU64(h.snapshot.count);
    w.PutF64(h.snapshot.sum);
    w.PutU32(static_cast<uint32_t>(h.snapshot.counts.size()));
    for (uint64_t bucket : h.snapshot.counts) {
      w.PutU64(bucket);
    }
  }
  return w.Take();
}

Status DecodeMetricsResponse(const std::vector<uint8_t>& body,
                             WireMetricsResponse* out) {
  WireReader r(body);
  out->code = r.TakeI32();
  out->message = r.TakeString();
  out->prometheus_text = r.TakeString();
  out->sub_buckets = r.TakeU32();
  out->min_exponent = r.TakeI32();
  out->max_exponent = r.TakeI32();

  const uint32_t num_counters = r.TakeU32();
  if (!r.status().ok()) return r.status();
  constexpr size_t kMinCounterBytes = 4 + 8;  // empty name + u64
  if (num_counters > r.remaining() / kMinCounterBytes) {
    return Status::IoError("net: counter count exceeds message");
  }
  out->snapshot.counters.clear();
  out->snapshot.counters.reserve(num_counters);
  for (uint32_t i = 0; i < num_counters; ++i) {
    obs::RegistrySnapshot::CounterSample c;
    c.name = r.TakeString();
    c.value = r.TakeU64();
    out->snapshot.counters.push_back(std::move(c));
  }

  const uint32_t num_gauges = r.TakeU32();
  if (!r.status().ok()) return r.status();
  constexpr size_t kMinGaugeBytes = 4 + 8;  // empty name + f64
  if (num_gauges > r.remaining() / kMinGaugeBytes) {
    return Status::IoError("net: gauge count exceeds message");
  }
  out->snapshot.gauges.clear();
  out->snapshot.gauges.reserve(num_gauges);
  for (uint32_t i = 0; i < num_gauges; ++i) {
    obs::RegistrySnapshot::GaugeSample g;
    g.name = r.TakeString();
    g.value = r.TakeF64();
    out->snapshot.gauges.push_back(std::move(g));
  }

  const uint32_t num_hists = r.TakeU32();
  if (!r.status().ok()) return r.status();
  constexpr size_t kMinHistBytes = 4 + 8 + 8 + 4;  // name + count + sum + len
  if (num_hists > r.remaining() / kMinHistBytes) {
    return Status::IoError("net: histogram count exceeds message");
  }
  out->snapshot.histograms.clear();
  out->snapshot.histograms.reserve(num_hists);
  for (uint32_t i = 0; i < num_hists; ++i) {
    obs::RegistrySnapshot::HistogramSample h;
    h.name = r.TakeString();
    h.snapshot.count = r.TakeU64();
    h.snapshot.sum = r.TakeF64();
    const uint32_t num_buckets = r.TakeU32();
    if (!r.status().ok()) return r.status();
    if (num_buckets > r.remaining() / sizeof(uint64_t)) {
      return Status::IoError("net: bucket count exceeds message");
    }
    h.snapshot.counts.reserve(num_buckets);
    for (uint32_t b = 0; b < num_buckets; ++b) {
      h.snapshot.counts.push_back(r.TakeU64());
    }
    out->snapshot.histograms.push_back(std::move(h));
  }
  return r.ExpectConsumed();
}

std::vector<uint8_t> EncodeProfileRequest() { return {}; }

Status DecodeProfileRequest(const std::vector<uint8_t>& body) {
  if (!body.empty()) {
    return Status::IoError("net: profile request body must be empty");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeProfileResponse(const WireProfileResponse& resp) {
  WireWriter w;
  w.PutI32(resp.code);
  w.PutString(resp.message);
  w.PutU64(resp.profile.samples_total);
  w.PutU64(resp.profile.truncated_pushes);
  w.PutU32(static_cast<uint32_t>(resp.profile.entries.size()));
  for (const obs::ProfileEntry& e : resp.profile.entries) {
    w.PutString(e.stack);
    w.PutU64(e.samples);
    w.PutU64(e.wall_ns);
    w.PutU64(e.cpu_ns);
  }
  return w.Take();
}

Status DecodeProfileResponse(const std::vector<uint8_t>& body,
                             WireProfileResponse* out) {
  WireReader r(body);
  out->code = r.TakeI32();
  out->message = r.TakeString();
  out->profile.samples_total = r.TakeU64();
  out->profile.truncated_pushes = r.TakeU64();
  const uint32_t num_entries = r.TakeU32();
  if (!r.status().ok()) return r.status();
  constexpr size_t kMinEntryBytes = 4 + 8 + 8 + 8;  // empty stack + 3 u64s
  if (num_entries > r.remaining() / kMinEntryBytes) {
    return Status::IoError("net: profile entry count exceeds message");
  }
  out->profile.entries.clear();
  out->profile.entries.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    obs::ProfileEntry e;
    e.stack = r.TakeString();
    e.samples = r.TakeU64();
    e.wall_ns = r.TakeU64();
    e.cpu_ns = r.TakeU64();
    out->profile.entries.push_back(std::move(e));
  }
  return r.ExpectConsumed();
}

StatusCode StatusCodeFromWire(int32_t code) {
  switch (code) {
    case static_cast<int32_t>(StatusCode::kOk):
    case static_cast<int32_t>(StatusCode::kInvalidArgument):
    case static_cast<int32_t>(StatusCode::kNotFound):
    case static_cast<int32_t>(StatusCode::kIoError):
    case static_cast<int32_t>(StatusCode::kFailedPrecondition):
    case static_cast<int32_t>(StatusCode::kInternal):
    case static_cast<int32_t>(StatusCode::kUnimplemented):
    case static_cast<int32_t>(StatusCode::kDeadlineExceeded):
    case static_cast<int32_t>(StatusCode::kUnavailable):
    case static_cast<int32_t>(StatusCode::kCancelled):
      return static_cast<StatusCode>(code);
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace lightlt::net
