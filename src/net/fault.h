// Deterministic network fault injection, mirroring IoFaultPlan
// (src/util/io.h) and ChaosPlan (src/util/chaos.h) for the wire layer. A
// NetFaultPlan is armed globally; every Socket opened while armed captures
// it at creation and applies it independently with its own byte/frame
// counters, the same capture-at-open discipline BinaryWriter uses. Disarm()
// restores normal operation.
//
// Arm/disarm only from single-threaded test code; the hooks themselves are
// thread-safe (sockets live on server handler and client pool threads).
// Counters are global and reset on Arm, so a test can assert exactly how
// many injections fired.

#ifndef LIGHTLT_NET_FAULT_H_
#define LIGHTLT_NET_FAULT_H_

#include <cstdint>

namespace lightlt::net {

/// One process-wide fault recipe for the socket wrapper. All offsets are
/// per-connection stream positions (bytes sent / received on that socket),
/// so a plan hits the same place in the conversation no matter how the
/// bytes are sliced into syscalls.
struct NetFaultPlan {
  /// The first N ConnectTcp calls fail with kUnavailable as if the peer
  /// sent RST to the SYN (-1 = refuse every connect, 0 = off).
  int refuse_first_n_connects = 0;
  /// Bytes at or after this per-connection send offset are dropped and the
  /// socket is hard-closed — a connection cut mid-frame, so the peer sees a
  /// truncated frame followed by EOF (-1 = off).
  int64_t send_truncate_at = -1;
  /// The byte at this per-connection receive offset is XOR'd with
  /// `flip_mask` as it arrives — in-flight corruption the CRC footer must
  /// catch (-1 = off).
  int64_t recv_flip_byte = -1;
  uint8_t flip_mask = 0x01;
  /// Injected delay before every send/recv batch on a faulted socket,
  /// simulating a stalled link; against a short request deadline the stall
  /// deterministically expires it mid-conversation (0 = off).
  double stall_seconds = 0.0;
  /// The connection is reset (both directions shut down) after this many
  /// frames have been written on it — an established peer dying mid-stream
  /// (0 = off).
  int reset_after_frames = 0;
};

/// Counts of injections since the last ArmNetFaults().
struct NetFaultCounters {
  uint64_t connects_attempted = 0;
  uint64_t connects_refused = 0;
  uint64_t sends_truncated = 0;
  uint64_t bytes_flipped = 0;
  uint64_t stalls_injected = 0;
  uint64_t resets_injected = 0;
};

void ArmNetFaults(const NetFaultPlan& plan);
void DisarmNetFaults();
bool NetFaultsArmed();
NetFaultCounters NetFaultCountersSnapshot();

namespace internal {
/// Snapshot of the armed plan for a socket being created; returns false
/// when disarmed. Counter bumpers used by the Socket implementation.
bool CaptureNetFaultPlan(NetFaultPlan* plan);
/// Consumes one connect attempt against the armed plan's refusal budget;
/// true when this connect must be refused. Counts the attempt either way.
bool ConsumeConnectRefusal();
void CountConnectAttempt();
void CountConnectRefused();
void CountSendTruncated();
void CountByteFlipped();
void CountStallInjected();
void CountResetInjected();
}  // namespace internal

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_FAULT_H_
