#include "src/net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/timer.h"

namespace lightlt::net {
namespace {

constexpr double kAcceptTickSeconds = 0.05;
constexpr double kDrainPollSeconds = 0.005;

}  // namespace

ShardServer::ShardServer(std::shared_ptr<const serving::ShardSet> shards,
                         const ShardServerOptions& options)
    : shards_(std::move(shards)), options_(options) {
  trace_clock_ = options_.trace_clock ? options_.trace_clock
                                      : obs::TraceClock(&obs::SteadyNowNanos);
  wall_clock_ = options_.wall_clock ? options_.wall_clock
                                    : obs::TraceClock(&obs::UnixNowNanos);
}

ShardServer::~ShardServer() { ShutdownNow(); }

void ShardServer::RegisterMetrics() {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  const std::string& p = options_.metric_prefix;
  active_connections_gauge_ = reg->GetGauge(p + "active_connections");
  frames_received_counter_ = reg->GetCounter(p + "frames_received_total");
  frames_sent_counter_ = reg->GetCounter(p + "frames_sent_total");
  requests_ok_counter_ = reg->GetCounter(
      obs::WithLabel(p + "requests_total", "outcome", "ok"));
  requests_error_counter_ = reg->GetCounter(
      obs::WithLabel(p + "requests_total", "outcome", "error"));
  wire_errors_counter_ = reg->GetCounter(p + "wire_errors_total");
  forced_closes_counter_ = reg->GetCounter(p + "forced_closes_total");
  drain_seconds_hist_ = reg->GetHistogram(p + "drain_seconds");
  request_seconds_hist_ = reg->GetHistogram(p + "request_seconds");
}

Status ShardServer::Start() {
  if (serving_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardServer: already started");
  }
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ShardServer: cannot restart a stopped server (build a new one)");
  }
  auto listener = Listener::Bind(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  port_ = listener_.port();

  if (options_.admin_listener) {
    auto admin = Listener::Bind(options_.host, options_.admin_port);
    if (!admin.ok()) {
      listener_.Close();
      return admin.status();
    }
    admin_listener_ = std::move(admin).value();
    admin_port_ = admin_listener_.port();
  }

  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    own_pool_ = std::make_unique<ThreadPool>(options_.own_pool_threads);
    pool_ = own_pool_.get();
  }
  handlers_ = std::make_unique<TaskGroup>(pool_);
  RegisterMetrics();

  serving_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(&listener_); });
  if (admin_listener_.valid()) {
    admin_accept_thread_ = std::thread([this] { AcceptLoop(&admin_listener_); });
  }
  return Status::Ok();
}

void ShardServer::AcceptLoop(Listener* listener) {
  while (serving_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener->Accept(kAcceptTickSeconds);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) continue;
      break;  // listener closed
    }
    auto sock = std::make_shared<Socket>(std::move(accepted).value());
    uint64_t id;
    size_t active;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      id = next_conn_id_++;
      conns_[id] = Conn{sock};
      active = conns_.size();
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (active_connections_gauge_ != nullptr) {
      active_connections_gauge_->Set(static_cast<double>(active));
    }
    handlers_->Submit([this, id, sock] { HandleConnection(id, sock); });
  }
}

void ShardServer::HandleConnection(uint64_t id, std::shared_ptr<Socket> sock) {
  while (true) {
    // Idle wait for the next request header under the *drain* token: a
    // connection between requests closes cleanly the moment a drain
    // starts, while a committed request (header already in) is allowed to
    // finish below under the harder stop token.
    uint8_t header[kFrameHeaderBytes];
    const ScanControl idle{Deadline(), drain_.token()};
    Status status = sock->RecvAll(header, kFrameHeaderBytes, idle);
    if (!status.ok()) break;
    // Frame receipt time on the server's trace clock: the start of the
    // rpc_recv span if this turns out to be a sampled search request.
    const uint64_t recv_ns = trace_clock_();

    Frame frame;
    const ScanControl busy{Deadline::After(options_.write_budget_seconds),
                           hard_stop_.token()};
    status = ReadFrameGivenHeader(sock.get(), header, &frame, busy,
                                  options_.max_frame_body);
    if (!status.ok()) {
      // kIoError is a framing violation (bad magic/length/CRC): the stream
      // position is untrustworthy, so the connection must die. Transport
      // failures (peer vanished, stop raised) also end the loop but are
      // not the wire's fault.
      if (status.code() == StatusCode::kIoError) {
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
      }
      break;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    if (frames_received_counter_ != nullptr) {
      frames_received_counter_->Increment();
    }
    if (!ServeFrame(sock.get(), frame, recv_ns)) break;
  }

  sock->Close();
  size_t active;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(id);
    active = conns_.size();
  }
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (active_connections_gauge_ != nullptr) {
    active_connections_gauge_->Set(static_cast<double>(active));
  }
}

bool ShardServer::HostsShard(uint32_t shard) const {
  if (shard >= shards_->num_shards()) return false;
  if (options_.hosted_shards.empty()) return true;
  for (size_t hosted : options_.hosted_shards) {
    if (hosted == shard) return true;
  }
  return false;
}

bool ShardServer::ServeFrame(Socket* sock, const Frame& frame,
                             uint64_t recv_ns) {
  const ScanControl write_ctl{Deadline::After(options_.write_budget_seconds),
                              hard_stop_.token()};
  auto send = [&](FrameType type, const std::vector<uint8_t>& body) {
    Status s = WriteFrame(sock, type, body, write_ctl);
    if (s.ok()) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      if (frames_sent_counter_ != nullptr) frames_sent_counter_->Increment();
      return true;
    }
    return false;
  };

  switch (frame.type) {
    case FrameType::kPing:
      return send(FrameType::kPong, frame.body);

    case FrameType::kInfoRequest: {
      uint32_t shard = 0;
      if (!DecodeInfoRequest(frame.body, &shard).ok()) {
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
        return false;
      }
      WireInfoResponse resp;
      resp.shard = shard;
      if (!HostsShard(shard)) {
        resp.code = static_cast<int32_t>(StatusCode::kNotFound);
        resp.message = "net: shard not hosted by this server";
      } else {
        resp.items = shards_->shard_items(shard);
        resp.global_offset = shards_->shard_offset(shard);
        resp.total_items = shards_->total_items();
        resp.dim = static_cast<uint32_t>(shards_->searcher(shard, 0).dim());
      }
      return send(FrameType::kInfoResponse, EncodeInfoResponse(resp));
    }

    case FrameType::kSearchRequest: {
      obs::ProfilePhase serve_phase("rpc_serve");
      WireSearchRequest req;
      if (!DecodeSearchRequest(frame.body, &req).ok()) {
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
        return false;
      }
      // Server-side span tree under the propagated context
      // (rpc_recv → decode / scan / encode_reply): only built when the
      // client sampled the request, and re-based onto the client's steady
      // timeline before it goes on the wire (DESIGN.md §15).
      std::unique_ptr<obs::Trace> trace;
      obs::Span rpc_span;
      if (req.trace.sampled) {
        trace = std::make_unique<obs::Trace>(trace_clock_, wall_clock_);
        trace->set_trace_id(req.trace.trace_id);
        rpc_span = trace->StartSpanAt("rpc_recv", obs::Span(), recv_ns);
        // [frame header seen, request decoded] — body receive + decode.
        trace->AddCompleteSpan("decode", rpc_span, recv_ns, trace_clock_());
      }
      WireSearchResponse resp;
      WallTimer timer;
      if (!HostsShard(req.shard)) {
        resp.code = static_cast<int32_t>(StatusCode::kNotFound);
        resp.message = "net: shard not hosted by this server";
      } else if (req.replica >= shards_->num_replicas()) {
        resp.code = static_cast<int32_t>(StatusCode::kInvalidArgument);
        resp.message = "net: replica id out of range";
      } else if (req.top_k == 0 ||
                 req.query.size() !=
                     shards_->searcher(req.shard, req.replica).dim()) {
        resp.code = static_cast<int32_t>(StatusCode::kInvalidArgument);
        resp.message = "net: bad top_k or query dimension";
      } else {
        // Re-materialise the client's remaining budget as a server-side
        // deadline: the replica scan is cut on this machine exactly where
        // it would have been cut in process.
        const Deadline deadline = req.budget_seconds < 0.0
                                      ? Deadline()
                                      : Deadline::After(req.budget_seconds);
        const ScanControl control{deadline, hard_stop_.token(),
                                  options_.scan_check_every};
        obs::Span scan_span;
        if (trace != nullptr) {
          scan_span = trace->StartSpan("scan", rpc_span);
        }
        serving::ReplicaAttempt attempt = shards_->SearchReplica(
            req.shard, req.replica, req.query.data(), req.top_k, control,
            trace.get(), trace != nullptr ? &scan_span : nullptr);
        scan_span.End();
        resp.code = static_cast<int32_t>(attempt.status.code());
        resp.message = attempt.status.message();
        resp.hits = std::move(attempt.hits);
        resp.shed = attempt.shed;
      }
      resp.server_seconds = timer.ElapsedSeconds();
      if (request_seconds_hist_ != nullptr) {
        request_seconds_hist_->Record(resp.server_seconds);
      }
      if (trace != nullptr) {
        // encode_reply covers reply assembly up to the span snapshot;
        // serializing the spans themselves happens after the tree is
        // frozen — the one interval the trace cannot observe (§15).
        const uint64_t enc_start = trace_clock_();
        trace->AddCompleteSpan("encode_reply", rpc_span, enc_start,
                               trace_clock_());
        rpc_span.End();
        std::vector<obs::Trace::SpanRecord> records = trace->Records();
        // Re-base onto the client's steady timeline: +server offset takes
        // a reading to unix time, −client offset takes it back to the
        // client's steady clock.
        obs::ShiftSpanTimes(
            &records, trace->unix_minus_steady() - req.trace.unix_minus_steady);
        resp.spans = std::move(records);
      }
      if (resp.code == static_cast<int32_t>(StatusCode::kOk)) {
        requests_ok_.fetch_add(1, std::memory_order_relaxed);
        if (requests_ok_counter_ != nullptr) requests_ok_counter_->Increment();
      } else {
        requests_error_.fetch_add(1, std::memory_order_relaxed);
        if (requests_error_counter_ != nullptr) {
          requests_error_counter_->Increment();
        }
      }
      return send(FrameType::kSearchResponse, EncodeSearchResponse(resp));
    }

    case FrameType::kMetricsRequest: {
      if (!DecodeMetricsRequest(frame.body).ok()) {
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
        return false;
      }
      WireMetricsResponse resp;
      if (options_.metrics == nullptr) {
        resp.code = static_cast<int32_t>(StatusCode::kFailedPrecondition);
        resp.message = "net: metrics not enabled on this server";
      } else {
        resp.code = static_cast<int32_t>(StatusCode::kOk);
        resp.prometheus_text = options_.metrics->RenderText();
        resp.sub_buckets = obs::Histogram::kSubBuckets;
        resp.min_exponent = obs::Histogram::kMinExponent;
        resp.max_exponent = obs::Histogram::kMaxExponent;
        resp.snapshot = options_.metrics->Snapshot();
      }
      return send(FrameType::kMetricsResponse, EncodeMetricsResponse(resp));
    }

    case FrameType::kProfileRequest: {
      if (!DecodeProfileRequest(frame.body).ok()) {
        wire_errors_.fetch_add(1, std::memory_order_relaxed);
        if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
        return false;
      }
      WireProfileResponse resp;
      if (options_.profiler == nullptr) {
        resp.code = static_cast<int32_t>(StatusCode::kFailedPrecondition);
        resp.message = "net: profiler not enabled on this server";
      } else {
        resp.code = static_cast<int32_t>(StatusCode::kOk);
        resp.profile = options_.profiler->Snapshot();
      }
      return send(FrameType::kProfileResponse, EncodeProfileResponse(resp));
    }

    default:
      // Response/pong types arriving at a server are a protocol violation.
      wire_errors_.fetch_add(1, std::memory_order_relaxed);
      if (wire_errors_counter_ != nullptr) wire_errors_counter_->Increment();
      return false;
  }
}

void ShardServer::Drain() { StopInternal(options_.drain_deadline_seconds); }

void ShardServer::ShutdownNow() { StopInternal(0.0); }

void ShardServer::StopInternal(double drain_seconds) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  const bool was_serving = serving_.load(std::memory_order_acquire);
  WallTimer timer;

  // Phase 1: stop accepting and wake idle connections. Handlers blocked
  // waiting for a request header observe the drain token within one poll
  // tick and close cleanly.
  serving_.store(false, std::memory_order_release);
  listener_.Close();
  admin_listener_.Close();
  drain_.RequestCancellation();

  // Phase 2: let committed requests finish and flush, up to the budget.
  if (drain_seconds > 0.0) {
    const Deadline drain_deadline = Deadline::After(drain_seconds);
    while (!drain_deadline.Expired()) {
      {
        std::lock_guard<std::mutex> conns_lock(conns_mu_);
        if (conns_.empty()) break;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(kDrainPollSeconds, drain_deadline.RemainingSeconds())));
    }
  }

  // Phase 3: reset whatever is left.
  hard_stop_.RequestCancellation();
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      conn.sock->ShutdownNow();
      forced_closes_.fetch_add(1, std::memory_order_relaxed);
      if (forced_closes_counter_ != nullptr) {
        forced_closes_counter_->Increment();
      }
    }
  }

  if (accept_thread_.joinable()) accept_thread_.join();
  if (admin_accept_thread_.joinable()) admin_accept_thread_.join();
  if (handlers_ != nullptr) handlers_->Wait();
  stopped_.store(true, std::memory_order_release);

  if (was_serving) {
    const double elapsed = timer.ElapsedSeconds();
    last_drain_seconds_.store(elapsed, std::memory_order_relaxed);
    if (drain_seconds_hist_ != nullptr) drain_seconds_hist_->Record(elapsed);
  }
}

ShardServerStats ShardServer::stats() const {
  ShardServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  s.requests_error = requests_error_.load(std::memory_order_relaxed);
  s.wire_errors = wire_errors_.load(std::memory_order_relaxed);
  s.forced_closes = forced_closes_.load(std::memory_order_relaxed);
  s.last_drain_seconds = last_drain_seconds_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace lightlt::net
