#include "src/net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace lightlt::net {
namespace {

/// Longest single poll() before re-checking the ScanControl. Deadline and
/// cancellation are observed within one tick; a shutdown from another
/// thread wakes poll immediately regardless.
constexpr double kPollTickSeconds = 0.025;

std::string ErrnoMessage(const char* op, int err) {
  return std::string("net: ") + op + " failed: " + std::strerror(err);
}

/// Socket-level errno → Status. Connection-shaped failures are
/// kUnavailable (retryable: the replica may come back); everything else is
/// an IoError wire fault.
Status MapSocketErrno(const char* op, int err) {
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ETIMEDOUT:
      return Status::Unavailable(ErrnoMessage(op, err));
    default:
      return Status::IoError(ErrnoMessage(op, err));
  }
}

/// Polls `fd` for `events` for at most one tick, bounded by the control's
/// remaining deadline. OK = ready (or poll woken); the caller retries its
/// syscall and re-enters with the control re-checked.
Status PollOnce(int fd, short events, const ScanControl& control) {
  LIGHTLT_RETURN_IF_ERROR(control.Check());
  double wait = kPollTickSeconds;
  if (!control.deadline.IsInfinite()) {
    wait = std::min(wait, std::max(0.0, control.deadline.RemainingSeconds()));
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int millis = static_cast<int>(wait * 1e3) + 1;
  const int rc = ::poll(&pfd, 1, millis);
  if (rc < 0 && errno != EINTR) return MapSocketErrno("poll", errno);
  return Status::Ok();
}

Status SetNonBlocking(int fd) {
  // All Socket I/O is poll-driven, so the descriptor stays non-blocking
  // for its whole life.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return MapSocketErrno("fcntl", errno);
  }
  return Status::Ok();
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Socket::Socket(int fd) : fd_(fd) {
  fault_armed_ = internal::CaptureNetFaultPlan(&fault_);
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept { *this = std::move(other); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    frames_written_ = other.frames_written_;
    fault_armed_ = other.fault_armed_;
    truncated_ = other.truncated_;
    fault_ = other.fault_;
  }
  return *this;
}

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void Socket::ShutdownNow() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Result<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port,
                                  const Deadline& deadline) {
  if (internal::ConsumeConnectRefusal()) {
    return Status::Unavailable("net: connect refused (injected)");
  }
  auto addr = ResolveV4(host.empty() ? "127.0.0.1" : host, port);
  if (!addr.ok()) return addr.status();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return MapSocketErrno("socket", errno);
  Socket sock(fd);
  LIGHTLT_RETURN_IF_ERROR(SetNonBlocking(fd));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                     sizeof(sockaddr_in));
  if (rc != 0 && errno != EINPROGRESS) {
    return MapSocketErrno("connect", errno);
  }
  const ScanControl control{deadline, CancellationToken{}};
  while (rc != 0) {
    // Non-blocking connect: poll for writability, then read SO_ERROR for
    // the real verdict.
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("net: connect deadline exceeded");
    }
    LIGHTLT_RETURN_IF_ERROR(PollOnce(fd, POLLOUT, control));
    struct pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, 0) > 0 && (pfd.revents & (POLLOUT | POLLERR | POLLHUP))) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        return MapSocketErrno("getsockopt", errno);
      }
      if (err != 0) return MapSocketErrno("connect", err);
      break;
    }
  }
  return sock;
}

Status Socket::ApplyStall(const ScanControl& control) {
  if (!fault_armed_ || fault_.stall_seconds <= 0.0) return Status::Ok();
  internal::CountStallInjected();
  // Sleep in control-aware slices so a stalled socket still honours
  // cancellation, then charge the stall against the deadline.
  double left = fault_.stall_seconds;
  while (left > 0.0) {
    LIGHTLT_RETURN_IF_ERROR(control.Check());
    const double slice = std::min(left, kPollTickSeconds);
    std::this_thread::sleep_for(std::chrono::duration<double>(slice));
    left -= slice;
  }
  return control.Check();
}

Status Socket::SendAll(const void* data, size_t size,
                       const ScanControl& control) {
  if (fd_ < 0 || truncated_) {
    return Status::Unavailable("net: send on a closed connection");
  }
  LIGHTLT_RETURN_IF_ERROR(ApplyStall(control));
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < size) {
    LIGHTLT_RETURN_IF_ERROR(control.Check());
    size_t want = size - sent;
    // Injected mid-frame truncation: send only up to the cut offset, then
    // hard-close so the peer observes a short frame followed by EOF.
    if (fault_armed_ && fault_.send_truncate_at >= 0) {
      const uint64_t cut = static_cast<uint64_t>(fault_.send_truncate_at);
      if (bytes_sent_ >= cut) {
        internal::CountSendTruncated();
        truncated_ = true;
        ShutdownNow();
        return Status::Unavailable("net: connection cut mid-send (injected)");
      }
      want = std::min<size_t>(want, cut - bytes_sent_);
    }
    const ssize_t n = ::send(fd_, p + sent, want, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      bytes_sent_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      LIGHTLT_RETURN_IF_ERROR(PollOnce(fd_, POLLOUT, control));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return MapSocketErrno("send", errno);
  }
  return Status::Ok();
}

Status Socket::RecvAll(void* data, size_t size, const ScanControl& control) {
  if (fd_ < 0) {
    return Status::Unavailable("net: recv on a closed connection");
  }
  LIGHTLT_RETURN_IF_ERROR(ApplyStall(control));
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    LIGHTLT_RETURN_IF_ERROR(control.Check());
    const ssize_t n = ::recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      // Injected in-flight corruption: flip the byte at the configured
      // per-connection receive offset as it lands in the buffer.
      if (fault_armed_ && fault_.recv_flip_byte >= 0) {
        const uint64_t flip = static_cast<uint64_t>(fault_.recv_flip_byte);
        if (flip >= bytes_received_ &&
            flip < bytes_received_ + static_cast<uint64_t>(n)) {
          p[got + (flip - bytes_received_)] ^= fault_.flip_mask;
          internal::CountByteFlipped();
        }
      }
      got += static_cast<size_t>(n);
      bytes_received_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n == 0) {
      return got == 0 ? Status::Unavailable("net: connection closed by peer")
                      : Status::Unavailable(
                            "net: connection closed mid-frame (truncated)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      LIGHTLT_RETURN_IF_ERROR(PollOnce(fd_, POLLIN, control));
      continue;
    }
    if (errno == EINTR) continue;
    return MapSocketErrno("recv", errno);
  }
  return Status::Ok();
}

Status Socket::NotifyFrameWritten() {
  ++frames_written_;
  if (fault_armed_ && fault_.reset_after_frames > 0 &&
      frames_written_ >= static_cast<uint64_t>(fault_.reset_after_frames)) {
    internal::CountResetInjected();
    ShutdownNow();
    return Status::Unavailable("net: connection reset (injected)");
  }
  return Status::Ok();
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept { *this = std::move(other); }

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

void Listener::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // A concurrent Accept() holds its own snapshot of the fd; shutdown
    // wakes a poll blocked on it before the descriptor goes away.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  auto addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return MapSocketErrno("socket", errno);
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  LIGHTLT_RETURN_IF_ERROR(SetNonBlocking(fd));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return MapSocketErrno("bind", errno);
  }
  if (::listen(fd, backlog) != 0) return MapSocketErrno("listen", errno);
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return MapSocketErrno("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(double timeout_seconds) {
  // One snapshot for the whole call: a concurrent Close() exchanges the
  // member to -1 and the next poll tick observes it.
  const int listen_fd = fd_.load();
  if (listen_fd < 0) return Status::Unavailable("net: listener closed");
  struct pollfd pfd{listen_fd, POLLIN, 0};
  const int millis = static_cast<int>(std::max(0.0, timeout_seconds) * 1e3);
  const int rc = ::poll(&pfd, 1, millis);
  if (rc < 0) {
    if (errno == EINTR) {
      return Status::DeadlineExceeded("net: accept interrupted");
    }
    return MapSocketErrno("poll", errno);
  }
  if (fd_.load() < 0) return Status::Unavailable("net: listener closed");
  if (rc == 0) return Status::DeadlineExceeded("net: accept timed out");
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("net: accept raced another thread");
    }
    return MapSocketErrno("accept", errno);
  }
  Socket sock(fd);
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) return nb;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace lightlt::net
