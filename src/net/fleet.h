// Router-side fleet telemetry collection (DESIGN.md §15).
//
// A FleetCollector periodically pulls the full MetricsRegistry snapshot of
// every shard process over the metrics admin frame and turns the per-shard
// dumps into one fleet view:
//  * per-shard series re-exported into a local registry under shard=/
//    replica= labels (counters and gauges become gauges — the collector
//    mirrors observed values, it does not own them);
//  * histograms merged across members into fleet-wide aggregates with the
//    layout-checked HistogramSnapshot::MergeFrom, so the merged latency
//    histogram is exactly the bucket-wise sum of the per-shard snapshots.
//
// Degradation contract: an unreachable member or a corrupt/mismatched
// payload skips that poll and bumps an exact counter (polls_failed /
// payload_drops / layout_rejects); the member's last good snapshot stays
// in the view. A poll can never throw or take the collector down.

#ifndef LIGHTLT_NET_FLEET_H_
#define LIGHTLT_NET_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/client.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/util/status.h"

namespace lightlt::net {

/// One fleet member: the admin endpoint of a shard process plus the
/// shard/replica coordinates its series are labelled with.
struct FleetEndpoint {
  Endpoint endpoint;
  uint32_t shard = 0;
  uint32_t replica = 0;
};

struct FleetCollectorOptions {
  /// Dial/backoff/pool settings for the admin connections.
  RemoteClientOptions client;
  /// Background poll cadence (Start()); PollOnce() ignores it.
  double poll_interval_seconds = 5.0;
  /// Per-member budget for one metrics pull.
  double poll_timeout_seconds = 2.0;
  /// Re-export target for `{metric_prefix}...{shard=,replica=}` series;
  /// null = the fleet view is only available via View().
  obs::MetricsRegistry* registry = nullptr;
  std::string metric_prefix = "fleet_";
  /// Seconds clock driving the background poll interval; injectable so
  /// tests can gate polls deterministically. Default: steady clock.
  std::function<double()> clock;
  /// Optional structured logger for skipped polls.
  obs::Logger* logger = nullptr;
  /// Also pull each member's profile snapshot (profile admin frame) and
  /// merge the collapsed stacks exactly into FleetView::merged_profile.
  /// A member without a profiler answers kFailedPrecondition; that counts
  /// as a failed profile poll, never a failed metrics poll.
  bool collect_profiles = false;
};

/// Latest known state of one member.
struct FleetMemberView {
  uint32_t shard = 0;
  uint32_t replica = 0;
  /// The last poll reached the member and its payload was accepted.
  bool reachable = false;
  uint64_t polls_ok = 0;
  std::string prometheus_text;
  obs::RegistrySnapshot snapshot;
  /// Last accepted cumulative profile (empty until a profile poll lands).
  obs::ProfileSnapshot profile;
  uint64_t profile_polls_ok = 0;
};

/// A consistent copy of the collector's state.
struct FleetView {
  std::vector<FleetMemberView> members;
  /// Fleet-wide aggregates keyed by histogram name, merged bucket-wise
  /// across every member's latest accepted snapshot.
  std::map<std::string, obs::HistogramSnapshot> merged;
  uint64_t polls_attempted = 0;
  uint64_t polls_ok = 0;
  uint64_t polls_failed = 0;   ///< member unreachable or error verdict
  uint64_t payload_drops = 0;  ///< corrupt payload or layout mismatch
  uint64_t layout_rejects = 0; ///< payload_drops due to bucket layout
  /// Fleet-wide profile: the exact stack-wise sum (MergeFrom) of every
  /// member's latest accepted profile snapshot. Empty unless
  /// collect_profiles is set.
  obs::ProfileSnapshot merged_profile;
  uint64_t profile_polls_ok = 0;
  uint64_t profile_polls_failed = 0;  ///< unreachable, error, or corrupt
  uint64_t profile_payload_drops = 0; ///< corrupt profile payloads only
};

class FleetCollector {
 public:
  FleetCollector(std::vector<FleetEndpoint> endpoints,
                 const FleetCollectorOptions& options);
  ~FleetCollector();

  FleetCollector(const FleetCollector&) = delete;
  FleetCollector& operator=(const FleetCollector&) = delete;

  /// Polls every member now (synchronously). Returns the first failure
  /// (kOk when every member answered with an accepted payload); partial
  /// results are kept either way.
  Status PollOnce();

  /// Starts the background poll thread (idempotent).
  void Start();
  /// Stops and joins the poll thread (idempotent; the destructor calls it).
  void Stop();

  FleetView View() const;

  size_t num_members() const { return members_.size(); }
  RemoteSearcherClient& client(size_t member) const {
    return *members_[member]->client;
  }

 private:
  struct Member {
    FleetEndpoint where;
    std::unique_ptr<RemoteSearcherClient> client;
    FleetMemberView view;
  };

  /// Polls one member; returns non-OK when the poll was skipped.
  Status PollMember(Member* member);
  /// Pulls one member's profile snapshot (collect_profiles only); keeps
  /// the last good profile on failure.
  void PollMemberProfile(Member* member);
  /// Re-exports one member's snapshot under shard=/replica= labels.
  void ReExport(const Member& member);
  /// Recomputes merged aggregates + fleet gauges from member views.
  void RebuildMerged();
  void PollLoop();

  FleetCollectorOptions options_;
  std::function<double()> clock_;
  std::vector<std::unique_ptr<Member>> members_;

  mutable std::mutex mu_;  ///< guards member views, merged map, counters
  std::map<std::string, obs::HistogramSnapshot> merged_;
  obs::ProfileSnapshot merged_profile_;
  uint64_t polls_attempted_ = 0;
  uint64_t polls_ok_ = 0;
  uint64_t polls_failed_ = 0;
  uint64_t payload_drops_ = 0;
  uint64_t layout_rejects_ = 0;
  uint64_t profile_polls_ok_ = 0;
  uint64_t profile_polls_failed_ = 0;
  uint64_t profile_payload_drops_ = 0;

  std::mutex thread_mu_;
  std::thread poll_thread_;
  std::atomic<bool> running_{false};

  obs::Counter* polls_ok_counter_ = nullptr;
  obs::Counter* polls_failed_counter_ = nullptr;
  obs::Counter* payload_drops_counter_ = nullptr;
  obs::Gauge* members_reachable_gauge_ = nullptr;
};

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_FLEET_H_
