// Out-of-process shard host (DESIGN.md §14).
//
// A ShardServer exposes ReplicaSearchers from a ShardSet over the frame
// protocol: an accept loop hands each connection to a handler task on a
// ThreadPool; each handler serves a sequence of request frames (search,
// info, ping) on its connection. The wire budget in a search request is
// re-materialised into a server-side ScanControl deadline, so an expiring
// client budget cuts the ADC scan on the server exactly the way it would
// locally.
//
// Shutdown is two-phase:
//  * Drain() — graceful: stop accepting, cancel idle header waits (a
//    connection between requests closes cleanly), let committed requests
//    finish and flush their responses up to `drain_deadline_seconds`, then
//    hard-reset whatever is left (counted in forced_closes).
//  * ShutdownNow() — the kill switch tests use to simulate a crashed
//    server: listener and every connection reset immediately.
// Both are idempotent and leave the server joinable; the destructor calls
// ShutdownNow().

#ifndef LIGHTLT_NET_SERVER_H_
#define LIGHTLT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/shard.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::net {

struct ShardServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is reported by port() after Start().
  uint16_t port = 0;
  /// Binds a second listener for the admin plane (metrics pulls, pings)
  /// so fleet polling never queues behind search traffic on the data
  /// port. Frames are served identically on both listeners.
  bool admin_listener = false;
  /// 0 = ephemeral; reported by admin_port() after Start().
  uint16_t admin_port = 0;
  /// Shard ids this server answers for (empty = every shard of the set).
  /// Requests for an unhosted shard get kNotFound, not a connection drop.
  std::vector<size_t> hosted_shards;
  /// Graceful-drain budget: committed requests get this long to finish and
  /// flush before the remaining connections are reset.
  double drain_deadline_seconds = 2.0;
  /// Budget for writing one response frame (a stuck client cannot pin a
  /// handler forever).
  double write_budget_seconds = 5.0;
  /// Items between deadline/cancel checks inside replica scans.
  size_t scan_check_every = 1024;
  /// Largest request frame body accepted.
  size_t max_frame_body = kMaxFrameBody;
  /// Pool the handlers run on (null = the server owns a small pool).
  ThreadPool* pool = nullptr;
  size_t own_pool_threads = 8;
  /// Optional registry for `{metric_prefix}...` gauges/counters; must
  /// outlive the server. Also the registry dumped to metrics admin
  /// frames — a null registry answers them with kFailedPrecondition.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metric_prefix = "net_server_";
  /// Profiler dumped to profile admin frames; must outlive the server. A
  /// null profiler answers them with kFailedPrecondition (mirrors metrics).
  obs::Profiler* profiler = nullptr;
  /// Clocks for the server-side span tree (DESIGN.md §15); injectable so
  /// tests assert exact stitched durations. Default: steady/unix clocks.
  obs::TraceClock trace_clock;
  obs::TraceClock wall_clock;
};

/// Exact counters for one server lifetime (reset only by construction).
struct ShardServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  /// Corrupt/oversize/unparseable frames (each also closes its connection).
  uint64_t wire_errors = 0;
  /// Connections reset because the drain deadline ran out (or ShutdownNow).
  uint64_t forced_closes = 0;
  /// Seconds the last completed Drain() took.
  double last_drain_seconds = 0.0;
};

class ShardServer {
 public:
  ShardServer(std::shared_ptr<const serving::ShardSet> shards,
              const ShardServerOptions& options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds and starts accepting. Fails (kUnavailable) if the port is taken.
  Status Start();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  /// The bound admin-plane port (0 unless options.admin_listener).
  uint16_t admin_port() const { return admin_port_; }
  const std::string& host() const { return options_.host; }

  /// Graceful shutdown; returns after every connection is gone and the
  /// accept thread is joined. Safe to call twice.
  void Drain();

  /// Hard kill: reset the listener and every live connection now. This is
  /// what a crashed server looks like to its clients.
  void ShutdownNow();

  bool serving() const { return serving_.load(std::memory_order_acquire); }
  ShardServerStats stats() const;

 private:
  struct Conn {
    std::shared_ptr<Socket> sock;
  };

  void AcceptLoop(Listener* listener);
  void HandleConnection(uint64_t id, std::shared_ptr<Socket> sock);
  /// Serves one decoded request frame; returns false when the connection
  /// must close (wire error or send failure). `recv_ns` is the server
  /// trace clock's reading when the frame header arrived — the start of
  /// the rpc_recv span if the request is sampled.
  bool ServeFrame(Socket* sock, const Frame& frame, uint64_t recv_ns);
  bool HostsShard(uint32_t shard) const;
  void StopInternal(double drain_seconds);
  void RegisterMetrics();

  std::shared_ptr<const serving::ShardSet> shards_;
  ShardServerOptions options_;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;

  Listener listener_;
  Listener admin_listener_;
  std::thread accept_thread_;
  std::thread admin_accept_thread_;
  std::unique_ptr<ThreadPool> own_pool_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<TaskGroup> handlers_;

  /// Raised at drain start: wakes handlers idling between requests.
  CancellationSource drain_;
  /// Raised when the drain deadline runs out (and by ShutdownNow): aborts
  /// in-flight request work.
  CancellationSource hard_stop_;
  std::atomic<bool> serving_{false};
  std::atomic<bool> stopped_{false};
  /// Serialises Drain()/ShutdownNow() (both are idempotent).
  std::mutex stop_mu_;

  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 0;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_error_{0};
  std::atomic<uint64_t> wire_errors_{0};
  std::atomic<uint64_t> forced_closes_{0};
  std::atomic<double> last_drain_seconds_{0.0};

  obs::Gauge* active_connections_gauge_ = nullptr;
  obs::Counter* frames_received_counter_ = nullptr;
  obs::Counter* frames_sent_counter_ = nullptr;
  obs::Counter* requests_ok_counter_ = nullptr;
  obs::Counter* requests_error_counter_ = nullptr;
  obs::Counter* wire_errors_counter_ = nullptr;
  obs::Counter* forced_closes_counter_ = nullptr;
  obs::Histogram* drain_seconds_hist_ = nullptr;
  obs::Histogram* request_seconds_hist_ = nullptr;

  /// Resolved trace clocks (options or defaults).
  obs::TraceClock trace_clock_;
  obs::TraceClock wall_clock_;
};

}  // namespace lightlt::net

#endif  // LIGHTLT_NET_SERVER_H_
