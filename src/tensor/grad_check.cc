#include "src/tensor/grad_check.h"

#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace lightlt {

GradCheckResult CheckGradients(const std::vector<Var>& params,
                               const std::function<Var()>& build_loss,
                               float epsilon, float tolerance) {
  GradCheckResult result;
  result.passed = true;

  // Analytic pass.
  for (const auto& p : params) p->ZeroGrad();
  Var loss = build_loss();
  Backward(loss);

  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.push_back(p->grad().empty()
                           ? Matrix(p->value().rows(), p->value().cols())
                           : p->grad());
  }

  // Central finite differences.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Matrix& value = params[pi]->mutable_value();
    for (size_t i = 0; i < value.size(); ++i) {
      const float saved = value[i];
      value[i] = saved + epsilon;
      const float up = build_loss()->value()[0];
      value[i] = saved - epsilon;
      const float down = build_loss()->value()[0];
      value[i] = saved;

      const float numeric = (up - down) / (2.0f * epsilon);
      const float err = std::fabs(numeric - analytic[pi][i]);
      if (err > result.max_abs_error) {
        result.max_abs_error = err;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "param %zu entry %zu: analytic=%.6f numeric=%.6f",
                      pi, i, analytic[pi][i], numeric);
        result.detail = buf;
      }
      if (err > tolerance) result.passed = false;
    }
  }
  // Leave gradients clean for the caller.
  for (const auto& p : params) p->ZeroGrad();
  return result;
}

}  // namespace lightlt
