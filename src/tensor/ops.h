// Differentiable operation library for the autograd engine.
//
// All ops are free functions returning a new graph node. Shapes follow the
// conventions of the paper: batches are (n x d) row-major, codebooks are
// (K x d), class prototypes are (C x d).

#ifndef LIGHTLT_TENSOR_OPS_H_
#define LIGHTLT_TENSOR_OPS_H_

#include <cstddef>
#include <vector>

#include "src/tensor/variable.h"

namespace lightlt::ops {

// ---- Elementwise arithmetic ------------------------------------------------

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);
/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);
/// Hadamard product a * b (same shape).
Var Mul(const Var& a, const Var& b);
/// x * s for a compile-time constant scalar s.
Var Scale(const Var& x, float s);
/// x + s elementwise.
Var AddScalar(const Var& x, float s);
/// -x.
Var Neg(const Var& x);
/// x^2 elementwise.
Var Square(const Var& x);
/// sqrt(x + eps) elementwise; eps keeps the derivative finite at 0.
Var SqrtElem(const Var& x, float eps = 1e-12f);
/// Elementwise product with a constant matrix (e.g. per-sample CE weights).
Var MulConstant(const Var& x, const Matrix& w);
/// e^x elementwise.
Var Exp(const Var& x);
/// log(x + eps) elementwise.
Var Log(const Var& x, float eps = 1e-12f);
/// log(1 + e^x), numerically stable (used by pairwise-logistic hash losses).
Var Softplus(const Var& x);
/// |x| elementwise (subgradient 0 at 0).
Var Abs(const Var& x);

// ---- Nonlinearities ---------------------------------------------------------

/// max(x, 0).
Var Relu(const Var& x);
/// tanh(x) (used by the hash baselines' binarization relaxations).
Var Tanh(const Var& x);
/// Row-wise softmax of (x / temperature) — paper Eqn. 5.
Var SoftmaxRows(const Var& x, float temperature = 1.0f);
/// Row-wise log-softmax (numerically stable).
Var LogSoftmaxRows(const Var& x);

// ---- Linear algebra ----------------------------------------------------------

/// a (m x k) * b (k x n).
Var MatMul(const Var& a, const Var& b);
/// a (m x k) * b^T where b is (n x k) -> (m x n).
Var MatMulTransposed(const Var& a, const Var& b);
/// x (n x d) + broadcast bias (1 x d) to each row.
Var AddRowBroadcast(const Var& x, const Var& bias);
/// x scaled by a learnable 1x1 scalar variable — the DSQ codebook gate g_k.
Var ScaleByScalarVar(const Var& x, const Var& s);

// ---- Reductions ---------------------------------------------------------------

/// Sum of all entries -> 1x1.
Var Sum(const Var& x);
/// Mean of all entries -> 1x1.
Var Mean(const Var& x);
/// Per-row L2 norm sqrt(sum_j x_ij^2 + eps) -> (n x 1).
Var RowL2Norm(const Var& x, float eps = 1e-12f);

// ---- Distance / similarity kernels --------------------------------------------

/// Negative squared Euclidean similarity between rows of x (n x d) and rows
/// of c (K x d): out_ij = -||x_i - c_j||^2. This is the codeword-selection
/// similarity s(., .) of paper Eqn. 3, fused for efficiency.
Var NegSquaredEuclidean(const Var& x, const Var& c);

/// Pairwise Euclidean distance matrix: out_ij = ||x_i - c_j|| (n x K).
Var PairwiseL2Distance(const Var& x, const Var& c, float eps = 1e-12f);

// ---- Indexing -------------------------------------------------------------------

/// out_i = x[indices[i]] row gather; backward scatter-adds.
Var GatherRows(const Var& x, const std::vector<size_t>& indices);
/// out_i = x(i, cols[i]) -> (n x 1); backward scatters into picked columns.
Var PickPerRow(const Var& x, const std::vector<size_t>& cols);

// ---- Gradient-flow control --------------------------------------------------------

/// Detaches x: same value, gradient does not flow back.
Var StopGradient(const Var& x);

/// Straight-Through Estimator (paper Eqn. 6): forward returns `hard`
/// (typically a one-hot row matrix), backward passes the incoming gradient
/// to `soft` unchanged, i.e. hard = soft + sg(hard - soft).
Var StraightThrough(const Var& soft, const Matrix& hard);

// ---- Helpers ------------------------------------------------------------------------

/// Builds an (n x K) one-hot matrix from per-row indices.
Matrix OneHot(const std::vector<size_t>& indices, size_t num_classes);

}  // namespace lightlt::ops

#endif  // LIGHTLT_TENSOR_OPS_H_
