// Finite-difference gradient verification used by the autograd test suite.

#ifndef LIGHTLT_TENSOR_GRAD_CHECK_H_
#define LIGHTLT_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "src/tensor/variable.h"

namespace lightlt {

/// Result of a gradient check: the largest absolute deviation between the
/// analytic gradient and a central finite difference, over all parameters.
struct GradCheckResult {
  bool passed = false;
  float max_abs_error = 0.0f;
  std::string detail;  // which parameter/entry failed, for diagnostics
};

/// Verifies d(loss)/d(param) for every param in `params`, where
/// `build_loss()` reconstructs the scalar loss graph from the current
/// parameter values. `epsilon` is the finite-difference step and `tolerance`
/// the pass threshold on the absolute error.
GradCheckResult CheckGradients(const std::vector<Var>& params,
                               const std::function<Var()>& build_loss,
                               float epsilon = 1e-3f,
                               float tolerance = 2e-2f);

}  // namespace lightlt

#endif  // LIGHTLT_TENSOR_GRAD_CHECK_H_
