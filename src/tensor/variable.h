// Reverse-mode automatic differentiation over Matrix values.
//
// A Var is a shared pointer to a graph node holding a value, an accumulated
// gradient, its parents, and a backward closure. Graphs are built afresh for
// every training step from long-lived parameter nodes; Backward() runs a
// topological sweep from a scalar loss.
//
// The engine exists to train the DSQ quantizer end-to-end through the
// tempered-softmax + straight-through-estimator relaxation (paper Eqns. 5-7),
// which off-the-shelf exact methods cannot express.

#ifndef LIGHTLT_TENSOR_VARIABLE_H_
#define LIGHTLT_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace lightlt {

class Node;
/// Handle to an autograd graph node.
using Var = std::shared_ptr<Node>;

/// One vertex of the computation graph.
class Node {
 public:
  Node(Matrix value, bool requires_grad, std::string op_name)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        op_name_(std::move(op_name)) {}

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  const std::string& op_name() const { return op_name_; }

  /// Accumulated gradient; zero-sized until the first accumulation.
  const Matrix& grad() const { return grad_; }
  Matrix& mutable_grad() { return grad_; }

  /// Adds `g` into this node's gradient buffer (allocating it on first use).
  void AccumulateGrad(const Matrix& g);

  /// Clears the gradient buffer (used between optimizer steps).
  void ZeroGrad();

  const std::vector<Var>& parents() const { return parents_; }

  // Graph construction API, used by the op library (ops.h).
  void set_parents(std::vector<Var> parents) { parents_ = std::move(parents); }
  void set_backward(std::function<void(Node&)> fn) {
    backward_fn_ = std::move(fn);
  }
  bool has_backward() const { return static_cast<bool>(backward_fn_); }
  void RunBackward() {
    if (backward_fn_) backward_fn_(*this);
  }

 private:
  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  std::string op_name_;
  std::vector<Var> parents_;
  std::function<void(Node&)> backward_fn_;
};

/// Creates a trainable leaf (gradient will be accumulated).
Var MakeParam(Matrix value, std::string name = "param");

/// Creates a non-trainable leaf (no gradient).
Var MakeConstant(Matrix value, std::string name = "const");

/// Runs reverse-mode differentiation from scalar node `loss` (must be 1x1).
/// Gradients accumulate into every reachable node with requires_grad().
void Backward(const Var& loss);

}  // namespace lightlt

#endif  // LIGHTLT_TENSOR_VARIABLE_H_
