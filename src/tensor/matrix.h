// Dense row-major float32 matrix: the numeric workhorse underneath the
// autograd engine, k-means, PCA, and the retrieval indexes.

#ifndef LIGHTLT_TENSOR_MATRIX_H_
#define LIGHTLT_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace lightlt {

/// A rows x cols dense matrix of float32, stored row-major. Vectors are
/// represented as 1 x n or n x 1 matrices; scalars as 1 x 1.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    LIGHTLT_CHECK_EQ(data_.size(), rows_ * cols_);
  }

  /// 1x1 scalar matrix.
  static Matrix Scalar(float v) { return Matrix(1, 1, std::vector<float>{v}); }

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// I.i.d. N(0, stddev^2) entries.
  static Matrix RandomGaussian(size_t rows, size_t cols, Rng& rng,
                               float stddev = 1.0f);

  /// I.i.d. Uniform[lo, hi) entries.
  static Matrix RandomUniform(size_t rows, size_t cols, Rng& rng, float lo,
                              float hi);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  float& at(size_t r, size_t c) {
    LIGHTLT_CHECK_LT(r, rows_);
    LIGHTLT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    LIGHTLT_CHECK_LT(r, rows_);
    LIGHTLT_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float v);
  void Zero() { Fill(0.0f); }

  // ---- Elementwise in-place updates -------------------------------------
  void AddInPlace(const Matrix& other);
  void SubInPlace(const Matrix& other);
  void MulInPlace(const Matrix& other);
  void ScaleInPlace(float s);
  /// this += s * other (axpy).
  void AxpyInPlace(float s, const Matrix& other);

  // ---- Out-of-place arithmetic ------------------------------------------
  Matrix Add(const Matrix& other) const;
  Matrix Sub(const Matrix& other) const;
  Matrix Mul(const Matrix& other) const;  // Hadamard
  Matrix Scale(float s) const;

  /// Matrix product this (m x k) * other (k x n) -> (m x n).
  Matrix MatMul(const Matrix& other) const;
  /// this^T (k x m) * other... convenience fused transposes.
  Matrix TransposedMatMul(const Matrix& other) const;  // this^T * other
  Matrix MatMulTransposed(const Matrix& other) const;  // this * other^T

  Matrix Transpose() const;

  // ---- Reductions ---------------------------------------------------------
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// Squared Frobenius norm.
  float SquaredNorm() const;
  /// Per-row sum of squares -> (rows x 1).
  Matrix RowSquaredNorms() const;
  /// Per-row sums -> (rows x 1).
  Matrix RowSums() const;
  /// Per-column sums -> (1 x cols).
  Matrix ColSums() const;
  /// Per-row argmax.
  std::vector<size_t> RowArgMax() const;

  // ---- Row/column access ---------------------------------------------------
  /// Copies row r as a 1 x cols matrix.
  Matrix RowCopy(size_t r) const;
  /// Gathers rows[i] into a new (indices.size() x cols) matrix.
  Matrix GatherRows(const std::vector<size_t>& indices) const;
  /// Returns a new matrix with `other` appended below (same cols).
  Matrix VStack(const Matrix& other) const;

  /// Pairwise squared Euclidean distances between rows of this (n x d) and
  /// rows of other (m x d) -> (n x m).
  Matrix SquaredEuclideanTo(const Matrix& other) const;

  /// Dense equality within tolerance, for tests.
  bool AllClose(const Matrix& other, float atol = 1e-5f) const;

  std::string DebugString(size_t max_rows = 6, size_t max_cols = 8) const;

  const std::vector<float>& storage() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace lightlt

#endif  // LIGHTLT_TENSOR_MATRIX_H_
