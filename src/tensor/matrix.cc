#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lightlt {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomGaussian(size_t rows, size_t cols, Rng& rng,
                              float stddev) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return m;
}

Matrix Matrix::RandomUniform(size_t rows, size_t cols, Rng& rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng.NextUniform(lo, hi));
  }
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::AddInPlace(const Matrix& other) {
  LIGHTLT_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::SubInPlace(const Matrix& other) {
  LIGHTLT_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::MulInPlace(const Matrix& other) {
  LIGHTLT_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::ScaleInPlace(float s) {
  for (auto& v : data_) v *= s;
}

void Matrix::AxpyInPlace(float s, const Matrix& other) {
  LIGHTLT_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

Matrix Matrix::Add(const Matrix& other) const {
  Matrix out = *this;
  out.AddInPlace(other);
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  Matrix out = *this;
  out.SubInPlace(other);
  return out;
}

Matrix Matrix::Mul(const Matrix& other) const {
  Matrix out = *this;
  out.MulInPlace(other);
  return out;
}

Matrix Matrix::Scale(float s) const {
  Matrix out = *this;
  out.ScaleInPlace(s);
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  LIGHTLT_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // ikj loop order: streams through `other` and `out` rows sequentially.
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = row(i);
    float* o_row = out.row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = other.row(k);
      for (size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  // (this^T * other): this is (k x m), other is (k x n) -> (m x n).
  LIGHTLT_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  for (size_t k = 0; k < rows_; ++k) {
    const float* a_row = row(k);
    const float* b_row = other.row(k);
    for (size_t i = 0; i < cols_; ++i) {
      const float a = a_row[i];
      if (a == 0.0f) continue;
      float* o_row = out.row(i);
      for (size_t j = 0; j < other.cols_; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  // (this * other^T): this is (m x k), other is (n x k) -> (m x n).
  LIGHTLT_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = row(i);
    float* o_row = out.row(i);
    for (size_t j = 0; j < other.rows_; ++j) {
      const float* b_row = other.row(j);
      float acc = 0.0f;
      for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
      o_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Matrix::Mean() const {
  LIGHTLT_CHECK(!data_.empty());
  return Sum() / static_cast<float>(data_.size());
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

Matrix Matrix::RowSquaredNorms() const {
  Matrix out(rows_, 1);
  for (size_t i = 0; i < rows_; ++i) {
    const float* r = row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += static_cast<double>(r[j]) * r[j];
    out[i] = static_cast<float>(acc);
  }
  return out;
}

Matrix Matrix::RowSums() const {
  Matrix out(rows_, 1);
  for (size_t i = 0; i < rows_; ++i) {
    const float* r = row(i);
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += r[j];
    out[i] = static_cast<float>(acc);
  }
  return out;
}

Matrix Matrix::ColSums() const {
  Matrix out(1, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* r = row(i);
    for (size_t j = 0; j < cols_; ++j) out[j] += r[j];
  }
  return out;
}

std::vector<size_t> Matrix::RowArgMax() const {
  std::vector<size_t> out(rows_, 0);
  for (size_t i = 0; i < rows_; ++i) {
    const float* r = row(i);
    size_t best = 0;
    for (size_t j = 1; j < cols_; ++j) {
      if (r[j] > r[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Matrix Matrix::RowCopy(size_t r) const {
  LIGHTLT_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::copy(row(r), row(r) + cols_, out.data());
  return out;
}

Matrix Matrix::GatherRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    LIGHTLT_CHECK_LT(indices[i], rows_);
    std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
  }
  return out;
}

Matrix Matrix::VStack(const Matrix& other) const {
  if (empty()) return other;
  LIGHTLT_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data() + data_.size());
  return out;
}

Matrix Matrix::SquaredEuclideanTo(const Matrix& other) const {
  LIGHTLT_CHECK_EQ(cols_, other.cols_);
  // ||a - b||^2 = ||a||^2 + ||b||^2 - 2 <a, b>
  Matrix dots = MatMulTransposed(other);  // n x m
  const Matrix a2 = RowSquaredNorms();
  const Matrix b2 = other.RowSquaredNorms();
  for (size_t i = 0; i < rows_; ++i) {
    float* r = dots.row(i);
    for (size_t j = 0; j < other.rows(); ++j) {
      r[j] = std::max(0.0f, a2[i] + b2[j] - 2.0f * r[j]);
    }
  }
  return dots;
}

bool Matrix::AllClose(const Matrix& other, float atol) const {
  if (!SameShape(other)) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Matrix::DebugString(size_t max_rows, size_t max_cols) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Matrix(%zu x %zu)\n", rows_, cols_);
  std::string out = buf;
  for (size_t i = 0; i < std::min(rows_, max_rows); ++i) {
    out += "  [";
    for (size_t j = 0; j < std::min(cols_, max_cols); ++j) {
      std::snprintf(buf, sizeof(buf), "%s%.4f", j ? ", " : "", at(i, j));
      out += buf;
    }
    if (cols_ > max_cols) out += ", ...";
    out += "]\n";
  }
  if (rows_ > max_rows) out += "  ...\n";
  return out;
}

}  // namespace lightlt
