#include "src/tensor/variable.h"

#include <unordered_set>

#include "src/util/check.h"

namespace lightlt {

void Node::AccumulateGrad(const Matrix& g) {
  if (!requires_grad_) return;
  LIGHTLT_CHECK_EQ(g.rows(), value_.rows());
  LIGHTLT_CHECK_EQ(g.cols(), value_.cols());
  if (grad_.empty()) {
    grad_ = g;
  } else {
    grad_.AddInPlace(g);
  }
}

void Node::ZeroGrad() {
  if (!grad_.empty()) grad_.Zero();
}

Var MakeParam(Matrix value, std::string name) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true,
                                std::move(name));
}

Var MakeConstant(Matrix value, std::string name) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false,
                                std::move(name));
}

namespace {

void TopoSort(const Var& root, std::vector<Node*>& order,
              std::unordered_set<Node*>& visited) {
  // Iterative post-order DFS (training graphs can be deep with many DSQ
  // stages; avoid recursion limits).
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents().size()) {
      Node* parent = top.node->parents()[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  LIGHTLT_CHECK(loss != nullptr);
  LIGHTLT_CHECK_EQ(loss->value().rows(), 1u);
  LIGHTLT_CHECK_EQ(loss->value().cols(), 1u);

  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  TopoSort(loss, order, visited);

  loss->AccumulateGrad(Matrix::Scalar(1.0f));
  // Post-order list has children after their parents' subtrees; iterate in
  // reverse so each node's grad is complete before it pushes to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->requires_grad() && !node->grad().empty()) {
      node->RunBackward();
    }
  }
}

}  // namespace lightlt
