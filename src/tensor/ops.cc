#include "src/tensor/ops.h"

#include <cmath>

#include "src/util/check.h"

namespace lightlt::ops {
namespace {

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const auto& p : parents) {
    if (p->requires_grad()) return true;
  }
  return false;
}

/// Creates a result node wired to its parents; attaches `backward` only when
/// a gradient path exists.
Var MakeOp(Matrix value, std::vector<Var> parents, const char* name,
           std::function<void(Node&)> backward) {
  const bool req = AnyRequiresGrad(parents);
  Var out = std::make_shared<Node>(std::move(value), req, name);
  out->set_parents(std::move(parents));
  if (req) out->set_backward(std::move(backward));
  return out;
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeOp(a->value().Add(b->value()), {a, b}, "add", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad());
    n.parents()[1]->AccumulateGrad(n.grad());
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(a->value().Sub(b->value()), {a, b}, "sub", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad());
    n.parents()[1]->AccumulateGrad(n.grad().Scale(-1.0f));
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(a->value().Mul(b->value()), {a, b}, "mul", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad().Mul(n.parents()[1]->value()));
    n.parents()[1]->AccumulateGrad(n.grad().Mul(n.parents()[0]->value()));
  });
}

Var Scale(const Var& x, float s) {
  return MakeOp(x->value().Scale(s), {x}, "scale", [s](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad().Scale(s));
  });
}

Var AddScalar(const Var& x, float s) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] += s;
  return MakeOp(std::move(v), {x}, "add_scalar", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad());
  });
}

Var Neg(const Var& x) { return Scale(x, -1.0f); }

Var Square(const Var& x) {
  return MakeOp(x->value().Mul(x->value()), {x}, "square", [](Node& n) {
    Matrix g = n.grad().Mul(n.parents()[0]->value());
    g.ScaleInPlace(2.0f);
    n.parents()[0]->AccumulateGrad(g);
  });
}

Var SqrtElem(const Var& x, float eps) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::sqrt(v[i] + eps);
  Matrix forward = v;
  return MakeOp(std::move(v), {x}, "sqrt",
                [forward = std::move(forward)](Node& n) {
                  Matrix g = n.grad();
                  for (size_t i = 0; i < g.size(); ++i) {
                    g[i] *= 0.5f / forward[i];
                  }
                  n.parents()[0]->AccumulateGrad(g);
                });
}

Var MulConstant(const Var& x, const Matrix& w) {
  LIGHTLT_CHECK(x->value().SameShape(w));
  return MakeOp(x->value().Mul(w), {x}, "mul_const", [w](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad().Mul(w));
  });
}

Var Exp(const Var& x) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::exp(v[i]);
  Matrix forward = v;
  return MakeOp(std::move(v), {x}, "exp",
                [forward = std::move(forward)](Node& n) {
                  n.parents()[0]->AccumulateGrad(n.grad().Mul(forward));
                });
}

Var Log(const Var& x, float eps) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::log(v[i] + eps);
  return MakeOp(std::move(v), {x}, "log", [eps](Node& n) {
    Matrix g = n.grad();
    const Matrix& in = n.parents()[0]->value();
    for (size_t i = 0; i < g.size(); ++i) g[i] /= in[i] + eps;
    n.parents()[0]->AccumulateGrad(g);
  });
}

Var Softplus(const Var& x) {
  Matrix v = x->value();
  Matrix sigmoid(v.rows(), v.cols());
  for (size_t i = 0; i < v.size(); ++i) {
    const float xi = v[i];
    // Stable: softplus(x) = max(x, 0) + log1p(exp(-|x|)).
    v[i] = std::max(xi, 0.0f) + std::log1p(std::exp(-std::fabs(xi)));
    sigmoid[i] = 1.0f / (1.0f + std::exp(-xi));
  }
  return MakeOp(std::move(v), {x}, "softplus",
                [sigmoid = std::move(sigmoid)](Node& n) {
                  n.parents()[0]->AccumulateGrad(n.grad().Mul(sigmoid));
                });
}

Var Abs(const Var& x) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::fabs(v[i]);
  return MakeOp(std::move(v), {x}, "abs", [](Node& n) {
    Matrix g = n.grad();
    const Matrix& in = n.parents()[0]->value();
    for (size_t i = 0; i < g.size(); ++i) {
      if (in[i] < 0.0f) {
        g[i] = -g[i];
      } else if (in[i] == 0.0f) {
        g[i] = 0.0f;
      }
    }
    n.parents()[0]->AccumulateGrad(g);
  });
}

Var Relu(const Var& x) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = v[i] > 0.0f ? v[i] : 0.0f;
  return MakeOp(std::move(v), {x}, "relu", [](Node& n) {
    Matrix g = n.grad();
    const Matrix& in = n.parents()[0]->value();
    for (size_t i = 0; i < g.size(); ++i) {
      if (in[i] <= 0.0f) g[i] = 0.0f;
    }
    n.parents()[0]->AccumulateGrad(g);
  });
}

Var Tanh(const Var& x) {
  Matrix v = x->value();
  for (size_t i = 0; i < v.size(); ++i) v[i] = std::tanh(v[i]);
  Matrix forward = v;
  return MakeOp(std::move(v), {x}, "tanh",
                [forward = std::move(forward)](Node& n) {
                  Matrix g = n.grad();
                  for (size_t i = 0; i < g.size(); ++i) {
                    g[i] *= 1.0f - forward[i] * forward[i];
                  }
                  n.parents()[0]->AccumulateGrad(g);
                });
}

Var SoftmaxRows(const Var& x, float temperature) {
  LIGHTLT_CHECK_GT(temperature, 0.0f);
  const Matrix& in = x->value();
  Matrix y(in.rows(), in.cols());
  const float inv_t = 1.0f / temperature;
  for (size_t i = 0; i < in.rows(); ++i) {
    const float* r = in.row(i);
    float* o = y.row(i);
    float mx = r[0];
    for (size_t j = 1; j < in.cols(); ++j) mx = std::max(mx, r[j]);
    double denom = 0.0;
    for (size_t j = 0; j < in.cols(); ++j) {
      o[j] = std::exp((r[j] - mx) * inv_t);
      denom += o[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (size_t j = 0; j < in.cols(); ++j) o[j] *= inv;
  }
  Matrix forward = y;
  return MakeOp(std::move(y), {x}, "softmax",
                [forward = std::move(forward), inv_t](Node& n) {
                  // dx_ij = (1/t) * y_ij * (g_ij - sum_k g_ik y_ik)
                  const Matrix& g = n.grad();
                  Matrix dx(g.rows(), g.cols());
                  for (size_t i = 0; i < g.rows(); ++i) {
                    const float* gr = g.row(i);
                    const float* yr = forward.row(i);
                    float* dr = dx.row(i);
                    double dot = 0.0;
                    for (size_t j = 0; j < g.cols(); ++j) dot += gr[j] * yr[j];
                    for (size_t j = 0; j < g.cols(); ++j) {
                      dr[j] = inv_t * yr[j] *
                              (gr[j] - static_cast<float>(dot));
                    }
                  }
                  n.parents()[0]->AccumulateGrad(dx);
                });
}

Var LogSoftmaxRows(const Var& x) {
  const Matrix& in = x->value();
  Matrix y(in.rows(), in.cols());
  Matrix softmax(in.rows(), in.cols());
  for (size_t i = 0; i < in.rows(); ++i) {
    const float* r = in.row(i);
    float* o = y.row(i);
    float* s = softmax.row(i);
    float mx = r[0];
    for (size_t j = 1; j < in.cols(); ++j) mx = std::max(mx, r[j]);
    double denom = 0.0;
    for (size_t j = 0; j < in.cols(); ++j) denom += std::exp(r[j] - mx);
    const float log_denom = static_cast<float>(std::log(denom));
    for (size_t j = 0; j < in.cols(); ++j) {
      o[j] = r[j] - mx - log_denom;
      s[j] = std::exp(o[j]);
    }
  }
  return MakeOp(std::move(y), {x}, "log_softmax",
                [softmax = std::move(softmax)](Node& n) {
                  // dx_ij = g_ij - softmax_ij * sum_k g_ik
                  const Matrix& g = n.grad();
                  Matrix dx(g.rows(), g.cols());
                  for (size_t i = 0; i < g.rows(); ++i) {
                    const float* gr = g.row(i);
                    const float* sr = softmax.row(i);
                    float* dr = dx.row(i);
                    double total = 0.0;
                    for (size_t j = 0; j < g.cols(); ++j) total += gr[j];
                    for (size_t j = 0; j < g.cols(); ++j) {
                      dr[j] = gr[j] - sr[j] * static_cast<float>(total);
                    }
                  }
                  n.parents()[0]->AccumulateGrad(dx);
                });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(a->value().MatMul(b->value()), {a, b}, "matmul", [](Node& n) {
    const Matrix& g = n.grad();
    // dA = g * B^T, dB = A^T * g
    n.parents()[0]->AccumulateGrad(g.MatMulTransposed(n.parents()[1]->value()));
    n.parents()[1]->AccumulateGrad(
        n.parents()[0]->value().TransposedMatMul(g));
  });
}

Var MatMulTransposed(const Var& a, const Var& b) {
  return MakeOp(a->value().MatMulTransposed(b->value()), {a, b},
                "matmul_t", [](Node& n) {
                  const Matrix& g = n.grad();
                  // y = A B^T: dA = g * B, dB = g^T * A
                  n.parents()[0]->AccumulateGrad(
                      g.MatMul(n.parents()[1]->value()));
                  n.parents()[1]->AccumulateGrad(
                      g.TransposedMatMul(n.parents()[0]->value()));
                });
}

Var AddRowBroadcast(const Var& x, const Var& bias) {
  const Matrix& in = x->value();
  const Matrix& b = bias->value();
  LIGHTLT_CHECK_EQ(b.rows(), 1u);
  LIGHTLT_CHECK_EQ(b.cols(), in.cols());
  Matrix v = in;
  for (size_t i = 0; i < v.rows(); ++i) {
    float* r = v.row(i);
    for (size_t j = 0; j < v.cols(); ++j) r[j] += b[j];
  }
  return MakeOp(std::move(v), {x, bias}, "add_row_bcast", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad());
    n.parents()[1]->AccumulateGrad(n.grad().ColSums());
  });
}

Var ScaleByScalarVar(const Var& x, const Var& s) {
  LIGHTLT_CHECK_EQ(s->value().size(), 1u);
  const float sv = s->value()[0];
  return MakeOp(x->value().Scale(sv), {x, s}, "scale_var", [sv](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad().Scale(sv));
    double ds = 0.0;
    const Matrix& g = n.grad();
    const Matrix& xv = n.parents()[0]->value();
    for (size_t i = 0; i < g.size(); ++i) ds += g[i] * xv[i];
    n.parents()[1]->AccumulateGrad(Matrix::Scalar(static_cast<float>(ds)));
  });
}

Var Sum(const Var& x) {
  return MakeOp(Matrix::Scalar(x->value().Sum()), {x}, "sum", [](Node& n) {
    const float g = n.grad()[0];
    Matrix dx(n.parents()[0]->value().rows(), n.parents()[0]->value().cols(),
              g);
    n.parents()[0]->AccumulateGrad(dx);
  });
}

Var Mean(const Var& x) {
  const float inv_n = 1.0f / static_cast<float>(x->value().size());
  return MakeOp(Matrix::Scalar(x->value().Sum() * inv_n), {x}, "mean",
                [inv_n](Node& n) {
                  const float g = n.grad()[0] * inv_n;
                  Matrix dx(n.parents()[0]->value().rows(),
                            n.parents()[0]->value().cols(), g);
                  n.parents()[0]->AccumulateGrad(dx);
                });
}

Var RowL2Norm(const Var& x, float eps) {
  const Matrix& in = x->value();
  Matrix v(in.rows(), 1);
  for (size_t i = 0; i < in.rows(); ++i) {
    const float* r = in.row(i);
    double acc = eps;
    for (size_t j = 0; j < in.cols(); ++j) acc += static_cast<double>(r[j]) * r[j];
    v[i] = static_cast<float>(std::sqrt(acc));
  }
  Matrix forward = v;
  return MakeOp(std::move(v), {x}, "row_l2norm",
                [forward = std::move(forward)](Node& n) {
                  // d||x_i|| / dx_ij = x_ij / ||x_i||
                  const Matrix& g = n.grad();
                  const Matrix& in = n.parents()[0]->value();
                  Matrix dx(in.rows(), in.cols());
                  for (size_t i = 0; i < in.rows(); ++i) {
                    const float scale = g[i] / forward[i];
                    const float* r = in.row(i);
                    float* dr = dx.row(i);
                    for (size_t j = 0; j < in.cols(); ++j) {
                      dr[j] = scale * r[j];
                    }
                  }
                  n.parents()[0]->AccumulateGrad(dx);
                });
}

Var NegSquaredEuclidean(const Var& x, const Var& c) {
  Matrix d2 = x->value().SquaredEuclideanTo(c->value());
  d2.ScaleInPlace(-1.0f);
  return MakeOp(std::move(d2), {x, c}, "neg_sq_euclidean", [](Node& n) {
    // s_ij = -||x_i - c_j||^2
    // ds_ij/dx_i = -2 (x_i - c_j);  ds_ij/dc_j = 2 (x_i - c_j)
    const Matrix& g = n.grad();      // n x K
    const Matrix& x = n.parents()[0]->value();  // n x d
    const Matrix& c = n.parents()[1]->value();  // K x d
    // dx = -2 (diag(rowsum(g)) x - g C)
    Matrix row_sums = g.RowSums();   // n x 1
    Matrix dx = g.MatMul(c);         // n x d
    for (size_t i = 0; i < x.rows(); ++i) {
      const float rs = row_sums[i];
      const float* xr = x.row(i);
      float* dr = dx.row(i);
      for (size_t j = 0; j < x.cols(); ++j) {
        dr[j] = -2.0f * (rs * xr[j] - dr[j]);
      }
    }
    n.parents()[0]->AccumulateGrad(dx);
    // dc = 2 (g^T x - diag(colsum(g)) c)
    Matrix col_sums = g.ColSums();   // 1 x K
    Matrix dc = g.TransposedMatMul(x);  // K x d
    for (size_t j = 0; j < c.rows(); ++j) {
      const float cs = col_sums[j];
      const float* cr = c.row(j);
      float* dr = dc.row(j);
      for (size_t k = 0; k < c.cols(); ++k) {
        dr[k] = 2.0f * (dr[k] - cs * cr[k]);
      }
    }
    n.parents()[1]->AccumulateGrad(dc);
  });
}

Var PairwiseL2Distance(const Var& x, const Var& c, float eps) {
  Var neg_sq = NegSquaredEuclidean(x, c);
  return SqrtElem(Neg(neg_sq), eps);
}

Var GatherRows(const Var& x, const std::vector<size_t>& indices) {
  return MakeOp(x->value().GatherRows(indices), {x}, "gather_rows",
                [indices](Node& n) {
                  const Matrix& g = n.grad();
                  Matrix dx(n.parents()[0]->value().rows(),
                            n.parents()[0]->value().cols());
                  for (size_t i = 0; i < indices.size(); ++i) {
                    float* dst = dx.row(indices[i]);
                    const float* src = g.row(i);
                    for (size_t j = 0; j < g.cols(); ++j) dst[j] += src[j];
                  }
                  n.parents()[0]->AccumulateGrad(dx);
                });
}

Var PickPerRow(const Var& x, const std::vector<size_t>& cols) {
  const Matrix& in = x->value();
  LIGHTLT_CHECK_EQ(cols.size(), in.rows());
  Matrix v(in.rows(), 1);
  for (size_t i = 0; i < in.rows(); ++i) {
    LIGHTLT_CHECK_LT(cols[i], in.cols());
    v[i] = in.at(i, cols[i]);
  }
  return MakeOp(std::move(v), {x}, "pick_per_row", [cols](Node& n) {
    const Matrix& g = n.grad();
    Matrix dx(n.parents()[0]->value().rows(),
              n.parents()[0]->value().cols());
    for (size_t i = 0; i < cols.size(); ++i) dx.at(i, cols[i]) = g[i];
    n.parents()[0]->AccumulateGrad(dx);
  });
}

Var StopGradient(const Var& x) {
  return MakeConstant(x->value(), "stop_gradient");
}

Var StraightThrough(const Var& soft, const Matrix& hard) {
  LIGHTLT_CHECK(soft->value().SameShape(hard));
  return MakeOp(hard, {soft}, "straight_through", [](Node& n) {
    n.parents()[0]->AccumulateGrad(n.grad());
  });
}

Matrix OneHot(const std::vector<size_t>& indices, size_t num_classes) {
  Matrix out(indices.size(), num_classes);
  for (size_t i = 0; i < indices.size(); ++i) {
    LIGHTLT_CHECK_LT(indices[i], num_classes);
    out.at(i, indices[i]) = 1.0f;
  }
  return out;
}

}  // namespace lightlt::ops
