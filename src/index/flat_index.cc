#include "src/index/flat_index.h"

#include <algorithm>
#include <numeric>

namespace lightlt::index {

FlatIndex::FlatIndex(Matrix vectors) : vectors_(std::move(vectors)) {
  const Matrix n2 = vectors_.RowSquaredNorms();
  norms_.assign(n2.data(), n2.data() + n2.size());
}

void FlatIndex::ComputeScores(const float* query,
                              std::vector<float>* scores) const {
  const size_t n = vectors_.rows();
  const size_t d = vectors_.cols();
  scores->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const float* row = vectors_.row(i);
    float dot = 0.0f;
    for (size_t j = 0; j < d; ++j) dot += query[j] * row[j];
    (*scores)[i] = norms_[i] - 2.0f * dot;
  }
}

std::vector<SearchHit> FlatIndex::Search(const float* query,
                                         size_t top_k) const {
  std::vector<float> scores;
  ComputeScores(query, &scores);
  const size_t k = std::min(top_k, scores.size());
  std::vector<uint32_t> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](uint32_t a, uint32_t b) {
                      return scores[a] < scores[b] ||
                             (scores[a] == scores[b] && a < b);
                    });
  std::vector<SearchHit> hits(k);
  for (size_t i = 0; i < k; ++i) hits[i] = {ids[i], scores[ids[i]]};
  return hits;
}

std::vector<uint32_t> FlatIndex::RankAll(const float* query) const {
  std::vector<float> scores;
  ComputeScores(query, &scores);
  std::vector<uint32_t> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::stable_sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });
  return ids;
}

}  // namespace lightlt::index
