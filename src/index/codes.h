// Bit-packed storage for quantization codes.
//
// Each database item is M codes, each in [0, K). Codes are packed at
// ceil(log2 K) bits, giving the paper's (M/8)*log2(K) bytes-per-item storage
// cost (§IV-A).

#ifndef LIGHTLT_INDEX_CODES_H_
#define LIGHTLT_INDEX_CODES_H_

#include <cstdint>
#include <vector>

#include "src/util/check.h"
#include "src/util/io.h"
#include "src/util/status.h"

namespace lightlt::index {

/// Number of bits needed to store a code in [0, K).
size_t BitsPerCode(size_t num_codewords);

/// Packed (num_items x num_codebooks) code table.
class PackedCodes {
 public:
  PackedCodes() = default;
  PackedCodes(size_t num_items, size_t num_codebooks, size_t num_codewords);

  size_t num_items() const { return num_items_; }
  size_t num_codebooks() const { return num_codebooks_; }
  size_t num_codewords() const { return num_codewords_; }
  size_t bits_per_code() const { return bits_per_code_; }

  /// Stores code `value` for (item, codebook); value must be < K.
  void Set(size_t item, size_t codebook, uint32_t value);

  /// Reads the code for (item, codebook).
  uint32_t Get(size_t item, size_t codebook) const;

  /// Streams every code in storage order (item-major, then codebook) to
  /// `fn(item, codebook, code)`. A sequential bit cursor avoids the per-Get
  /// division/modulo, which dominates the ADC scan otherwise — this is the
  /// hot path of the paper's O(nM) lookup phase (§IV-B).
  template <typename Fn>
  void ForEachCode(Fn&& fn) const {
    const uint64_t mask = (1ull << bits_per_code_) - 1;
    size_t word = 0;
    size_t shift = 0;
    for (size_t item = 0; item < num_items_; ++item) {
      for (size_t cb = 0; cb < num_codebooks_; ++cb) {
        uint64_t value = bits_[word] >> shift;
        const size_t spill = shift + bits_per_code_;
        if (spill > 64) {
          value |= bits_[word + 1] << (64 - shift);
        }
        fn(item, cb, static_cast<uint32_t>(value & mask));
        shift += bits_per_code_;
        if (shift >= 64) {
          shift -= 64;
          ++word;
        }
      }
    }
  }

  /// Payload bytes of the packed bit array.
  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }

  /// Serialization for persisted indexes.
  void Save(BinaryWriter& writer) const;
  static Result<PackedCodes> Load(BinaryReader& reader);

 private:
  size_t BitOffset(size_t item, size_t codebook) const {
    return (item * num_codebooks_ + codebook) * bits_per_code_;
  }

  size_t num_items_ = 0;
  size_t num_codebooks_ = 0;
  size_t num_codewords_ = 0;
  size_t bits_per_code_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace lightlt::index

#endif  // LIGHTLT_INDEX_CODES_H_
