// Hamming-distance index over binary hash codes, used by the binarized-hash
// baselines (LSH, PCAH, ITQ, SDH, CSQ, HashNet, LTHNet, ...).

#ifndef LIGHTLT_INDEX_HAMMING_INDEX_H_
#define LIGHTLT_INDEX_HAMMING_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/index/adc_index.h"  // for SearchHit
#include "src/tensor/matrix.h"

namespace lightlt::index {

/// Packs the sign pattern of each row of `x` (n x bits) into uint64 blocks:
/// bit b set iff x(i, b) > 0.
std::vector<uint64_t> PackSignBits(const Matrix& x, size_t* blocks_per_item);

/// Exhaustive Hamming-distance ranking over packed binary codes.
class HammingIndex {
 public:
  /// `codes` has num_items * blocks_per_item uint64 blocks; `num_bits` is
  /// the true code length (for memory accounting).
  HammingIndex(std::vector<uint64_t> codes, size_t blocks_per_item,
               size_t num_bits);

  /// scores[i] = Hamming distance between query code and item i.
  void ComputeScores(const uint64_t* query_code,
                     std::vector<float>* scores) const;

  std::vector<uint32_t> RankAll(const uint64_t* query_code) const;

  size_t num_items() const { return num_items_; }
  size_t num_bits() const { return num_bits_; }
  size_t blocks_per_item() const { return blocks_per_item_; }

  /// num_bits/8 bytes per item.
  size_t MemoryBytes() const { return num_items_ * ((num_bits_ + 7) / 8); }

 private:
  std::vector<uint64_t> codes_;
  size_t blocks_per_item_;
  size_t num_bits_;
  size_t num_items_;
};

}  // namespace lightlt::index

#endif  // LIGHTLT_INDEX_HAMMING_INDEX_H_
