// Exhaustive-search index over uncompressed float vectors — the efficiency
// baseline of the paper's Fig. 7 and the oracle for retrieval quality.

#ifndef LIGHTLT_INDEX_FLAT_INDEX_H_
#define LIGHTLT_INDEX_FLAT_INDEX_H_

#include <vector>

#include "src/index/adc_index.h"  // for SearchHit
#include "src/tensor/matrix.h"

namespace lightlt::index {

/// Stores raw d-dim vectors; queries are exhaustive squared-L2 scans.
class FlatIndex {
 public:
  explicit FlatIndex(Matrix vectors);

  /// scores[i] = ||x_i||^2 - 2 <q, x_i> (rank-equivalent squared L2). O(nd).
  void ComputeScores(const float* query, std::vector<float>* scores) const;

  /// Top-k by exact distance, ascending; ties break by ascending id.
  std::vector<SearchHit> Search(const float* query, size_t top_k) const;
  std::vector<uint32_t> RankAll(const float* query) const;

  size_t num_items() const { return vectors_.rows(); }
  size_t dim() const { return vectors_.cols(); }

  /// 4nd bytes of float storage.
  size_t MemoryBytes() const { return vectors_.size() * sizeof(float); }

  /// Per-query cost in fused multiply-adds: nd (§IV-B).
  size_t TheoreticalQueryOps() const { return num_items() * dim(); }

 private:
  Matrix vectors_;
  std::vector<float> norms_;
};

}  // namespace lightlt::index

#endif  // LIGHTLT_INDEX_FLAT_INDEX_H_
