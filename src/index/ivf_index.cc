#include "src/index/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/clustering/kmeans.h"
#include "src/obs/profile.h"
#include "src/util/chaos.h"
#include "src/util/check.h"
#include "src/util/io.h"
#include "src/util/timer.h"

namespace lightlt::index {

Status IvfOptions::Validate() const {
  if (num_cells == 0) {
    return Status::InvalidArgument("IvfOptions: num_cells must be > 0");
  }
  if (nprobe == 0 || nprobe > num_cells) {
    return Status::InvalidArgument(
        "IvfOptions: nprobe must be in [1, num_cells]");
  }
  return Status::Ok();
}

Result<IvfAdcIndex> IvfAdcIndex::Build(
    const Matrix& embeddings, const std::vector<Matrix>& codebooks,
    const std::vector<std::vector<uint32_t>>& item_codes,
    const IvfOptions& options) {
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  if (codebooks.empty()) {
    return Status::InvalidArgument("IvfAdcIndex: no codebooks");
  }
  if (embeddings.rows() != item_codes.size()) {
    return Status::InvalidArgument(
        "IvfAdcIndex: embeddings/codes count mismatch");
  }
  const size_t m = codebooks.size();
  const size_t k = codebooks[0].rows();
  const size_t d = codebooks[0].cols();
  if (k > 256) {
    return Status::InvalidArgument(
        "IvfAdcIndex: K > 256 not supported by the byte-code cells");
  }
  for (const auto& book : codebooks) {
    if (book.rows() != k || book.cols() != d) {
      return Status::InvalidArgument("IvfAdcIndex: codebook shape mismatch");
    }
  }

  IvfAdcIndex idx;
  idx.options_ = options;
  idx.codebooks_ = codebooks;
  idx.total_items_ = item_codes.size();

  // Coarse quantizer over the continuous embeddings.
  clustering::KMeansOptions km;
  km.num_clusters = options.num_cells;
  km.max_iterations = options.kmeans_iterations;
  km.seed = options.seed;
  const auto coarse = clustering::KMeans(embeddings, km);
  idx.centroids_ = coarse.centroids;

  const size_t cells = idx.centroids_.rows();
  idx.cell_ids_.resize(cells);
  idx.cell_codes_.resize(cells);
  idx.cell_norms_.resize(cells);

  // ||centroid||^2 is query-independent; computing it here instead of per
  // query keeps the cell-ranking loop in Search to one dot product per cell.
  idx.centroid_norms_.resize(cells);
  for (size_t c = 0; c < cells; ++c) {
    const float* centroid = idx.centroids_.row(c);
    float norm = 0.0f;
    for (size_t j = 0; j < d; ++j) norm += centroid[j] * centroid[j];
    idx.centroid_norms_[c] = norm;
  }

  // Gather item-major codes per cell first; the scan layout is blocked.
  std::vector<std::vector<uint8_t>> item_major(cells);
  std::vector<float> recon(d);
  for (size_t i = 0; i < item_codes.size(); ++i) {
    if (item_codes[i].size() != m) {
      return Status::InvalidArgument("IvfAdcIndex: item code length mismatch");
    }
    const uint32_t cell = coarse.assignments[i];
    idx.cell_ids_[cell].push_back(static_cast<uint32_t>(i));
    std::fill(recon.begin(), recon.end(), 0.0f);
    for (size_t cb = 0; cb < m; ++cb) {
      const uint32_t code = item_codes[i][cb];
      if (code >= k) {
        return Status::InvalidArgument("IvfAdcIndex: code out of range");
      }
      item_major[cell].push_back(static_cast<uint8_t>(code));
      const float* word = codebooks[cb].row(code);
      for (size_t j = 0; j < d; ++j) recon[j] += word[j];
    }
    double norm = 0.0;
    for (size_t j = 0; j < d; ++j) {
      norm += static_cast<double>(recon[j]) * recon[j];
    }
    idx.cell_norms_[cell].push_back(static_cast<float>(norm));
  }
  for (size_t c = 0; c < cells; ++c) {
    kernels::BuildBlockedCodes(item_major[c].data(),
                               idx.cell_ids_[c].size(), m,
                               &idx.cell_codes_[c]);
  }
  idx.SelectKernel();
  return idx;
}

std::vector<SearchHit> IvfAdcIndex::Search(const float* query, size_t top_k,
                                           size_t nprobe_override) const {
  // Legacy uncontrolled entry point: chaos-instrumented like the
  // control-aware one (the hooks are no-ops when disarmed), with an
  // injected failure surfacing as an empty result (callers treat a
  // shortfall as degradation).
  auto result = Search(query, top_k, ScanControl{}, nprobe_override);
  return result.ok() ? std::move(result).value() : std::vector<SearchHit>{};
}

namespace {

/// Strict weak order "a is a better hit than b": ascending distance, ties
/// by ascending id — the shared tie-break of every scan path (a tie flip
/// between the flat and IVF paths reads as a spurious shadow-recall miss).
bool BetterHit(const SearchHit& a, const SearchHit& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.id < b.id);
}

}  // namespace

float IvfAdcIndex::ExactCellScore(uint32_t cell, size_t i, const float* lut,
                                  size_t k) const {
  const size_t m = codebooks_.size();
  const uint8_t* base = cell_codes_[cell].data() +
                        (i / kernels::kBlockItems) * m * kernels::kBlockItems +
                        (i % kernels::kBlockItems);
  float dot = 0.0f;
  for (size_t cb = 0; cb < m; ++cb) {
    dot += lut[cb * k + base[cb * kernels::kBlockItems]];
  }
  return cell_norms_[cell][i] - 2.0f * dot;
}

void IvfAdcIndex::RecordProbeStats(size_t cells_scanned,
                                   size_t items_scanned) const {
  if (probed_cells_ != nullptr) {
    probed_cells_->Record(static_cast<double>(cells_scanned));
  }
  if (scanned_fraction_ != nullptr && total_items_ > 0) {
    scanned_fraction_->Record(static_cast<double>(items_scanned) /
                              static_cast<double>(total_items_));
  }
}

Result<std::vector<SearchHit>> IvfAdcIndex::Search(
    const float* query, size_t top_k, const ScanControl& control,
    size_t nprobe_override) const {
  LIGHTLT_RETURN_IF_ERROR(ChaosOnIvfSearch());
  const size_t m = codebooks_.size();
  const size_t k = codebooks_.empty() ? 0 : codebooks_[0].rows();
  const size_t d = codebooks_.empty() ? 0 : codebooks_[0].cols();
  const size_t nprobe = std::min(
      nprobe_override == 0 ? options_.nprobe : nprobe_override,
      centroids_.rows());

  // Rank cells by centroid distance (rank-equivalent form).
  std::vector<float> cell_scores(centroids_.rows());
  std::vector<uint32_t> cell_order(centroids_.rows());
  {
    obs::ProfilePhase route_phase("ivf_route");
    for (size_t c = 0; c < centroids_.rows(); ++c) {
      const float* centroid = centroids_.row(c);
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += query[j] * centroid[j];
      cell_scores[c] = centroid_norms_[c] - 2.0f * dot;
    }
    std::iota(cell_order.begin(), cell_order.end(), 0u);
    std::partial_sort(cell_order.begin(), cell_order.begin() + nprobe,
                      cell_order.end(), [&](uint32_t a, uint32_t b) {
                        return cell_scores[a] < cell_scores[b] ||
                               (cell_scores[a] == cell_scores[b] && a < b);
                      });
  }

  // Shared lookup tables, as in the flat ADC scan (§IV-B), plus their
  // quantized form when a fast-scan kernel is selected.
  std::vector<float> lut(m * k);
  {
    obs::ProfilePhase lut_phase("lut_build");
    for (size_t cb = 0; cb < m; ++cb) {
      const Matrix& book = codebooks_[cb];
      float* row = lut.data() + cb * k;
      for (size_t j = 0; j < k; ++j) {
        const float* word = book.row(j);
        float acc = 0.0f;
        for (size_t t = 0; t < d; ++t) acc += query[t] * word[t];
        row[j] = acc;
      }
    }
  }
  kernels::QuantizedLut qlut;
  if (control.stats != nullptr) control.stats->lut_builds += 1;
  if (scan_kernel_.fn != nullptr) {
    obs::ProfilePhase lut_phase("lut_build");
    qlut = kernels::QuantizeLut(lut.data(), m, k);
    if (control.stats != nullptr) control.stats->lut_builds += 1;
  }
  const float bound = qlut.ScoreErrorBound();

  // Scan the probed cells keeping a bounded worst-on-top heap of the best
  // top_k seen so far — O(top_k) state instead of materializing every
  // scanned item. Each cell is one cooperative chunk: the control is
  // polled between cells, so expiry or cancellation overshoots by at most
  // one cell's scan; the probe-breadth histograms record whatever was
  // actually scanned, on the early-out paths too, so those distributions
  // are not biased toward fast queries. Telemetry is likewise per-cell —
  // the inner scoring loop carries no instrumentation.
  std::vector<SearchHit> heap;
  heap.reserve(top_k);
  std::vector<uint16_t> sums;
  size_t items_scanned = 0;
  obs::ProfilePhase scan_phase("ivf_scan");
  for (size_t p = 0; p < nprobe; ++p) {
    if (p > 0) {
      const Status check = control.Check();
      if (!check.ok()) {
        if (instruments_.enabled()) instruments_.overshoot->Increment();
        RecordProbeStats(p, items_scanned);
        return check;
      }
    }
    {
      const Status chaos = ChaosOnScanChunk();
      if (!chaos.ok()) {
        RecordProbeStats(p, items_scanned);
        return chaos;
      }
    }
    const uint32_t cell = cell_order[p];
    const auto& ids = cell_ids_[cell];
    const auto& norms = cell_norms_[cell];
    ScopedTimer timer(instruments_.chunk_seconds);
    const auto offer = [&](size_t i, float exact) {
      if (top_k == 0) return;
      const SearchHit hit{ids[i], exact};
      if (heap.size() < top_k) {
        heap.push_back(hit);
        std::push_heap(heap.begin(), heap.end(), BetterHit);
      } else if (BetterHit(hit, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), BetterHit);
        heap.back() = hit;
        std::push_heap(heap.begin(), heap.end(), BetterHit);
      }
    };
    size_t decoded = 0;
    if (scan_kernel_.fn != nullptr && top_k > 0) {
      // Quantized cell scan: integer sums first, then an exact float
      // re-score of only the items whose approximate score could still
      // make the heap (|approx - exact| <= bound, DESIGN.md §12) — so the
      // heap contents equal the all-float scan's.
      const size_t blocks = kernels::NumBlocks(ids.size());
      sums.resize(blocks * kernels::kBlockItems);
      scan_kernel_.fn(cell_codes_[cell].data(), blocks, m, qlut.k_padded,
                      qlut.table.data(), sums.data());
      for (size_t i = 0; i < ids.size(); ++i) {
        const float approx =
            norms[i] - 2.0f * (static_cast<float>(sums[i]) * qlut.scale +
                               qlut.bias_sum);
        if (heap.size() == top_k && approx - bound > heap.front().distance) {
          continue;
        }
        ++decoded;
        offer(i, ExactCellScore(cell, i, lut.data(), k));
      }
    } else {
      decoded = ids.size();
      for (size_t i = 0; i < ids.size(); ++i) {
        offer(i, ExactCellScore(cell, i, lut.data(), k));
      }
    }
    items_scanned += ids.size();
    if (instruments_.enabled()) {
      instruments_.chunks->Increment();
      instruments_.items->Increment(ids.size());
    }
    if (control.stats != nullptr) {
      control.stats->chunks += 1;
      control.stats->items += ids.size();
      control.stats->probed_cells += 1;
      // Exact re-scores expand m codes per offered item — the part of the
      // quantized path the integer kernel could not prune.
      control.stats->codes_decoded += decoded * m;
    }
  }
  RecordProbeStats(nprobe, items_scanned);
  std::sort_heap(heap.begin(), heap.end(), BetterHit);
  return heap;
}

double IvfAdcIndex::ExpectedScanFraction(size_t nprobe_override) const {
  if (total_items_ == 0) return 0.0;
  const size_t cells = centroids_.rows();
  const size_t d = centroids_.cols();
  const size_t nprobe = std::min(
      nprobe_override == 0 ? options_.nprobe : nprobe_override, cells);

  // For a query whose nearest centroid is cell c, Search scans the nprobe
  // cells closest to the query — approximated here by the nprobe cells
  // closest to centroid c. Weight each seed cell by its own item mass (the
  // empirical query distribution), giving the mass-aware expectation rather
  // than the uniform nprobe/cells estimate.
  const double total = static_cast<double>(total_items_);
  double expected = 0.0;
  std::vector<std::pair<float, uint32_t>> by_dist(cells);
  for (size_t c = 0; c < cells; ++c) {
    const double seed_weight =
        static_cast<double>(cell_ids_[c].size()) / total;
    if (seed_weight == 0.0) continue;
    const float* seed = centroids_.row(c);
    for (size_t o = 0; o < cells; ++o) {
      const float* other = centroids_.row(o);
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += seed[j] * other[j];
      by_dist[o] = {centroid_norms_[o] - 2.0f * dot,
                    static_cast<uint32_t>(o)};
    }
    std::partial_sort(by_dist.begin(), by_dist.begin() + nprobe,
                      by_dist.end());
    double scanned = 0.0;
    for (size_t p = 0; p < nprobe; ++p) {
      scanned += static_cast<double>(cell_ids_[by_dist[p].second].size());
    }
    expected += seed_weight * (scanned / total);
  }
  return expected;
}

namespace {
// Format: magic, u32 version, payload, checksum footer. Footered from its
// first version (there are no legacy IVF files). v2 stores cell codes in
// the blocked fast-scan layout (preceded by its block width) instead of
// item-major bytes, so a load pays no repacking; v1 files are repacked on
// load.
constexpr uint32_t kIvfMagic = 0x4c54'4956;  // "LTIV"
constexpr uint32_t kIvfVersion = 2;
}  // namespace

void IvfAdcIndex::SelectKernel() {
  // K <= 256 is an IVF build invariant; M > 256 would overflow the u16
  // accumulators, so such indexes stay on the exact float path.
  scan_kernel_ = kernels::ScanKernel{};
  if (codebooks_.size() <= 256 && !codebooks_.empty()) {
    scan_kernel_ =
        kernels::SelectScanKernel(kernels::PadCodewords(codebooks_[0].rows()));
  }
}

Status IvfAdcIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU32(kIvfMagic);
  writer.WriteU32(kIvfVersion);
  writer.WriteU32(static_cast<uint32_t>(kernels::kBlockItems));
  writer.WriteU64(options_.num_cells);
  writer.WriteU64(options_.nprobe);
  writer.WriteI64(options_.kmeans_iterations);
  writer.WriteU64(options_.seed);
  writer.WriteU64(total_items_);
  writer.WriteU64(centroids_.rows());
  writer.WriteU64(centroids_.cols());
  writer.WriteF32Vector(centroids_.storage());
  writer.WriteF32Vector(centroid_norms_);
  writer.WriteU64(codebooks_.size());
  for (const auto& cb : codebooks_) {
    writer.WriteU64(cb.rows());
    writer.WriteU64(cb.cols());
    writer.WriteF32Vector(cb.storage());
  }
  for (size_t c = 0; c < cell_ids_.size(); ++c) {
    writer.WriteU32Vector(cell_ids_[c]);
    writer.WriteBytes(cell_codes_[c]);
    writer.WriteF32Vector(cell_norms_[c]);
  }
  return writer.Close();
}

Result<IvfAdcIndex> IvfAdcIndex::Load(const std::string& path) {
  BinaryReader reader(path);
  const uint32_t magic = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (magic != kIvfMagic) {
    return Status::IoError("IvfAdcIndex: bad magic in " + path);
  }
  const uint32_t version = reader.ReadU32();
  if (!reader.status().ok()) return reader.status();
  if (version < 1 || version > kIvfVersion) {
    return Status::IoError("IvfAdcIndex: unsupported format version");
  }
  if (version >= 2) {
    const uint32_t scan_block = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (scan_block != kernels::kBlockItems) {
      return Status::IoError("IvfAdcIndex: unsupported scan layout");
    }
  }

  IvfAdcIndex idx;
  idx.options_.num_cells = reader.ReadU64();
  idx.options_.nprobe = reader.ReadU64();
  idx.options_.kmeans_iterations =
      static_cast<int>(reader.ReadI64());
  idx.options_.seed = reader.ReadU64();
  idx.total_items_ = reader.ReadU64();
  const size_t cells = reader.ReadU64();
  const size_t d = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  LIGHTLT_RETURN_IF_ERROR(idx.options_.Validate());
  if (cells == 0 || cells > (1u << 24) || d == 0 || d > (1u << 20)) {
    return Status::IoError("IvfAdcIndex: corrupt coarse quantizer shape");
  }
  std::vector<float> centroid_data = reader.ReadF32Vector();
  if (!reader.status().ok()) return reader.status();
  if (centroid_data.size() != cells * d) {
    return Status::IoError("IvfAdcIndex: centroid payload size mismatch");
  }
  idx.centroids_ = Matrix(cells, d, std::move(centroid_data));
  idx.centroid_norms_ = reader.ReadF32Vector();
  if (!reader.status().ok()) return reader.status();
  if (idx.centroid_norms_.size() != cells) {
    return Status::IoError("IvfAdcIndex: centroid norm table mismatch");
  }

  const size_t m = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  if (m == 0 || m > 4096) return Status::IoError("IvfAdcIndex: corrupt M");
  size_t k = 0;
  idx.codebooks_.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t rows = reader.ReadU64();
    const size_t cols = reader.ReadU64();
    std::vector<float> data = reader.ReadF32Vector();
    if (!reader.status().ok()) return reader.status();
    if (data.size() != rows * cols) {
      return Status::IoError("IvfAdcIndex: corrupt codebook");
    }
    if (i == 0) {
      k = rows;
      if (k < 2 || k > 256 || cols != d) {
        return Status::IoError("IvfAdcIndex: corrupt codebook shape");
      }
    } else if (rows != k || cols != d) {
      return Status::IoError("IvfAdcIndex: codebook shape mismatch");
    }
    idx.codebooks_.emplace_back(rows, cols, std::move(data));
  }

  idx.cell_ids_.resize(cells);
  idx.cell_codes_.resize(cells);
  idx.cell_norms_.resize(cells);
  uint64_t items_seen = 0;
  for (size_t c = 0; c < cells; ++c) {
    idx.cell_ids_[c] = reader.ReadU32Vector();
    std::vector<uint8_t> codes = reader.ReadBytes();
    idx.cell_norms_[c] = reader.ReadF32Vector();
    if (!reader.status().ok()) return reader.status();
    const size_t n = idx.cell_ids_[c].size();
    const size_t expected_bytes =
        version >= 2 ? kernels::NumBlocks(n) * m * kernels::kBlockItems
                     : n * m;
    if (codes.size() != expected_bytes || idx.cell_norms_[c].size() != n) {
      return Status::IoError("IvfAdcIndex: cell payload size mismatch");
    }
    for (const uint32_t id : idx.cell_ids_[c]) {
      if (id >= idx.total_items_) {
        return Status::IoError("IvfAdcIndex: cell id out of range");
      }
    }
    // Every stored byte indexes the lookup tables, so validate the whole
    // payload — in v2 that includes the zeroed tail-lane padding.
    for (const uint8_t code : codes) {
      if (code >= k) {
        return Status::IoError("IvfAdcIndex: stored code out of range");
      }
    }
    if (version >= 2) {
      idx.cell_codes_[c] = std::move(codes);
    } else {
      kernels::BuildBlockedCodes(codes.data(), n, m, &idx.cell_codes_[c]);
    }
    items_seen += n;
  }
  if (items_seen != idx.total_items_) {
    return Status::IoError("IvfAdcIndex: item count mismatch");
  }
  LIGHTLT_RETURN_IF_ERROR(reader.VerifyFooter());
  idx.SelectKernel();
  return idx;
}

void IvfAdcIndex::Instrument(obs::MetricsRegistry* registry,
                             const std::string& prefix) {
  instruments_.Register(registry, prefix);
  probed_cells_ = registry->GetHistogram(prefix + "probed_cells");
  scanned_fraction_ = registry->GetHistogram(prefix + "scanned_fraction");
}

size_t IvfAdcIndex::MemoryBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  bytes += centroid_norms_.size() * sizeof(float);
  for (const auto& book : codebooks_) bytes += book.size() * sizeof(float);
  for (size_t c = 0; c < cell_ids_.size(); ++c) {
    bytes += cell_ids_[c].size() * sizeof(uint32_t);
    bytes += cell_codes_[c].size();
    bytes += cell_norms_[c].size() * sizeof(float);
  }
  return bytes;
}

}  // namespace lightlt::index
