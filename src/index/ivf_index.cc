#include "src/index/ivf_index.h"

#include <algorithm>
#include <numeric>

#include "src/clustering/kmeans.h"
#include "src/util/check.h"

namespace lightlt::index {

Status IvfOptions::Validate() const {
  if (num_cells == 0) {
    return Status::InvalidArgument("IvfOptions: num_cells must be > 0");
  }
  if (nprobe == 0 || nprobe > num_cells) {
    return Status::InvalidArgument(
        "IvfOptions: nprobe must be in [1, num_cells]");
  }
  return Status::Ok();
}

Result<IvfAdcIndex> IvfAdcIndex::Build(
    const Matrix& embeddings, const std::vector<Matrix>& codebooks,
    const std::vector<std::vector<uint32_t>>& item_codes,
    const IvfOptions& options) {
  LIGHTLT_RETURN_IF_ERROR(options.Validate());
  if (codebooks.empty()) {
    return Status::InvalidArgument("IvfAdcIndex: no codebooks");
  }
  if (embeddings.rows() != item_codes.size()) {
    return Status::InvalidArgument(
        "IvfAdcIndex: embeddings/codes count mismatch");
  }
  const size_t m = codebooks.size();
  const size_t k = codebooks[0].rows();
  const size_t d = codebooks[0].cols();
  if (k > 256) {
    return Status::InvalidArgument(
        "IvfAdcIndex: K > 256 not supported by the byte-code cells");
  }
  for (const auto& book : codebooks) {
    if (book.rows() != k || book.cols() != d) {
      return Status::InvalidArgument("IvfAdcIndex: codebook shape mismatch");
    }
  }

  IvfAdcIndex idx;
  idx.options_ = options;
  idx.codebooks_ = codebooks;
  idx.total_items_ = item_codes.size();

  // Coarse quantizer over the continuous embeddings.
  clustering::KMeansOptions km;
  km.num_clusters = options.num_cells;
  km.max_iterations = options.kmeans_iterations;
  km.seed = options.seed;
  const auto coarse = clustering::KMeans(embeddings, km);
  idx.centroids_ = coarse.centroids;

  const size_t cells = idx.centroids_.rows();
  idx.cell_ids_.resize(cells);
  idx.cell_codes_.resize(cells);
  idx.cell_norms_.resize(cells);

  // ||centroid||^2 is query-independent; computing it here instead of per
  // query keeps the cell-ranking loop in Search to one dot product per cell.
  idx.centroid_norms_.resize(cells);
  for (size_t c = 0; c < cells; ++c) {
    const float* centroid = idx.centroids_.row(c);
    float norm = 0.0f;
    for (size_t j = 0; j < d; ++j) norm += centroid[j] * centroid[j];
    idx.centroid_norms_[c] = norm;
  }

  std::vector<float> recon(d);
  for (size_t i = 0; i < item_codes.size(); ++i) {
    if (item_codes[i].size() != m) {
      return Status::InvalidArgument("IvfAdcIndex: item code length mismatch");
    }
    const uint32_t cell = coarse.assignments[i];
    idx.cell_ids_[cell].push_back(static_cast<uint32_t>(i));
    std::fill(recon.begin(), recon.end(), 0.0f);
    for (size_t cb = 0; cb < m; ++cb) {
      const uint32_t code = item_codes[i][cb];
      if (code >= k) {
        return Status::InvalidArgument("IvfAdcIndex: code out of range");
      }
      idx.cell_codes_[cell].push_back(static_cast<uint8_t>(code));
      const float* word = codebooks[cb].row(code);
      for (size_t j = 0; j < d; ++j) recon[j] += word[j];
    }
    double norm = 0.0;
    for (size_t j = 0; j < d; ++j) {
      norm += static_cast<double>(recon[j]) * recon[j];
    }
    idx.cell_norms_[cell].push_back(static_cast<float>(norm));
  }
  return idx;
}

std::vector<SearchHit> IvfAdcIndex::Search(const float* query, size_t top_k,
                                           size_t nprobe_override) const {
  const size_t m = codebooks_.size();
  const size_t k = codebooks_.empty() ? 0 : codebooks_[0].rows();
  const size_t d = codebooks_.empty() ? 0 : codebooks_[0].cols();
  const size_t nprobe = std::min(
      nprobe_override == 0 ? options_.nprobe : nprobe_override,
      centroids_.rows());

  // Rank cells by centroid distance (rank-equivalent form).
  std::vector<float> cell_scores(centroids_.rows());
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    const float* centroid = centroids_.row(c);
    float dot = 0.0f;
    for (size_t j = 0; j < d; ++j) dot += query[j] * centroid[j];
    cell_scores[c] = centroid_norms_[c] - 2.0f * dot;
  }
  std::vector<uint32_t> cell_order(centroids_.rows());
  std::iota(cell_order.begin(), cell_order.end(), 0u);
  std::partial_sort(cell_order.begin(), cell_order.begin() + nprobe,
                    cell_order.end(), [&](uint32_t a, uint32_t b) {
                      return cell_scores[a] < cell_scores[b];
                    });

  // Shared lookup tables, as in the flat ADC scan (§IV-B).
  std::vector<float> lut(m * k);
  for (size_t cb = 0; cb < m; ++cb) {
    const Matrix& book = codebooks_[cb];
    float* row = lut.data() + cb * k;
    for (size_t j = 0; j < k; ++j) {
      const float* word = book.row(j);
      float acc = 0.0f;
      for (size_t t = 0; t < d; ++t) acc += query[t] * word[t];
      row[j] = acc;
    }
  }

  // Scan the probed cells, keep the best top_k overall.
  std::vector<SearchHit> hits;
  for (size_t p = 0; p < nprobe; ++p) {
    const uint32_t cell = cell_order[p];
    const auto& ids = cell_ids_[cell];
    const auto& codes = cell_codes_[cell];
    const auto& norms = cell_norms_[cell];
    for (size_t i = 0; i < ids.size(); ++i) {
      float dot = 0.0f;
      const uint8_t* item_codes = codes.data() + i * m;
      for (size_t cb = 0; cb < m; ++cb) {
        dot += lut[cb * k + item_codes[cb]];
      }
      hits.push_back({ids[i], norms[i] - 2.0f * dot});
    }
  }
  const size_t keep = std::min(top_k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + keep, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      return a.distance < b.distance;
                    });
  hits.resize(keep);
  return hits;
}

double IvfAdcIndex::ExpectedScanFraction(size_t nprobe_override) const {
  if (total_items_ == 0) return 0.0;
  const size_t cells = centroids_.rows();
  const size_t d = centroids_.cols();
  const size_t nprobe = std::min(
      nprobe_override == 0 ? options_.nprobe : nprobe_override, cells);

  // For a query whose nearest centroid is cell c, Search scans the nprobe
  // cells closest to the query — approximated here by the nprobe cells
  // closest to centroid c. Weight each seed cell by its own item mass (the
  // empirical query distribution), giving the mass-aware expectation rather
  // than the uniform nprobe/cells estimate.
  const double total = static_cast<double>(total_items_);
  double expected = 0.0;
  std::vector<std::pair<float, uint32_t>> by_dist(cells);
  for (size_t c = 0; c < cells; ++c) {
    const double seed_weight =
        static_cast<double>(cell_ids_[c].size()) / total;
    if (seed_weight == 0.0) continue;
    const float* seed = centroids_.row(c);
    for (size_t o = 0; o < cells; ++o) {
      const float* other = centroids_.row(o);
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += seed[j] * other[j];
      by_dist[o] = {centroid_norms_[o] - 2.0f * dot,
                    static_cast<uint32_t>(o)};
    }
    std::partial_sort(by_dist.begin(), by_dist.begin() + nprobe,
                      by_dist.end());
    double scanned = 0.0;
    for (size_t p = 0; p < nprobe; ++p) {
      scanned += static_cast<double>(cell_ids_[by_dist[p].second].size());
    }
    expected += seed_weight * (scanned / total);
  }
  return expected;
}

size_t IvfAdcIndex::MemoryBytes() const {
  size_t bytes = centroids_.size() * sizeof(float);
  bytes += centroid_norms_.size() * sizeof(float);
  for (const auto& book : codebooks_) bytes += book.size() * sizeof(float);
  for (size_t c = 0; c < cell_ids_.size(); ++c) {
    bytes += cell_ids_[c].size() * sizeof(uint32_t);
    bytes += cell_codes_[c].size();
    bytes += cell_norms_[c].size() * sizeof(float);
  }
  return bytes;
}

}  // namespace lightlt::index
