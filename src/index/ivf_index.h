// IVF-ADC: inverted-file acceleration on top of the ADC index.
//
// The paper's LightLT scans all n items per query (O(dMK + nM), §IV-B).
// For larger databases, classical practice partitions the database with a
// coarse k-means quantizer and scans only the `nprobe` cells nearest to the
// query — the natural extension of the paper's efficiency story. Residual
// encoding composes naturally with LightLT: each item is stored as
// (cell id, DSQ codes of the item), and distances are computed with the
// same per-query lookup tables, restricted to probed cells.

#ifndef LIGHTLT_INDEX_IVF_INDEX_H_
#define LIGHTLT_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/index/adc_index.h"
#include "src/index/kernels/scan_kernels.h"
#include "src/tensor/matrix.h"
#include "src/util/deadline.h"
#include "src/util/status.h"

namespace lightlt::index {

struct IvfOptions {
  /// Number of coarse cells (k-means centroids).
  size_t num_cells = 64;
  /// Cells scanned per query.
  size_t nprobe = 8;
  /// Coarse-quantizer training iterations.
  int kmeans_iterations = 20;
  uint64_t seed = 0x1f5;

  Status Validate() const;
};

/// Inverted-file index over quantization codes. Build with the database's
/// *continuous* embeddings (for the coarse quantizer) plus the same
/// codebooks/codes an AdcIndex would take.
class IvfAdcIndex {
 public:
  /// `embeddings` are the n continuous vectors (used only to train and
  /// assign the coarse quantizer); `codebooks`/`item_codes` mirror
  /// AdcIndex::Build.
  static Result<IvfAdcIndex> Build(
      const Matrix& embeddings, const std::vector<Matrix>& codebooks,
      const std::vector<std::vector<uint32_t>>& item_codes,
      const IvfOptions& options);

  /// Top-k search probing `nprobe` cells (option default; overridable per
  /// query with `nprobe_override` > 0). Returns original database ids.
  std::vector<SearchHit> Search(const float* query, size_t top_k,
                                size_t nprobe_override = 0) const;

  /// Control-aware Search: polls deadline/cancellation between probed
  /// cells (each cell is one scan chunk), and runs the chaos IVF hooks —
  /// an injected IVF failure surfaces here as kUnavailable, which the
  /// serving circuit breaker counts. On success, may still return fewer
  /// than top_k hits when the probed cells are short (caller degrades).
  Result<std::vector<SearchHit>> Search(const float* query, size_t top_k,
                                        const ScanControl& control,
                                        size_t nprobe_override) const;

  /// Expected fraction of the database scanned per query (diagnostic; cell
  /// balance determines the real speedup over exhaustive ADC). Uses actual
  /// cell masses: for each cell, the mass of the nprobe cells nearest to its
  /// centroid, weighted by the probability a query lands there (approximated
  /// by the cell's own mass).
  double ExpectedScanFraction(size_t nprobe_override = 0) const;

  size_t num_items() const { return total_items_; }
  size_t num_cells() const { return centroids_.rows(); }

  /// Codebooks + packed per-cell codes + centroids + id lists.
  size_t MemoryBytes() const;

  /// Versioned binary persistence (checksummed footer, atomic write).
  Status Save(const std::string& path) const;
  static Result<IvfAdcIndex> Load(const std::string& path);

  /// Registers `{prefix}scan_*` chunk telemetry plus `{prefix}probed_cells`
  /// and `{prefix}scanned_fraction` histograms, recorded per successful
  /// search. Instruments are not persisted — call again after Load. Not
  /// thread-safe against in-flight searches; the registry must outlive the
  /// index.
  void Instrument(obs::MetricsRegistry* registry, const std::string& prefix);

 private:
  IvfAdcIndex() = default;

  IvfOptions options_;
  Matrix centroids_;                 // num_cells x d
  std::vector<float> centroid_norms_;  // ||centroid_c||^2, fixed at Build
  std::vector<Matrix> codebooks_;    // M x (K x d)
  /// Picks the fast-scan kernel for this K (Build/Load epilogue).
  void SelectKernel();

  /// Exact float score of item `i` of `cell` against per-query LUTs —
  /// the same codebook-order accumulation as the flat ADC scan, read
  /// strided out of the blocked cell layout.
  float ExactCellScore(uint32_t cell, size_t i, const float* lut,
                       size_t k) const;

  /// Records the probe-breadth histograms for one (possibly cut-short)
  /// search: cells fully scanned and items scored before the scan ended.
  void RecordProbeStats(size_t cells_scanned, size_t items_scanned) const;

  /// Per cell: original database ids, their codes in the fast-scan blocked
  /// layout (kernels::BuildBlockedCodes — NumBlocks(n)*M*32 bytes, tail
  /// lanes zero), and per-item reconstruction norms.
  std::vector<std::vector<uint32_t>> cell_ids_;
  std::vector<std::vector<uint8_t>> cell_codes_;
  std::vector<std::vector<float>> cell_norms_;    // ||o_i||^2 per item
  size_t total_items_ = 0;
  /// Kernel selected for this K at Build/Load (fn null = exact path only).
  kernels::ScanKernel scan_kernel_;
  /// Per-cell chunk telemetry plus probe-breadth histograms (DESIGN.md §10).
  ScanInstruments instruments_;
  obs::Histogram* probed_cells_ = nullptr;
  obs::Histogram* scanned_fraction_ = nullptr;
};

}  // namespace lightlt::index

#endif  // LIGHTLT_INDEX_IVF_INDEX_H_
