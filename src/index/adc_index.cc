#include "src/index/adc_index.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "src/obs/profile.h"
#include "src/util/chaos.h"
#include "src/util/check.h"
#include "src/util/io.h"
#include "src/util/timer.h"

namespace lightlt::index {

void ScanInstruments::Register(obs::MetricsRegistry* registry,
                               const std::string& prefix) {
  chunks = registry->GetCounter(prefix + "scan_chunks_total");
  items = registry->GetCounter(prefix + "scan_items_total");
  overshoot = registry->GetCounter(prefix + "scan_deadline_overshoot_total");
  chunk_seconds = registry->GetHistogram(prefix + "scan_chunk_seconds");
}

void AdcIndex::Instrument(obs::MetricsRegistry* registry,
                          const std::string& prefix) {
  instruments_.Register(registry, prefix);
}

Result<AdcIndex> AdcIndex::Build(
    const std::vector<Matrix>& codebooks,
    const std::vector<std::vector<uint32_t>>& item_codes) {
  if (codebooks.empty()) {
    return Status::InvalidArgument("AdcIndex: no codebooks");
  }
  const size_t m = codebooks.size();
  const size_t k = codebooks[0].rows();
  const size_t d = codebooks[0].cols();
  for (const auto& cb : codebooks) {
    if (cb.rows() != k || cb.cols() != d) {
      return Status::InvalidArgument("AdcIndex: codebook shape mismatch");
    }
  }

  AdcIndex idx;
  idx.codebooks_ = codebooks;
  idx.codes_ = PackedCodes(item_codes.size(), m, k);
  idx.recon_norms_.resize(item_codes.size());

  std::vector<float> recon(d);
  for (size_t i = 0; i < item_codes.size(); ++i) {
    if (item_codes[i].size() != m) {
      return Status::InvalidArgument("AdcIndex: item code length mismatch");
    }
    std::fill(recon.begin(), recon.end(), 0.0f);
    for (size_t cb = 0; cb < m; ++cb) {
      const uint32_t code = item_codes[i][cb];
      if (code >= k) {
        return Status::InvalidArgument("AdcIndex: code out of range");
      }
      idx.codes_.Set(i, cb, code);
      const float* word = codebooks[cb].row(code);
      for (size_t j = 0; j < d; ++j) recon[j] += word[j];
    }
    double norm = 0.0;
    for (size_t j = 0; j < d; ++j) {
      norm += static_cast<double>(recon[j]) * recon[j];
    }
    idx.recon_norms_[i] = static_cast<float>(norm);
  }
  idx.BuildScanCache();
  return idx;
}

void AdcIndex::BuildScanCache() {
  scan_codes_.clear();
  blocked_codes_.clear();
  scan_kernel_ = kernels::ScanKernel{};
  if (num_codewords() > 256) return;
  scan_codes_.resize(codes_.num_items() * codebooks_.size());
  uint8_t* out = scan_codes_.data();
  codes_.ForEachCode([out, m = codebooks_.size()](size_t item, size_t cb,
                                                  uint32_t code) {
    out[item * m + cb] = static_cast<uint8_t>(code);
  });
  // When a fast-scan kernel is selected, the blocked/transposed layout
  // replaces the item-major cache as the one scan format (exact scoring
  // reads it strided) — the byte cost stays one byte per code plus tail
  // padding. M > 256 could overflow the u16 accumulators, so such indexes
  // stay on the item-major exact path.
  if (codebooks_.size() > 256 || codes_.num_items() == 0) return;
  scan_kernel_ = kernels::SelectScanKernel(
      kernels::PadCodewords(num_codewords()));
  if (scan_kernel_.fn != nullptr) {
    kernels::BuildBlockedCodes(scan_codes_.data(), codes_.num_items(),
                               codebooks_.size(), &blocked_codes_);
    scan_codes_.clear();
    scan_codes_.shrink_to_fit();
  }
}

std::vector<float> AdcIndex::BuildLookupTables(const float* query) const {
  const size_t m = codebooks_.size();
  const size_t k = num_codewords();
  const size_t d = dim();
  std::vector<float> lut(m * k);
  for (size_t cb = 0; cb < m; ++cb) {
    const Matrix& book = codebooks_[cb];
    float* row = lut.data() + cb * k;
    for (size_t j = 0; j < k; ++j) {
      const float* word = book.row(j);
      float acc = 0.0f;
      for (size_t t = 0; t < d; ++t) acc += query[t] * word[t];
      row[j] = acc;
    }
  }
  return lut;
}

void AdcIndex::ScoreRange(const float* lut, size_t begin, size_t end,
                          float* scores) const {
  const size_t m = codebooks_.size();
  const size_t k = num_codewords();
  if (!blocked_codes_.empty()) {
    // Blocked scan cache: the same bytes as the item-major cache in
    // fast-scan order; per item the codebooks accumulate in the same
    // order, so scores are bit-identical to the item-major loop.
    for (size_t i = begin; i < end; ++i) {
      const uint8_t* base =
          blocked_codes_.data() +
          (i / kernels::kBlockItems) * m * kernels::kBlockItems +
          (i % kernels::kBlockItems);
      float dot = 0.0f;
      for (size_t cb = 0; cb < m; ++cb) {
        dot += lut[cb * k + base[cb * kernels::kBlockItems]];
      }
      scores[i] = recon_norms_[i] - 2.0f * dot;
    }
  } else if (!scan_codes_.empty()) {
    // Fast path: byte-wide scan cache, no bit extraction in the hot loop.
    const uint8_t* code_ptr = scan_codes_.data() + begin * m;
    for (size_t i = begin; i < end; ++i) {
      float dot = 0.0f;
      for (size_t cb = 0; cb < m; ++cb) {
        dot += lut[cb * k + code_ptr[cb]];
      }
      scores[i] = recon_norms_[i] - 2.0f * dot;
      code_ptr += m;
    }
  } else {
    // Wide-code fallback (K > 256): random-access bit extraction. Slower
    // than the streaming cursor, but restartable at any chunk boundary.
    for (size_t i = begin; i < end; ++i) {
      float dot = 0.0f;
      for (size_t cb = 0; cb < m; ++cb) {
        dot += lut[cb * k + codes_.Get(i, cb)];
      }
      scores[i] = recon_norms_[i] - 2.0f * dot;
    }
  }
}

void AdcIndex::ComputeScores(const float* query,
                             std::vector<float>* scores) const {
  // Legacy uncontrolled scan (eval, RankAll): one uninterrupted pass, no
  // lifecycle checks and no chaos instrumentation.
  const std::vector<float> lut = BuildLookupTables(query);
  obs::ProfilePhase scan_phase("adc_scan");
  scores->resize(codes_.num_items());
  ScoreRange(lut.data(), 0, codes_.num_items(), scores->data());
}

Status AdcIndex::ComputeScores(const float* query, std::vector<float>* scores,
                               const ScanControl& control) const {
  const size_t n = codes_.num_items();
  std::vector<float> lut;
  {
    obs::ProfilePhase lut_phase("lut_build");
    lut = BuildLookupTables(query);
  }
  if (control.stats != nullptr) control.stats->lut_builds += 1;
  obs::ProfilePhase scan_phase("adc_scan");
  scores->resize(n);
  if (control.Trivial() && !ChaosArmed()) {
    // Telemetry stays chunk-granular even here: the whole scan is one
    // chunk, so the hot loop itself carries no per-vector instrumentation.
    ScopedTimer timer(instruments_.chunk_seconds);
    ScoreRange(lut.data(), 0, n, scores->data());
    if (instruments_.enabled()) {
      instruments_.chunks->Increment();
      instruments_.items->Increment(n);
    }
    if (control.stats != nullptr) {
      control.stats->chunks += 1;
      control.stats->items += n;
    }
    return Status::Ok();
  }
  // Score score_i = ||o_i||^2 - 2 sum_cb lut[code] in chunks, polling the
  // control between chunks: an expired or cancelled request overshoots its
  // budget by at most one chunk of scoring work.
  const size_t chunk = std::max<size_t>(1, control.check_every_items);
  for (size_t begin = 0; begin < n; begin += chunk) {
    if (begin > 0) {
      const Status check = control.Check();
      if (!check.ok()) {
        // The request's budget ran out mid-scan: the chunk just scored was
        // the overshoot DESIGN.md §9 bounds.
        if (instruments_.enabled()) instruments_.overshoot->Increment();
        return check;
      }
    }
    LIGHTLT_RETURN_IF_ERROR(ChaosOnScanChunk());
    const size_t end = std::min(begin + chunk, n);
    ScopedTimer timer(instruments_.chunk_seconds);
    ScoreRange(lut.data(), begin, end, scores->data());
    if (instruments_.enabled()) {
      instruments_.chunks->Increment();
      instruments_.items->Increment(end - begin);
    }
    if (control.stats != nullptr) {
      control.stats->chunks += 1;
      control.stats->items += end - begin;
    }
  }
  return Status::Ok();
}

std::vector<SearchHit> AdcIndex::TopKFromScores(
    const std::vector<float>& scores, size_t top_k) {
  const size_t k = std::min(top_k, scores.size());
  std::vector<uint32_t> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  // Ties at the k boundary break by ascending id: the selection is then a
  // pure function of the scores, stable across runs and across the
  // flat/IVF/fast-scan paths (a tie flip here would otherwise read as a
  // spurious shadow-recall miss).
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(),
                    [&](uint32_t a, uint32_t b) {
                      return scores[a] < scores[b] ||
                             (scores[a] == scores[b] && a < b);
                    });
  std::vector<SearchHit> hits(k);
  for (size_t i = 0; i < k; ++i) hits[i] = {ids[i], scores[ids[i]]};
  return hits;
}

Result<std::vector<SearchHit>> AdcIndex::SearchFastScan(
    const float* query, size_t top_k, const ScanControl* control) const {
  const size_t n = codes_.num_items();
  const size_t m = codebooks_.size();
  const size_t k = num_codewords();
  const size_t keep = std::min(top_k, n);
  if (keep == 0) return std::vector<SearchHit>{};

  std::vector<float> lut;
  kernels::QuantizedLut qlut;
  {
    // Both tables count: the float LUT plus its quantized companion are
    // separate per-query constructions in the resource vector.
    obs::ProfilePhase lut_phase("lut_build");
    lut = BuildLookupTables(query);
    qlut = kernels::QuantizeLut(lut.data(), m, k);
  }
  if (control != nullptr && control->stats != nullptr) {
    control->stats->lut_builds += 2;
  }
  const size_t blocks = kernels::NumBlocks(n);
  std::vector<uint16_t> sums(blocks * kernels::kBlockItems);
  std::optional<obs::ProfilePhase> scan_phase;
  scan_phase.emplace("adc_scan");

  // Quantized pass. Chunking stays item-granular — ceil(n / check_every)
  // logical chunks, each polling deadline/cancellation and running the
  // chaos hook — exactly like the exact scan, so deadline overshoot and
  // injected per-chunk latency are independent of the 32-item kernel block
  // size. Kernel blocks advance lazily underneath the chunk accounting: a
  // chunk runs every not-yet-scored block it overlaps (at most one partial
  // block of read-ahead when check_every < kBlockItems).
  const size_t check_every =
      control == nullptr ? n : std::max<size_t>(1, control->check_every_items);
  size_t next_block = 0;
  for (size_t chunk_begin = 0; chunk_begin < n; chunk_begin += check_every) {
    if (control != nullptr && chunk_begin > 0) {
      const Status check = control->Check();
      if (!check.ok()) {
        if (instruments_.enabled()) instruments_.overshoot->Increment();
        return check;
      }
    }
    if (control != nullptr) LIGHTLT_RETURN_IF_ERROR(ChaosOnScanChunk());
    const size_t chunk_end = std::min(chunk_begin + check_every, n);
    const size_t block_end = std::min(kernels::NumBlocks(chunk_end), blocks);
    if (block_end > next_block) {
      ScopedTimer timer(control == nullptr ? nullptr
                                           : instruments_.chunk_seconds);
      scan_kernel_.fn(blocked_codes_.data() +
                          next_block * m * kernels::kBlockItems,
                      block_end - next_block, m, qlut.k_padded,
                      qlut.table.data(),
                      sums.data() + next_block * kernels::kBlockItems);
      next_block = block_end;
    }
    if (control != nullptr) {
      if (instruments_.enabled()) {
        instruments_.chunks->Increment();
        instruments_.items->Increment(chunk_end - chunk_begin);
      }
      if (control->stats != nullptr) {
        control->stats->chunks += 1;
        control->stats->items += chunk_end - chunk_begin;
      }
    }
  }

  // Approximate scores from the integer sums. The reconstruction error is
  // bounded by qlut.ScoreErrorBound() (DESIGN.md §12), which is what makes
  // the shortlist below provably cover the exact top-k.
  std::vector<float> approx(n);
  for (size_t i = 0; i < n; ++i) {
    approx[i] = recon_norms_[i] -
                2.0f * (static_cast<float>(sums[i]) * qlut.scale +
                        qlut.bias_sum);
  }

  // Shortlist: every item whose approximate score could still beat the
  // k-th best after both errors are unwound — exact <= approx + B and
  // kth_exact <= kth_approx + B, so the cut is kth_approx + 2B.
  std::vector<float> order(approx);
  std::nth_element(order.begin(), order.begin() + (keep - 1), order.end());
  const float tau = order[keep - 1] + 2.0f * qlut.ScoreErrorBound();
  std::vector<uint32_t> shortlist;
  shortlist.reserve(keep * 2);
  for (size_t i = 0; i < n; ++i) {
    if (approx[i] <= tau) shortlist.push_back(static_cast<uint32_t>(i));
  }

  // Exact float re-rank of the shortlist, accumulating in the same
  // codebook order as ScoreRange so the scores are bit-identical to the
  // exact scalar scan. Usually |shortlist| ~ top_k; a degenerate LUT
  // (scale 0) can shortlist broadly, so keep polling the control.
  scan_phase.reset();
  obs::ProfilePhase rerank_phase("rerank");
  if (control != nullptr && control->stats != nullptr) {
    control->stats->shortlist += shortlist.size();
    control->stats->codes_decoded += shortlist.size() * m;
  }
  std::vector<float> exact(shortlist.size());
  for (size_t s = 0; s < shortlist.size(); ++s) {
    if (control != nullptr && s > 0 && s % check_every == 0) {
      LIGHTLT_RETURN_IF_ERROR(control->Check());
    }
    const uint32_t id = shortlist[s];
    const uint8_t* base =
        blocked_codes_.data() +
        (id / kernels::kBlockItems) * m * kernels::kBlockItems +
        (id % kernels::kBlockItems);
    float dot = 0.0f;
    for (size_t cb = 0; cb < m; ++cb) {
      dot += lut[cb * k + base[cb * kernels::kBlockItems]];
    }
    exact[s] = recon_norms_[id] - 2.0f * dot;
  }
  std::vector<uint32_t> ranked(shortlist.size());
  std::iota(ranked.begin(), ranked.end(), 0u);
  const size_t out_k = std::min(keep, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + out_k, ranked.end(),
                    [&](uint32_t a, uint32_t b) {
                      return exact[a] < exact[b] ||
                             (exact[a] == exact[b] &&
                              shortlist[a] < shortlist[b]);
                    });
  std::vector<SearchHit> hits(out_k);
  for (size_t i = 0; i < out_k; ++i) {
    hits[i] = {shortlist[ranked[i]], exact[ranked[i]]};
  }
  return hits;
}

std::vector<SearchHit> AdcIndex::Search(const float* query,
                                        size_t top_k) const {
  if (FastScanEnabled()) {
    // Uncontrolled flavour: no polling, chaos, or instrumentation, so the
    // only failure paths are compiled out — value() is always present.
    return SearchFastScan(query, top_k, nullptr).value();
  }
  std::vector<float> scores;
  ComputeScores(query, &scores);
  return TopKFromScores(scores, top_k);
}

Result<std::vector<SearchHit>> AdcIndex::Search(
    const float* query, size_t top_k, const ScanControl& control) const {
  if (FastScanEnabled()) return SearchFastScan(query, top_k, &control);
  std::vector<float> scores;
  LIGHTLT_RETURN_IF_ERROR(ComputeScores(query, &scores, control));
  return TopKFromScores(scores, top_k);
}

std::vector<uint32_t> AdcIndex::RankAll(const float* query) const {
  std::vector<float> scores;
  ComputeScores(query, &scores);
  std::vector<uint32_t> ids(scores.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::stable_sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });
  return ids;
}

Matrix AdcIndex::Reconstruct(size_t item) const {
  Matrix out(1, dim());
  for (size_t cb = 0; cb < codebooks_.size(); ++cb) {
    const float* word = codebooks_[cb].row(codes_.Get(item, cb));
    for (size_t j = 0; j < dim(); ++j) out[j] += word[j];
  }
  return out;
}

size_t AdcIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& cb : codebooks_) bytes += cb.size() * sizeof(float);
  // Operational code storage: exactly one scan cache is live — the blocked
  // fast-scan layout (item-major bytes plus tail padding) when a kernel is
  // selected, else the byte-wide item-major cache (equal to the packed
  // array at the paper's K=256), else the packed bits.
  if (!blocked_codes_.empty()) {
    bytes += blocked_codes_.size();
  } else {
    bytes += scan_codes_.empty() ? codes_.MemoryBytes() : scan_codes_.size();
  }
  bytes += recon_norms_.size() * sizeof(float);
  return bytes;
}

size_t AdcIndex::TheoreticalQueryOps() const {
  return dim() * num_codebooks() * num_codewords() +
         num_items() * num_codebooks();
}

namespace {
// Legacy format: magic directly followed by the payload, no version field,
// no integrity data. Still readable.
constexpr uint32_t kAdcMagicV1 = 0x4144'4331;  // "ADC1"
// Current format: magic, u32 version, payload, checksum footer; written
// atomically. The magic changed because v1 carried no version field.
// v3 adds the scan-layout block width so a reader whose blocked fast-scan
// layout diverged refuses the file instead of mis-scanning it.
constexpr uint32_t kAdcMagicV2 = 0x4144'4332;  // "ADC2"
constexpr uint32_t kAdcVersion = 3;
}  // namespace

Status AdcIndex::Save(const std::string& path) const {
  BinaryWriter writer(path);
  writer.WriteU32(kAdcMagicV2);
  writer.WriteU32(kAdcVersion);
  writer.WriteU32(static_cast<uint32_t>(kernels::kBlockItems));
  writer.WriteU64(codebooks_.size());
  for (const auto& cb : codebooks_) {
    writer.WriteU64(cb.rows());
    writer.WriteU64(cb.cols());
    writer.WriteF32Vector(cb.storage());
  }
  codes_.Save(writer);
  writer.WriteF32Vector(recon_norms_);
  return writer.Close();
}

Result<AdcIndex> AdcIndex::Load(const std::string& path) {
  BinaryReader reader(path);
  const uint32_t magic = reader.ReadU32();
  // An unreadable/truncated file is an I/O error, not a bad-magic file.
  if (!reader.status().ok()) return reader.status();
  uint32_t version = 1;
  if (magic == kAdcMagicV2) {
    version = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (version < 2 || version > kAdcVersion) {
      return Status::IoError("AdcIndex: unsupported format version");
    }
  } else if (magic != kAdcMagicV1) {
    return Status::IoError("AdcIndex: bad magic in " + path);
  }
  if (version >= 3) {
    const uint32_t scan_block = reader.ReadU32();
    if (!reader.status().ok()) return reader.status();
    if (scan_block != kernels::kBlockItems) {
      return Status::IoError("AdcIndex: unsupported scan layout");
    }
  }
  AdcIndex idx;
  const size_t m = reader.ReadU64();
  if (!reader.status().ok()) return reader.status();
  if (m == 0 || m > 4096) return Status::IoError("AdcIndex: corrupt M");
  idx.codebooks_.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t rows = reader.ReadU64();
    const size_t cols = reader.ReadU64();
    std::vector<float> data = reader.ReadF32Vector();
    if (!reader.status().ok()) return reader.status();
    if (data.size() != rows * cols) {
      return Status::IoError("AdcIndex: corrupt codebook");
    }
    idx.codebooks_.emplace_back(rows, cols, std::move(data));
  }
  // Cross-field consistency: the scan path indexes lookup tables sized from
  // codebook 0, so mismatched shapes in a corrupt file would read out of
  // bounds if admitted here.
  const size_t k = idx.codebooks_[0].rows();
  const size_t d = idx.codebooks_[0].cols();
  if (k < 2 || d == 0) {
    return Status::IoError("AdcIndex: corrupt codebook shape");
  }
  for (const auto& cb : idx.codebooks_) {
    if (cb.rows() != k || cb.cols() != d) {
      return Status::IoError("AdcIndex: codebook shape mismatch");
    }
  }
  auto codes = PackedCodes::Load(reader);
  if (!codes.ok()) return codes.status();
  idx.codes_ = std::move(codes).value();
  if (idx.codes_.num_codebooks() != m || idx.codes_.num_codewords() > k) {
    return Status::IoError("AdcIndex: codes/codebook mismatch");
  }
  // Packed code values index the lookup table rows; a corrupt bit pattern
  // above k would read past the table.
  bool codes_in_range = true;
  idx.codes_.ForEachCode([&](size_t, size_t, uint32_t code) {
    if (code >= k) codes_in_range = false;
  });
  if (!codes_in_range) {
    return Status::IoError("AdcIndex: stored code out of range");
  }
  idx.recon_norms_ = reader.ReadF32Vector();
  if (!reader.status().ok()) return reader.status();
  if (idx.recon_norms_.size() != idx.codes_.num_items()) {
    return Status::IoError("AdcIndex: norm table size mismatch");
  }
  Status integrity =
      version >= 2 ? reader.VerifyFooter() : reader.ExpectEof();
  if (!integrity.ok()) return integrity;
  idx.BuildScanCache();
  return idx;
}

}  // namespace lightlt::index
