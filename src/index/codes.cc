#include "src/index/codes.h"

#include <cstring>

namespace lightlt::index {

size_t BitsPerCode(size_t num_codewords) {
  LIGHTLT_CHECK_GT(num_codewords, 1u);
  size_t bits = 1;
  while ((1ull << bits) < num_codewords) ++bits;
  return bits;
}

PackedCodes::PackedCodes(size_t num_items, size_t num_codebooks,
                         size_t num_codewords)
    : num_items_(num_items),
      num_codebooks_(num_codebooks),
      num_codewords_(num_codewords),
      bits_per_code_(BitsPerCode(num_codewords)) {
  const size_t total_bits = num_items * num_codebooks * bits_per_code_;
  bits_.assign((total_bits + 63) / 64, 0);
}

void PackedCodes::Set(size_t item, size_t codebook, uint32_t value) {
  LIGHTLT_CHECK_LT(item, num_items_);
  LIGHTLT_CHECK_LT(codebook, num_codebooks_);
  LIGHTLT_CHECK_LT(value, num_codewords_);
  const size_t offset = BitOffset(item, codebook);
  const size_t word = offset / 64;
  const size_t shift = offset % 64;
  const uint64_t mask = ((1ull << bits_per_code_) - 1) << shift;
  bits_[word] = (bits_[word] & ~mask) | (static_cast<uint64_t>(value) << shift);
  const size_t spill = shift + bits_per_code_;
  if (spill > 64) {
    const size_t hi_bits = spill - 64;
    const uint64_t hi_mask = (1ull << hi_bits) - 1;
    bits_[word + 1] = (bits_[word + 1] & ~hi_mask) |
                      (static_cast<uint64_t>(value) >> (bits_per_code_ - hi_bits));
  }
}

uint32_t PackedCodes::Get(size_t item, size_t codebook) const {
  LIGHTLT_CHECK_LT(item, num_items_);
  LIGHTLT_CHECK_LT(codebook, num_codebooks_);
  const size_t offset = BitOffset(item, codebook);
  const size_t word = offset / 64;
  const size_t shift = offset % 64;
  uint64_t value = bits_[word] >> shift;
  const size_t spill = shift + bits_per_code_;
  if (spill > 64) {
    value |= bits_[word + 1] << (64 - shift);
  }
  return static_cast<uint32_t>(value & ((1ull << bits_per_code_) - 1));
}

void PackedCodes::Save(BinaryWriter& writer) const {
  writer.WriteU64(num_items_);
  writer.WriteU64(num_codebooks_);
  writer.WriteU64(num_codewords_);
  std::vector<uint8_t> raw(bits_.size() * sizeof(uint64_t));
  std::memcpy(raw.data(), bits_.data(), raw.size());
  writer.WriteBytes(raw);
}

Result<PackedCodes> PackedCodes::Load(BinaryReader& reader) {
  const size_t num_items = reader.ReadU64();
  const size_t num_codebooks = reader.ReadU64();
  const size_t num_codewords = reader.ReadU64();
  std::vector<uint8_t> raw = reader.ReadBytes();
  if (!reader.status().ok()) return reader.status();
  if (num_codewords < 2 || num_codewords > (1u << 24)) {
    return Status::IoError("PackedCodes: corrupt codeword count");
  }
  if (num_codebooks == 0 || num_codebooks > 65536) {
    return Status::IoError("PackedCodes: corrupt codebook count");
  }
  // Validate the geometry against the payload *before* constructing: the
  // constructor multiplies items * codebooks * bits, which wraps for
  // adversarial counts and could otherwise under- or over-allocate.
  const uint64_t bits = BitsPerCode(num_codewords);
  const uint64_t bits_per_item = bits * num_codebooks;
  if (num_items > (UINT64_MAX - 63) / bits_per_item) {
    return Status::IoError("PackedCodes: corrupt item count");
  }
  const uint64_t words = (num_items * bits_per_item + 63) / 64;
  if (raw.size() != words * sizeof(uint64_t)) {
    return Status::IoError("PackedCodes: payload size mismatch");
  }
  try {
    PackedCodes codes(num_items, num_codebooks, num_codewords);
    std::memcpy(codes.bits_.data(), raw.data(), raw.size());
    return codes;
  } catch (const std::exception&) {
    return Status::IoError("PackedCodes: allocation failed (corrupt file)");
  }
}

}  // namespace lightlt::index
