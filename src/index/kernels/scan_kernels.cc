#include "src/index/kernels/scan_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/index/kernels/scan_isa.h"

namespace lightlt::index::kernels {

size_t PadCodewords(size_t k) {
  if (k == 0 || k > 256) return 0;
  if (k <= 16) return 16;
  if (k <= 64) return 64;
  return 256;
}

void BuildBlockedCodes(const uint8_t* item_major, size_t n, size_t m,
                       std::vector<uint8_t>* blocked) {
  const size_t blocks = NumBlocks(n);
  blocked->assign(blocks * m * kBlockItems, 0);
  uint8_t* out = blocked->data();
  for (size_t i = 0; i < n; ++i) {
    const size_t block = i / kBlockItems;
    const size_t lane = i % kBlockItems;
    for (size_t cb = 0; cb < m; ++cb) {
      out[(block * m + cb) * kBlockItems + lane] = item_major[i * m + cb];
    }
  }
}

QuantizedLut QuantizeLut(const float* lut, size_t m, size_t k) {
  QuantizedLut q;
  q.m = m;
  q.k_padded = PadCodewords(k);
  if (q.k_padded == 0) return q;
  q.table.assign(m * q.k_padded, 0);

  // Per-codebook bias (the minimum) keeps every codebook's full 8-bit range
  // usable; the scale is shared across codebooks so the integer sums stay
  // directly comparable between items.
  std::vector<float> mins(m);
  float widest = 0.0f;
  for (size_t cb = 0; cb < m; ++cb) {
    const float* row = lut + cb * k;
    float lo = row[0], hi = row[0];
    for (size_t j = 1; j < k; ++j) {
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    mins[cb] = lo;
    widest = std::max(widest, hi - lo);
    q.bias_sum += lo;
  }
  q.scale = widest > 0.0f ? widest / 255.0f : 0.0f;
  if (q.scale > 0.0f) {
    for (size_t cb = 0; cb < m; ++cb) {
      const float* row = lut + cb * k;
      uint8_t* out = q.table.data() + cb * q.k_padded;
      for (size_t j = 0; j < k; ++j) {
        const float stepped = std::round((row[j] - mins[cb]) / q.scale);
        out[j] = static_cast<uint8_t>(
            std::clamp(stepped, 0.0f, 255.0f));
      }
    }
  }
  return q;
}

namespace {

void AccumulateScalar(const uint8_t* blocked, size_t num_blocks, size_t m,
                      size_t k_padded, const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * m * kBlockItems;
    uint16_t* out = sums + b * kBlockItems;
    for (size_t lane = 0; lane < kBlockItems; ++lane) out[lane] = 0;
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8_t* codes = block + cb * kBlockItems;
      const uint8_t* row = table + cb * k_padded;
      for (size_t lane = 0; lane < kBlockItems; ++lane) {
        out[lane] = static_cast<uint16_t>(out[lane] + row[codes[lane]]);
      }
    }
  }
}

struct Family {
  const char* name;
  bool (*supported)();
  AccumulateFn (*kernel_for)(size_t k_padded);
};

bool ScalarSupported() { return true; }
AccumulateFn ScalarKernelFor(size_t k_padded) {
  return k_padded == 0 ? nullptr : &AccumulateScalar;
}

// Preference order for "auto": widest vectors first, scalar last.
constexpr Family kFamilies[] = {
    {"avx512", &detail::Avx512Supported, &detail::Avx512KernelFor},
    {"avx2", &detail::Avx2Supported, &detail::Avx2KernelFor},
    {"neon", &detail::NeonSupported, &detail::NeonKernelFor},
    {"scalar", &ScalarSupported, &ScalarKernelFor},
};

}  // namespace

bool ScanKernelSupported(const std::string& name) {
  for (const Family& f : kFamilies) {
    if (name == f.name) return f.supported();
  }
  return false;
}

ScanKernel ScanKernelByName(const std::string& name, size_t k_padded) {
  for (const Family& f : kFamilies) {
    if (name == f.name && f.supported()) {
      return {f.kernel_for(k_padded), f.name};
    }
  }
  return {};
}

const std::string& ScanKernelMode() {
  static const std::string mode = [] {
    const char* env = std::getenv("LIGHTLT_SCAN_KERNEL");
    return std::string(env == nullptr || *env == '\0' ? "auto" : env);
  }();
  return mode;
}

ScanKernel SelectScanKernel(size_t k_padded) {
  if (k_padded == 0) return {};
  const std::string& mode = ScanKernelMode();
  if (mode == "off") return {};
  if (mode != "auto") {
    ScanKernel named = ScanKernelByName(mode, k_padded);
    if (named.fn != nullptr) return named;
    // Unsupported/unknown override: fail safe to scalar, never silently
    // back to SIMD (the override exists to pin the path under test).
    return ScanKernelByName("scalar", k_padded);
  }
  for (const Family& f : kFamilies) {
    if (!f.supported()) continue;
    AccumulateFn fn = f.kernel_for(k_padded);
    if (fn != nullptr) return {fn, f.name};
  }
  return {};
}

std::vector<std::string> AvailableScanKernels() {
  std::vector<std::string> out;
  for (const Family& f : kFamilies) {
    if (f.supported()) out.emplace_back(f.name);
  }
  return out;
}

}  // namespace lightlt::index::kernels
