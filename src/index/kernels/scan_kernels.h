// Fast-scan ADC scoring kernels (DESIGN.md §12).
//
// The exact ADC scan does M float-table lookups per item. These kernels
// replace the lookup loop with integer SIMD over a quantized table: the
// per-query float LUT is quantized to u8 (per-codebook bias, shared scale),
// codes are laid out in blocked/transposed groups of 32 items, and one
// shuffle instruction then scores 16–64 items per codebook. The u16 sums
// are approximate by at most one quantization step per codebook — callers
// re-rank a shortlist with the float LUT to recover the exact top-k.
//
// Every kernel consumes the same blocked layout and produces bit-identical
// u16 sums: integer arithmetic has one answer, so the scalar kernel is the
// reference the SIMD variants are verified against (tests/scan_kernels_*).

#ifndef LIGHTLT_INDEX_KERNELS_SCAN_KERNELS_H_
#define LIGHTLT_INDEX_KERNELS_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lightlt::index::kernels {

/// Items per block of the transposed scan layout. Within a block the codes
/// are codebook-major: blocked[block*(32*M) + cb*32 + lane] is the code of
/// item block*32+lane for codebook cb — so a 32-byte vector load reads 32
/// items' codes for one codebook at once.
inline constexpr size_t kBlockItems = 32;

/// Padded table width for a codebook with k codewords: the smallest of
/// {16, 64, 256} that fits, or 0 when k > 256 (no byte-code fast path).
size_t PadCodewords(size_t k);

/// Number of 32-item blocks covering n items (tail block zero-padded).
inline size_t NumBlocks(size_t n) {
  return (n + kBlockItems - 1) / kBlockItems;
}

/// Repacks item-major byte codes (codes[i*m + cb]) into the blocked layout.
/// Output is NumBlocks(n) * m * kBlockItems bytes; tail lanes are code 0
/// (valid everywhere), and callers discard sums past n.
void BuildBlockedCodes(const uint8_t* item_major, size_t n, size_t m,
                       std::vector<uint8_t>* blocked);

/// Reads one code back out of a blocked array (exact re-rank, tests).
inline uint8_t BlockedCodeAt(const uint8_t* blocked, size_t m, size_t item,
                             size_t cb) {
  const size_t block = item / kBlockItems;
  const size_t lane = item % kBlockItems;
  return blocked[(block * m + cb) * kBlockItems + lane];
}

/// A per-query float LUT quantized to u8. Reconstruction of one table
/// entry is entry*scale + (per-codebook bias); the per-item integer sum
/// reconstructs the dot product as sum*scale + bias_sum, with absolute
/// error at most 0.5*scale per codebook (round-to-nearest).
struct QuantizedLut {
  std::vector<uint8_t> table;  ///< m * k_padded entries, padding zeroed
  size_t m = 0;
  size_t k_padded = 0;
  float scale = 0.0f;          ///< shared step; 0 when the LUT is constant
  float bias_sum = 0.0f;       ///< sum over codebooks of the per-cb minimum

  /// Upper bound on |approx_score - exact_score| for scores of the form
  /// norm - 2*dot: two times the dot-product bound of 0.5*scale*m, padded
  /// for float rounding in the reconstruction itself.
  float ScoreErrorBound() const {
    return scale * static_cast<float>(m) * 1.001f + 1e-6f;
  }
};

/// Quantizes an m x k float LUT (lut[cb*k + j]) to u8. k must be <= 256.
QuantizedLut QuantizeLut(const float* lut, size_t m, size_t k);

/// Accumulates quantized table entries over blocked codes:
///   sums[b*32 + lane] = sum_cb table[cb*k_padded + code(b, cb, lane)]
/// for b in [0, num_blocks). m*255 must fit u16 (m <= 256, enforced by
/// callers). All implementations produce bit-identical sums.
using AccumulateFn = void (*)(const uint8_t* blocked, size_t num_blocks,
                              size_t m, size_t k_padded,
                              const uint8_t* table, uint16_t* sums);

/// A selected kernel: the function plus the name it was selected under
/// ("scalar", "avx2", "avx512", "neon"). fn == nullptr means the fast-scan
/// path is disabled (k too wide, or LIGHTLT_SCAN_KERNEL=off).
struct ScanKernel {
  AccumulateFn fn = nullptr;
  const char* name = "off";
};

/// True when this CPU can run the named kernel family at all.
bool ScanKernelSupported(const std::string& name);

/// The kernel for `name` at a given padded width, or fn == nullptr when the
/// family is unsupported on this CPU or has no implementation at k_padded.
/// "scalar" always resolves for k_padded in {16, 64, 256}.
ScanKernel ScanKernelByName(const std::string& name, size_t k_padded);

/// Startup selection: the fastest supported kernel for k_padded, honouring
/// the LIGHTLT_SCAN_KERNEL environment override (read once per process):
///   auto (default) | scalar | avx2 | avx512 | neon | off
/// An override naming an unsupported family falls back to scalar rather
/// than silently re-enabling SIMD.
ScanKernel SelectScanKernel(size_t k_padded);

/// The resolved override mode ("auto" unless the env var says otherwise).
const std::string& ScanKernelMode();

/// Names with an implementation compiled in and runnable on this CPU, in
/// preference order (bench registration, diagnostics).
std::vector<std::string> AvailableScanKernels();

}  // namespace lightlt::index::kernels

#endif  // LIGHTLT_INDEX_KERNELS_SCAN_KERNELS_H_
