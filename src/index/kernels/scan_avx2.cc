// AVX2 fast-scan accumulate kernels. Compiled into every build via function
// target attributes (no global -mavx2), selected at runtime only when the
// CPU reports AVX2. On non-x86 targets this TU degrades to stubs.

#include "src/index/kernels/scan_isa.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

namespace lightlt::index::kernels::detail {
namespace {

// K <= 16: one in-lane byte shuffle looks up 32 codes per codebook. The
// 16-byte table row is broadcast to both 128-bit lanes; vpshufb then reads
// table[code & 15] per byte (codes are < 16, bit 7 clear).
__attribute__((target("avx2"))) void Accumulate16Avx2(
    const uint8_t* blocked, size_t num_blocks, size_t m, size_t k_padded,
    const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * m * kBlockItems;
    __m256i acc_lo = _mm256_setzero_si256();  // items 0..15 as u16
    __m256i acc_hi = _mm256_setzero_si256();  // items 16..31 as u16
    for (size_t cb = 0; cb < m; ++cb) {
      const __m256i tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(table + cb * k_padded)));
      const __m256i codes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + cb * kBlockItems));
      const __m256i vals = _mm256_shuffle_epi8(tbl, codes);
      acc_lo = _mm256_add_epi16(
          acc_lo, _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vals)));
      acc_hi = _mm256_add_epi16(
          acc_hi, _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vals, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sums + b * kBlockItems),
                        acc_lo);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(sums + b * kBlockItems + 16), acc_hi);
  }
}

// K <= 64: the 64-byte table row is four 16-byte chunks; each chunk is
// shuffled by the low nibble (vpshufb ignores bits 4..6) and selected by
// comparing the high nibble against the chunk index — 4 shuffles + 3 blends
// score 32 items per codebook.
__attribute__((target("avx2"))) void Accumulate64Avx2(
    const uint8_t* blocked, size_t num_blocks, size_t m, size_t k_padded,
    const uint8_t* table, uint16_t* sums) {
  const __m256i nibble = _mm256_set1_epi8(0x0f);
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * m * kBlockItems;
    __m256i acc_lo = _mm256_setzero_si256();
    __m256i acc_hi = _mm256_setzero_si256();
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8_t* row = table + cb * k_padded;
      const __m256i codes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + cb * kBlockItems));
      const __m256i chunk_sel = _mm256_and_si256(
          _mm256_srli_epi16(codes, 4), nibble);
      __m256i vals = _mm256_setzero_si256();
      for (int j = 0; j < 4; ++j) {
        const __m256i tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(row + 16 * j)));
        const __m256i match =
            _mm256_cmpeq_epi8(chunk_sel, _mm256_set1_epi8(static_cast<char>(j)));
        vals = _mm256_or_si256(
            vals, _mm256_and_si256(match, _mm256_shuffle_epi8(tbl, codes)));
      }
      acc_lo = _mm256_add_epi16(
          acc_lo, _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vals)));
      acc_hi = _mm256_add_epi16(
          acc_hi, _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vals, 1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sums + b * kBlockItems),
                        acc_lo);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(sums + b * kBlockItems + 16), acc_hi);
  }
}

}  // namespace

bool Avx2Supported() { return __builtin_cpu_supports("avx2") != 0; }

AccumulateFn Avx2KernelFor(size_t k_padded) {
  if (!Avx2Supported()) return nullptr;
  if (k_padded == 16) return &Accumulate16Avx2;
  if (k_padded == 64) return &Accumulate64Avx2;
  // K in (64, 256] would need 16 shuffle+blend rounds per codebook on
  // AVX2 — past the break-even point; the scalar kernel serves it.
  return nullptr;
}

}  // namespace lightlt::index::kernels::detail

#else  // non-x86

namespace lightlt::index::kernels::detail {
bool Avx2Supported() { return false; }
AccumulateFn Avx2KernelFor(size_t) { return nullptr; }
}  // namespace lightlt::index::kernels::detail

#endif
