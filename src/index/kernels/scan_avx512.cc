// AVX-512 fast-scan accumulate kernels (BW + VL + VBMI). vpermb does a full
// 64-byte table lookup per instruction, so one shuffle covers K <= 64 and
// four cover K <= 256 — the paper's K = 256 stays on the SIMD path here.
// Runtime-dispatched; stubs on non-x86.

#include "src/index/kernels/scan_isa.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

// GCC's avx512 intrinsic headers self-initialize undefined vectors with the
// "__Y = __Y" idiom, which -Wmaybe-uninitialized flags from any inlined use
// site; the values are fully overwritten before use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace lightlt::index::kernels {
namespace detail {
namespace {

#define LIGHTLT_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vbmi")))

// Widens the 32 looked-up bytes for one block to u16 and accumulates.
LIGHTLT_AVX512_TARGET inline __m512i WidenAdd(__m512i acc, __m512i vals) {
  return _mm512_add_epi16(
      acc, _mm512_cvtepu8_epi16(_mm512_castsi512_si256(vals)));
}

// K <= 64: one vpermb per codebook per 32-item block. For K <= 16 the
// 16-byte row is broadcast four times — indices < 16 only ever read the
// first copy, so the same routine serves both padded widths.
LIGHTLT_AVX512_TARGET void Accumulate64Avx512(
    const uint8_t* blocked, size_t num_blocks, size_t m, size_t k_padded,
    const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * m * kBlockItems;
    __m512i acc = _mm512_setzero_si512();  // 32 u16 lanes
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8_t* row = table + cb * k_padded;
      const __m512i tbl =
          k_padded == 64
              ? _mm512_loadu_si512(row)
              : _mm512_broadcast_i32x4(
                    _mm_loadu_si128(reinterpret_cast<const __m128i*>(row)));
      const __m256i codes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + cb * kBlockItems));
      // vpermb reads index bits [5:0]; codes are < 64 so no masking needed.
      const __m512i vals =
          _mm512_permutexvar_epi8(_mm512_zextsi256_si512(codes), tbl);
      acc = WidenAdd(acc, vals);
    }
    _mm512_storeu_si512(sums + b * kBlockItems, acc);
  }
}

// K <= 256: the 256-byte row is four vpermb tables selected by the top two
// code bits (vpermb itself consumes the low six).
LIGHTLT_AVX512_TARGET void Accumulate256Avx512(
    const uint8_t* blocked, size_t num_blocks, size_t m, size_t k_padded,
    const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * m * kBlockItems;
    __m512i acc = _mm512_setzero_si512();
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8_t* row = table + cb * k_padded;
      const __m256i codes = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(block + cb * kBlockItems));
      const __m512i idx = _mm512_zextsi256_si512(codes);
      const __m256i chunk_sel = _mm256_and_si256(
          _mm256_srli_epi16(codes, 6), _mm256_set1_epi8(0x03));
      __m256i vals = _mm256_setzero_si256();
      for (int j = 0; j < 4; ++j) {
        const __m512i tbl = _mm512_loadu_si512(row + 64 * j);
        const __m256i looked = _mm512_castsi512_si256(
            _mm512_permutexvar_epi8(idx, tbl));
        const __m256i match = _mm256_cmpeq_epi8(
            chunk_sel, _mm256_set1_epi8(static_cast<char>(j)));
        vals = _mm256_or_si256(vals, _mm256_and_si256(match, looked));
      }
      acc = WidenAdd(acc, _mm512_zextsi256_si512(vals));
    }
    _mm512_storeu_si512(sums + b * kBlockItems, acc);
  }
}

#undef LIGHTLT_AVX512_TARGET

}  // namespace

bool Avx512Supported() {
  return __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512vbmi") != 0;
}

AccumulateFn Avx512KernelFor(size_t k_padded) {
  if (!Avx512Supported()) return nullptr;
  if (k_padded == 16 || k_padded == 64) return &Accumulate64Avx512;
  if (k_padded == 256) return &Accumulate256Avx512;
  return nullptr;
}

}  // namespace detail
}  // namespace lightlt::index::kernels

#else  // non-x86

namespace lightlt::index::kernels::detail {
bool Avx512Supported() { return false; }
AccumulateFn Avx512KernelFor(size_t) { return nullptr; }
}  // namespace lightlt::index::kernels::detail

#endif
