// Internal seams between the dispatch table (scan_kernels.cc) and the
// per-ISA kernel translation units. Each family compiles everywhere: on a
// foreign architecture its Supported() is false and KernelFor() is null.

#ifndef LIGHTLT_INDEX_KERNELS_SCAN_ISA_H_
#define LIGHTLT_INDEX_KERNELS_SCAN_ISA_H_

#include "src/index/kernels/scan_kernels.h"

namespace lightlt::index::kernels::detail {

bool Avx2Supported();
AccumulateFn Avx2KernelFor(size_t k_padded);

bool Avx512Supported();
AccumulateFn Avx512KernelFor(size_t k_padded);

bool NeonSupported();
AccumulateFn NeonKernelFor(size_t k_padded);

}  // namespace lightlt::index::kernels::detail

#endif  // LIGHTLT_INDEX_KERNELS_SCAN_ISA_H_
