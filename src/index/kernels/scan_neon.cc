// NEON fast-scan accumulate kernels for aarch64. vqtbl1q/vqtbl4q give
// 16- and 64-byte table lookups over 16 codes per instruction; two passes
// cover a 32-item block. Stubs on non-ARM targets.

#include "src/index/kernels/scan_isa.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>

namespace lightlt::index::kernels::detail {
namespace {

// K <= 16: single-register table lookup.
void Accumulate16Neon(const uint8_t* blocked, size_t num_blocks, size_t m,
                      size_t k_padded, const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * kBlockItems * m;
    uint16x8_t acc[4] = {vdupq_n_u16(0), vdupq_n_u16(0), vdupq_n_u16(0),
                         vdupq_n_u16(0)};
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8x16_t tbl = vld1q_u8(table + cb * k_padded);
      const uint8_t* codes = block + cb * kBlockItems;
      for (int half = 0; half < 2; ++half) {
        const uint8x16_t vals = vqtbl1q_u8(tbl, vld1q_u8(codes + 16 * half));
        acc[2 * half] = vaddw_u8(acc[2 * half], vget_low_u8(vals));
        acc[2 * half + 1] = vaddw_u8(acc[2 * half + 1], vget_high_u8(vals));
      }
    }
    for (int q = 0; q < 4; ++q) {
      vst1q_u16(sums + b * kBlockItems + 8 * q, acc[q]);
    }
  }
}

// K <= 64: four-register table lookup (vqtbl4q zeroes out-of-range
// indices; codes are < 64 so every lane hits the table).
void Accumulate64Neon(const uint8_t* blocked, size_t num_blocks, size_t m,
                      size_t k_padded, const uint8_t* table, uint16_t* sums) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocked + b * kBlockItems * m;
    uint16x8_t acc[4] = {vdupq_n_u16(0), vdupq_n_u16(0), vdupq_n_u16(0),
                         vdupq_n_u16(0)};
    for (size_t cb = 0; cb < m; ++cb) {
      const uint8_t* row = table + cb * k_padded;
      uint8x16x4_t tbl;
      tbl.val[0] = vld1q_u8(row);
      tbl.val[1] = vld1q_u8(row + 16);
      tbl.val[2] = vld1q_u8(row + 32);
      tbl.val[3] = vld1q_u8(row + 48);
      const uint8_t* codes = block + cb * kBlockItems;
      for (int half = 0; half < 2; ++half) {
        const uint8x16_t vals = vqtbl4q_u8(tbl, vld1q_u8(codes + 16 * half));
        acc[2 * half] = vaddw_u8(acc[2 * half], vget_low_u8(vals));
        acc[2 * half + 1] = vaddw_u8(acc[2 * half + 1], vget_high_u8(vals));
      }
    }
    for (int q = 0; q < 4; ++q) {
      vst1q_u16(sums + b * kBlockItems + 8 * q, acc[q]);
    }
  }
}

}  // namespace

bool NeonSupported() { return true; }

AccumulateFn NeonKernelFor(size_t k_padded) {
  if (k_padded == 16) return &Accumulate16Neon;
  if (k_padded == 64) return &Accumulate64Neon;
  return nullptr;  // K > 64: scalar (no cheap 256-entry shuffle on NEON)
}

}  // namespace lightlt::index::kernels::detail

#else  // non-ARM

namespace lightlt::index::kernels::detail {
bool NeonSupported() { return false; }
AccumulateFn NeonKernelFor(size_t) { return nullptr; }
}  // namespace lightlt::index::kernels::detail

#endif
