// Asymmetric-distance-computation (ADC) index over additive quantization
// codes — the inference path of LightLT (paper §IV, Eqn. 24, Fig. 3).
//
// The index stores, per item: M packed codeword IDs plus the squared norm of
// the reconstruction (4 bytes). At query time we build an (M x K) lookup
// table of <q, codeword> inner products in O(dMK), then score every item
// with M table lookups.

#ifndef LIGHTLT_INDEX_ADC_INDEX_H_
#define LIGHTLT_INDEX_ADC_INDEX_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/index/codes.h"
#include "src/index/kernels/scan_kernels.h"
#include "src/obs/metrics.h"
#include "src/tensor/matrix.h"
#include "src/util/deadline.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::index {

/// A (database id, squared distance) search hit.
struct SearchHit {
  uint32_t id;
  float distance;
};

/// Telemetry handles for a scan hot path (DESIGN.md §10). All-null by
/// default: an uninstrumented index pays one branch per chunk and nothing
/// per vector. When wired to a registry, each scan chunk costs a couple of
/// relaxed atomic adds plus two clock reads — never any per-vector work or
/// locking.
struct ScanInstruments {
  obs::Counter* chunks = nullptr;          ///< scan chunks executed
  obs::Counter* items = nullptr;           ///< vectors scored
  /// Scans stopped mid-flight by deadline/cancellation — each such stop
  /// overshot its budget by up to one chunk of work (§9).
  obs::Counter* overshoot = nullptr;
  obs::Histogram* chunk_seconds = nullptr; ///< per-chunk scoring time

  bool enabled() const { return chunks != nullptr; }

  /// Wires the handles to `{prefix}scan_*` metrics in `registry`.
  void Register(obs::MetricsRegistry* registry, const std::string& prefix);
};

/// ADC index: codebooks + packed codes + per-item reconstruction norms.
class AdcIndex {
 public:
  /// Builds from `codebooks` (M matrices of K x d) and per-item codes
  /// (codes[i][m] in [0, K)). Reconstruction norms are computed here.
  static Result<AdcIndex> Build(
      const std::vector<Matrix>& codebooks,
      const std::vector<std::vector<uint32_t>>& item_codes);

  /// Fills `scores[i]` with the (exact, up to quantization) squared
  /// distance ||q - o_i||^2 - ||q||^2 + const... specifically
  /// `||o_i||^2 - 2 <q, o_i>`, which ranks identically to the full squared
  /// distance for a fixed query. O(dMK + nM).
  void ComputeScores(const float* query, std::vector<float>* scores) const;

  /// Control-aware scan: scores in chunks of `control.check_every_items`,
  /// polling deadline/cancellation (and the chaos hooks, when armed)
  /// between chunks, so an expiring request stops within one chunk. With a
  /// trivial control and chaos disarmed this is the same single tight loop
  /// as the overload above. On failure `scores` contents are unspecified.
  Status ComputeScores(const float* query, std::vector<float>* scores,
                       const ScanControl& control) const;

  /// Returns the top_k nearest items by ADC distance (ascending; equal
  /// distances break by ascending id). Uses the fast-scan kernel path when
  /// available: u8-quantized LUT scan over the blocked code layout, then an
  /// exact float re-rank of the shortlist, so the result equals the exact
  /// scalar scan's top-k (DESIGN.md §12).
  std::vector<SearchHit> Search(const float* query, size_t top_k) const;

  /// Control-aware Search: kDeadlineExceeded / kCancelled when the scan is
  /// stopped mid-flight, kUnavailable for an injected transient fault.
  Result<std::vector<SearchHit>> Search(const float* query, size_t top_k,
                                        const ScanControl& control) const;

  /// Name of the scan kernel Search will use ("off" = exact scalar path).
  const char* scan_kernel_name() const { return scan_kernel_.name; }

  /// Full ranking of all items (for MAP evaluation).
  std::vector<uint32_t> RankAll(const float* query) const;

  /// Reconstructs item `i` as the sum of its selected codewords.
  Matrix Reconstruct(size_t item) const;

  size_t num_items() const { return codes_.num_items(); }
  size_t num_codebooks() const { return codebooks_.size(); }
  size_t num_codewords() const {
    return codebooks_.empty() ? 0 : codebooks_[0].rows();
  }
  size_t dim() const { return codebooks_.empty() ? 0 : codebooks_[0].cols(); }

  /// Total bytes: 4KMd (codebooks) + packed codes + 4n (norms) — the
  /// space-complexity expression of §IV-A.
  size_t MemoryBytes() const;

  /// Theoretical per-query distance-computation cost in fused
  /// multiply-adds: dMK (lookup tables) + nM (scoring), §IV-B.
  size_t TheoreticalQueryOps() const;

  Status Save(const std::string& path) const;
  static Result<AdcIndex> Load(const std::string& path);

  /// Registers `{prefix}scan_*` metrics and records into them from every
  /// control-aware scan. Call once after Build/Load (not thread-safe
  /// against in-flight scans); the registry must outlive the index.
  void Instrument(obs::MetricsRegistry* registry, const std::string& prefix);

 private:
  AdcIndex() = default;

  /// Materializes the byte-wide scan cache from the packed codes.
  void BuildScanCache();

  /// Per-query lookup tables lut[cb*K + j] = <q, C_cb[j]>. O(dMK).
  std::vector<float> BuildLookupTables(const float* query) const;

  /// Scores items [begin, end) into scores[begin..end). O((end-begin) M).
  /// Exact float path — bit-identical across builds and kernels; the
  /// fast-scan shortlist is re-ranked against these scores.
  void ScoreRange(const float* lut, size_t begin, size_t end,
                  float* scores) const;

  /// True when Search can take the quantized kernel path.
  bool FastScanEnabled() const {
    return scan_kernel_.fn != nullptr && !blocked_codes_.empty();
  }

  /// Kernel-path Search: quantized scan, shortlist, exact re-rank. With a
  /// null control this is the uncontrolled flavour (no polling, no chaos,
  /// no instrumentation), mirroring the legacy Search split.
  Result<std::vector<SearchHit>> SearchFastScan(
      const float* query, size_t top_k, const ScanControl* control) const;

  /// Exact scalar Search over precomputed scores (legacy path and the
  /// K > 256 / kernels-off fallback).
  static std::vector<SearchHit> TopKFromScores(
      const std::vector<float>& scores, size_t top_k);

  std::vector<Matrix> codebooks_;     // M x (K x d)
  PackedCodes codes_;                 // n x M packed IDs
  std::vector<float> recon_norms_;    // ||o_i||^2 per item
  /// Byte-wide scan caches, built when K <= 256 — the packed array is the
  /// storage format, these are the scan formats, and exactly one is live.
  /// With a fast-scan kernel selected the blocked/transposed layout
  /// (kernels::BuildBlockedCodes) is the one scan cache and exact scoring
  /// reads it strided; otherwise the item-major byte array is (at the
  /// paper's K=256 it equals the packed size, log2 K = 8 bits).
  std::vector<uint8_t> scan_codes_;
  std::vector<uint8_t> blocked_codes_;
  kernels::ScanKernel scan_kernel_;
  ScanInstruments instruments_;
};

}  // namespace lightlt::index

#endif  // LIGHTLT_INDEX_ADC_INDEX_H_
