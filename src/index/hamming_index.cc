#include "src/index/hamming_index.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "src/util/check.h"

namespace lightlt::index {

std::vector<uint64_t> PackSignBits(const Matrix& x, size_t* blocks_per_item) {
  const size_t bits = x.cols();
  const size_t blocks = (bits + 63) / 64;
  *blocks_per_item = blocks;
  std::vector<uint64_t> packed(x.rows() * blocks, 0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.row(i);
    uint64_t* out = packed.data() + i * blocks;
    for (size_t b = 0; b < bits; ++b) {
      if (row[b] > 0.0f) out[b / 64] |= 1ull << (b % 64);
    }
  }
  return packed;
}

HammingIndex::HammingIndex(std::vector<uint64_t> codes,
                           size_t blocks_per_item, size_t num_bits)
    : codes_(std::move(codes)),
      blocks_per_item_(blocks_per_item),
      num_bits_(num_bits) {
  LIGHTLT_CHECK_GT(blocks_per_item, 0u);
  LIGHTLT_CHECK_EQ(codes_.size() % blocks_per_item, 0u);
  num_items_ = codes_.size() / blocks_per_item;
}

void HammingIndex::ComputeScores(const uint64_t* query_code,
                                 std::vector<float>* scores) const {
  scores->resize(num_items_);
  for (size_t i = 0; i < num_items_; ++i) {
    const uint64_t* item = codes_.data() + i * blocks_per_item_;
    int dist = 0;
    for (size_t b = 0; b < blocks_per_item_; ++b) {
      dist += std::popcount(item[b] ^ query_code[b]);
    }
    (*scores)[i] = static_cast<float>(dist);
  }
}

std::vector<uint32_t> HammingIndex::RankAll(const uint64_t* query_code) const {
  std::vector<float> scores;
  ComputeScores(query_code, &scores);
  std::vector<uint32_t> ids(num_items_);
  std::iota(ids.begin(), ids.end(), 0u);
  std::stable_sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] < scores[b];
  });
  return ids;
}

}  // namespace lightlt::index
