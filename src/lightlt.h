// Umbrella header: the public API of the LightLT library.
//
// Downstream users can include this single header; fine-grained headers
// under src/ remain available for selective inclusion.

#ifndef LIGHTLT_LIGHTLT_H_
#define LIGHTLT_LIGHTLT_H_

// Data: long-tail law, synthetic benchmarks, Table I presets, file I/O.
#include "src/data/data_io.h"
#include "src/data/dataset.h"
#include "src/data/longtail.h"
#include "src/data/presets.h"

// Core: DSQ quantizer, losses, model, training, ensemble, persistence.
#include "src/core/defaults.h"
#include "src/core/dsq.h"
#include "src/core/ensemble.h"
#include "src/core/lightlt_model.h"
#include "src/core/losses.h"
#include "src/core/pipeline.h"
#include "src/core/serialize.h"
#include "src/core/trainer.h"

// Search: compressed-domain, IVF-accelerated and exhaustive indexes.
#include "src/index/adc_index.h"
#include "src/index/flat_index.h"
#include "src/index/hamming_index.h"
#include "src/index/ivf_index.h"

// Serving: the deployment-facing retrieval facade and shadow verifier.
#include "src/serving/service.h"
#include "src/serving/shadow.h"

// Observability: metrics, tracing, logging, online quality & SLOs.
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/quality.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"

// Evaluation: retrieval quality, curves, efficiency, bench gating.
#include "src/eval/bench_gate.h"
#include "src/eval/curves.h"
#include "src/eval/efficiency.h"
#include "src/eval/metrics.h"

// Baselines for comparison studies.
#include "src/baselines/method.h"
#include "src/baselines/registry.h"

#endif  // LIGHTLT_LIGHTLT_H_
