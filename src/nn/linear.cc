#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/util/check.h"

namespace lightlt::nn {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(MakeParam(XavierUniform(in_features, out_features, rng),
                        "linear.weight")),
      bias_(MakeParam(Matrix(1, out_features), "linear.bias")) {}

Var Linear::Forward(const Var& x) const {
  LIGHTLT_CHECK_EQ(x->value().cols(), in_features_);
  return ops::AddRowBroadcast(ops::MatMul(x, weight_), bias_);
}

Ffn::Ffn(size_t in_features, size_t hidden, size_t out_features, Rng& rng)
    : fc1_(in_features, hidden, rng), fc2_(hidden, out_features, rng) {}

Var Ffn::Forward(const Var& x) const {
  return fc2_.Forward(ops::Relu(fc1_.Forward(x)));
}

std::vector<Var> Ffn::Parameters() const {
  std::vector<Var> params = fc1_.Parameters();
  for (auto& p : fc2_.Parameters()) params.push_back(p);
  return params;
}

MlpBackbone::MlpBackbone(const std::vector<size_t>& dims, Rng& rng) {
  LIGHTLT_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var MlpBackbone::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ops::Relu(h);
  }
  return h;
}

std::vector<Var> MlpBackbone::Parameters() const {
  std::vector<Var> params;
  for (const auto& layer : layers_) {
    for (auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace lightlt::nn
