// First-order optimizers. LightLT trains with AdamW (paper §V-A4); SGD is
// provided for tests and baselines.

#ifndef LIGHTLT_NN_OPTIMIZER_H_
#define LIGHTLT_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/tensor/variable.h"
#include "src/util/status.h"

namespace lightlt::nn {

/// Base optimizer over a fixed parameter list. Step() consumes the
/// accumulated gradients and zeroes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params, float learning_rate)
      : params_(std::move(params)), learning_rate_(learning_rate) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the
  /// parameters, then clears those gradients.
  virtual void Step() = 0;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
  float learning_rate_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float learning_rate, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Matrix> velocity_;
};

struct AdamWOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 1e-4f;
  /// Gradient clipping by global L2 norm; 0 disables.
  float clip_norm = 5.0f;
};

/// AdamW: Adam with decoupled weight decay.
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Var> params, const AdamWOptions& options);
  void Step() override;

  /// Moment/step state for checkpointing. The vectors parallel params().
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }
  int64_t step_count() const { return t_; }

  /// Restores moments and step counter saved by a checkpoint. Shapes must
  /// match the parameter list this optimizer was built over.
  Status RestoreState(std::vector<Matrix> m, std::vector<Matrix> v,
                      int64_t step_count);

 private:
  AdamWOptions options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

}  // namespace lightlt::nn

#endif  // LIGHTLT_NN_OPTIMIZER_H_
