// Learning-rate schedules. The paper trains with cosine annealing (image
// datasets) and linear schedule with warmup (text datasets), §V-A4.

#ifndef LIGHTLT_NN_SCHEDULER_H_
#define LIGHTLT_NN_SCHEDULER_H_

#include <cstdint>

namespace lightlt::nn {

/// Maps a 0-based global step to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float LearningRate(int64_t step) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LearningRate(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Linear warmup over `warmup_steps`, then cosine decay to `min_lr` at
/// `total_steps`.
class CosineAnnealingLr : public LrSchedule {
 public:
  CosineAnnealingLr(float base_lr, int64_t total_steps,
                    int64_t warmup_steps = 0, float min_lr = 0.0f);
  float LearningRate(int64_t step) const override;

 private:
  float base_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
  float min_lr_;
};

/// Linear warmup then linear decay to zero at `total_steps`.
class LinearWarmupLr : public LrSchedule {
 public:
  LinearWarmupLr(float base_lr, int64_t total_steps, int64_t warmup_steps);
  float LearningRate(int64_t step) const override;

 private:
  float base_lr_;
  int64_t total_steps_;
  int64_t warmup_steps_;
};

}  // namespace lightlt::nn

#endif  // LIGHTLT_NN_SCHEDULER_H_
