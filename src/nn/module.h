// Module base class: anything with trainable parameters.

#ifndef LIGHTLT_NN_MODULE_H_
#define LIGHTLT_NN_MODULE_H_

#include <vector>

#include "src/tensor/variable.h"

namespace lightlt::nn {

/// Base for parameterized components (layers, the DSQ quantizer, whole
/// models). Parameters() must return stable, long-lived leaf nodes in a
/// deterministic order — the optimizer, the serializer and the ensemble
/// averager all rely on that ordering.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable leaves, in a deterministic order.
  virtual std::vector<Var> Parameters() const = 0;

  /// Number of scalar parameters.
  size_t NumParameters() const {
    size_t n = 0;
    for (const auto& p : Parameters()) n += p->value().size();
    return n;
  }

  /// Zeroes every parameter gradient.
  void ZeroGrad() const {
    for (const auto& p : Parameters()) p->ZeroGrad();
  }

  /// Copies parameter values (not gradients) from `other`; shapes must
  /// match element-for-element.
  void CopyParametersFrom(const Module& other);
};

/// Overwrites `dst` module parameters with the element-wise mean of the
/// parameter values of `models` — the weight-ensemble step of paper
/// Eqn. 23. All models must share the architecture.
void AverageParametersInto(const std::vector<const Module*>& models,
                           Module* dst);

}  // namespace lightlt::nn

#endif  // LIGHTLT_NN_MODULE_H_
