#include "src/nn/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/check.h"

namespace lightlt::nn {

CosineAnnealingLr::CosineAnnealingLr(float base_lr, int64_t total_steps,
                                     int64_t warmup_steps, float min_lr)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps),
      min_lr_(min_lr) {
  LIGHTLT_CHECK_GT(total_steps, 0);
  LIGHTLT_CHECK_GE(warmup_steps, 0);
  LIGHTLT_CHECK_LT(warmup_steps, total_steps);
}

float CosineAnnealingLr::LearningRate(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const int64_t s = std::min(step, total_steps_ - 1) - warmup_steps_;
  const int64_t span = total_steps_ - warmup_steps_;
  const float progress = static_cast<float>(s) / static_cast<float>(span);
  const float cosine =
      0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * progress));
  return min_lr_ + (base_lr_ - min_lr_) * cosine;
}

LinearWarmupLr::LinearWarmupLr(float base_lr, int64_t total_steps,
                               int64_t warmup_steps)
    : base_lr_(base_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  LIGHTLT_CHECK_GT(total_steps, 0);
  LIGHTLT_CHECK_GE(warmup_steps, 0);
  LIGHTLT_CHECK_LT(warmup_steps, total_steps);
}

float LinearWarmupLr::LearningRate(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const int64_t s = std::min(step, total_steps_ - 1);
  const float remaining = static_cast<float>(total_steps_ - s) /
                          static_cast<float>(total_steps_ - warmup_steps_);
  return base_lr_ * std::max(0.0f, remaining);
}

}  // namespace lightlt::nn
