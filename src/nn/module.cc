#include "src/nn/module.h"

#include "src/util/check.h"

namespace lightlt::nn {

void Module::CopyParametersFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  LIGHTLT_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    LIGHTLT_CHECK(dst[i]->value().SameShape(src[i]->value()));
    dst[i]->mutable_value() = src[i]->value();
  }
}

void AverageParametersInto(const std::vector<const Module*>& models,
                           Module* dst) {
  LIGHTLT_CHECK(!models.empty());
  LIGHTLT_CHECK(dst != nullptr);
  auto dst_params = dst->Parameters();
  const float inv_n = 1.0f / static_cast<float>(models.size());

  for (size_t pi = 0; pi < dst_params.size(); ++pi) {
    Matrix acc(dst_params[pi]->value().rows(), dst_params[pi]->value().cols());
    for (const Module* m : models) {
      auto params = m->Parameters();
      LIGHTLT_CHECK_EQ(params.size(), dst_params.size());
      LIGHTLT_CHECK(params[pi]->value().SameShape(acc));
      acc.AxpyInPlace(inv_n, params[pi]->value());
    }
    dst_params[pi]->mutable_value() = acc;
  }
}

}  // namespace lightlt::nn
