#include "src/nn/optimizer.h"

#include <cmath>

namespace lightlt::nn {

Sgd::Sgd(std::vector<Var> params, float learning_rate, float momentum)
    : Optimizer(std::move(params), learning_rate), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad().empty()) continue;
    if (momentum_ > 0.0f) {
      velocity_[i].ScaleInPlace(momentum_);
      velocity_[i].AddInPlace(p->grad());
      p->mutable_value().AxpyInPlace(-learning_rate_, velocity_[i]);
    } else {
      p->mutable_value().AxpyInPlace(-learning_rate_, p->grad());
    }
    p->ZeroGrad();
  }
}

AdamW::AdamW(std::vector<Var> params, const AdamWOptions& options)
    : Optimizer(std::move(params), options.learning_rate), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

Status AdamW::RestoreState(std::vector<Matrix> m, std::vector<Matrix> v,
                           int64_t step_count) {
  if (m.size() != params_.size() || v.size() != params_.size()) {
    return Status::InvalidArgument("AdamW: moment count mismatch");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!m[i].SameShape(params_[i]->value()) ||
        !v[i].SameShape(params_[i]->value())) {
      return Status::InvalidArgument("AdamW: moment shape mismatch");
    }
  }
  if (step_count < 0) {
    return Status::InvalidArgument("AdamW: negative step count");
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = step_count;
  return Status::Ok();
}

void AdamW::Step() {
  ++t_;

  float clip_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double total_sq = 0.0;
    for (const auto& p : params_) {
      if (!p->grad().empty()) total_sq += p->grad().SquaredNorm();
    }
    const double norm = std::sqrt(total_sq);
    if (norm > options_.clip_norm) {
      clip_scale = static_cast<float>(options_.clip_norm / norm);
    }
  }

  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));

  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p->grad().empty()) continue;
    Matrix& value = p->mutable_value();
    const Matrix& grad = p->grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] * clip_scale;
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      value[j] -= learning_rate_ *
                  (m_hat / (std::sqrt(v_hat) + options_.epsilon) +
                   options_.weight_decay * value[j]);
    }
    p->ZeroGrad();
  }
}

}  // namespace lightlt::nn
