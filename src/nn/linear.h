// Fully-connected layers and the small feed-forward blocks used by both the
// backbone and the DSQ codebook-skip transform (paper Eqn. 10).

#ifndef LIGHTLT_NN_LINEAR_H_
#define LIGHTLT_NN_LINEAR_H_

#include <vector>

#include "src/nn/module.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace lightlt::nn {

/// y = x W + b with W (in x out), b (1 x out).
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng);

  /// Forward pass for a batch x (n x in) -> (n x out).
  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override { return {weight_, bias_}; }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

  const Var& weight() const { return weight_; }
  const Var& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Var weight_;
  Var bias_;
};

/// One-hidden-layer feed-forward network with ReLU:
/// y = relu(x W1 + b1) W2 + b2. This is the FFN(.) of paper Eqn. 10.
class Ffn : public Module {
 public:
  Ffn(size_t in_features, size_t hidden, size_t out_features, Rng& rng);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override;

 private:
  Linear fc1_;
  Linear fc2_;
};

/// The representation backbone f(.): an MLP over pre-extracted features,
/// standing in for the paper's ResNet34/BERT (see DESIGN.md §2). Hidden
/// layers use ReLU; the output layer is linear, emitting the d-dimensional
/// continuous representation that DSQ quantizes.
class MlpBackbone : public Module {
 public:
  /// `dims` = {input_dim, hidden..., output_dim}; needs >= 2 entries.
  MlpBackbone(const std::vector<size_t>& dims, Rng& rng);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override;

  size_t input_dim() const { return layers_.front().in_features(); }
  size_t output_dim() const { return layers_.back().out_features(); }

 private:
  std::vector<Linear> layers_;
};

}  // namespace lightlt::nn

#endif  // LIGHTLT_NN_LINEAR_H_
