#include "src/nn/init.h"

#include <cmath>

namespace lightlt::nn {

Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng& rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Matrix::RandomUniform(fan_in, fan_out, rng, -a, a);
}

Matrix HeNormal(size_t fan_in, size_t fan_out, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Matrix::RandomGaussian(fan_in, fan_out, rng, stddev);
}

}  // namespace lightlt::nn
