// Parameter initialization schemes.

#ifndef LIGHTLT_NN_INIT_H_
#define LIGHTLT_NN_INIT_H_

#include "src/tensor/matrix.h"
#include "src/util/rng.h"

namespace lightlt::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix XavierUniform(size_t fan_in, size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, 2 / fan_in), for ReLU layers.
Matrix HeNormal(size_t fan_in, size_t fan_out, Rng& rng);

}  // namespace lightlt::nn

#endif  // LIGHTLT_NN_INIT_H_
