// Deep binarized-hash baselines of Tables II/III: HashNet-lite (pairwise
// loss with tanh continuation), CSQ-lite (central similarity with Hadamard /
// random binary centers) and LTHNet-lite (long-tail hashing with learnable
// class prototypes and class-balanced weighting).
//
// All three share an MLP trunk ending in a `num_bits`-wide tanh layer and
// differ only in the loss head; database/query codes are the sign pattern of
// that layer, searched by Hamming ranking.

#ifndef LIGHTLT_BASELINES_DEEP_HASH_H_
#define LIGHTLT_BASELINES_DEEP_HASH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/index/hamming_index.h"
#include "src/nn/linear.h"

namespace lightlt::baselines {

/// Shared training knobs for the deep hash baselines.
struct DeepHashOptions {
  size_t num_bits = 24;
  size_t hidden_dim = 128;
  int epochs = 20;
  size_t batch_size = 64;
  float learning_rate = 3e-3f;
  uint64_t seed = 0xdee9;
};

/// Trunk + tanh hash layer + subclass loss head.
class DeepHashBase : public RetrievalMethod {
 public:
  explicit DeepHashBase(const DeepHashOptions& options) : options_(options) {}

  MethodKind kind() const override { return MethodKind::kDeepHash; }

  Status Fit(const data::Dataset& train) override;
  Status IndexDatabase(const Matrix& db_features) override;
  Status PrepareQueries(const Matrix& query_features) override;
  std::vector<uint32_t> RankQuery(size_t query_index) const override;
  size_t IndexMemoryBytes() const override;

 protected:
  /// Loss over the batch's continuous codes `h` (n x bits, in [-1, 1]).
  /// `epoch_frac` in [0, 1] supports continuation schedules.
  virtual Var Loss(const Var& h, const std::vector<size_t>& labels,
                   float epoch_frac) = 0;

  /// Hook for subclasses to create loss-head parameters once the class
  /// count / dimensionality are known. Returns extra trainable params.
  virtual std::vector<Var> BuildHead(const data::Dataset& train) {
    (void)train;
    return {};
  }

  /// Continuous codes for a batch: tanh(trunk(x) * beta).
  Var ForwardCodes(const Matrix& x, float beta) const;

  DeepHashOptions options_;
  std::unique_ptr<nn::MlpBackbone> trunk_;

 private:
  Matrix CodesFor(const Matrix& x) const;

  std::unique_ptr<index::HammingIndex> index_;
  std::vector<uint64_t> query_codes_;
  size_t query_blocks_ = 0;
};

/// HashNet-lite (Cao et al.): pairwise logistic loss on batch code inner
/// products, with the tanh sharpness beta annealed upward over training
/// ("learning to hash by continuation").
class HashNetHash : public DeepHashBase {
 public:
  explicit HashNetHash(const DeepHashOptions& options)
      : DeepHashBase(options) {}
  std::string name() const override { return "HashNet"; }

 protected:
  Var Loss(const Var& h, const std::vector<size_t>& labels,
           float epoch_frac) override;
};

/// CSQ-lite (Yuan et al.): every class gets a fixed binary center
/// (Hadamard rows when bits >= classes, otherwise random +-1); codes are
/// pulled to their center with a logistic agreement loss plus a
/// quantization penalty.
class CsqHash : public DeepHashBase {
 public:
  explicit CsqHash(const DeepHashOptions& options) : DeepHashBase(options) {}
  std::string name() const override { return "CSQ"; }

 protected:
  std::vector<Var> BuildHead(const data::Dataset& train) override;
  Var Loss(const Var& h, const std::vector<size_t>& labels,
           float epoch_frac) override;

 private:
  Matrix centers_;  // C x bits, entries in {-1, +1}
};

/// LTHNet-lite (Chen et al.): long-tail hashing. Each class owns several
/// learnable prototypes in code space (the original selects them with a
/// DPP; we learn a fixed-size bank end to end), class logits are the
/// log-sum-exp over the class's prototype similarities, trained with
/// class-balanced cross entropy plus a quantization penalty. The
/// multi-prototype bank is what lets LTHNet model multimodal classes that
/// single-center methods (CSQ) cannot.
class LthNetHash : public DeepHashBase {
 public:
  explicit LthNetHash(const DeepHashOptions& options, float gamma = 0.9f,
                      size_t prototypes_per_class = 3)
      : DeepHashBase(options),
        gamma_(gamma),
        prototypes_per_class_(prototypes_per_class) {}
  std::string name() const override { return "LTHNet"; }

 protected:
  std::vector<Var> BuildHead(const data::Dataset& train) override;
  Var Loss(const Var& h, const std::vector<size_t>& labels,
           float epoch_frac) override;

 private:
  float gamma_;
  size_t prototypes_per_class_;
  Var prototypes_;                   // (C * P) x bits
  Matrix group_sum_;                 // (C * P) x C prototype->class pooling
  std::vector<float> class_weights_; // class-balanced CE weights
};

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_DEEP_HASH_H_
