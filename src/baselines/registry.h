// Assembles the method line-ups of the paper's comparison tables.

#ifndef LIGHTLT_BASELINES_REGISTRY_H_
#define LIGHTLT_BASELINES_REGISTRY_H_

#include <memory>
#include <vector>

#include "src/baselines/method.h"
#include "src/data/presets.h"

namespace lightlt::baselines {

/// Code budget in bits: matches LightLT's M * log2(K) so every method in a
/// table row works with the same storage per item (paper: 32 bits).
size_t DefaultNumBits(bool full_scale);

/// Table II line-up (image datasets): shallow hashes, shallow quantizers,
/// deep hashes, deep quantizers, LightLT w/o ensemble, LightLT.
std::vector<std::unique_ptr<RetrievalMethod>> MakeImageMethodSet(
    const data::RetrievalBenchmark& bench, data::PresetId preset,
    bool full_scale);

/// Table III line-up (text datasets): LSH, PQ, DPQ, KDE, LTHNet,
/// LightLT w/o ensemble, LightLT.
std::vector<std::unique_ptr<RetrievalMethod>> MakeTextMethodSet(
    const data::RetrievalBenchmark& bench, data::PresetId preset,
    bool full_scale);

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_REGISTRY_H_
