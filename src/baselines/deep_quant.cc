#include "src/baselines/deep_quant.h"

#include "src/core/pipeline.h"
#include "src/util/check.h"

namespace lightlt::baselines {

Status DeepQuantMethod::Fit(const data::Dataset& train) {
  if (train.size() == 0) return Status::InvalidArgument("empty training set");
  if (spec_.ensemble_models > 1) {
    core::EnsembleOptions opts;
    opts.num_models = spec_.ensemble_models;
    opts.base_training = spec_.train;
    opts.finetune_epochs = spec_.finetune_epochs;
    opts.finetune_learning_rate = spec_.finetune_learning_rate;
    opts.seed = spec_.seed;
    auto result = core::TrainEnsemble(spec_.arch, train, opts);
    if (!result.ok()) return result.status();
    model_ = std::move(result.value().model);
  } else {
    model_ = std::make_unique<core::LightLtModel>(spec_.arch, spec_.seed);
    auto stats = core::TrainLightLt(model_.get(), train, spec_.train);
    if (!stats.ok()) return stats.status();
  }
  return Status::Ok();
}

Status DeepQuantMethod::IndexDatabase(const Matrix& db_features) {
  if (model_ == nullptr) return Status::FailedPrecondition("not fitted");
  auto built = core::BuildAdcIndex(*model_, db_features);
  if (!built.ok()) return built.status();
  index_ = std::make_unique<index::AdcIndex>(std::move(built).value());
  return Status::Ok();
}

Status DeepQuantMethod::PrepareQueries(const Matrix& query_features) {
  if (model_ == nullptr) return Status::FailedPrecondition("not fitted");
  query_embeddings_ = core::EmbedInChunks(*model_, query_features);
  return Status::Ok();
}

std::vector<uint32_t> DeepQuantMethod::RankQuery(size_t query_index) const {
  LIGHTLT_CHECK(index_ != nullptr);
  LIGHTLT_CHECK_LT(query_index, query_embeddings_.rows());
  return index_->RankAll(query_embeddings_.row(query_index));
}

size_t DeepQuantMethod::IndexMemoryBytes() const {
  return index_ == nullptr ? 0 : index_->MemoryBytes();
}

DeepQuantSpec MakeDpqSpec(const data::RetrievalBenchmark& bench,
                          data::PresetId preset, bool full_scale) {
  DeepQuantSpec spec;
  spec.name = "DPQ";
  spec.arch = core::DefaultModelConfig(bench, full_scale);
  // Product-style: independent parallel codebooks, no skips, STE, plain CE.
  spec.arch.dsq.residual_skip = false;
  spec.arch.dsq.codebook_skip = false;
  spec.arch.dsq.straight_through = true;
  spec.train = core::DefaultTrainOptions(preset, full_scale);
  spec.train.loss.gamma = 0.0f;  // unweighted CE
  spec.train.loss.alpha = 0.0f;  // no center/ranking terms
  spec.seed = 0xd99;
  return spec;
}

DeepQuantSpec MakeKdeSpec(const data::RetrievalBenchmark& bench,
                          data::PresetId preset, bool full_scale) {
  DeepQuantSpec spec;
  spec.name = "KDE";
  spec.arch = core::DefaultModelConfig(bench, full_scale);
  // K-way D-dimensional codes: soft relaxation, no skips, CE + recon.
  spec.arch.dsq.residual_skip = false;
  spec.arch.dsq.codebook_skip = false;
  spec.arch.dsq.straight_through = false;
  spec.arch.dsq.temperature = 1.0f;
  spec.train = core::DefaultTrainOptions(preset, full_scale);
  spec.train.loss.gamma = 0.0f;
  spec.train.loss.alpha = 0.0f;
  spec.train.loss.recon_weight = 0.1f;
  spec.seed = 0x4de;
  return spec;
}

DeepQuantSpec MakeLightLtSpec(const data::RetrievalBenchmark& bench,
                              data::PresetId preset, bool full_scale,
                              int ensemble_models) {
  DeepQuantSpec spec;
  spec.name = ensemble_models > 1 ? "LightLT" : "LightLT w/o ensemble";
  spec.arch = core::DefaultModelConfig(bench, full_scale);
  spec.train = core::DefaultTrainOptions(preset, full_scale);
  spec.ensemble_models = ensemble_models;
  const auto ens =
      core::DefaultEnsembleOptions(preset, full_scale, ensemble_models);
  spec.finetune_epochs = ens.finetune_epochs;
  spec.finetune_learning_rate = ens.finetune_learning_rate;
  spec.seed = 0x117;
  return spec;
}

}  // namespace lightlt::baselines
