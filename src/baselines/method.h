// Common interface for every retrieval method compared in Tables II/III:
// fit on (long-tail) training data, index a database, rank queries.

#ifndef LIGHTLT_BASELINES_METHOD_H_
#define LIGHTLT_BASELINES_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/matrix.h"
#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt::baselines {

/// Category labels mirroring the paper's table groupings.
enum class MethodKind {
  kShallowHash,   ///< LSH, PCAH, ITQ, KNNH, SDH
  kShallowQuant,  ///< PQ, RQ
  kDeepHash,      ///< HashNet, CSQ, LTHNet
  kDeepQuant,     ///< DPQ, KDE, LightLT
};

/// A supervised or unsupervised retrieval method under the evaluation
/// protocol of §V-A: Fit on the training split, IndexDatabase on the
/// database split, PrepareQueries on the query split, then rank.
class RetrievalMethod {
 public:
  virtual ~RetrievalMethod() = default;

  virtual std::string name() const = 0;
  virtual MethodKind kind() const = 0;

  /// Learns hash functions / codebooks / network weights from `train`.
  virtual Status Fit(const data::Dataset& train) = 0;

  /// Encodes and stores the database representation.
  virtual Status IndexDatabase(const Matrix& db_features) = 0;

  /// Precomputes the query-side representation for the whole query set.
  virtual Status PrepareQueries(const Matrix& query_features) = 0;

  /// Full database ranking for prepared query `query_index`.
  virtual std::vector<uint32_t> RankQuery(size_t query_index) const = 0;

  /// Bytes held by the database index (codes + auxiliary tables).
  virtual size_t IndexMemoryBytes() const = 0;
};

/// MAP of `method` on `bench` end to end (fit -> index -> rank -> MAP).
struct MethodReport {
  std::string name;
  double map = 0.0;
  size_t index_bytes = 0;
  double fit_seconds = 0.0;
};
Result<MethodReport> EvaluateMethod(RetrievalMethod* method,
                                    const data::RetrievalBenchmark& bench,
                                    ThreadPool* pool = nullptr);

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_METHOD_H_
