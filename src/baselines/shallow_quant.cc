#include "src/baselines/shallow_quant.h"

#include <algorithm>

#include "src/clustering/kmeans.h"
#include "src/clustering/linalg.h"
#include "src/util/check.h"

namespace lightlt::baselines {

Status AdcQuantizerBase::IndexDatabase(const Matrix& db_features) {
  if (codebooks_.empty()) {
    return Status::FailedPrecondition("quantizer not fitted");
  }
  std::vector<std::vector<uint32_t>> codes;
  EncodeItems(db_features, &codes);
  auto built = index::AdcIndex::Build(codebooks_, codes);
  if (!built.ok()) return built.status();
  index_ = std::make_unique<index::AdcIndex>(std::move(built).value());
  return Status::Ok();
}

Status AdcQuantizerBase::PrepareQueries(const Matrix& query_features) {
  queries_ = query_features;
  return Status::Ok();
}

std::vector<uint32_t> AdcQuantizerBase::RankQuery(size_t query_index) const {
  LIGHTLT_CHECK(index_ != nullptr);
  LIGHTLT_CHECK_LT(query_index, queries_.rows());
  return index_->RankAll(queries_.row(query_index));
}

size_t AdcQuantizerBase::IndexMemoryBytes() const {
  return index_ == nullptr ? 0 : index_->MemoryBytes();
}

PqQuantizer::PqQuantizer(size_t num_codebooks, size_t num_codewords,
                         uint64_t seed)
    : num_codebooks_(num_codebooks),
      num_codewords_(num_codewords),
      seed_(seed) {}

Status PqQuantizer::Fit(const data::Dataset& train) {
  dim_ = train.dim();
  if (dim_ < num_codebooks_) {
    return Status::InvalidArgument("PQ: fewer dimensions than codebooks");
  }
  codebooks_.clear();
  sub_begin_.clear();
  sub_end_.clear();

  const size_t base = dim_ / num_codebooks_;
  size_t cursor = 0;
  for (size_t m = 0; m < num_codebooks_; ++m) {
    const size_t width = base + (m < dim_ % num_codebooks_ ? 1 : 0);
    sub_begin_.push_back(cursor);
    sub_end_.push_back(cursor + width);
    cursor += width;
  }

  for (size_t m = 0; m < num_codebooks_; ++m) {
    const size_t width = sub_end_[m] - sub_begin_[m];
    Matrix sub(train.size(), width);
    for (size_t i = 0; i < train.size(); ++i) {
      const float* src = train.features.row(i) + sub_begin_[m];
      std::copy(src, src + width, sub.row(i));
    }
    clustering::KMeansOptions opts;
    opts.num_clusters = num_codewords_;
    opts.seed = seed_ + m;
    const auto result = clustering::KMeans(sub, opts);
    // Embed the subspace centroids into full dimension.
    Matrix full(result.centroids.rows(), dim_);
    for (size_t r = 0; r < result.centroids.rows(); ++r) {
      std::copy(result.centroids.row(r), result.centroids.row(r) + width,
                full.row(r) + sub_begin_[m]);
    }
    // Pad the codebook with duplicate rows if k-means collapsed (n < K).
    while (full.rows() < num_codewords_) {
      full = full.VStack(full.RowCopy(full.rows() - 1));
    }
    codebooks_.push_back(std::move(full));
  }
  return Status::Ok();
}

void PqQuantizer::EncodeItems(
    const Matrix& x, std::vector<std::vector<uint32_t>>* codes) const {
  codes->assign(x.rows(), std::vector<uint32_t>(num_codebooks_));
  for (size_t m = 0; m < num_codebooks_; ++m) {
    const size_t width = sub_end_[m] - sub_begin_[m];
    Matrix sub(x.rows(), width);
    Matrix centroids(num_codewords_, width);
    for (size_t r = 0; r < num_codewords_; ++r) {
      const float* src = codebooks_[m].row(r) + sub_begin_[m];
      std::copy(src, src + width, centroids.row(r));
    }
    for (size_t i = 0; i < x.rows(); ++i) {
      const float* src = x.row(i) + sub_begin_[m];
      std::copy(src, src + width, sub.row(i));
    }
    const auto assignment = clustering::AssignToNearest(sub, centroids);
    for (size_t i = 0; i < x.rows(); ++i) (*codes)[i][m] = assignment[i];
  }
}

OpqQuantizer::OpqQuantizer(size_t num_codebooks, size_t num_codewords,
                           int outer_iterations, uint64_t seed)
    : num_codebooks_(num_codebooks),
      num_codewords_(num_codewords),
      outer_iterations_(outer_iterations),
      seed_(seed) {}

Matrix OpqQuantizer::Rotate(const Matrix& x) const {
  return x.MatMul(rotation_);
}

Status OpqQuantizer::Fit(const data::Dataset& train) {
  const size_t d = train.dim();
  rotation_ = Matrix::Identity(d);

  data::Dataset rotated = train;
  for (int it = 0; it < outer_iterations_; ++it) {
    rotated.features = Rotate(train.features);
    pq_ = std::make_unique<PqQuantizer>(num_codebooks_, num_codewords_,
                                        seed_ + static_cast<uint64_t>(it));
    LIGHTLT_RETURN_IF_ERROR(pq_->Fit(rotated));

    // Reconstructions in the rotated space.
    std::vector<std::vector<uint32_t>> codes;
    pq_->EncodeItems(rotated.features, &codes);
    Matrix recon(train.size(), d);
    for (size_t i = 0; i < codes.size(); ++i) {
      float* row = recon.row(i);
      for (size_t m = 0; m < num_codebooks_; ++m) {
        const float* word = pq_->codebooks()[m].row(codes[i][m]);
        for (size_t j = 0; j < d; ++j) row[j] += word[j];
      }
    }
    // Orthogonal Procrustes: R = argmin ||X R - B||_F.
    LIGHTLT_RETURN_IF_ERROR(
        linalg::ProcrustesRotation(train.features, recon, &rotation_));
  }

  // Final PQ fit against the converged rotation.
  rotated.features = Rotate(train.features);
  pq_ = std::make_unique<PqQuantizer>(num_codebooks_, num_codewords_, seed_);
  LIGHTLT_RETURN_IF_ERROR(pq_->Fit(rotated));

  // Map codebooks back to the original space: c_orig = c_rot R^T, so the
  // additive reconstruction satisfies sum_m c_orig = (sum_m c_rot) R^T and
  // ADC with unrotated queries is exact (R is orthogonal).
  codebooks_.clear();
  for (const auto& book : pq_->codebooks()) {
    codebooks_.push_back(book.MatMulTransposed(rotation_));
  }
  return Status::Ok();
}

void OpqQuantizer::EncodeItems(
    const Matrix& x, std::vector<std::vector<uint32_t>>* codes) const {
  LIGHTLT_CHECK(pq_ != nullptr);
  pq_->EncodeItems(Rotate(x), codes);
}

RqQuantizer::RqQuantizer(size_t num_codebooks, size_t num_codewords,
                         uint64_t seed)
    : num_codebooks_(num_codebooks),
      num_codewords_(num_codewords),
      seed_(seed) {}

Status RqQuantizer::Fit(const data::Dataset& train) {
  codebooks_.clear();
  Matrix residual = train.features;
  for (size_t m = 0; m < num_codebooks_; ++m) {
    clustering::KMeansOptions opts;
    opts.num_clusters = num_codewords_;
    opts.seed = seed_ + m;
    const auto result = clustering::KMeans(residual, opts);
    Matrix centroids = result.centroids;
    while (centroids.rows() < num_codewords_) {
      centroids = centroids.VStack(centroids.RowCopy(centroids.rows() - 1));
    }
    // Subtract the assigned centroid to form the next-stage residual.
    for (size_t i = 0; i < residual.rows(); ++i) {
      const float* c = centroids.row(result.assignments[i]);
      float* r = residual.row(i);
      for (size_t j = 0; j < residual.cols(); ++j) r[j] -= c[j];
    }
    codebooks_.push_back(std::move(centroids));
  }
  return Status::Ok();
}

void RqQuantizer::EncodeItems(
    const Matrix& x, std::vector<std::vector<uint32_t>>* codes) const {
  codes->assign(x.rows(), std::vector<uint32_t>(num_codebooks_));
  Matrix residual = x;
  for (size_t m = 0; m < num_codebooks_; ++m) {
    const auto assignment =
        clustering::AssignToNearest(residual, codebooks_[m]);
    for (size_t i = 0; i < x.rows(); ++i) {
      (*codes)[i][m] = assignment[i];
      const float* c = codebooks_[m].row(assignment[i]);
      float* r = residual.row(i);
      for (size_t j = 0; j < residual.cols(); ++j) r[j] -= c[j];
    }
  }
}

}  // namespace lightlt::baselines
