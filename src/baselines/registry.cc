#include "src/baselines/registry.h"

#include "src/baselines/deep_hash.h"
#include "src/baselines/deep_quant.h"
#include "src/baselines/shallow_hash.h"
#include "src/baselines/shallow_quant.h"
#include "src/core/defaults.h"
#include "src/index/codes.h"

namespace lightlt::baselines {

size_t DefaultNumBits(bool full_scale) {
  // LightLT scaled: M=4, K=64 -> 24 bits. Full: M=4, K=256 -> 32 bits,
  // the paper's setting.
  return full_scale ? 32 : 24;
}

namespace {

DeepHashOptions HashOptions(const core::TrainOptions& train,
                            bool full_scale) {
  DeepHashOptions opts;
  opts.num_bits = DefaultNumBits(full_scale);
  opts.hidden_dim = full_scale ? 512 : 128;
  opts.epochs = train.epochs;
  opts.batch_size = train.batch_size;
  opts.learning_rate = 3e-3f;
  return opts;
}

}  // namespace

std::vector<std::unique_ptr<RetrievalMethod>> MakeImageMethodSet(
    const data::RetrievalBenchmark& bench, data::PresetId preset,
    bool full_scale) {
  const size_t bits = DefaultNumBits(full_scale);
  const auto arch = core::DefaultModelConfig(bench, full_scale);
  const auto train = core::DefaultTrainOptions(preset, full_scale);
  const size_t m = arch.dsq.num_codebooks;
  const size_t k = arch.dsq.num_codewords;

  std::vector<std::unique_ptr<RetrievalMethod>> methods;
  methods.push_back(std::make_unique<LshHash>(bits));
  methods.push_back(std::make_unique<PcaHash>(bits));
  methods.push_back(std::make_unique<ItqHash>(bits));
  methods.push_back(std::make_unique<KnnhHash>(bits));
  methods.push_back(std::make_unique<SdhHash>(bits));
  methods.push_back(std::make_unique<PqQuantizer>(m, k));
  methods.push_back(std::make_unique<OpqQuantizer>(m, k));
  methods.push_back(std::make_unique<RqQuantizer>(m, k));
  methods.push_back(
      std::make_unique<HashNetHash>(HashOptions(train, full_scale)));
  methods.push_back(std::make_unique<CsqHash>(HashOptions(train, full_scale)));
  methods.push_back(
      std::make_unique<LthNetHash>(HashOptions(train, full_scale)));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeLightLtSpec(bench, preset, full_scale, /*ensemble_models=*/1)));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeLightLtSpec(bench, preset, full_scale, /*ensemble_models=*/4)));
  return methods;
}

std::vector<std::unique_ptr<RetrievalMethod>> MakeTextMethodSet(
    const data::RetrievalBenchmark& bench, data::PresetId preset,
    bool full_scale) {
  const size_t bits = DefaultNumBits(full_scale);
  const auto arch = core::DefaultModelConfig(bench, full_scale);
  const auto train = core::DefaultTrainOptions(preset, full_scale);
  const size_t m = arch.dsq.num_codebooks;
  const size_t k = arch.dsq.num_codewords;

  std::vector<std::unique_ptr<RetrievalMethod>> methods;
  methods.push_back(std::make_unique<LshHash>(bits));
  methods.push_back(std::make_unique<PqQuantizer>(m, k));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeDpqSpec(bench, preset, full_scale)));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeKdeSpec(bench, preset, full_scale)));
  methods.push_back(
      std::make_unique<LthNetHash>(HashOptions(train, full_scale)));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeLightLtSpec(bench, preset, full_scale, /*ensemble_models=*/1)));
  methods.push_back(std::make_unique<DeepQuantMethod>(
      MakeLightLtSpec(bench, preset, full_scale, /*ensemble_models=*/4)));
  return methods;
}

}  // namespace lightlt::baselines
