// Shallow binarized-hash baselines of Table II: LSH, PCAH, ITQ, KNNH-lite,
// SDH-lite. All produce `num_bits`-bit sign codes from a learned linear
// projection and search by exhaustive Hamming ranking.
//
// KNNH and SDH are simplified ("-lite") relative to their original papers —
// the simplifications are documented per class and preserve each method's
// category (unsupervised spectral vs supervised discrete) in the comparison.

#ifndef LIGHTLT_BASELINES_SHALLOW_HASH_H_
#define LIGHTLT_BASELINES_SHALLOW_HASH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/index/hamming_index.h"

namespace lightlt::baselines {

/// Base for linear projection-then-sign hashes: code = sign((x - mean) W).
class LinearHash : public RetrievalMethod {
 public:
  explicit LinearHash(size_t num_bits) : num_bits_(num_bits) {}

  MethodKind kind() const override { return MethodKind::kShallowHash; }

  Status IndexDatabase(const Matrix& db_features) override;
  Status PrepareQueries(const Matrix& query_features) override;
  std::vector<uint32_t> RankQuery(size_t query_index) const override;
  size_t IndexMemoryBytes() const override;

  size_t num_bits() const { return num_bits_; }
  const Matrix& projection() const { return projection_; }

 protected:
  /// Projects rows: (x - mean) W -> (n x bits).
  Matrix Project(const Matrix& x) const;

  size_t num_bits_;
  Matrix mean_;        // 1 x d, zero-sized = no centering
  Matrix projection_;  // d x bits

 private:
  std::unique_ptr<index::HammingIndex> index_;
  std::vector<uint64_t> query_codes_;
  size_t query_blocks_ = 0;
};

/// Locality-sensitive hashing: random Gaussian hyperplanes (Gionis et al.).
class LshHash : public LinearHash {
 public:
  LshHash(size_t num_bits, uint64_t seed = 0x15a)
      : LinearHash(num_bits), seed_(seed) {}
  std::string name() const override { return "LSH"; }
  Status Fit(const data::Dataset& train) override;

 private:
  uint64_t seed_;
};

/// PCA hashing: sign of the top principal components (Gong et al., PCAH).
class PcaHash : public LinearHash {
 public:
  explicit PcaHash(size_t num_bits) : LinearHash(num_bits) {}
  std::string name() const override { return "PCAH"; }
  Status Fit(const data::Dataset& train) override;
};

/// Iterative quantization: PCA followed by a learned rotation minimizing
/// the binarization error ||B - V R||_F (Gong et al., ITQ).
class ItqHash : public LinearHash {
 public:
  ItqHash(size_t num_bits, int iterations = 50, uint64_t seed = 0x17a)
      : LinearHash(num_bits), iterations_(iterations), seed_(seed) {}
  std::string name() const override { return "ITQ"; }
  Status Fit(const data::Dataset& train) override;

 private:
  int iterations_;
  uint64_t seed_;
};

/// KNNH-lite: whitened PCA with a random rotation. Simplification of
/// K-Nearest-Neighbors Hashing (He et al.): we keep the whitening that
/// equalizes bit variances but drop the kNN-preserving refinement.
class KnnhHash : public LinearHash {
 public:
  KnnhHash(size_t num_bits, uint64_t seed = 0x4a2)
      : LinearHash(num_bits), seed_(seed) {}
  std::string name() const override { return "KNNH"; }
  Status Fit(const data::Dataset& train) override;

 private:
  uint64_t seed_;
};

/// SDH-lite: supervised discrete hashing by alternating ridge regressions.
/// Simplification of Shen et al.: B = sign(XP) with P refit to predict
/// codes that linearly regress onto one-hot labels; the discrete-cyclic
///-coordinate step is replaced by the sign relaxation.
class SdhHash : public LinearHash {
 public:
  SdhHash(size_t num_bits, int iterations = 5, float ridge = 1.0f,
          uint64_t seed = 0x5d)
      : LinearHash(num_bits),
        iterations_(iterations),
        ridge_(ridge),
        seed_(seed) {}
  std::string name() const override { return "SDH"; }
  MethodKind kind() const override { return MethodKind::kShallowHash; }
  Status Fit(const data::Dataset& train) override;

 private:
  int iterations_;
  float ridge_;
  uint64_t seed_;
};

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_SHALLOW_HASH_H_
