#include "src/baselines/shallow_hash.h"

#include <cmath>

#include "src/clustering/linalg.h"
#include "src/clustering/pca.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace lightlt::baselines {

Matrix LinearHash::Project(const Matrix& x) const {
  LIGHTLT_CHECK(!projection_.empty());
  if (mean_.empty()) return x.MatMul(projection_);
  Matrix centered = x;
  for (size_t i = 0; i < centered.rows(); ++i) {
    float* r = centered.row(i);
    for (size_t j = 0; j < centered.cols(); ++j) r[j] -= mean_[j];
  }
  return centered.MatMul(projection_);
}

Status LinearHash::IndexDatabase(const Matrix& db_features) {
  if (projection_.empty()) {
    return Status::FailedPrecondition("hash not fitted");
  }
  size_t blocks = 0;
  auto packed = index::PackSignBits(Project(db_features), &blocks);
  index_ = std::make_unique<index::HammingIndex>(std::move(packed), blocks,
                                                 num_bits_);
  return Status::Ok();
}

Status LinearHash::PrepareQueries(const Matrix& query_features) {
  if (projection_.empty()) {
    return Status::FailedPrecondition("hash not fitted");
  }
  query_codes_ = index::PackSignBits(Project(query_features), &query_blocks_);
  return Status::Ok();
}

std::vector<uint32_t> LinearHash::RankQuery(size_t query_index) const {
  LIGHTLT_CHECK(index_ != nullptr);
  return index_->RankAll(query_codes_.data() + query_index * query_blocks_);
}

size_t LinearHash::IndexMemoryBytes() const {
  return index_ == nullptr ? 0 : index_->MemoryBytes();
}

Status LshHash::Fit(const data::Dataset& train) {
  Rng rng(seed_);
  projection_ =
      Matrix::RandomGaussian(train.dim(), num_bits_, rng);
  // Center on the training mean so hyperplanes pass through the data cloud.
  Matrix copy = train.features;
  mean_ = linalg::CenterColumns(copy);
  return Status::Ok();
}

Status PcaHash::Fit(const data::Dataset& train) {
  if (num_bits_ > train.dim()) {
    return Status::InvalidArgument("PCAH: more bits than dimensions");
  }
  auto pca = clustering::Pca::Fit(train.features, num_bits_);
  if (!pca.ok()) return pca.status();
  mean_ = pca.value().mean();
  projection_ = pca.value().components();
  return Status::Ok();
}

Status ItqHash::Fit(const data::Dataset& train) {
  if (num_bits_ > train.dim()) {
    return Status::InvalidArgument("ITQ: more bits than dimensions");
  }
  auto pca = clustering::Pca::Fit(train.features, num_bits_);
  if (!pca.ok()) return pca.status();
  mean_ = pca.value().mean();
  const Matrix v = pca.value().Transform(train.features);  // n x bits

  // Random orthogonal initial rotation via SVD of a Gaussian matrix.
  Rng rng(seed_);
  Matrix g = Matrix::RandomGaussian(num_bits_, num_bits_, rng);
  Matrix u, w;
  std::vector<float> s;
  LIGHTLT_RETURN_IF_ERROR(linalg::ThinSvd(g, &u, &s, &w));
  Matrix rotation = u.MatMulTransposed(w);

  // Alternate: B = sign(V R);  R = Procrustes(V, B).
  for (int it = 0; it < iterations_; ++it) {
    Matrix projected = v.MatMul(rotation);
    Matrix b(projected.rows(), projected.cols());
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = projected[i] >= 0.0f ? 1.0f : -1.0f;
    }
    LIGHTLT_RETURN_IF_ERROR(linalg::ProcrustesRotation(v, b, &rotation));
  }
  projection_ = pca.value().components().MatMul(rotation);
  return Status::Ok();
}

Status KnnhHash::Fit(const data::Dataset& train) {
  if (num_bits_ > train.dim()) {
    return Status::InvalidArgument("KNNH: more bits than dimensions");
  }
  auto pca = clustering::Pca::Fit(train.features, num_bits_, /*whiten=*/true);
  if (!pca.ok()) return pca.status();
  mean_ = pca.value().mean();
  // Random rotation on the whitened basis spreads variance across bits.
  Rng rng(seed_);
  Matrix g = Matrix::RandomGaussian(num_bits_, num_bits_, rng);
  Matrix u, w;
  std::vector<float> s;
  LIGHTLT_RETURN_IF_ERROR(linalg::ThinSvd(g, &u, &s, &w));
  projection_ = pca.value().components().MatMul(u.MatMulTransposed(w));
  return Status::Ok();
}

Status SdhHash::Fit(const data::Dataset& train) {
  const size_t n = train.size();
  const size_t d = train.dim();
  const size_t c = train.num_classes;
  if (n < 2) return Status::InvalidArgument("SDH: not enough samples");

  Matrix x = train.features;
  mean_ = linalg::CenterColumns(x);
  Matrix y(n, c);  // one-hot labels
  for (size_t i = 0; i < n; ++i) y.at(i, train.labels[i]) = 1.0f;

  // Initialize projection from LSH.
  Rng rng(seed_);
  projection_ = Matrix::RandomGaussian(d, num_bits_, rng);

  const Matrix xtx = x.TransposedMatMul(x);  // d x d
  for (int it = 0; it < iterations_; ++it) {
    // Relaxed codes.
    Matrix projected = x.MatMul(projection_);
    Matrix b(n, num_bits_);
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = projected[i] >= 0.0f ? 1.0f : -1.0f;
    }
    // Classifier: W = argmin ||B W - Y||^2 + ridge.
    Matrix btb = b.TransposedMatMul(b);
    Matrix bty = b.TransposedMatMul(y);
    Matrix w;
    LIGHTLT_RETURN_IF_ERROR(linalg::SolveSpd(btb, bty, &w, ridge_));
    // Target codes pulled toward label predictability: T = Y W^T + B.
    Matrix target = y.MatMulTransposed(w);
    target.AddInPlace(b);
    // Projection refit: P = argmin ||X P - T||^2 + ridge.
    Matrix xtt = x.TransposedMatMul(target);
    LIGHTLT_RETURN_IF_ERROR(linalg::SolveSpd(xtx, xtt, &projection_, ridge_));
  }
  return Status::Ok();
}

}  // namespace lightlt::baselines
