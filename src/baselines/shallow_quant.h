// Shallow (k-means-based) quantization baselines: Product Quantization
// (Jegou et al.) and Residual/Additive Quantization (Chen et al.). Both are
// unsupervised and search with the same ADC machinery as LightLT.

#ifndef LIGHTLT_BASELINES_SHALLOW_QUANT_H_
#define LIGHTLT_BASELINES_SHALLOW_QUANT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/index/adc_index.h"

namespace lightlt::baselines {

/// Base for codebook-based quantizers that index with AdcIndex. Subclasses
/// implement Fit (learn codebooks) and EncodeItems.
class AdcQuantizerBase : public RetrievalMethod {
 public:
  MethodKind kind() const override { return MethodKind::kShallowQuant; }

  Status IndexDatabase(const Matrix& db_features) override;
  Status PrepareQueries(const Matrix& query_features) override;
  std::vector<uint32_t> RankQuery(size_t query_index) const override;
  size_t IndexMemoryBytes() const override;

  /// Encodes each row of `x` into M codeword IDs. Public so composed
  /// quantizers (e.g. OPQ wrapping PQ) can reuse the encoding path.
  virtual void EncodeItems(
      const Matrix& x, std::vector<std::vector<uint32_t>>* codes) const = 0;

  /// Codebooks in the full-dimensional additive form AdcIndex expects.
  const std::vector<Matrix>& codebooks() const { return codebooks_; }

 protected:
  std::vector<Matrix> codebooks_;

 private:
  std::unique_ptr<index::AdcIndex> index_;
  Matrix queries_;
};

/// Product quantization: the feature space is split into M contiguous
/// subspaces, each clustered independently with k-means. Codebook m is
/// embedded into R^d with zeros outside its subspace, making PQ a special
/// case of additive quantization.
class PqQuantizer : public AdcQuantizerBase {
 public:
  PqQuantizer(size_t num_codebooks, size_t num_codewords,
              uint64_t seed = 0x90);
  std::string name() const override { return "PQ"; }
  Status Fit(const data::Dataset& train) override;

  void EncodeItems(
      const Matrix& x,
      std::vector<std::vector<uint32_t>>* codes) const override;

 private:
  size_t num_codebooks_;
  size_t num_codewords_;
  uint64_t seed_;
  size_t dim_ = 0;
  std::vector<size_t> sub_begin_;  // subspace column ranges
  std::vector<size_t> sub_end_;
};

/// Optimized product quantization (Ge et al.): PQ preceded by a learned
/// orthogonal rotation that balances subspace variances; alternates between
/// fitting the sub-codebooks and solving the Procrustes rotation.
class OpqQuantizer : public AdcQuantizerBase {
 public:
  OpqQuantizer(size_t num_codebooks, size_t num_codewords,
               int outer_iterations = 5, uint64_t seed = 0x09c);
  std::string name() const override { return "OPQ"; }
  Status Fit(const data::Dataset& train) override;

  void EncodeItems(
      const Matrix& x,
      std::vector<std::vector<uint32_t>>* codes) const override;

 private:
  /// Rotates x by the learned R and delegates to the internal PQ.
  Matrix Rotate(const Matrix& x) const;

  size_t num_codebooks_;
  size_t num_codewords_;
  int outer_iterations_;
  uint64_t seed_;
  Matrix rotation_;  // d x d orthogonal
  std::unique_ptr<PqQuantizer> pq_;
};

/// Residual quantization: stage m runs k-means on the residual left by
/// stages 1..m-1 — the classical ancestor of DSQ's first skip connection.
class RqQuantizer : public AdcQuantizerBase {
 public:
  RqQuantizer(size_t num_codebooks, size_t num_codewords,
              uint64_t seed = 0x49);
  std::string name() const override { return "RQ"; }
  Status Fit(const data::Dataset& train) override;

  void EncodeItems(
      const Matrix& x,
      std::vector<std::vector<uint32_t>>* codes) const override;

 private:
  size_t num_codebooks_;
  size_t num_codewords_;
  uint64_t seed_;
};

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_SHALLOW_QUANT_H_
