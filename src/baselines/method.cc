#include "src/baselines/method.h"

#include "src/eval/metrics.h"
#include "src/util/timer.h"

namespace lightlt::baselines {

Result<MethodReport> EvaluateMethod(RetrievalMethod* method,
                                    const data::RetrievalBenchmark& bench,
                                    ThreadPool* pool) {
  if (method == nullptr) return Status::InvalidArgument("method is null");
  MethodReport report;
  report.name = method->name();

  WallTimer timer;
  LIGHTLT_RETURN_IF_ERROR(method->Fit(bench.train));
  report.fit_seconds = timer.ElapsedSeconds();

  LIGHTLT_RETURN_IF_ERROR(method->IndexDatabase(bench.database.features));
  LIGHTLT_RETURN_IF_ERROR(method->PrepareQueries(bench.query.features));

  eval::RankingFn ranker = [method](size_t q) { return method->RankQuery(q); };
  report.map = eval::MeanAveragePrecision(ranker, bench.query.labels,
                                          bench.database.labels, pool);
  report.index_bytes = method->IndexMemoryBytes();
  return report;
}

}  // namespace lightlt::baselines
