#include "src/baselines/deep_hash.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "src/core/losses.h"
#include "src/nn/optimizer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace lightlt::baselines {

Var DeepHashBase::ForwardCodes(const Matrix& x, float beta) const {
  Var input = MakeConstant(x, "hash_batch");
  Var z = trunk_->Forward(input);
  return ops::Tanh(ops::Scale(z, beta));
}

Status DeepHashBase::Fit(const data::Dataset& train) {
  if (train.size() == 0) return Status::InvalidArgument("empty training set");
  Rng rng(options_.seed);
  trunk_ = std::make_unique<nn::MlpBackbone>(
      std::vector<size_t>{train.dim(), options_.hidden_dim,
                          options_.num_bits},
      rng);

  std::vector<Var> params = trunk_->Parameters();
  for (auto& p : BuildHead(train)) params.push_back(p);

  nn::AdamWOptions adamw;
  adamw.learning_rate = options_.learning_rate;
  nn::AdamW optimizer(params, adamw);

  Rng shuffle_rng(options_.seed ^ 0x5f5f);
  std::vector<size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const float epoch_frac =
        static_cast<float>(epoch) /
        static_cast<float>(std::max(options_.epochs - 1, 1));
    shuffle_rng.Shuffle(order);
    for (size_t start = 0; start < train.size();
         start += options_.batch_size) {
      const size_t end = std::min(start + options_.batch_size, train.size());
      std::vector<size_t> idx(order.begin() + start, order.begin() + end);
      if (idx.size() < 2) continue;  // pairwise losses need >= 2 samples
      const Matrix batch = train.features.GatherRows(idx);
      std::vector<size_t> labels(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) labels[i] = train.labels[idx[i]];

      // Continuation: beta anneals 1 -> 4 over training (HashNet-style);
      // harmless for heads that ignore it.
      const float beta = 1.0f + 3.0f * epoch_frac;
      Var h = ForwardCodes(batch, beta);
      Var loss = Loss(h, labels, epoch_frac);
      Backward(loss);
      optimizer.Step();
    }
  }
  return Status::Ok();
}

Matrix DeepHashBase::CodesFor(const Matrix& x) const {
  // Inference chunking bounds graph memory for large databases.
  constexpr size_t kChunk = 4096;
  Matrix out(x.rows(), options_.num_bits);
  for (size_t start = 0; start < x.rows(); start += kChunk) {
    const size_t end = std::min(start + kChunk, x.rows());
    std::vector<size_t> idx(end - start);
    std::iota(idx.begin(), idx.end(), start);
    const Matrix part = ForwardCodes(x.GatherRows(idx), 1.0f)->value();
    for (size_t i = 0; i < part.rows(); ++i) {
      std::copy(part.row(i), part.row(i) + part.cols(), out.row(start + i));
    }
  }
  return out;
}

Status DeepHashBase::IndexDatabase(const Matrix& db_features) {
  if (trunk_ == nullptr) return Status::FailedPrecondition("not fitted");
  size_t blocks = 0;
  auto packed = index::PackSignBits(CodesFor(db_features), &blocks);
  index_ = std::make_unique<index::HammingIndex>(std::move(packed), blocks,
                                                 options_.num_bits);
  return Status::Ok();
}

Status DeepHashBase::PrepareQueries(const Matrix& query_features) {
  if (trunk_ == nullptr) return Status::FailedPrecondition("not fitted");
  query_codes_ = index::PackSignBits(CodesFor(query_features), &query_blocks_);
  return Status::Ok();
}

std::vector<uint32_t> DeepHashBase::RankQuery(size_t query_index) const {
  LIGHTLT_CHECK(index_ != nullptr);
  return index_->RankAll(query_codes_.data() + query_index * query_blocks_);
}

size_t DeepHashBase::IndexMemoryBytes() const {
  return index_ == nullptr ? 0 : index_->MemoryBytes();
}

Var HashNetHash::Loss(const Var& h, const std::vector<size_t>& labels,
                      float) {
  const size_t n = labels.size();
  // Pairwise logits: <h_i, h_j> / bits, label 1 iff same class.
  Var logits =
      ops::Scale(ops::MatMulTransposed(h, h),
                 1.0f / static_cast<float>(options_.num_bits));
  Matrix sim(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      sim.at(i, j) = labels[i] == labels[j] ? 1.0f : 0.0f;
    }
  }
  // Logistic pairwise loss: softplus(logit) - sim * logit.
  Var loss_mat = ops::Sub(ops::Softplus(logits), ops::MulConstant(logits, sim));
  return ops::Mean(loss_mat);
}

std::vector<Var> CsqHash::BuildHead(const data::Dataset& train) {
  const size_t c = train.num_classes;
  const size_t bits = options_.num_bits;
  centers_ = Matrix(c, bits);
  // Hadamard rows give mutually maximally-distant centers when they fit;
  // otherwise fall back to random +-1 rows (as in the CSQ paper).
  size_t had = 1;
  while (had < bits) had <<= 1;
  if (had == bits && c <= bits) {
    // Sylvester construction: H(i, j) = (-1)^{popcount(i & j)}.
    for (size_t i = 0; i < c; ++i) {
      for (size_t j = 0; j < bits; ++j) {
        centers_.at(i, j) =
            (std::popcount(i & j) % 2 == 0) ? 1.0f : -1.0f;
      }
    }
  } else {
    Rng rng(options_.seed ^ 0xc59);
    for (size_t i = 0; i < centers_.size(); ++i) {
      centers_[i] = rng.NextDouble() < 0.5 ? -1.0f : 1.0f;
    }
  }
  return {};  // centers are fixed, not trained
}

Var CsqHash::Loss(const Var& h, const std::vector<size_t>& labels, float) {
  // Agreement with the class center: softplus(-c_ij * h_ij) per bit, plus a
  // quantization push |h| -> 1.
  Matrix own_centers(labels.size(), options_.num_bits);
  for (size_t i = 0; i < labels.size(); ++i) {
    std::copy(centers_.row(labels[i]),
              centers_.row(labels[i]) + options_.num_bits,
              own_centers.row(i));
  }
  Var agreement = ops::MulConstant(h, own_centers);
  Var central = ops::Mean(ops::Softplus(ops::Neg(agreement)));
  Var quant = ops::Mean(ops::Square(ops::AddScalar(ops::Abs(h), -1.0f)));
  return ops::Add(central, ops::Scale(quant, 0.1f));
}

std::vector<Var> LthNetHash::BuildHead(const data::Dataset& train) {
  Rng rng(options_.seed ^ 0x17b);
  const size_t c = train.num_classes;
  const size_t p = prototypes_per_class_;
  prototypes_ = MakeParam(
      Matrix::RandomGaussian(c * p, options_.num_bits, rng, 0.5f),
      "lthnet.prototypes");
  // Pooling matrix: prototype row c*P + k belongs to class c.
  group_sum_ = Matrix(c * p, c);
  for (size_t cls = 0; cls < c; ++cls) {
    for (size_t k = 0; k < p; ++k) group_sum_.at(cls * p + k, cls) = 1.0f;
  }
  class_weights_ = core::ClassBalancedWeights(train.ClassCounts(), gamma_);
  return {prototypes_};
}

Var LthNetHash::Loss(const Var& h, const std::vector<size_t>& labels, float) {
  // Class logit = log sum_k exp(<h, z_{c,k}>): a soft max over the class's
  // prototype bank, so any mode of a multimodal class can claim the sample.
  // Cosine-style scaling keeps the pooled logits in a trainable range.
  const float scale = 1.0f / std::sqrt(static_cast<float>(options_.num_bits));
  Var proto_sims =
      ops::Scale(ops::MatMulTransposed(h, prototypes_), scale);  // n x (C*P)
  Var class_scores =
      ops::Log(ops::MatMul(ops::Exp(proto_sims), MakeConstant(group_sum_)));
  // Class-balanced CE over the pooled logits (the long-tail ingredient
  // LTHNet adds over plain deep hashing).
  Var ce = core::WeightedCrossEntropy(class_scores, labels, class_weights_);
  Var quant = ops::Mean(ops::Square(ops::AddScalar(ops::Abs(h), -1.0f)));
  return ops::Add(ce, ops::Scale(quant, 0.1f));
}

}  // namespace lightlt::baselines
