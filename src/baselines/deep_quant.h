// Deep quantization methods as RetrievalMethod instances: DPQ-lite,
// KDE-lite and LightLT itself (with or without ensemble).
//
// All variants share the LightLtModel chassis; they differ in which DSQ
// skips are enabled and which loss terms are active:
//
//   method   residual  codebook  STE   loss
//   DPQ      no        no        yes   plain CE
//   KDE      no        no        no    CE + reconstruction
//   LightLT  yes       yes       yes   weighted CE + center + ranking
//
// DPQ/KDE in the paper are product quantizers; the parallel-codebook,
// no-skip configuration reproduces their defining property (independent
// codebooks, no diversity mechanism) inside the additive framework.

#ifndef LIGHTLT_BASELINES_DEEP_QUANT_H_
#define LIGHTLT_BASELINES_DEEP_QUANT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/core/defaults.h"
#include "src/core/ensemble.h"
#include "src/core/lightlt_model.h"
#include "src/core/trainer.h"
#include "src/index/adc_index.h"

namespace lightlt::baselines {

/// Full specification of one deep quantization method.
struct DeepQuantSpec {
  std::string name = "LightLT";
  core::ModelConfig arch;
  core::TrainOptions train;
  /// > 1 enables the weight-ensemble + DSQ fine-tune pipeline.
  int ensemble_models = 1;
  int finetune_epochs = 6;
  float finetune_learning_rate = 2e-3f;
  uint64_t seed = 0x11;
};

/// Deep quantizer trained with the LightLT training stack and searched
/// through the ADC index.
class DeepQuantMethod : public RetrievalMethod {
 public:
  explicit DeepQuantMethod(DeepQuantSpec spec) : spec_(std::move(spec)) {}

  std::string name() const override { return spec_.name; }
  MethodKind kind() const override { return MethodKind::kDeepQuant; }

  Status Fit(const data::Dataset& train) override;
  Status IndexDatabase(const Matrix& db_features) override;
  Status PrepareQueries(const Matrix& query_features) override;
  std::vector<uint32_t> RankQuery(size_t query_index) const override;
  size_t IndexMemoryBytes() const override;

  /// Access to the trained model (for ablation benches).
  const core::LightLtModel* model() const { return model_.get(); }

 private:
  DeepQuantSpec spec_;
  std::unique_ptr<core::LightLtModel> model_;
  std::unique_ptr<index::AdcIndex> index_;
  Matrix query_embeddings_;
};

/// Factory helpers that assemble the table rows of the paper.
DeepQuantSpec MakeDpqSpec(const data::RetrievalBenchmark& bench,
                          data::PresetId preset, bool full_scale);
DeepQuantSpec MakeKdeSpec(const data::RetrievalBenchmark& bench,
                          data::PresetId preset, bool full_scale);
DeepQuantSpec MakeLightLtSpec(const data::RetrievalBenchmark& bench,
                              data::PresetId preset, bool full_scale,
                              int ensemble_models);

}  // namespace lightlt::baselines

#endif  // LIGHTLT_BASELINES_DEEP_QUANT_H_
