// Binary serialization streams with Status-based error reporting.
//
// Used to persist trained models (codebooks, backbone weights), encoded
// databases and training checkpoints. Format: little-endian, length-prefixed
// containers, with a magic/version header written by the format serializers
// and a CRC32 footer appended on Close().
//
// Durability protocol (crash safety): BinaryWriter writes to a temporary
// sibling `<path>.tmp.<pid>`, and Close() flushes, fsyncs and atomically
// renames it over the target. A writer that fails (or is destroyed without a
// successful Close) removes the temporary and leaves any previous file at
// the canonical path untouched.
//
// Integrity protocol: the writer maintains a running CRC32 over every byte
// written; Close() appends an 8-byte footer (footer magic + CRC32).
// BinaryReader mirrors the running CRC; loaders of footered formats call
// VerifyFooter() after consuming the payload, which checks the footer magic,
// the checksum and end-of-file. Legacy (pre-footer) formats instead call
// ExpectEof().

#ifndef LIGHTLT_UTIL_IO_H_
#define LIGHTLT_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lightlt {

/// Incremental CRC32 (IEEE 802.3 polynomial, zlib-compatible). Start with
/// `crc = 0` and feed consecutive chunks.
uint32_t Crc32(uint32_t crc, const void* data, size_t size);

/// Deterministic I/O fault injection for crash/corruption testing. A plan is
/// armed globally; every stream opened while armed applies it independently
/// with its own byte-offset and write-call counters. All offsets/indices
/// refer to the stream's own position. Disarm() restores normal operation.
/// Not thread-safe: arm/disarm only in single-threaded test code.
struct IoFaultPlan {
  /// 0-based index of the WriteRaw call that fails with IoError (-1 = off).
  int fail_nth_write = -1;
  /// Bytes at or after this file offset are silently dropped on write,
  /// simulating a crash mid-write (-1 = off).
  int64_t write_truncate_at = -1;
  /// Reads at or after this file offset observe EOF (-1 = off).
  int64_t read_truncate_at = -1;
  /// The byte at this file offset is XOR'd with `flip_mask` as it is read
  /// (-1 = off).
  int64_t read_flip_byte = -1;
  uint8_t flip_mask = 0x01;
};

void ArmIoFaults(const IoFaultPlan& plan);
void DisarmIoFaults();
bool IoFaultsArmed();

/// Writes POD scalars and vectors to a file. All methods are no-ops after
/// the first failure; call status() (or Close()) to observe it.
class BinaryWriter {
 public:
  struct Options {
    /// Write to `<path>.tmp.<pid>` and rename into place on Close().
    bool atomic = true;
    /// Append the CRC32 footer on Close().
    bool checksum_footer = true;
    /// fsync file (and containing directory after rename) on Close().
    bool sync = true;
  };

  explicit BinaryWriter(const std::string& path);
  BinaryWriter(const std::string& path, const Options& options);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF32Vector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteBytes(const std::vector<uint8_t>& v);

  const Status& status() const { return status_; }

  /// Bytes written so far (excluding the footer).
  uint64_t bytes_written() const { return offset_; }

  /// Commits the file: appends the checksum footer, flushes, fsyncs and
  /// renames the temporary over the target path. On any failure (including
  /// an earlier sticky error) the temporary is removed and the previous
  /// canonical file is left untouched. Returns the sticky status.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t size);
  void Abort();  // close + remove the temporary without committing

  std::FILE* file_ = nullptr;
  std::string final_path_;
  std::string tmp_path_;   // equals final_path_ when options_.atomic is off
  Options options_;
  Status status_;
  uint32_t crc_ = 0;
  uint64_t offset_ = 0;
  int write_calls_ = 0;
  bool fault_armed_ = false;
  IoFaultPlan fault_;
};

/// Reads POD scalars and vectors written by BinaryWriter. All methods return
/// zero values after the first failure; call status() to observe it.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadF32Vector();
  std::vector<uint32_t> ReadU32Vector();
  std::vector<uint8_t> ReadBytes();

  const Status& status() const { return status_; }

  /// Consumes the trailing checksum footer and verifies (a) the footer
  /// magic, (b) that the CRC32 of every byte read so far matches the stored
  /// checksum, and (c) that the footer is the last thing in the file. Call
  /// after reading the full payload of a footered format.
  Status VerifyFooter();

  /// Verifies the stream is positioned at end-of-file (legacy formats
  /// without a footer: rejects trailing bytes).
  Status ExpectEof();

 private:
  void ReadRaw(void* data, size_t size);
  /// True when `bytes` more bytes can exist before EOF — used to reject
  /// corrupt container lengths before allocating for them.
  bool FitsRemaining(uint64_t bytes) const;

  std::FILE* file_ = nullptr;
  Status status_;
  uint32_t crc_ = 0;
  uint64_t offset_ = 0;
  uint64_t file_size_ = 0;
  bool fault_armed_ = false;
  IoFaultPlan fault_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_IO_H_
