// Binary serialization streams with Status-based error reporting.
//
// Used to persist trained models (codebooks, backbone weights) and encoded
// databases. Format: little-endian, length-prefixed containers, with a
// magic/version header written by the model serializers.

#ifndef LIGHTLT_UTIL_IO_H_
#define LIGHTLT_UTIL_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lightlt {

/// Writes POD scalars and vectors to a file. All methods are no-ops after
/// the first failure; call status() (or Close()) to observe it.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF32Vector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteBytes(const std::vector<uint8_t>& v);

  const Status& status() const { return status_; }

  /// Flushes and closes; returns the sticky status.
  Status Close();

 private:
  void WriteRaw(const void* data, size_t size);

  std::FILE* file_ = nullptr;
  Status status_;
};

/// Reads POD scalars and vectors written by BinaryWriter. All methods return
/// zero values after the first failure; call status() to observe it.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  std::string ReadString();
  std::vector<float> ReadF32Vector();
  std::vector<uint32_t> ReadU32Vector();
  std::vector<uint8_t> ReadBytes();

  const Status& status() const { return status_; }

 private:
  void ReadRaw(void* data, size_t size);

  std::FILE* file_ = nullptr;
  Status status_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_IO_H_
