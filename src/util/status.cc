#include "src/util/status.h"

namespace lightlt {

const char* Status::CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lightlt
