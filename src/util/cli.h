// Minimal command-line flag parsing for bench harnesses and examples.
//
// Supports --name=value, --name value, and boolean --name forms.

#ifndef LIGHTLT_UTIL_CLI_H_
#define LIGHTLT_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace lightlt {

/// Parsed command-line flags. Unknown flags are retained and can be listed
/// for "did you mean" diagnostics.
class CommandLine {
 public:
  CommandLine(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_CLI_H_
