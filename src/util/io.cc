#include "src/util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>

namespace lightlt {

namespace {
// Hard ceiling on container sizes to fail fast on corrupt files instead of
// attempting a multi-GB allocation.
constexpr uint64_t kMaxContainerBytes = 1ull << 34;  // 16 GiB

// Footer layout: kFooterMagic (u32) + CRC32 of all preceding bytes (u32).
constexpr uint32_t kFooterMagic = 0x4c54'434b;  // "LTCK"

IoFaultPlan g_fault_plan;
bool g_faults_armed = false;

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Best-effort directory sync so the rename itself is durable. Failure is not
// fatal: the data file was already fsynced and some filesystems reject
// directory fsync.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(uint32_t crc, const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

void ArmIoFaults(const IoFaultPlan& plan) {
  g_fault_plan = plan;
  g_faults_armed = true;
}

void DisarmIoFaults() {
  g_faults_armed = false;
  g_fault_plan = IoFaultPlan{};
}

bool IoFaultsArmed() { return g_faults_armed; }

BinaryWriter::BinaryWriter(const std::string& path)
    : BinaryWriter(path, Options{}) {}

BinaryWriter::BinaryWriter(const std::string& path, const Options& options)
    : final_path_(path), options_(options) {
  fault_armed_ = g_faults_armed;
  if (fault_armed_) fault_ = g_fault_plan;
  tmp_path_ = options_.atomic
                  ? path + ".tmp." + std::to_string(::getpid())
                  : path;
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for writing: " + tmp_path_);
  }
}

BinaryWriter::~BinaryWriter() {
  // A writer destroyed without a successful Close never publishes: the
  // temporary is discarded and the canonical path is left untouched.
  Abort();
}

void BinaryWriter::Abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    if (options_.atomic) std::remove(tmp_path_.c_str());
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok() || size == 0) return;
  if (fault_armed_ && fault_.fail_nth_write >= 0 &&
      write_calls_++ == fault_.fail_nth_write) {
    status_ = Status::IoError("injected write failure");
    return;
  }
  size_t to_write = size;
  if (fault_armed_ && fault_.write_truncate_at >= 0) {
    const uint64_t limit = static_cast<uint64_t>(fault_.write_truncate_at);
    to_write = offset_ >= limit
                   ? 0
                   : static_cast<size_t>(
                         std::min<uint64_t>(size, limit - offset_));
  }
  if (to_write > 0 &&
      std::fwrite(data, 1, to_write, file_) != to_write) {
    status_ = Status::IoError("short write");
    return;
  }
  // The checksum covers the logical stream; under write truncation the
  // committed file is then missing payload the footer accounts for, which is
  // exactly what a torn write looks like to the reader.
  crc_ = Crc32(crc_, data, size);
  offset_ += size;
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(uint32_t));
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size());
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return status_;  // open failed; nothing to clean up
  if (status_.ok() && options_.checksum_footer) {
    const uint32_t payload_crc = crc_;
    WriteU32(kFooterMagic);
    WriteU32(payload_crc);
  }
  if (status_.ok() && std::fflush(file_) != 0) {
    status_ = Status::IoError("flush failed");
  }
  if (status_.ok() && options_.sync && ::fsync(::fileno(file_)) != 0) {
    status_ = Status::IoError("fsync failed");
  }
  if (!status_.ok()) {
    Abort();
    return status_;
  }
  if (std::fclose(file_) != 0) {
    status_ = Status::IoError("close failed");
    file_ = nullptr;
    if (options_.atomic) std::remove(tmp_path_.c_str());
    return status_;
  }
  file_ = nullptr;
  if (options_.atomic) {
    if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
      status_ = Status::IoError("atomic rename failed: " + final_path_);
      std::remove(tmp_path_.c_str());
      return status_;
    }
    if (options_.sync) SyncParentDirectory(final_path_);
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path) {
  fault_armed_ = g_faults_armed;
  if (fault_armed_) fault_ = g_fault_plan;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for reading: " + path);
    return;
  }
  struct stat st;
  file_size_ = ::fstat(::fileno(file_), &st) == 0
                   ? static_cast<uint64_t>(st.st_size)
                   : std::numeric_limits<uint64_t>::max();
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool BinaryReader::FitsRemaining(uint64_t bytes) const {
  uint64_t limit = file_size_;
  if (fault_armed_ && fault_.read_truncate_at >= 0) {
    limit = std::min(limit, static_cast<uint64_t>(fault_.read_truncate_at));
  }
  return offset_ <= limit && bytes <= limit - offset_;
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok() || size == 0) return;
  if (fault_armed_ && fault_.read_truncate_at >= 0 &&
      offset_ + size > static_cast<uint64_t>(fault_.read_truncate_at)) {
    status_ = Status::IoError("short read (truncated or corrupt file)");
    return;
  }
  if (std::fread(data, 1, size, file_) != size) {
    status_ = Status::IoError("short read (truncated or corrupt file)");
    return;
  }
  if (fault_armed_ && fault_.read_flip_byte >= 0) {
    const uint64_t flip = static_cast<uint64_t>(fault_.read_flip_byte);
    if (flip >= offset_ && flip < offset_ + size) {
      static_cast<uint8_t*>(data)[flip - offset_] ^= fault_.flip_mask;
    }
  }
  // CRC over the bytes the consumer observes (post-flip), so an injected
  // flip is indistinguishable from on-disk corruption.
  crc_ = Crc32(crc_, data, size);
  offset_ += size;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxContainerBytes || !FitsRemaining(n)) {
    status_ = Status::IoError("string length too large (corrupt file)");
    return {};
  }
  try {
    std::string s(n, '\0');
    ReadRaw(s.data(), n);
    return status_.ok() ? s : std::string{};
  } catch (const std::exception&) {
    status_ = Status::IoError("string allocation failed (corrupt file)");
    return {};
  }
}

std::vector<float> BinaryReader::ReadF32Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  // Divide instead of multiplying: n * sizeof(float) wraps for adversarial
  // n (e.g. 2^62) and would pass a product-form check.
  if (n > kMaxContainerBytes / sizeof(float) ||
      !FitsRemaining(n * sizeof(float))) {
    status_ = Status::IoError("vector length too large (corrupt file)");
    return {};
  }
  try {
    std::vector<float> v(n);
    ReadRaw(v.data(), n * sizeof(float));
    return status_.ok() ? v : std::vector<float>{};
  } catch (const std::exception&) {
    status_ = Status::IoError("vector allocation failed (corrupt file)");
    return {};
  }
}

std::vector<uint32_t> BinaryReader::ReadU32Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxContainerBytes / sizeof(uint32_t) ||
      !FitsRemaining(n * sizeof(uint32_t))) {
    status_ = Status::IoError("vector length too large (corrupt file)");
    return {};
  }
  try {
    std::vector<uint32_t> v(n);
    ReadRaw(v.data(), n * sizeof(uint32_t));
    return status_.ok() ? v : std::vector<uint32_t>{};
  } catch (const std::exception&) {
    status_ = Status::IoError("vector allocation failed (corrupt file)");
    return {};
  }
}

std::vector<uint8_t> BinaryReader::ReadBytes() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxContainerBytes || !FitsRemaining(n)) {
    status_ = Status::IoError("byte array too large (corrupt file)");
    return {};
  }
  try {
    std::vector<uint8_t> v(n);
    ReadRaw(v.data(), n);
    return status_.ok() ? v : std::vector<uint8_t>{};
  } catch (const std::exception&) {
    status_ = Status::IoError("byte array allocation failed (corrupt file)");
    return {};
  }
}

Status BinaryReader::VerifyFooter() {
  if (!status_.ok()) return status_;
  const uint32_t payload_crc = crc_;
  const uint32_t magic = ReadU32();
  const uint32_t stored_crc = ReadU32();
  if (!status_.ok()) return status_;
  if (magic != kFooterMagic) {
    return Status::IoError("missing checksum footer (truncated or corrupt)");
  }
  if (stored_crc != payload_crc) {
    return Status::IoError("checksum mismatch (corrupt file)");
  }
  return ExpectEof();
}

Status BinaryReader::ExpectEof() {
  if (!status_.ok()) return status_;
  if (std::fgetc(file_) != EOF) {
    return Status::IoError("trailing bytes after payload (corrupt file)");
  }
  return Status::Ok();
}

}  // namespace lightlt
