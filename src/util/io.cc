#include "src/util/io.h"

#include <limits>

namespace lightlt {

namespace {
// Hard ceiling on container sizes to fail fast on corrupt files instead of
// attempting a multi-GB allocation.
constexpr uint64_t kMaxContainerBytes = 1ull << 34;  // 16 GiB
}  // namespace

BinaryWriter::BinaryWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for writing: " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok() || size == 0) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    status_ = Status::IoError("short write");
  }
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF32(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteF64(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteF32Vector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size() * sizeof(uint32_t));
}

void BinaryWriter::WriteBytes(const std::vector<uint8_t>& v) {
  WriteU64(v.size());
  WriteRaw(v.data(), v.size());
}

Status BinaryWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("close failed");
    }
    file_ = nullptr;
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for reading: " + path);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok() || size == 0) return;
  if (std::fread(data, 1, size, file_) != size) {
    status_ = Status::IoError("short read (truncated or corrupt file)");
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

double BinaryReader::ReadF64() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxContainerBytes) {
    status_ = Status::IoError("string length too large (corrupt file)");
    return {};
  }
  std::string s(n, '\0');
  ReadRaw(s.data(), n);
  return status_.ok() ? s : std::string{};
}

std::vector<float> BinaryReader::ReadF32Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n * sizeof(float) > kMaxContainerBytes) {
    status_ = Status::IoError("vector length too large (corrupt file)");
    return {};
  }
  std::vector<float> v(n);
  ReadRaw(v.data(), n * sizeof(float));
  return status_.ok() ? v : std::vector<float>{};
}

std::vector<uint32_t> BinaryReader::ReadU32Vector() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n * sizeof(uint32_t) > kMaxContainerBytes) {
    status_ = Status::IoError("vector length too large (corrupt file)");
    return {};
  }
  std::vector<uint32_t> v(n);
  ReadRaw(v.data(), n * sizeof(uint32_t));
  return status_.ok() ? v : std::vector<uint32_t>{};
}

std::vector<uint8_t> BinaryReader::ReadBytes() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return {};
  if (n > kMaxContainerBytes) {
    status_ = Status::IoError("byte array too large (corrupt file)");
    return {};
  }
  std::vector<uint8_t> v(n);
  ReadRaw(v.data(), n);
  return status_.ok() ? v : std::vector<uint8_t>{};
}

}  // namespace lightlt
