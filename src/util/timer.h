// Wall-clock timing shared by the efficiency experiments (Fig. 7), the
// bench harnesses and the serving instrumentation (DESIGN.md §10).

#ifndef LIGHTLT_UTIL_TIMER_H_
#define LIGHTLT_UTIL_TIMER_H_

#include <chrono>

#include "src/obs/metrics.h"

namespace lightlt {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A WallTimer that records its elapsed seconds into a Histogram when it
/// goes out of scope — the one timing path shared by the paper-figure
/// benches and the serving latency metrics. A null sink just times.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->Record(timer_.ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Drops the pending record (e.g. the measured branch was not taken).
  void Cancel() { sink_ = nullptr; }

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  WallTimer timer_;
  obs::Histogram* sink_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_TIMER_H_
