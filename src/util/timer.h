// Wall-clock timing used by the efficiency experiments (Fig. 7).

#ifndef LIGHTLT_UTIL_TIMER_H_
#define LIGHTLT_UTIL_TIMER_H_

#include <chrono>

namespace lightlt {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_TIMER_H_
