#include "src/util/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace lightlt {

double RetryPolicy::BackoffSeconds(int retry, Rng* rng) const {
  const double base =
      initial_backoff_seconds * std::pow(backoff_multiplier, retry);
  const double capped = std::min(base, max_backoff_seconds);
  if (jitter_fraction <= 0.0 || rng == nullptr) return capped;
  const double lo = 1.0 - jitter_fraction;
  const double hi = 1.0 + jitter_fraction;
  return std::max(0.0, capped * rng->NextUniform(lo, hi));
}

void SleepForSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace lightlt
