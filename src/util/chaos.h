// Deterministic compute-side fault injection, mirroring IoFaultPlan
// (src/util/io.h) for the serving path. A ChaosPlan is armed globally;
// instrumented code calls the hooks below, which inject latency spikes,
// transient scan failures and IVF-path failures so tests can drive every
// request-lifecycle state (served / degraded / shed / expired) on demand.
//
// Arm/disarm only from single-threaded test code; the hooks themselves are
// thread-safe (scan loops run on pool workers). Hook counters are global
// and reset on Arm, so a test can assert exactly how many injections fired.

#ifndef LIGHTLT_UTIL_CHAOS_H_
#define LIGHTLT_UTIL_CHAOS_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"
#include "src/util/threadpool.h"

namespace lightlt {

/// One per-replica fault rule of the cluster layer (DESIGN.md §13). A
/// search attempt on (shard, replica) consults the first matching rule;
/// -1 wildcards match any shard/replica.
struct ReplicaFault {
  int shard = -1;
  int replica = -1;
  /// Every matching attempt fails with kUnavailable — a dead process.
  bool kill = false;
  /// Injected latency before the replica search runs (0 = off); against a
  /// per-shard sub-deadline this is a deterministic shard latency spike.
  double latency_seconds = 0.0;
  /// The first N matching attempts fail (0 = off): a transient outage.
  int fail_first_n = 0;
  /// Flap storm: with period P > 0, attempts [P, 2P), [3P, 4P), ... fail
  /// while the interleaved windows succeed, so a replica keeps oscillating
  /// between serving and erroring (0 = off).
  int flap_period = 0;
};

struct ChaosPlan {
  /// The first N IVF searches fail with kUnavailable (0 = off). Drives the
  /// serving circuit breaker through its failure transitions.
  int ivf_fail_first_n = 0;
  /// Injected latency before every scan chunk (flat ADC chunks and IVF
  /// cells), simulating a slow machine so short deadlines expire
  /// deterministically mid-scan (0 = off).
  double scan_chunk_delay_seconds = 0.0;
  /// 0-based global scan-chunk index that fails with kUnavailable
  /// (-1 = off): a transient one-off compute fault.
  int64_t scan_fail_nth = -1;
  /// Per-replica fault rules for the cluster layer; first match wins.
  std::vector<ReplicaFault> replica_faults;
};

/// Counts of injections and hook visits since the last ArmChaos().
struct ChaosCounters {
  uint64_t ivf_searches = 0;
  uint64_t ivf_failures_injected = 0;
  uint64_t scan_chunks = 0;
  uint64_t scan_failures_injected = 0;
  uint64_t replica_searches = 0;
  uint64_t replica_failures_injected = 0;
};

void ArmChaos(const ChaosPlan& plan);
void DisarmChaos();
bool ChaosArmed();
ChaosCounters ChaosCountersSnapshot();

/// Hook at IVF search entry: counts the attempt and fails the first
/// `ivf_fail_first_n` of them. Blocks while HoldIvf(true) is in effect
/// (lets a test deterministically pin a request inside the IVF path).
Status ChaosOnIvfSearch();

/// Hook between scan chunks: injects the per-chunk delay and the one-shot
/// scan failure. No-op (and not counted) when chaos is disarmed.
Status ChaosOnScanChunk();

/// Hook at cluster replica-search entry: applies the first ReplicaFault
/// matching (shard, replica) — kill, latency spike, transient failures, or
/// flap storm. Per-rule attempt counters are global and reset on Arm.
/// No-op (and not counted) when chaos is disarmed.
Status ChaosOnReplicaSearch(size_t shard, size_t replica);

/// Gate for pinning requests inside the IVF path. HoldIvf(true) makes every
/// subsequent ChaosOnIvfSearch() block until HoldIvf(false).
void HoldIvf(bool hold);

/// Deterministic pool starvation: occupies `threads` workers of `pool` with
/// tasks that block until Release() (or destruction). Lets a test saturate
/// a pool so admission control observes real backlog.
class PoolStarver {
 public:
  PoolStarver(ThreadPool* pool, size_t threads);
  ~PoolStarver();

  PoolStarver(const PoolStarver&) = delete;
  PoolStarver& operator=(const PoolStarver&) = delete;

  /// Unblocks the occupied workers; idempotent.
  void Release();

 private:
  struct Gate;
  std::shared_ptr<Gate> gate_;
  TaskGroup group_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_CHAOS_H_
