// Deterministic, fast pseudo-random number generation.
//
// All stochastic components (dataset synthesis, parameter init, k-means
// seeding, batch shuffling) take an explicit Rng so experiments are
// reproducible from a single seed.

#ifndef LIGHTLT_UTIL_RNG_H_
#define LIGHTLT_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "src/util/check.h"

namespace lightlt {

/// SplitMix64: used to expand one seed into the Xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Complete serializable Rng state: the four Xoshiro words plus the
/// Box-Muller spare. Capturing/restoring it lets a resumed training run
/// continue the exact random stream of the interrupted one.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached = false;
  double cached = 0.0;
};

/// Xoshiro256++ PRNG. Not cryptographic; fast and high quality for
/// simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n) {
    LIGHTLT_CHECK_GT(n, 0u);
    // Modulo bias is negligible for n << 2^64.
    return NextUint64() % n;
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextIndex(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-model init seeds).
  Rng Fork() { return Rng(NextUint64()); }

  /// Snapshot / restore of the full generator state (checkpoint/resume).
  RngState GetState() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.has_cached = has_cached_;
    st.cached = cached_;
    return st;
  }
  void SetState(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    has_cached_ = st.has_cached;
    cached_ = st.cached;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_RNG_H_
