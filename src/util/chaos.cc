#include "src/util/chaos.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace lightlt {
namespace {

ChaosPlan g_plan;
std::atomic<bool> g_armed{false};

std::atomic<uint64_t> g_ivf_searches{0};
std::atomic<uint64_t> g_ivf_failures{0};
std::atomic<uint64_t> g_scan_chunks{0};
std::atomic<uint64_t> g_scan_failures{0};

// The IVF hold gate. A plain mutex/condvar pair: holds are rare (tests
// only) and the armed check guards the fast path.
std::mutex g_hold_mu;
std::condition_variable g_hold_cv;
bool g_hold_ivf = false;

}  // namespace

void ArmChaos(const ChaosPlan& plan) {
  g_plan = plan;
  g_ivf_searches.store(0);
  g_ivf_failures.store(0);
  g_scan_chunks.store(0);
  g_scan_failures.store(0);
  g_armed.store(true, std::memory_order_release);
}

void DisarmChaos() {
  g_armed.store(false, std::memory_order_release);
  g_plan = ChaosPlan{};
  // Never leave scans parked on the gate after a test disarms.
  HoldIvf(false);
}

bool ChaosArmed() { return g_armed.load(std::memory_order_acquire); }

ChaosCounters ChaosCountersSnapshot() {
  ChaosCounters c;
  c.ivf_searches = g_ivf_searches.load();
  c.ivf_failures_injected = g_ivf_failures.load();
  c.scan_chunks = g_scan_chunks.load();
  c.scan_failures_injected = g_scan_failures.load();
  return c;
}

Status ChaosOnIvfSearch() {
  if (!ChaosArmed()) return Status::Ok();
  {
    std::unique_lock<std::mutex> lock(g_hold_mu);
    g_hold_cv.wait(lock, [] { return !g_hold_ivf; });
  }
  const uint64_t n = g_ivf_searches.fetch_add(1) + 1;
  if (g_plan.ivf_fail_first_n > 0 &&
      n <= static_cast<uint64_t>(g_plan.ivf_fail_first_n)) {
    g_ivf_failures.fetch_add(1);
    return Status::Unavailable("chaos: injected IVF failure");
  }
  return Status::Ok();
}

Status ChaosOnScanChunk() {
  if (!ChaosArmed()) return Status::Ok();
  const uint64_t chunk = g_scan_chunks.fetch_add(1);
  if (g_plan.scan_chunk_delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(g_plan.scan_chunk_delay_seconds));
  }
  if (g_plan.scan_fail_nth >= 0 &&
      chunk == static_cast<uint64_t>(g_plan.scan_fail_nth)) {
    g_scan_failures.fetch_add(1);
    return Status::Unavailable("chaos: injected scan failure");
  }
  return Status::Ok();
}

void HoldIvf(bool hold) {
  {
    std::lock_guard<std::mutex> lock(g_hold_mu);
    g_hold_ivf = hold;
  }
  if (!hold) g_hold_cv.notify_all();
}

struct PoolStarver::Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
};

PoolStarver::PoolStarver(ThreadPool* pool, size_t threads)
    : gate_(std::make_shared<Gate>()), group_(pool) {
  // A null (or zero-thread) pool would run the blocking tasks inline on
  // this thread and never return; starving nothing is the only sane answer.
  if (pool == nullptr || pool->num_threads() == 0) return;
  for (size_t i = 0; i < threads; ++i) {
    group_.Submit([gate = gate_] {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->cv.wait(lock, [&] { return gate->released; });
    });
  }
}

PoolStarver::~PoolStarver() {
  Release();
  // TaskGroup's destructor drains; the blocked tasks exit on release.
}

void PoolStarver::Release() {
  {
    std::lock_guard<std::mutex> lock(gate_->mu);
    gate_->released = true;
  }
  gate_->cv.notify_all();
}

}  // namespace lightlt
