#include "src/util/chaos.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace lightlt {
namespace {

ChaosPlan g_plan;
std::atomic<bool> g_armed{false};

std::atomic<uint64_t> g_ivf_searches{0};
std::atomic<uint64_t> g_ivf_failures{0};
std::atomic<uint64_t> g_scan_chunks{0};
std::atomic<uint64_t> g_scan_failures{0};
std::atomic<uint64_t> g_replica_searches{0};
std::atomic<uint64_t> g_replica_failures{0};

/// Per-ReplicaFault-rule attempt counters (index-matched with
/// g_plan.replica_faults), allocated at Arm so fail_first_n / flap_period
/// windows count matching attempts per rule, not globally.
std::unique_ptr<std::atomic<uint64_t>[]> g_replica_rule_hits;

// The IVF hold gate. A plain mutex/condvar pair: holds are rare (tests
// only) and the armed check guards the fast path.
std::mutex g_hold_mu;
std::condition_variable g_hold_cv;
bool g_hold_ivf = false;

}  // namespace

void ArmChaos(const ChaosPlan& plan) {
  g_plan = plan;
  g_ivf_searches.store(0);
  g_ivf_failures.store(0);
  g_scan_chunks.store(0);
  g_scan_failures.store(0);
  g_replica_searches.store(0);
  g_replica_failures.store(0);
  g_replica_rule_hits =
      plan.replica_faults.empty()
          ? nullptr
          : std::make_unique<std::atomic<uint64_t>[]>(
                plan.replica_faults.size());
  g_armed.store(true, std::memory_order_release);
}

void DisarmChaos() {
  g_armed.store(false, std::memory_order_release);
  g_plan = ChaosPlan{};
  // Never leave scans parked on the gate after a test disarms.
  HoldIvf(false);
}

bool ChaosArmed() { return g_armed.load(std::memory_order_acquire); }

ChaosCounters ChaosCountersSnapshot() {
  ChaosCounters c;
  c.ivf_searches = g_ivf_searches.load();
  c.ivf_failures_injected = g_ivf_failures.load();
  c.scan_chunks = g_scan_chunks.load();
  c.scan_failures_injected = g_scan_failures.load();
  c.replica_searches = g_replica_searches.load();
  c.replica_failures_injected = g_replica_failures.load();
  return c;
}

Status ChaosOnIvfSearch() {
  if (!ChaosArmed()) return Status::Ok();
  {
    std::unique_lock<std::mutex> lock(g_hold_mu);
    g_hold_cv.wait(lock, [] { return !g_hold_ivf; });
  }
  const uint64_t n = g_ivf_searches.fetch_add(1) + 1;
  if (g_plan.ivf_fail_first_n > 0 &&
      n <= static_cast<uint64_t>(g_plan.ivf_fail_first_n)) {
    g_ivf_failures.fetch_add(1);
    return Status::Unavailable("chaos: injected IVF failure");
  }
  return Status::Ok();
}

Status ChaosOnScanChunk() {
  if (!ChaosArmed()) return Status::Ok();
  const uint64_t chunk = g_scan_chunks.fetch_add(1);
  if (g_plan.scan_chunk_delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(g_plan.scan_chunk_delay_seconds));
  }
  if (g_plan.scan_fail_nth >= 0 &&
      chunk == static_cast<uint64_t>(g_plan.scan_fail_nth)) {
    g_scan_failures.fetch_add(1);
    return Status::Unavailable("chaos: injected scan failure");
  }
  return Status::Ok();
}

Status ChaosOnReplicaSearch(size_t shard, size_t replica) {
  if (!ChaosArmed()) return Status::Ok();
  g_replica_searches.fetch_add(1);
  for (size_t i = 0; i < g_plan.replica_faults.size(); ++i) {
    const ReplicaFault& rule = g_plan.replica_faults[i];
    if (rule.shard >= 0 && static_cast<size_t>(rule.shard) != shard) continue;
    if (rule.replica >= 0 && static_cast<size_t>(rule.replica) != replica) {
      continue;
    }
    // First match wins; `n` is this rule's 0-based matching-attempt index.
    const uint64_t n = g_replica_rule_hits[i].fetch_add(1);
    if (rule.latency_seconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(rule.latency_seconds));
    }
    bool fail = rule.kill;
    if (!fail && rule.fail_first_n > 0 &&
        n < static_cast<uint64_t>(rule.fail_first_n)) {
      fail = true;
    }
    if (!fail && rule.flap_period > 0 &&
        (n / static_cast<uint64_t>(rule.flap_period)) % 2 == 1) {
      fail = true;
    }
    if (fail) {
      g_replica_failures.fetch_add(1);
      return Status::Unavailable("chaos: injected replica fault");
    }
    return Status::Ok();
  }
  return Status::Ok();
}

void HoldIvf(bool hold) {
  {
    std::lock_guard<std::mutex> lock(g_hold_mu);
    g_hold_ivf = hold;
  }
  if (!hold) g_hold_cv.notify_all();
}

struct PoolStarver::Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
};

PoolStarver::PoolStarver(ThreadPool* pool, size_t threads)
    : gate_(std::make_shared<Gate>()), group_(pool) {
  // A null (or zero-thread) pool would run the blocking tasks inline on
  // this thread and never return; starving nothing is the only sane answer.
  if (pool == nullptr || pool->num_threads() == 0) return;
  for (size_t i = 0; i < threads; ++i) {
    group_.Submit([gate = gate_] {
      std::unique_lock<std::mutex> lock(gate->mu);
      gate->cv.wait(lock, [&] { return gate->released; });
    });
  }
}

PoolStarver::~PoolStarver() {
  Release();
  // TaskGroup's destructor drains; the blocked tasks exit on release.
}

void PoolStarver::Release() {
  {
    std::lock_guard<std::mutex> lock(gate_->mu);
    gate_->released = true;
  }
  gate_->cv.notify_all();
}

}  // namespace lightlt
