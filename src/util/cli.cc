#include "src/util/cli.h"

#include <cstdlib>

namespace lightlt {

CommandLine::CommandLine(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean flag
    }
  }
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t CommandLine::GetInt(const std::string& name,
                            int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name,
                              double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace lightlt
