// Request-lifecycle primitives: deadlines and cooperative cancellation.
//
// A Deadline is an absolute point on the steady clock; a CancellationToken
// is a cheap view of a flag its CancellationSource can raise at any time.
// Long-running scan loops bundle both into a ScanControl and poll it at
// chunk granularity (see DESIGN.md §9): the hot loop stays branch-cheap,
// and a request can overshoot its budget by at most one chunk of work.

#ifndef LIGHTLT_UTIL_DEADLINE_H_
#define LIGHTLT_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "src/util/status.h"

namespace lightlt {

/// An absolute steady-clock expiry time. Default-constructed deadlines are
/// infinite (never expire), so "no deadline" needs no special casing.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. Non-positive values are already expired.
  static Deadline After(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = at;
    return d;
  }

  bool IsInfinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative once expired, +inf for infinite.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

  /// The absolute expiry instant (only meaningful when !IsInfinite()).
  Clock::time_point time_point() const { return at_; }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

/// Read side of a cancellation flag. Copies share the flag; a
/// default-constructed token can never be cancelled.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool Cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }
  bool CanBeCancelled() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: hand out tokens, then RequestCancellation() to raise the
/// flag for all of them. Raising is sticky and idempotent.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancellation() {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool CancellationRequested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-request scan accounting filled by the index scan loops when a
/// request asks for it (ScanControl::stats). Raw, layer-agnostic numbers
/// only — the serving layer composes them with its own flags into an
/// "explain" record (src/obs/quality.h). Written by exactly one scan at a
/// time (single-request plumbing), so plain fields suffice.
struct ScanStats {
  uint64_t chunks = 0;        ///< scan chunks / probed cells executed
  uint64_t items = 0;         ///< vectors scored
  uint64_t probed_cells = 0;  ///< IVF cells probed (0 on flat scans)
  // Per-phase compute accounting (the request's resource vector,
  // DESIGN.md §16): what the quantized paths actually did, not just how
  // many vectors they touched.
  uint64_t codes_decoded = 0;  ///< quantized codes expanded for exact scores
  uint64_t lut_builds = 0;     ///< per-query ADC lookup-table constructions
  uint64_t shortlist = 0;      ///< fast-scan candidates sent to re-rank
};

/// Cooperative controls a scan loop polls between chunks. Trivial controls
/// (no deadline, no token) are detected once so the fast path pays nothing.
struct ScanControl {
  Deadline deadline;
  CancellationToken cancel;
  /// Items scored between consecutive Check() calls.
  size_t check_every_items = 1024;
  /// Optional per-request scan accounting (null = off). The pointee must
  /// outlive the scan and belong to this request alone: batch paths that
  /// share one ScanControl across rows must leave it null.
  ScanStats* stats = nullptr;

  bool Trivial() const {
    return deadline.IsInfinite() && !cancel.CanBeCancelled();
  }

  /// kCancelled wins over kDeadlineExceeded: an explicit stop request is
  /// the stronger signal and doesn't depend on clock timing.
  Status Check() const {
    if (cancel.Cancelled()) {
      return Status::Cancelled("request cancelled");
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::Ok();
  }
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_DEADLINE_H_
