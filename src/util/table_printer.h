// Aligned ASCII table output for benchmark harnesses, mirroring the
// row/column layout of the paper's tables.

#ifndef LIGHTLT_UTIL_TABLE_PRINTER_H_
#define LIGHTLT_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace lightlt {

/// Collects rows of cells and renders them with per-column alignment.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to 4 decimal places (paper precision).
  static std::string FormatMetric(double v, int precision = 4);

  /// Renders the table (headers, separator, rows).
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_TABLE_PRINTER_H_
