// Status / Result error-handling primitives.
//
// Fallible public operations in lightlt return Status (or Result<T>) rather
// than throwing, following the RocksDB convention. Internal invariants are
// enforced with LIGHTLT_CHECK (see check.h).

#ifndef LIGHTLT_UTIL_STATUS_H_
#define LIGHTLT_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lightlt {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  // Request-lifecycle codes (see DESIGN.md §9): a request that ran out of
  // its deadline budget, a request rejected by overload control, and a
  // request whose caller asked for it to stop.
  kDeadlineExceeded,
  kUnavailable,
  kCancelled,
};

/// Result of a fallible operation: an error code plus a human-readable
/// message. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for logs and test failure output.
  std::string ToString() const;

  /// The code's name alone ("DeadlineExceeded"), message omitted.
  static const char* CodeName(StatusCode code);

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// failed Result is a checked fatal error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// True for failures that a bounded retry can plausibly cure: transient
/// I/O errors (a torn read racing an atomic rename) and kUnavailable
/// (overload shed / injected transient fault). Deadline expiry, cancellation
/// and caller bugs (kInvalidArgument etc.) are never retryable — the retry
/// would consume more of a budget that is already spent.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

/// Propagates a non-OK Status to the caller.
#define LIGHTLT_RETURN_IF_ERROR(expr)          \
  do {                                         \
    ::lightlt::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_STATUS_H_
