// Bounded retry with exponential backoff and deterministic-seedable jitter,
// for transient failures around artifact I/O (a load racing an atomic
// rename, an injected fault, a shed request worth one more attempt).
//
// Only statuses IsRetryable() approves are retried (kIoError,
// kUnavailable); everything else returns immediately. Backoff sleeping is
// injectable so tests run without wall-clock delays.

#ifndef LIGHTLT_UTIL_RETRY_H_
#define LIGHTLT_UTIL_RETRY_H_

#include <functional>
#include <utility>

#include "src/util/deadline.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lightlt {

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Each backoff is scaled by a factor uniform in [1 - jitter, 1 + jitter]
  /// drawn from an Rng seeded with `jitter_seed`, so a retry schedule is
  /// reproducible from the seed.
  double jitter_fraction = 0.2;
  uint64_t jitter_seed = 0x5eed;

  /// Backoff before retry number `retry` (0-based: the sleep between the
  /// first failure and the second attempt is retry 0).
  double BackoffSeconds(int retry, Rng* rng) const;
};

/// Sleeps the calling thread (the default sleep_fn of CallWithRetry).
void SleepForSeconds(double seconds);

namespace internal {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Invokes `fn` (returning Status or Result<T>) up to policy.max_attempts
/// times, sleeping the jittered backoff between attempts, and returns the
/// last outcome. Non-retryable failures short-circuit. `sleep_fn` exists
/// for tests (count instead of sleep, disarm an injected fault, ...).
///
/// Deadline-aware: no attempt starts and no backoff sleep begins once it
/// would overrun `deadline`. When the budget cannot pay for the next step,
/// the call returns kDeadlineExceeded immediately instead of burning the
/// remaining budget asleep on a retry that could never run.
template <typename Fn>
auto CallWithRetry(const RetryPolicy& policy, Fn&& fn, const Deadline& deadline,
                   const std::function<void(double)>& sleep_fn = {}) {
  using Outcome = decltype(fn());
  Rng jitter(policy.jitter_seed);
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 0;; ++attempt) {
    if (deadline.Expired()) {
      return Outcome(Status::DeadlineExceeded(
          "CallWithRetry: request deadline exceeded"));
    }
    auto outcome = fn();
    if (internal::StatusOf(outcome).ok() ||
        !IsRetryable(internal::StatusOf(outcome)) ||
        attempt + 1 >= attempts) {
      return outcome;
    }
    const double backoff = policy.BackoffSeconds(attempt, &jitter);
    // RemainingSeconds() is +inf for an infinite deadline, so this branch
    // costs nothing on the no-deadline path.
    if (backoff >= deadline.RemainingSeconds()) {
      return Outcome(Status::DeadlineExceeded(
          "CallWithRetry: backoff would overrun the request deadline"));
    }
    if (sleep_fn) {
      sleep_fn(backoff);
    } else {
      SleepForSeconds(backoff);
    }
  }
}

/// Deadline-free flavor (the original signature): retries are bounded by
/// policy.max_attempts only.
template <typename Fn>
auto CallWithRetry(const RetryPolicy& policy, Fn&& fn,
                   const std::function<void(double)>& sleep_fn = {}) {
  return CallWithRetry(policy, std::forward<Fn>(fn), Deadline::Infinite(),
                       sleep_fn);
}

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_RETRY_H_
