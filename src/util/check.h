// Fatal invariant checks for internal consistency. These abort the process
// with a diagnostic; use Status (status.h) for errors the caller can handle.

#ifndef LIGHTLT_UTIL_CHECK_H_
#define LIGHTLT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace lightlt::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "LIGHTLT_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace lightlt::internal

/// Aborts with a diagnostic if `cond` is false. Always evaluated, including
/// in release builds: invariant violations in a quantizer silently corrupt
/// retrieval results, so we prefer a crash.
#define LIGHTLT_CHECK(cond)                                           \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::lightlt::internal::CheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                                 \
  } while (0)

#define LIGHTLT_CHECK_EQ(a, b) LIGHTLT_CHECK((a) == (b))
#define LIGHTLT_CHECK_NE(a, b) LIGHTLT_CHECK((a) != (b))
#define LIGHTLT_CHECK_LT(a, b) LIGHTLT_CHECK((a) < (b))
#define LIGHTLT_CHECK_LE(a, b) LIGHTLT_CHECK((a) <= (b))
#define LIGHTLT_CHECK_GT(a, b) LIGHTLT_CHECK((a) > (b))
#define LIGHTLT_CHECK_GE(a, b) LIGHTLT_CHECK((a) >= (b))

#endif  // LIGHTLT_UTIL_CHECK_H_
