// Fixed-size thread pool with per-batch TaskGroup completion tracking, used
// by k-means, retrieval evaluation, batched serving and index search.
//
// Concurrency contract (see DESIGN.md §7 "Threading model"):
//  * Completion is tracked per TaskGroup, not per pool: two callers sharing
//    one pool wait only on their own tasks, never on each other's.
//  * A task that throws does not terminate the process; the first exception
//    of a group is captured and rethrown from that group's Wait().
//  * Wait() helps execute its own group's queued tasks inline, so a nested
//    ParallelFor issued from inside a worker thread cannot deadlock the
//    pool, even with a single worker.
//  * ParallelFor partitions [0, n) deterministically: chunk boundaries
//    depend only on (n, min_chunk), never on the pool's thread count.

#ifndef LIGHTLT_UTIL_THREADPOOL_H_
#define LIGHTLT_UTIL_THREADPOOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lightlt {

class TaskGroup;

/// A minimal work-queue thread pool. All work is submitted through a
/// TaskGroup, which owns the completion state for its batch of tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Approximate number of tickets waiting for a worker — a lock-free load
  /// of one counter, cheap enough to consult on every admission decision.
  /// An upper bound on real backlog: tickets whose task a helping Wait()
  /// already ran inline stay counted until a worker pops them.
  size_t ApproxQueueDepth() const {
    return approx_queue_depth_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;
  struct GroupState;

  /// Posts a "this group has a queued task" ticket to the worker queue.
  void Enqueue(std::shared_ptr<GroupState> group);

  /// Pops and runs one queued task of `group`. Returns false (without
  /// running anything) if the group's queue is empty. Exceptions thrown by
  /// the task are captured into the group, never propagated.
  static bool RunOneTask(const std::shared_ptr<GroupState>& group);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  /// Tickets, one per submitted task. A ticket may be stale (its task was
  /// already executed inline by a helping Wait()); workers skip those.
  std::queue<std::shared_ptr<GroupState>> tickets_;
  std::atomic<size_t> approx_queue_depth_{0};
  std::mutex mu_;
  std::condition_variable task_ready_;
  bool shutting_down_ = false;
};

/// Tracks completion of one batch of tasks on a shared ThreadPool. Each
/// group has its own counter, condition variable and captured exception, so
/// concurrent groups on the same pool are fully independent.
///
/// With a null pool (or a pool the caller wants bypassed), Submit() runs the
/// task inline on the calling thread — same semantics, serial execution.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  /// Drains remaining tasks (discarding any captured exception) so queued
  /// closures never outlive the state they capture.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task belonging to this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to this group has finished. The
  /// calling thread helps execute the group's queued tasks inline (this is
  /// what makes nested use from pool workers deadlock-free). If any task
  /// threw, the first captured exception is rethrown here and the group is
  /// reset for reuse.
  void Wait();

  /// Deadline-bounded Wait(): helps run the group's queued tasks until
  /// `deadline`, then waits for in-flight tasks up to the same deadline.
  /// Returns true when the group completed (rethrowing a captured exception
  /// like Wait()); false on timeout, with tasks possibly still queued or
  /// running — follow up with CancelPending() and/or Wait().
  bool WaitUntil(std::chrono::steady_clock::time_point deadline);
  bool WaitFor(double timeout_seconds);

  /// Cancellation hook for queued-but-unstarted work: discards every task
  /// still in this group's queue and returns how many were dropped. Tasks
  /// already running are unaffected (cancel those cooperatively via a
  /// CancellationToken they observe).
  size_t CancelPending();

 private:
  ThreadPool* pool_;
  std::shared_ptr<ThreadPool::GroupState> state_;
};

/// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
/// the pool. Falls back to a serial loop when n is small or pool is null.
/// Chunk boundaries depend only on (n, min_chunk) — never on the thread
/// count — so per-chunk work is partitioned identically for 1 or N threads.
/// Exceptions thrown by `body` propagate to the caller (first one wins).
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 size_t min_chunk = 64);

/// Range flavor: runs body(begin, end) over the same deterministic partition
/// of [0, n) that ParallelFor uses. Use this when the body keeps per-chunk
/// accumulators and bit-reproducibility across thread counts matters.
void ParallelForRanges(ThreadPool* pool, size_t n,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk = 64);

/// Process-wide default pool, created on first use.
ThreadPool& GlobalThreadPool();

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_THREADPOOL_H_
