// Fixed-size thread pool plus a ParallelFor helper used by k-means,
// retrieval evaluation and index search.

#ifndef LIGHTLT_UTIL_THREADPOOL_H_
#define LIGHTLT_UTIL_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lightlt {

/// A minimal work-queue thread pool. Tasks are void() callables; Wait()
/// blocks until the queue drains and all workers are idle.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs body(i) for i in [0, n), partitioned into contiguous chunks across
/// the pool. Falls back to a serial loop when n is small or pool is null.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body,
                 size_t min_chunk = 64);

/// Process-wide default pool, created on first use.
ThreadPool& GlobalThreadPool();

}  // namespace lightlt

#endif  // LIGHTLT_UTIL_THREADPOOL_H_
