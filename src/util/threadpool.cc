#include "src/util/threadpool.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <utility>

namespace lightlt {

/// Shared completion state of one TaskGroup. Held by shared_ptr from the
/// group and from every ticket in the pool queue, so a ticket left behind
/// by a helping Wait() can never dangle.
struct ThreadPool::GroupState {
  std::mutex mu;
  std::condition_variable done;
  std::deque<std::function<void()>> queue;
  /// Queued + currently-running tasks of this group.
  size_t pending = 0;
  /// First exception thrown by a task of this group.
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::shared_ptr<GroupState> group) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickets_.push(std::move(group));
  }
  approx_queue_depth_.fetch_add(1, std::memory_order_relaxed);
  task_ready_.notify_one();
}

bool ThreadPool::RunOneTask(const std::shared_ptr<GroupState>& group) {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    if (group->queue.empty()) return false;
    task = std::move(group->queue.front());
    group->queue.pop_front();
  }
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(group->mu);
    if (!group->error) group->error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(group->mu);
    if (--group->pending == 0) group->done.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<GroupState> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !tickets_.empty(); });
      if (tickets_.empty()) return;  // shutting down and drained
      group = std::move(tickets_.front());
      tickets_.pop();
    }
    approx_queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    // A stale ticket (task already run inline by a helping Wait) is a no-op.
    RunOneTask(group);
  }
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr && pool->num_threads() > 0 ? pool : nullptr),
      state_(std::make_shared<ThreadPool::GroupState>()) {}

TaskGroup::~TaskGroup() {
  while (ThreadPool::RunOneTask(state_)) {
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
}

void TaskGroup::Submit(std::function<void()> task) {
  if (pool_ == nullptr) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->error) state_->error = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(std::move(task));
    ++state_->pending;
  }
  pool_->Enqueue(state_);
}

void TaskGroup::Wait() {
  // Help drain this group's own queue first: with every worker busy (or
  // when called from inside a worker, as a nested ParallelFor does), the
  // group's tasks still make progress on this thread.
  while (ThreadPool::RunOneTask(state_)) {
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->done.wait(lock, [this] { return state_->pending == 0; });
  if (state_->error) {
    std::exception_ptr error = std::exchange(state_->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool TaskGroup::WaitUntil(std::chrono::steady_clock::time_point deadline) {
  // Same helping discipline as Wait(), but stop picking up new tasks once
  // the deadline passes (a task already started runs to completion — the
  // timeout is chunk-granular, like the scan loops').
  while (std::chrono::steady_clock::now() < deadline &&
         ThreadPool::RunOneTask(state_)) {
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  const bool completed = state_->done.wait_until(
      lock, deadline, [this] { return state_->pending == 0; });
  if (!completed) return false;
  if (state_->error) {
    std::exception_ptr error = std::exchange(state_->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
  return true;
}

bool TaskGroup::WaitFor(double timeout_seconds) {
  return WaitUntil(std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(timeout_seconds)));
}

size_t TaskGroup::CancelPending() {
  std::lock_guard<std::mutex> lock(state_->mu);
  const size_t dropped = state_->queue.size();
  state_->queue.clear();
  state_->pending -= dropped;
  if (state_->pending == 0) state_->done.notify_all();
  return dropped;
}

namespace {

/// Deterministic chunk size: a function of (n, min_chunk) only. The task
/// count is capped so huge ranges don't drown the queue in tiny closures,
/// but the cap is a constant — never derived from the pool size.
size_t DeterministicChunk(size_t n, size_t min_chunk) {
  constexpr size_t kMaxChunks = 1024;
  const size_t floor = std::max<size_t>(1, min_chunk);
  return std::max(floor, (n + kMaxChunks - 1) / kMaxChunks);
}

}  // namespace

void ParallelForRanges(ThreadPool* pool, size_t n,
                       const std::function<void(size_t, size_t)>& body,
                       size_t min_chunk) {
  if (n == 0) return;
  const size_t chunk = DeterministicChunk(n, min_chunk);
  if (pool == nullptr || pool->num_threads() <= 1 || n <= chunk) {
    // Same partition, executed in order on the calling thread.
    for (size_t start = 0; start < n; start += chunk) {
      body(start, std::min(start + chunk, n));
    }
    return;
  }
  TaskGroup group(pool);
  for (size_t start = 0; start < n; start += chunk) {
    const size_t end = std::min(start + chunk, n);
    group.Submit([&body, start, end] { body(start, end); });
  }
  group.Wait();
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body, size_t min_chunk) {
  ParallelForRanges(
      pool, n,
      [&body](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) body(i);
      },
      min_chunk);
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace lightlt
