#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer (-DLIGHTLT_SANITIZE=address)
# and runs the persistence robustness suites through ctest: the corruption
# fuzz over every artifact format (truncations, bit flips, failed writes at
# every offset) and the checkpoint/resume tests. Exits nonzero if ASan
# reports an error or any loader crashes/leaks instead of returning Status.
#
# Usage: tools/run_fault_injection.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLIGHTLT_SANITIZE=address
cmake --build "${build_dir}" --target lightlt_tests -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -R '^(FaultInjectionTest|CheckpointTest|CheckpointConfigTest|BinaryIoTest|SerializeTest|DataIoTest|ScanKernelsTest)\.'

echo "Fault-injection suite passed under AddressSanitizer."
