#!/usr/bin/env bash
# Builds the test suite under ThreadSanitizer (-DLIGHTLT_SANITIZE=thread)
# and runs the concurrency-sensitive tests through ctest. Exits nonzero if
# TSan reports a race (halt_on_error) or any test fails.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLIGHTLT_SANITIZE=thread
cmake --build "${build_dir}" --target lightlt_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_chaos_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_cluster_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_obs_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_quality_obs_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_net_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_fleet_obs_tests -j "$(nproc)"
cmake --build "${build_dir}" --target lightlt_profile_tests -j "$(nproc)"

# Concurrency-sensitive suites: the TaskGroup/ParallelFor semantics tests,
# the shared-pool serving stress, eval determinism, parallel gumbel Forward,
# the baseline threadpool unit tests, the serving chaos harness
# (request-lifecycle races: admission, breaker, deadline-cut batches), and
# the observability suite (sharded counters/histograms under ParallelFor —
# the scan hot path's relaxed-atomics-only claim is checked here), and the
# online-quality suite (shadow verification tasks racing batch serving),
# and the cluster suite (scatter-gather failover racing the health monitor
# and circuit-breaker half-open probe accounting), and the net suite (real
# server threads killed and restarted under a multi-threaded query storm,
# drain racing in-flight handlers, connection-pool churn), and the fleet
# observability suite (a background metrics poller racing server handler
# threads and concurrent View() readers, stitched traces crossing the
# client/server thread boundary), and the profiling suite (the sampler
# thread walking phase stacks that request threads mutate lock-free, plus
# per-request cost vectors racing the segmented counters under ParallelFor).
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -R '^(TaskGroupTest|ParallelForTest|ConcurrencyIntegrationTest|ThreadPoolTest|ChaosServingTest|ChaosHarnessTest|ClusterServingTest|ClusterBreakerTest|ReplicaHealthTest|NetServingTest|FleetObsTest|Obs[A-Za-z]*Test|QualityObsTest|ShadowServingTest|ScanKernelsTest)\.'

echo "TSan concurrency suite passed with zero reported races."
