// Fleet profile dump/diff CLI (DESIGN.md §16, README "Profiling a fleet").
//
// Dump mode (default): pulls the cumulative profile snapshot of every
// endpoint over the profile admin frame, merges the collapsed stacks
// exactly (ProfileSnapshot::MergeFrom), and prints flamegraph-compatible
// collapsed text — feed it straight into flamegraph.pl, or keep two dumps
// around for diffing.
//
//   ./tool_profile --endpoints=127.0.0.1:7501,127.0.0.1:7502
//   ./tool_profile --endpoints=127.0.0.1:7501 --summary
//   ./tool_profile --endpoints=127.0.0.1:7501 --jsonl --out=prof.jsonl
//
// Per-endpoint stacks can be kept apart with --label_shards, which
// prefixes each endpoint's stacks with `shardN;` before merging, so the
// flamegraph shows the fleet broken down by member.
//
// Diff mode: reads two collapsed-text dumps and prints the stacks whose
// share of samples grew the most — the same attribution DiffProfiles
// feeds to the SLO-burn hook, usable by hand between two deploys.
//
//   ./tool_profile --diff --baseline=before.collapsed --current=after.collapsed

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/obs/profile.h"
#include "src/util/cli.h"

using namespace lightlt;

namespace {

std::vector<net::Endpoint> ParseEndpoints(const std::string& spec) {
  std::vector<net::Endpoint> endpoints;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   item.c_str());
      std::exit(2);
    }
    net::Endpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = static_cast<uint16_t>(std::atoi(item.c_str() + colon + 1));
    endpoints.push_back(ep);
    start = comma + 1;
  }
  return endpoints;
}

/// Parses collapsed-stack text (`stack count` per line) back into a
/// snapshot; wall/cpu are not carried by the text format, so a diff of two
/// dumps compares sample shares only — exactly what DiffProfiles uses.
bool ParseCollapsed(const std::string& path, obs::ProfileSnapshot* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      std::fprintf(stderr, "bad collapsed line in '%s': %s\n", path.c_str(),
                   line.c_str());
      return false;
    }
    obs::ProfileEntry entry;
    entry.stack = line.substr(0, space);
    entry.samples =
        static_cast<uint64_t>(std::strtoull(line.c_str() + space + 1,
                                            nullptr, 10));
    out->samples_total += entry.samples;
    out->entries.push_back(std::move(entry));
  }
  return true;
}

int RunDiff(const CommandLine& cli) {
  obs::ProfileSnapshot baseline, current;
  if (!ParseCollapsed(cli.GetString("baseline", ""), &baseline) ||
      !ParseCollapsed(cli.GetString("current", ""), &current)) {
    return 2;
  }
  const size_t top_n = static_cast<size_t>(cli.GetInt("top", 10));
  const std::vector<obs::PhaseDelta> deltas =
      obs::DiffProfiles(baseline, current, top_n);
  if (deltas.empty()) {
    std::printf("no stacks grew their sample share\n");
    return 0;
  }
  std::printf("%-50s %9s %9s %9s\n", "stack", "baseline", "current",
              "delta");
  for (const obs::PhaseDelta& d : deltas) {
    std::printf("%-50s %8.2f%% %8.2f%% %+8.2f%%\n", d.stack.c_str(),
                d.baseline_fraction * 100.0, d.current_fraction * 100.0,
                d.delta * 100.0);
  }
  return 0;
}

int RunDump(const CommandLine& cli) {
  const std::vector<net::Endpoint> endpoints =
      ParseEndpoints(cli.GetString("endpoints", "127.0.0.1:7501"));
  const double timeout = cli.GetDouble("timeout", 2.0);
  const bool label_shards = cli.GetBool("label_shards", false);

  obs::ProfileSnapshot merged;
  size_t pulled = 0;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    net::RemoteSearcherClient client(endpoints[i], {});
    Result<net::WireProfileResponse> resp =
        client.GetProfile(Deadline::After(timeout));
    if (!resp.ok()) {
      std::fprintf(stderr, "endpoint %s:%u skipped: %s\n",
                   endpoints[i].host.c_str(), endpoints[i].port,
                   resp.status().ToString().c_str());
      continue;
    }
    obs::ProfileSnapshot snap = std::move(resp.value().profile);
    if (label_shards) {
      for (obs::ProfileEntry& e : snap.entries) {
        e.stack = "shard" + std::to_string(i) + ";" + e.stack;
      }
    }
    std::fprintf(stderr, "endpoint %s:%u: %llu samples, %zu stacks\n",
                 endpoints[i].host.c_str(), endpoints[i].port,
                 static_cast<unsigned long long>(snap.samples_total),
                 snap.entries.size());
    merged.MergeFrom(snap);
    ++pulled;
  }
  if (pulled == 0) {
    std::fprintf(stderr, "no endpoint answered\n");
    return 1;
  }

  std::string text;
  if (cli.GetBool("jsonl", false)) {
    text = merged.RenderJsonl();
  } else if (cli.GetBool("summary", false)) {
    std::ostringstream os;
    os << "phase summary (" << merged.samples_total << " samples, "
       << pulled << "/" << endpoints.size() << " endpoints)\n";
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s %10s %10s %12s %12s\n",
                  "phase", "self", "total", "self_cpu_ms", "total_cpu_ms");
    os << line;
    for (const obs::PhaseSummary& p : obs::SummarizePhases(merged)) {
      std::snprintf(line, sizeof(line), "%-24s %10llu %10llu %12.1f %12.1f\n",
                    p.phase.c_str(),
                    static_cast<unsigned long long>(p.self_samples),
                    static_cast<unsigned long long>(p.total_samples),
                    static_cast<double>(p.self_cpu_ns) * 1e-6,
                    static_cast<double>(p.total_cpu_ns) * 1e-6);
      os << line;
    }
    text = os.str();
  } else {
    text = merged.CollapsedText();
  }

  const std::string out = cli.GetString("out", "");
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream file(out, std::ios::trunc);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
      return 1;
    }
    file << text;
    std::fprintf(stderr, "wrote %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  return cli.GetBool("diff", false) ? RunDiff(cli) : RunDump(cli);
}
