#!/usr/bin/env bash
# Builds and runs the serving chaos harness (ctest label `chaos`), the
# cluster harness (label `cluster`) and the wire-transport harness (label
# `net`) under both sanitizers: AddressSanitizer first, then
# ThreadSanitizer. The suites drive every request-lifecycle outcome —
# served / partial / shed / expired / cancelled — with deterministic fault
# injection (ChaosPlan replica kills, flap storms, latency spikes;
# NetFaultPlan refused connects, mid-frame truncation, byte flips, stalls,
# resets), kill and restart real shard servers under load, saturate a
# small pool, and walk the IVF circuit breaker and the replica health
# monitor through their state machines. Exits nonzero if either sanitizer
# reports an error or any lifecycle invariant fails.
#
# Usage: tools/run_chaos.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan, build-tsan — shared with the other presets)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
asan_dir="${1:-${repo_root}/build-asan}"
tsan_dir="${2:-${repo_root}/build-tsan}"

run_labelled() {
  local build_dir="$1" sanitize="$2"
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLIGHTLT_SANITIZE="${sanitize}"
  cmake --build "${build_dir}" --target lightlt_chaos_tests \
    --target lightlt_cluster_tests --target lightlt_net_tests \
    --target lightlt_fleet_obs_tests --target lightlt_profile_tests \
    -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -L 'chaos|cluster|net'
}

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
# On a lifecycle-invariant failure the suite dumps the full metrics
# registry (MetricsRegistry::RenderText) alongside the assertion output.
export LIGHTLT_CHAOS_DUMP_METRICS=1

run_labelled "${asan_dir}" address
run_labelled "${tsan_dir}" thread

echo "Chaos harness passed under ASan and TSan."
