// Bench regression gate CLI: compares a candidate bench_smoke run against
// a committed baseline and exits non-zero on regression, so CI can fail a
// change that slows the scan kernels, the serving path, or drops shadow
// recall.
//
//   ./tool_bench_gate --baseline_serving=old/BENCH_serving.json \
//       --candidate_serving=new/BENCH_serving.json \
//       [--baseline_micro=old/BENCH_micro_index.json] \
//       [--candidate_micro=new/BENCH_micro_index.json] \
//       [--max_p95_regress_pct=60] [--min_qps_ratio=0.65] \
//       [--max_recall_drop=0.05] [--max_micro_regress_pct=30]
//
// Exit codes: 0 gate passed, 1 regression found, 2 usage/IO error.

#include <cstdio>
#include <string>

#include "src/eval/bench_gate.h"
#include "src/util/cli.h"

using namespace lightlt;

namespace {

int LoadOrDie(const std::string& path, std::string* out) {
  auto content = eval::ReadFileToString(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 2;
  }
  *out = std::move(content).value();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const std::string baseline_serving = cli.GetString("baseline_serving", "");
  const std::string candidate_serving = cli.GetString("candidate_serving", "");
  const std::string baseline_micro = cli.GetString("baseline_micro", "");
  const std::string candidate_micro = cli.GetString("candidate_micro", "");

  eval::GateThresholds thresholds;
  thresholds.max_p95_regress_pct =
      cli.GetDouble("max_p95_regress_pct", thresholds.max_p95_regress_pct);
  thresholds.min_qps_ratio =
      cli.GetDouble("min_qps_ratio", thresholds.min_qps_ratio);
  thresholds.max_recall_drop =
      cli.GetDouble("max_recall_drop", thresholds.max_recall_drop);
  thresholds.max_micro_regress_pct =
      cli.GetDouble("max_micro_regress_pct", thresholds.max_micro_regress_pct);

  if (baseline_serving.empty() != candidate_serving.empty() ||
      baseline_micro.empty() != candidate_micro.empty() ||
      (baseline_serving.empty() && baseline_micro.empty())) {
    std::fprintf(stderr,
                 "usage: tool_bench_gate --baseline_serving=A "
                 "--candidate_serving=B [--baseline_micro=C "
                 "--candidate_micro=D] [threshold flags]\n");
    return 2;
  }

  bool failed = false;
  if (!baseline_serving.empty()) {
    std::string baseline, candidate;
    int rc = LoadOrDie(baseline_serving, &baseline);
    if (rc == 0) rc = LoadOrDie(candidate_serving, &candidate);
    if (rc != 0) return rc;
    const eval::GateReport report =
        eval::CompareServingBench(baseline, candidate, thresholds);
    std::printf("serving gate (%s vs %s):\n%s", candidate_serving.c_str(),
                baseline_serving.c_str(), report.Render().c_str());
    failed = failed || !report.ok();
  }
  if (!baseline_micro.empty()) {
    std::string baseline, candidate;
    int rc = LoadOrDie(baseline_micro, &baseline);
    if (rc == 0) rc = LoadOrDie(candidate_micro, &candidate);
    if (rc != 0) return rc;
    const eval::GateReport report =
        eval::CompareMicroBench(baseline, candidate, thresholds);
    std::printf("micro gate (%s vs %s):\n%s", candidate_micro.c_str(),
                baseline_micro.c_str(), report.Render().c_str());
    failed = failed || !report.ok();
  }
  return failed ? 1 : 0;
}
