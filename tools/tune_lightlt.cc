// Developer tool: grid-sweeps LightLT hyper-parameters (gamma, alpha,
// temperature, epochs, learning rate) on one preset and prints MAP, to pick
// the defaults in src/core/defaults.cc.
//
//   ./tool_tune_lightlt --preset=cifar --if=50 --gamma=0.99,0.999
//       --alpha=0.01,0.05 --temp=0.5,1.0 --epochs=20

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/deep_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {
std::vector<float> ParseList(const std::string& csv) {
  std::vector<float> out;
  std::stringstream ss(csv);
  for (std::string tok; std::getline(ss, tok, ',');) {
    out.push_back(std::strtof(tok.c_str(), nullptr));
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const std::string preset_name = cli.GetString("preset", "cifar");
  const double imbalance = cli.GetDouble("if", 50.0);
  const uint64_t seed = cli.GetInt("seed", 7);
  const uint64_t model_seed = cli.GetInt("model_seed", 0);

  data::PresetId preset = data::PresetId::kCifar100ish;
  if (preset_name == "imagenet") preset = data::PresetId::kImageNet100ish;
  if (preset_name == "nc") preset = data::PresetId::kNcish;
  if (preset_name == "qba") preset = data::PresetId::kQbaish;

  // Sentinel -1: keep the tuned default from src/core/defaults.cc.
  const auto gammas = ParseList(cli.GetString("gamma", "-1"));
  const auto alphas = ParseList(cli.GetString("alpha", "-1"));
  const auto temps = ParseList(cli.GetString("temp", "-1"));
  const auto lrs = ParseList(cli.GetString("lr", "-1"));
  const int epochs = static_cast<int>(cli.GetInt("epochs", 0));
  const int ensemble = static_cast<int>(cli.GetInt("ensemble", 1));

  const auto bench = data::GeneratePreset(preset, imbalance, false, seed);

  for (float gamma : gammas) {
    for (float alpha : alphas) {
      for (float temp : temps) {
        for (float lr : lrs) {
          auto spec = baselines::MakeLightLtSpec(bench, preset, false,
                                                 ensemble);
          if (cli.Has("skip")) {
            spec.arch.dsq.codebook_skip = cli.GetBool("skip", true);
          }
          if (cli.Has("ffn_hidden")) {
            spec.arch.dsq.ffn_hidden =
                static_cast<size_t>(cli.GetInt("ffn_hidden", 0));
          }
          if (gamma >= 0.0f) spec.train.loss.gamma = gamma;
          if (alpha >= 0.0f) spec.train.loss.alpha = alpha;
          if (lr > 0.0f) spec.train.learning_rate = lr;
          if (temp > 0.0f) spec.arch.dsq.temperature = temp;
          if (epochs > 0) spec.train.epochs = epochs;
          if (model_seed != 0) spec.seed = model_seed;
          baselines::DeepQuantMethod method(std::move(spec));
          auto report = baselines::EvaluateMethod(&method, bench,
                                                  &GlobalThreadPool());
          std::printf(
              "gamma=%.4f alpha=%.3f temp=%.2f lr=%.4f epochs=%d ens=%d"
              " skip=%d -> MAP %.4f\n",
              spec.train.loss.gamma, spec.train.loss.alpha,
              spec.arch.dsq.temperature, spec.train.learning_rate,
              spec.train.epochs, ensemble,
              spec.arch.dsq.codebook_skip ? 1 : 0,
              report.ok() ? report.value().map : -1.0);
          std::fflush(stdout);
        }
      }
    }
  }
  return 0;
}
