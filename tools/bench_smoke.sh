#!/usr/bin/env bash
# Smoke benchmark: runs the index micro-benchmarks (bench/micro_index) and
# a short end-to-end serving loop (tool_bench_serving), leaving two JSON
# artifacts for run-to-run diffing:
#   BENCH_micro_index.json — google-benchmark JSON for the scan kernels
#   BENCH_serving.json     — QPS, p50/p95/p99 latency, scanned fraction,
#                            shadow recall, lifecycle counts (all read back
#                            from the metrics registry, so this also
#                            smoke-tests the observability wiring end to
#                            end)
#   BENCH_metrics.jsonl    — full registry dump, one JSON object per metric
#
# With --gate <baseline-dir>, the run is then compared against the
# baseline's BENCH_serving.json / BENCH_micro_index.json via
# tool_bench_gate, and the script exits non-zero on regression — the CI
# hook-in point (a committed baseline lives at bench/baseline/).
#
# Usage: tools/bench_smoke.sh [build-dir] [out-dir] [--gate baseline-dir]
#        (defaults: build, current directory, no gate)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

gate_dir=""
positional=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --gate)
      [[ $# -ge 2 ]] || { echo "--gate requires a baseline dir" >&2; exit 2; }
      gate_dir="$2"
      shift 2
      ;;
    --gate=*)
      gate_dir="${1#--gate=}"
      shift
      ;;
    *)
      positional+=("$1")
      shift
      ;;
  esac
done
build_dir="${positional[0]:-${repo_root}/build}"
out_dir="${positional[1]:-$(pwd)}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target micro_index tool_bench_serving \
  tool_bench_gate -j "$(nproc)"

mkdir -p "${out_dir}"

# 0.25s per row: the 30% micro-gate threshold needs tighter run-to-run
# variance than a 0.05s sample gives on small benchmarks.
"${build_dir}/bench/micro_index" \
  --benchmark_format=json \
  --benchmark_out="${out_dir}/BENCH_micro_index.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.25

# Longer-trained encoder and full shadow sampling: the recall and shadow
# metrics in the baseline are then stable enough run-to-run for the gate's
# thresholds to be meaningful (a 4-epoch encoder's recall jitters). The
# raised shadow in-flight budget keeps the verifier from skipping most
# samples under the batch load — hundreds of realized samples instead of
# tens, which is what makes the absolute recall threshold trustworthy.
# The sharded pass (3x2 cluster over the same corpus) rides along so the
# scatter-gather path's figures land in the same artifact, as does the
# profiler-overhead pass (p95 with the sampler off vs on) that the gate
# holds under its max_profiler_overhead_pct budget.
rm -f "${out_dir}/BENCH_metrics.jsonl"
"${build_dir}/tools/tool_bench_serving" \
  --out="${out_dir}/BENCH_serving.json" \
  --metrics_jsonl="${out_dir}/BENCH_metrics.jsonl" \
  --epochs=12 \
  --shadow_rate=1.0 \
  --shadow_max_in_flight=256 \
  --shards=3 \
  --replicas=2

echo "wrote ${out_dir}/BENCH_micro_index.json"
echo "wrote ${out_dir}/BENCH_serving.json"
echo "wrote ${out_dir}/BENCH_metrics.jsonl"

if [[ -n "${gate_dir}" ]]; then
  gate_args=(
    --baseline_serving="${gate_dir}/BENCH_serving.json"
    --candidate_serving="${out_dir}/BENCH_serving.json"
  )
  if [[ -f "${gate_dir}/BENCH_micro_index.json" ]]; then
    gate_args+=(
      --baseline_micro="${gate_dir}/BENCH_micro_index.json"
      --candidate_micro="${out_dir}/BENCH_micro_index.json"
    )
  fi
  # Propagates tool_bench_gate's exit code (1 = regression, 2 = IO error)
  # through set -e, failing the CI job.
  "${build_dir}/tools/tool_bench_gate" "${gate_args[@]}"
fi
