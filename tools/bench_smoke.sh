#!/usr/bin/env bash
# Smoke benchmark: runs the index micro-benchmarks (bench/micro_index) and
# a short end-to-end serving loop (tool_bench_serving), leaving two JSON
# artifacts for run-to-run diffing:
#   BENCH_micro_index.json — google-benchmark JSON for the scan kernels
#   BENCH_serving.json     — QPS, p50/p95/p99 latency, scanned fraction,
#                            lifecycle counts (all read back from the
#                            metrics registry, so this also smoke-tests
#                            the observability wiring end to end)
#   BENCH_metrics.jsonl    — full registry dump, one JSON object per metric
#
# Usage: tools/bench_smoke.sh [build-dir] [out-dir]
#        (defaults: build, current directory)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_dir="${2:-$(pwd)}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target micro_index tool_bench_serving \
  -j "$(nproc)"

mkdir -p "${out_dir}"

"${build_dir}/bench/micro_index" \
  --benchmark_format=json \
  --benchmark_out="${out_dir}/BENCH_micro_index.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.05

rm -f "${out_dir}/BENCH_metrics.jsonl"
"${build_dir}/tools/tool_bench_serving" \
  --out="${out_dir}/BENCH_serving.json" \
  --metrics_jsonl="${out_dir}/BENCH_metrics.jsonl"

echo "wrote ${out_dir}/BENCH_micro_index.json"
echo "wrote ${out_dir}/BENCH_serving.json"
echo "wrote ${out_dir}/BENCH_metrics.jsonl"
