// Stitched-trace dump helper (DESIGN.md §15): stands up a tiny loopback
// fleet (one ShardServer per shard over real sockets), routes traced
// queries through the standard Router + RemoteTransport, and prints each
// request's stitched span tree — router-side spans and the shard servers'
// rpc_recv → decode / scan / encode_reply subtrees in one tree — as JSONL
// (one span per line, absolute unix timestamps included), the format the
// bench harness diffs.
//
//   ./tool_dump_trace [--shards=2] [--queries=3] [--seed=7] [--epochs=2]
//       [--tree]   # also print the human-readable indented tree

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/trace.h"
#include "src/serving/health.h"
#include "src/serving/router.h"
#include "src/serving/transport.h"
#include "src/util/cli.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const size_t shards = static_cast<size_t>(cli.GetInt("shards", 2));
  const size_t queries = static_cast<size_t>(cli.GetInt("queries", 3));
  const int epochs = static_cast<int>(cli.GetInt("epochs", 2));
  const bool tree = cli.GetBool("tree", false);

  data::SyntheticConfig cfg;
  cfg.num_classes = 5;
  cfg.feature_dim = 16;
  cfg.train_spec.num_classes = 5;
  cfg.train_spec.head_size = 40;
  cfg.train_spec.imbalance_factor = 10.0;
  cfg.queries_per_class = 4;
  cfg.database_per_class = 40;
  cfg.seed = seed;
  const data::RetrievalBenchmark bench = data::GenerateSynthetic(cfg);

  core::ModelConfig mc;
  mc.input_dim = 16;
  mc.hidden_dims = {24};
  mc.embed_dim = 12;
  mc.num_classes = 5;
  mc.dsq.num_codebooks = 4;
  mc.dsq.num_codewords = 16;
  auto model = std::make_shared<core::LightLtModel>(mc, seed);
  core::TrainOptions topts;
  topts.epochs = epochs;
  if (!core::TrainLightLt(model.get(), bench.train, topts).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  const Matrix embedded = core::EmbedInChunks(*model, bench.database.features);
  std::vector<std::vector<uint32_t>> codes;
  model->dsq().Encode(embedded, &codes);
  serving::ShardSetOptions so;
  so.num_shards = shards;
  so.num_replicas = 1;
  auto built = serving::ShardSet::Build(embedded, model->Codebooks(), codes, so);
  if (!built.ok()) {
    std::fprintf(stderr, "shard build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto shard_set =
      std::make_shared<serving::ShardSet>(std::move(built).value());

  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<std::vector<net::Endpoint>> endpoints(shards);
  for (size_t s = 0; s < shards; ++s) {
    net::ShardServerOptions sopts;
    sopts.hosted_shards = {s};
    auto server = std::make_unique<net::ShardServer>(shard_set, sopts);
    const Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    endpoints[s] = {{"127.0.0.1", server->port()}};
    servers.push_back(std::move(server));
  }

  auto remote = net::RemoteTransport::Connect(endpoints, {},
                                              Deadline::After(5.0));
  if (!remote.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  auto health = std::make_shared<serving::ReplicaHealthMonitor>(
      shards, 1, serving::HealthOptions{});
  serving::Router router(remote.value(), health, serving::RouterOptions{});

  const Matrix q = model->Embed(bench.query.features);
  const size_t n = std::min<size_t>(queries, q.rows());
  for (size_t i = 0; i < n; ++i) {
    obs::Trace trace;
    const serving::RoutedResult r = router.Search(
        q.row(i), 5, Deadline::After(2.0), {}, &trace, nullptr);
    if (!r.status.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", i,
                   r.status.ToString().c_str());
      continue;
    }
    std::fputs(trace.RenderJsonl().c_str(), stdout);
    if (tree) std::fputs(trace.Render().c_str(), stderr);
  }

  for (auto& server : servers) server->Drain();
  return 0;
}
