// Serving smoke benchmark (tools/bench_smoke.sh): trains a small LightLT
// stack on a synthetic preset, drives a query load through
// RetrievalService, and writes the registry-derived throughput and latency
// figures as one JSON object (BENCH_serving.json). All numbers come from
// the observability subsystem itself — the same histograms an operator
// scrapes via MetricsRegistry::RenderText — so the bench doubles as an
// end-to-end check of the metrics wiring.
//
// With --shards=N (optionally --replicas=R) the same load additionally runs
// through a ClusterService over the same model and database — scatter-gather
// across N shards with R replicas each — and the JSON gains a "cluster_*"
// block plus one per-shard row (items, scanned items across replicas), so
// the sharded path's overhead is benchmarked against the single-node one.
//
//   ./tool_bench_serving --out=BENCH_serving.json [--seed=7] [--repeat=5]
//       [--epochs=4] [--cells=32] [--nprobe=8] [--ivf=true]
//       [--shadow_max_in_flight=16] [--shards=0] [--replicas=2]
//       [--metrics_jsonl=metrics.jsonl] [--render]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/lightlt.h"
#include "src/net/client.h"
#include "src/net/fleet.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/serving/router.h"
#include "src/serving/transport.h"
#include "src/util/cli.h"
#include "src/util/timer.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);
  const int repeat = static_cast<int>(cli.GetInt("repeat", 5));
  const int epochs = static_cast<int>(cli.GetInt("epochs", 4));
  const size_t cells = static_cast<size_t>(cli.GetInt("cells", 32));
  const size_t nprobe = static_cast<size_t>(cli.GetInt("nprobe", 8));
  const bool use_ivf = cli.GetBool("ivf", true);
  const double shadow_rate = cli.GetDouble("shadow_rate", 0.25);
  const size_t shadow_max_in_flight =
      static_cast<size_t>(cli.GetInt("shadow_max_in_flight", 16));
  const size_t shards = static_cast<size_t>(cli.GetInt("shards", 0));
  const size_t replicas = static_cast<size_t>(cli.GetInt("replicas", 2));
  const std::string out = cli.GetString("out", "BENCH_serving.json");
  const std::string jsonl = cli.GetString("metrics_jsonl", "");

  const auto bench =
      data::GeneratePreset(data::PresetId::kQbaish, 100.0, false, seed);

  auto metrics = std::make_shared<obs::MetricsRegistry>();
  auto model_cfg = core::DefaultModelConfig(bench);
  auto train_cfg = core::DefaultTrainOptions(data::PresetId::kQbaish);
  train_cfg.epochs = epochs;  // throughput, not retrieval quality
  train_cfg.metrics = metrics.get();
  auto model = std::make_shared<core::LightLtModel>(model_cfg, seed);
  std::printf("training encoder (%d epochs)...\n", epochs);
  if (!core::TrainLightLt(model.get(), bench.train, train_cfg).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  serving::ServiceOptions opts;
  opts.metrics = metrics;
  opts.exact_rerank = true;
  opts.rerank_pool = 50;
  if (use_ivf) {
    opts.use_ivf = true;
    opts.ivf.num_cells = cells;
    opts.ivf.nprobe = nprobe;
  }
  if (shadow_rate > 0.0) {
    // Shadow-verify a fraction of served queries against the exact index so
    // the bench reports live recall@10 next to throughput — the number the
    // bench gate holds steady across runs.
    opts.shadow.sample_rate = shadow_rate;
    opts.shadow.seed = seed;
    opts.shadow.recall_k = 10;
    opts.shadow.max_in_flight = shadow_max_in_flight;
    opts.shadow.pool = &GlobalThreadPool();
  }
  auto built =
      serving::RetrievalService::Build(model, bench.database.features, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "service build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const serving::RetrievalService& service = built.value();
  std::printf("serving %zu queries x %d rounds over %zu items...\n",
              bench.query.features.rows(), repeat, service.num_items());

  WallTimer wall;
  size_t rows_served = 0;
  for (int r = 0; r < repeat; ++r) {
    auto results =
        service.QueryBatch(bench.query.features, 10, &GlobalThreadPool());
    if (!results.ok()) {
      std::fprintf(stderr, "QueryBatch failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const auto& row : results.value()) {
      if (row.ok()) ++rows_served;
    }
  }
  const double seconds = wall.ElapsedSeconds();

  const auto latency =
      metrics
          ->GetHistogram(obs::WithLabel("serving_latency_seconds", "outcome",
                                        "served"))
          ->Snapshot();
  double scanned_fraction = 1.0;  // flat ADC scans everything
  if (use_ivf) {
    const auto sf = metrics->GetHistogram("ivf_scanned_fraction")->Snapshot();
    if (sf.count > 0) scanned_fraction = sf.Mean();
  }
  const auto stats = service.Stats();
  const double qps =
      seconds > 0.0 ? static_cast<double>(rows_served) / seconds : 0.0;
  double shadow_recall = -1.0;  // -1 = shadow sampling off
  size_t shadow_samples = 0;
  if (service.Shadow() != nullptr) {
    service.Shadow()->Flush();
    const auto overall = service.Shadow()->estimator().Snapshot(0);
    shadow_recall = overall.recall.center;
    shadow_samples = overall.queries;
  }

  // Profiler-overhead scenario (DESIGN.md §16): the same single-node load
  // timed per query with the sampler off vs running at its default 100 Hz
  // cadence, so the JSON carries the measured p95 cost of continuous
  // profiling and the gate can hold it under budget. Two measurement
  // disciplines keep the comparison honest on small hosts:
  //  * a dedicated shadow-free service — shadow re-runs queue heavy exact
  //    searches on the pool, and on a one-core host any change in thread
  //    wakeup cadence (such as the sampler's) reshuffles when those slices
  //    preempt the query loop, drowning the profiler's real cost in
  //    scheduler noise that belongs to neither side of the comparison;
  //  * interleaved off/on pairs with the overhead taken as the median of
  //    per-pair p95 deltas — adjacent passes see the same machine state,
  //    so drift (frequency scaling, page-cache warmup) cancels per pair,
  //    and the median discards a pair that caught a one-off stall.
  // Runs after the registry snapshots above, so the reported latency keys
  // stay clean.
  serving::ServiceOptions ovh_opts = opts;
  ovh_opts.metrics = nullptr;
  ovh_opts.shadow = serving::ShadowOptions{};
  auto ovh_built =
      serving::RetrievalService::Build(model, bench.database.features,
                                       ovh_opts);
  if (!ovh_built.ok()) {
    std::fprintf(stderr, "overhead service build failed: %s\n",
                 ovh_built.status().ToString().c_str());
    return 1;
  }
  const serving::RetrievalService& ovh_service = ovh_built.value();
  auto timed_pass = [&](std::vector<double>* lat) {
    for (int r = 0; r < repeat; ++r) {
      for (size_t q = 0; q < bench.query.features.rows(); ++q) {
        WallTimer one;
        (void)ovh_service.Query(bench.query.features.RowCopy(q), 10);
        lat->push_back(one.ElapsedSeconds());
      }
    }
  };
  auto exact_p95 = [](std::vector<double>* lat) {
    if (lat->empty()) return 0.0;
    std::sort(lat->begin(), lat->end());
    return (*lat)[static_cast<size_t>(0.95 * (lat->size() - 1))];
  };
  std::printf("profiler overhead: interleaved off/on passes...\n");
  obs::Profiler profiler;  // default cadence — what a service would run
  const int kOverheadPairs = 5;
  {
    std::vector<double> warmup;  // untimed-for-the-record warmup pass
    timed_pass(&warmup);
  }
  std::vector<double> off_p95s, on_p95s, overhead_pcts;
  for (int pair = 0; pair < kOverheadPairs; ++pair) {
    std::vector<double> off_lat, on_lat;
    timed_pass(&off_lat);
    (void)profiler.Start();
    timed_pass(&on_lat);
    profiler.Stop();
    const double off = exact_p95(&off_lat);
    const double on = exact_p95(&on_lat);
    off_p95s.push_back(off);
    on_p95s.push_back(on);
    overhead_pcts.push_back(off > 0.0 ? 100.0 * (on - off) / off : 0.0);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double profiler_off_p95 = median(off_p95s);
  const double profiler_on_p95 = median(on_p95s);
  const double profiler_overhead_pct = median(overhead_pcts);
  std::printf("profiler overhead: p95 off %.4fms on %.4fms (%+.2f%%), "
              "%llu samples taken\n",
              profiler_off_p95 * 1e3, profiler_on_p95 * 1e3,
              profiler_overhead_pct,
              static_cast<unsigned long long>(profiler.samples_total()));

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"queries\": %zu, \"wall_seconds\": %.6f, \"qps\": %.1f,\n"
               " \"latency_ms\": {\"mean\": %.4f, \"p50\": %.4f, "
               "\"p95\": %.4f, \"p99\": %.4f},\n"
               " \"scanned_fraction\": %.4f, \"ivf\": %s,\n"
               " \"shadow_recall\": %.4f, \"shadow_samples\": %zu,\n"
               " \"served\": %llu, \"shed\": %llu, \"failed\": %llu, "
               "\"flat_fallbacks\": %llu",
               rows_served, seconds, qps, latency.Mean() * 1e3,
               latency.Quantile(0.50) * 1e3, latency.Quantile(0.95) * 1e3,
               latency.Quantile(0.99) * 1e3, scanned_fraction,
               use_ivf ? "true" : "false", shadow_recall, shadow_samples,
               static_cast<unsigned long long>(stats.served),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.flat_fallbacks));
  std::fprintf(f,
               ",\n \"profiler_off_p95_ms\": %.4f, "
               "\"profiler_on_p95_ms\": %.4f,\n"
               " \"profiler_overhead_pct\": %.2f",
               profiler_off_p95 * 1e3, profiler_on_p95 * 1e3,
               profiler_overhead_pct);

  // Sharded scenario: the same load through a ClusterService over the same
  // model and corpus. Appended after the single-node keys so the bench
  // gate's first-occurrence extraction keeps reading the single-node run.
  if (shards > 0) {
    serving::ClusterOptions copts;
    copts.num_shards = shards;
    copts.num_replicas = replicas;
    copts.searcher.exact_rerank = true;
    copts.searcher.rerank_pool = 50;
    if (use_ivf) {
      copts.searcher.use_ivf = true;
      copts.searcher.ivf.num_cells = cells;
      copts.searcher.ivf.nprobe = nprobe;
    }
    copts.router.pool = &GlobalThreadPool();
    auto cluster_built = serving::ClusterService::Build(
        model, bench.database.features, copts);
    if (!cluster_built.ok()) {
      std::fprintf(stderr, "cluster build failed: %s\n",
                   cluster_built.status().ToString().c_str());
      std::fclose(f);
      return 1;
    }
    const serving::ClusterService& cluster = cluster_built.value();
    std::printf("cluster: %zu shards x %zu replicas, same load...\n", shards,
                replicas);

    WallTimer cluster_wall;
    size_t cluster_served = 0;
    for (int r = 0; r < repeat; ++r) {
      for (size_t q = 0; q < bench.query.features.rows(); ++q) {
        auto res = cluster.Query(bench.query.features.RowCopy(q), 10);
        if (res.ok()) ++cluster_served;
      }
    }
    const double cluster_seconds = cluster_wall.ElapsedSeconds();
    const double cluster_qps =
        cluster_seconds > 0.0
            ? static_cast<double>(cluster_served) / cluster_seconds
            : 0.0;
    const auto cluster_latency =
        cluster.Metrics()
            .GetHistogram(obs::WithLabel("cluster_latency_seconds", "outcome",
                                         "served"))
            ->Snapshot();
    const auto cstats = cluster.Stats();
    const double coverage_mean =
        cstats.coverage.count > 0 ? cstats.coverage.Mean() : 0.0;

    std::fprintf(f,
                 ",\n \"cluster_shards\": %zu, \"cluster_replicas\": %zu,\n"
                 " \"cluster_qps\": %.1f, \"cluster_p95_ms\": %.4f,\n"
                 " \"cluster_coverage_mean\": %.4f, \"cluster_failovers\": "
                 "%llu,\n"
                 " \"cluster_per_shard\": [",
                 shards, replicas, cluster_qps,
                 cluster_latency.Quantile(0.95) * 1e3, coverage_mean,
                 static_cast<unsigned long long>(cstats.failovers));
    for (size_t s = 0; s < shards; ++s) {
      uint64_t scan_items = 0;
      for (size_t r = 0; r < replicas; ++r) {
        // Flat and IVF replica scans count items under separate instruments.
        const std::string rp =
            "cluster_s" + std::to_string(s) + "_r" + std::to_string(r) + "_";
        scan_items +=
            cluster.Metrics().GetCounter(rp + "adc_scan_items_total")->Value();
        scan_items +=
            cluster.Metrics().GetCounter(rp + "ivf_scan_items_total")->Value();
      }
      std::fprintf(f, "%s{\"shard\": %zu, \"items\": %zu, \"scan_items\": %llu}",
                   s == 0 ? "" : ", ", s, cluster.shards().shard_items(s),
                   static_cast<unsigned long long>(scan_items));
      std::printf("  shard %zu: %zu items, %llu scanned across %zu replicas\n",
                  s, cluster.shards().shard_items(s),
                  static_cast<unsigned long long>(scan_items), replicas);
    }
    std::fprintf(f, "]");
    std::printf(
        "cluster: %.0f qps  p95 %.2fms  coverage %.3f  failovers %llu\n",
        cluster_qps, cluster_latency.Quantile(0.95) * 1e3, coverage_mean,
        static_cast<unsigned long long>(cstats.failovers));
  }

  // Remote scenario: the same load over real loopback sockets — one
  // in-process ShardServer per shard, a RemoteTransport client grid, and
  // the standard Router — so the JSON carries the wire overhead of the
  // out-of-process path next to the in-process numbers.
  const size_t remote_shards =
      static_cast<size_t>(cli.GetInt("remote_shards", 0));
  if (remote_shards > 0) {
    const Matrix embedded =
        core::EmbedInChunks(*model, bench.database.features);
    std::vector<std::vector<uint32_t>> codes;
    model->dsq().Encode(embedded, &codes);
    serving::ShardSetOptions sopts;
    sopts.num_shards = remote_shards;
    sopts.num_replicas = 1;
    auto shard_built = serving::ShardSet::Build(embedded, model->Codebooks(),
                                                codes, sopts);
    if (!shard_built.ok()) {
      std::fprintf(stderr, "remote shard build failed: %s\n",
                   shard_built.status().ToString().c_str());
      std::fclose(f);
      return 1;
    }
    auto shard_set = std::make_shared<serving::ShardSet>(
        std::move(shard_built).value());

    std::vector<std::unique_ptr<obs::MetricsRegistry>> server_metrics;
    std::vector<std::unique_ptr<net::ShardServer>> servers;
    std::vector<std::vector<net::Endpoint>> endpoints(remote_shards);
    std::vector<net::FleetEndpoint> fleet_endpoints;
    for (size_t s = 0; s < remote_shards; ++s) {
      server_metrics.push_back(std::make_unique<obs::MetricsRegistry>());
      net::ShardServerOptions so;
      so.hosted_shards = {s};
      // Per-server registry + admin listener: the fleet collector below
      // pulls each shard's latency histogram out of band after the load.
      so.metrics = server_metrics.back().get();
      so.admin_listener = true;
      auto server = std::make_unique<net::ShardServer>(shard_set, so);
      const Status started = server->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "remote server start failed: %s\n",
                     started.ToString().c_str());
        std::fclose(f);
        return 1;
      }
      endpoints[s] = {{"127.0.0.1", server->port()}};
      fleet_endpoints.push_back(
          {{"127.0.0.1", server->admin_port()}, static_cast<uint32_t>(s), 0});
      servers.push_back(std::move(server));
    }
    auto remote = net::RemoteTransport::Connect(endpoints, {},
                                                Deadline::After(5.0));
    if (!remote.ok()) {
      std::fprintf(stderr, "remote connect failed: %s\n",
                   remote.status().ToString().c_str());
      std::fclose(f);
      return 1;
    }
    auto remote_health = std::make_shared<serving::ReplicaHealthMonitor>(
        remote_shards, 1, serving::HealthOptions{});
    serving::Router remote_router(remote.value(), remote_health,
                                  serving::RouterOptions{});
    std::printf("remote: %zu loopback shard servers, same load...\n",
                remote_shards);

    const Matrix remote_queries = model->Embed(bench.query.features);
    std::vector<double> remote_latencies;
    remote_latencies.reserve(remote_queries.rows() * repeat);
    WallTimer remote_wall;
    size_t remote_served = 0;
    double coverage_sum = 0.0;
    for (int r = 0; r < repeat; ++r) {
      for (size_t q = 0; q < remote_queries.rows(); ++q) {
        WallTimer one;
        const serving::RoutedResult res = remote_router.Search(
            remote_queries.row(q), 10, Deadline::After(2.0), {}, nullptr,
            nullptr);
        remote_latencies.push_back(one.ElapsedSeconds());
        if (res.status.ok()) {
          ++remote_served;
          coverage_sum += res.coverage;
        }
      }
    }
    const double remote_seconds = remote_wall.ElapsedSeconds();
    const double remote_qps =
        remote_seconds > 0.0
            ? static_cast<double>(remote_served) / remote_seconds
            : 0.0;
    std::sort(remote_latencies.begin(), remote_latencies.end());
    const double remote_p95 =
        remote_latencies.empty()
            ? 0.0
            : remote_latencies[static_cast<size_t>(
                  0.95 * (remote_latencies.size() - 1))];

    uint64_t frames_sent = 0, frames_received = 0, wire_errors = 0;
    uint64_t reconnects = 0;
    for (const auto& server : servers) {
      const net::ShardServerStats ss = server->stats();
      frames_sent += ss.frames_sent;
      frames_received += ss.frames_received;
      wire_errors += ss.wire_errors;
    }
    for (size_t s = 0; s < remote_shards; ++s) {
      reconnects += remote.value()->client(s, 0).stats().reconnects;
    }

    // Fleet view: one poll over every server's admin plane, then the
    // per-shard server-side latency breakdown plus the fleet-wide merged
    // histogram — the numbers an operator would scrape in production.
    net::FleetCollector fleet(fleet_endpoints, net::FleetCollectorOptions{});
    const Status polled = fleet.PollOnce();
    if (!polled.ok()) {
      std::fprintf(stderr, "fleet poll failed: %s\n",
                   polled.ToString().c_str());
    }
    const net::FleetView fleet_view = fleet.View();
    std::fprintf(f, ",\n \"remote_per_shard\": [");
    const char* kServerHist = "net_server_request_seconds";
    for (size_t s = 0; s < fleet_view.members.size(); ++s) {
      const net::FleetMemberView& m = fleet_view.members[s];
      obs::HistogramSnapshot lat;
      for (const auto& h : m.snapshot.histograms) {
        if (h.name == kServerHist) lat = h.snapshot;
      }
      std::fprintf(f,
                   "%s{\"shard\": %u, \"requests\": %llu, "
                   "\"server_p50_ms\": %.4f, \"server_p95_ms\": %.4f}",
                   s == 0 ? "" : ", ", m.shard,
                   static_cast<unsigned long long>(lat.count),
                   lat.Quantile(0.50) * 1e3, lat.Quantile(0.95) * 1e3);
      std::printf("  shard %u: %llu server requests, p50 %.2fms p95 %.2fms\n",
                  m.shard, static_cast<unsigned long long>(lat.count),
                  lat.Quantile(0.50) * 1e3, lat.Quantile(0.95) * 1e3);
    }
    obs::HistogramSnapshot fleet_lat;
    const auto merged_it = fleet_view.merged.find(kServerHist);
    if (merged_it != fleet_view.merged.end()) fleet_lat = merged_it->second;
    std::fprintf(f,
                 "],\n \"remote_fleet_requests\": %llu, "
                 "\"remote_fleet_server_p95_ms\": %.4f",
                 static_cast<unsigned long long>(fleet_lat.count),
                 fleet_lat.Quantile(0.95) * 1e3);
    std::printf("  fleet: %llu server requests merged, p95 %.2fms\n",
                static_cast<unsigned long long>(fleet_lat.count),
                fleet_lat.Quantile(0.95) * 1e3);

    for (auto& server : servers) server->Drain();

    std::fprintf(f,
                 ",\n \"remote_shards\": %zu, \"remote_qps\": %.1f,\n"
                 " \"remote_p95_ms\": %.4f, \"remote_served\": %zu,\n"
                 " \"remote_coverage_mean\": %.4f,\n"
                 " \"remote_frames_sent\": %llu, \"remote_frames_received\": "
                 "%llu,\n"
                 " \"remote_wire_errors\": %llu, \"remote_reconnects\": %llu",
                 remote_shards, remote_qps, remote_p95 * 1e3, remote_served,
                 remote_served > 0 ? coverage_sum / remote_served : 0.0,
                 static_cast<unsigned long long>(frames_sent),
                 static_cast<unsigned long long>(frames_received),
                 static_cast<unsigned long long>(wire_errors),
                 static_cast<unsigned long long>(reconnects));
    std::printf("remote: %.0f qps  p95 %.2fms  served %zu  wire errors "
                "%llu\n",
                remote_qps, remote_p95 * 1e3, remote_served,
                static_cast<unsigned long long>(wire_errors));
  }
  std::fprintf(f, "}\n");
  std::fclose(f);

  if (!jsonl.empty()) {
    const Status dumped = metrics->WriteJsonl(jsonl);
    if (!dumped.ok()) {
      std::fprintf(stderr, "metrics dump failed: %s\n",
                   dumped.ToString().c_str());
      return 1;
    }
  }
  if (cli.GetBool("render", false)) {
    std::printf("%s", metrics->RenderText().c_str());
  }
  std::printf(
      "%.0f qps  p50 %.2fms  p95 %.2fms  p99 %.2fms  scanned %.1f%%  "
      "shadow recall %.3f (%zu samples)  -> %s\n",
      qps, latency.Quantile(0.50) * 1e3, latency.Quantile(0.95) * 1e3,
      latency.Quantile(0.99) * 1e3, 100.0 * scanned_fraction, shadow_recall,
      shadow_samples, out.c_str());
  return 0;
}
