// Developer tool: sweeps the synthetic-dataset separation knob for one
// preset and reports MAP for a probe set of methods (LightLT w/o ensemble,
// PQ, ITQ, LSH). Used to calibrate presets.cc so the reproduced tables keep
// the paper's relative method ordering.
//
//   ./tool_calibrate --preset=cifar --sep=0.8,1.0,1.2 [--seed=7]

#include <cstdio>
#include <sstream>

#include "src/baselines/deep_hash.h"
#include "src/baselines/deep_quant.h"
#include "src/baselines/shallow_hash.h"
#include "src/baselines/shallow_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/threadpool.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const std::string preset_name = cli.GetString("preset", "cifar");
  const uint64_t seed = cli.GetInt("seed", 7);
  const double imbalance = cli.GetDouble("if", 50.0);

  data::PresetId preset = data::PresetId::kCifar100ish;
  if (preset_name == "imagenet") preset = data::PresetId::kImageNet100ish;
  if (preset_name == "nc") preset = data::PresetId::kNcish;
  if (preset_name == "qba") preset = data::PresetId::kQbaish;

  std::vector<float> seps;
  std::stringstream ss(cli.GetString("sep", "1.0"));
  for (std::string tok; std::getline(ss, tok, ',');) {
    seps.push_back(std::strtof(tok.c_str(), nullptr));
  }
  const double nuisance = cli.GetDouble("nuisance", -1.0);

  for (float sep : seps) {
    auto cfg = data::MakePresetConfig(preset, imbalance, false, seed);
    cfg.class_separation = sep;
    if (nuisance >= 0.0) cfg.nuisance_scale = static_cast<float>(nuisance);
    const int64_t modes = cli.GetInt("modes", 0);
    if (modes > 0) cfg.modes_per_class = static_cast<size_t>(modes);
    const auto bench = data::GenerateSynthetic(cfg);

    std::vector<std::unique_ptr<baselines::RetrievalMethod>> methods;
    methods.push_back(std::make_unique<baselines::LshHash>(24));
    methods.push_back(std::make_unique<baselines::ItqHash>(24));
    methods.push_back(std::make_unique<baselines::PqQuantizer>(4, 64));
    if (cli.GetBool("deep", false)) {
      baselines::DeepHashOptions hash_opts;
      methods.push_back(std::make_unique<baselines::CsqHash>(hash_opts));
      methods.push_back(std::make_unique<baselines::LthNetHash>(hash_opts));
    }
    methods.push_back(std::make_unique<baselines::DeepQuantMethod>(
        baselines::MakeLightLtSpec(bench, preset, false, 1)));

    std::printf("sep=%.2f:", sep);
    for (auto& m : methods) {
      auto report =
          baselines::EvaluateMethod(m.get(), bench, &GlobalThreadPool());
      if (report.ok()) {
        std::printf("  %s=%.4f", report.value().name.c_str(),
                    report.value().map);
      } else {
        std::printf("  %s=ERR", m->name().c_str());
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
