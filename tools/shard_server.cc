// Out-of-process shard host + demo client (DESIGN.md §14, README
// "Running shards out of process").
//
// Server mode (default): trains the deterministic synthetic fixture for
// `--seed`, builds a ShardSet partitioned into `--shards` pieces, and
// serves `--shard` (or every shard with --shard=-1) on `--port` until
// SIGINT, which triggers a graceful drain: stop accepting, finish
// committed requests, then exit with the final counters.
//
//   ./tool_shard_server --shards=2 --shard=0 --port=7401
//   ./tool_shard_server --shards=2 --shard=1 --port=7402
//
// With --metrics (optionally --metrics_port=P) the server also binds an
// admin-plane listener and enables its MetricsRegistry, so a fleet
// collector can pull the full instrument snapshot out of band:
//
//   ./tool_shard_server --shards=2 --shard=0 --port=7401
//       --metrics --metrics_port=7501
//
// Client mode (--client): rebuilds the same fixture from the same seed
// (so query embeddings and expected ids line up with the servers), wires a
// RemoteTransport over `--endpoints` (one host:port per shard,
// comma-separated), and routes `--queries` searches through the standard
// Router with health-driven failover, printing per-query coverage and the
// exact transport counters.
//
//   ./tool_shard_server --client --shards=2
//       --endpoints=127.0.0.1:7401,127.0.0.1:7402

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/serving/router.h"
#include "src/serving/transport.h"
#include "src/util/cli.h"

using namespace lightlt;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void HandleSigint(int) { g_interrupted = 1; }

struct Fixture {
  std::shared_ptr<core::LightLtModel> model;
  std::shared_ptr<const serving::ShardSet> shards;
  Matrix queries;  // embedded
};

/// Both terminals run this with the same seed, so the server's shards and
/// the client's query embeddings come from the same model.
Fixture BuildFixture(uint64_t seed, size_t num_shards, int epochs) {
  data::SyntheticConfig cfg;
  cfg.num_classes = 8;
  cfg.feature_dim = 24;
  cfg.train_spec.num_classes = 8;
  cfg.train_spec.head_size = 60;
  cfg.train_spec.imbalance_factor = 10.0;
  cfg.queries_per_class = 6;
  cfg.database_per_class = 80;
  cfg.seed = seed;
  data::RetrievalBenchmark bench = data::GenerateSynthetic(cfg);

  core::ModelConfig mc;
  mc.input_dim = 24;
  mc.hidden_dims = {32};
  mc.embed_dim = 16;
  mc.num_classes = 8;
  mc.dsq.num_codebooks = 4;
  mc.dsq.num_codewords = 16;

  Fixture f;
  f.model = std::make_shared<core::LightLtModel>(mc, seed);
  core::TrainOptions topts;
  topts.epochs = epochs;
  std::printf("training fixture (seed %llu, %d epochs)...\n",
              static_cast<unsigned long long>(seed), epochs);
  if (!core::TrainLightLt(f.model.get(), bench.train, topts).ok()) {
    std::fprintf(stderr, "training failed\n");
    std::exit(1);
  }

  const Matrix embedded =
      core::EmbedInChunks(*f.model, bench.database.features);
  std::vector<std::vector<uint32_t>> codes;
  f.model->dsq().Encode(embedded, &codes);
  serving::ShardSetOptions so;
  so.num_shards = num_shards;
  so.num_replicas = 1;
  auto built =
      serving::ShardSet::Build(embedded, f.model->Codebooks(), codes, so);
  if (!built.ok()) {
    std::fprintf(stderr, "shard build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  f.shards =
      std::make_shared<serving::ShardSet>(std::move(built).value());
  f.queries = f.model->Embed(bench.query.features);
  return f;
}

std::vector<net::Endpoint> ParseEndpoints(const std::string& spec) {
  std::vector<net::Endpoint> endpoints;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   item.c_str());
      std::exit(2);
    }
    net::Endpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = static_cast<uint16_t>(std::atoi(item.c_str() + colon + 1));
    endpoints.push_back(ep);
    start = comma + 1;
  }
  return endpoints;
}

int RunServer(const CommandLine& cli, const Fixture& f) {
  net::ShardServerOptions so;
  so.host = cli.GetString("host", "127.0.0.1");
  so.port = static_cast<uint16_t>(cli.GetInt("port", 7401));
  so.drain_deadline_seconds = cli.GetDouble("drain_deadline", 2.0);
  const int64_t shard = cli.GetInt("shard", -1);
  if (shard >= 0) so.hosted_shards = {static_cast<size_t>(shard)};

  // --metrics binds a second, admin-plane listener (--metrics_port, default
  // ephemeral) and enables the registry it dumps: a FleetCollector (or a
  // plain GetMetrics client) pulls the full scan/serve instrument state
  // without queueing behind search traffic (README "Observing a fleet").
  obs::MetricsRegistry metrics;
  if (cli.GetBool("metrics", false)) {
    so.metrics = &metrics;
    so.admin_listener = true;
    so.admin_port = static_cast<uint16_t>(cli.GetInt("metrics_port", 0));
  }

  // --profile starts the sampling profiler (default 100 Hz; tune with
  // --profile_interval_ms) and serves its cumulative snapshot on the same
  // admin plane, so `tool_profile --endpoints=...` (or a FleetCollector
  // with collect_profiles) can pull collapsed stacks out of band.
  obs::Profiler::Options popts;
  popts.sample_interval_seconds =
      cli.GetDouble("profile_interval_ms", 10.0) * 1e-3;
  popts.registry = so.metrics;
  obs::Profiler profiler(popts);
  if (cli.GetBool("profile", false)) {
    so.profiler = &profiler;
    so.admin_listener = true;
    if (so.admin_port == 0) {
      so.admin_port = static_cast<uint16_t>(cli.GetInt("metrics_port", 0));
    }
    profiler.Start();
  }

  net::ShardServer server(f.shards, so);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (so.admin_listener) {
    std::printf("%s admin plane on %s:%u\n",
                so.profiler != nullptr
                    ? (so.metrics != nullptr ? "metrics+profile" : "profile")
                    : "metrics",
                server.host().c_str(), server.admin_port());
  }
  if (shard >= 0) {
    std::printf("serving shard %lld (%zu items) on %s:%u — Ctrl-C drains\n",
                static_cast<long long>(shard),
                f.shards->shard_items(static_cast<size_t>(shard)),
                server.host().c_str(), server.port());
  } else {
    std::printf("serving all %zu shards on %s:%u — Ctrl-C drains\n",
                f.shards->num_shards(), server.host().c_str(),
                server.port());
  }

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  while (g_interrupted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("draining...\n");
  server.Drain();
  const net::ShardServerStats stats = server.stats();
  std::printf(
      "drained in %.3fs: %llu conns, %llu ok, %llu error, %llu wire "
      "errors, %llu forced closes\n",
      stats.last_drain_seconds,
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.requests_ok),
      static_cast<unsigned long long>(stats.requests_error),
      static_cast<unsigned long long>(stats.wire_errors),
      static_cast<unsigned long long>(stats.forced_closes));
  return 0;
}

int RunClient(const CommandLine& cli, const Fixture& f) {
  const std::vector<net::Endpoint> flat =
      ParseEndpoints(cli.GetString("endpoints", "127.0.0.1:7401"));
  if (flat.size() != f.shards->num_shards()) {
    std::fprintf(stderr, "need one endpoint per shard (%zu shards, %zu "
                 "endpoints)\n",
                 f.shards->num_shards(), flat.size());
    return 2;
  }
  std::vector<std::vector<net::Endpoint>> grid;
  for (const net::Endpoint& ep : flat) grid.push_back({ep});

  auto remote =
      net::RemoteTransport::Connect(grid, {}, Deadline::After(5.0));
  if (!remote.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 remote.status().ToString().c_str());
    return 1;
  }
  std::printf("connected: %zu shards, %zu items total, dim %u\n",
              remote.value()->num_shards(), remote.value()->total_items(),
              remote.value()->dim());

  auto health = std::make_shared<serving::ReplicaHealthMonitor>(
      f.shards->num_shards(), 1, serving::HealthOptions{});
  serving::Router router(remote.value(), health, serving::RouterOptions{});

  const size_t queries = std::min<size_t>(
      static_cast<size_t>(cli.GetInt("queries", 10)), f.queries.rows());
  const size_t top_k = static_cast<size_t>(cli.GetInt("top_k", 5));
  size_t served = 0;
  for (size_t q = 0; q < queries; ++q) {
    const serving::RoutedResult r =
        router.Search(f.queries.row(q), top_k, Deadline::After(2.0), {},
                      nullptr, nullptr);
    if (!r.status.ok()) {
      std::printf("query %zu: %s\n", q, r.status.ToString().c_str());
      continue;
    }
    ++served;
    std::printf("query %zu: coverage %.2f, top ids [", q, r.coverage);
    for (size_t i = 0; i < r.hits.size(); ++i) {
      std::printf("%s%u", i == 0 ? "" : " ", r.hits[i].id);
    }
    std::printf("]\n");
  }

  for (size_t s = 0; s < f.shards->num_shards(); ++s) {
    const net::RemoteClientStats cs = remote.value()->client(s, 0).stats();
    std::printf("shard %zu @ %s:%u: %llu requests, %llu ok, %llu "
                "transport errors, %llu reconnects\n",
                s, flat[s].host.c_str(), flat[s].port,
                static_cast<unsigned long long>(cs.requests_sent),
                static_cast<unsigned long long>(cs.responses_ok),
                static_cast<unsigned long long>(cs.transport_errors),
                static_cast<unsigned long long>(cs.reconnects));
  }
  std::printf("served %zu/%zu queries\n", served, queries);
  return served == queries ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));
  const size_t shards = static_cast<size_t>(cli.GetInt("shards", 2));
  const int epochs = static_cast<int>(cli.GetInt("epochs", 4));
  const Fixture f = BuildFixture(seed, shards, epochs);
  return cli.GetBool("client", false) ? RunClient(cli, f)
                                      : RunServer(cli, f);
}
