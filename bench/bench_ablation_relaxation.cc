// Ablation: the argmax relaxation. Compares the Straight-Through Estimator
// (paper Eqns. 5-7) against the pure softmax relaxation, across softmax
// temperatures — the training-stability design decision at the heart of the
// quantization step.
//
//   ./bench_ablation_relaxation [--seed=7]

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {

double RunOne(const data::RetrievalBenchmark& bench, bool ste, float temp) {
  auto spec = baselines::MakeLightLtSpec(bench, data::PresetId::kCifar100ish,
                                         false, 1);
  spec.arch.dsq.straight_through = ste;
  spec.arch.dsq.temperature = temp;
  baselines::DeepQuantMethod method(std::move(spec));
  auto report =
      baselines::EvaluateMethod(&method, bench, &GlobalThreadPool());
  return report.ok() ? report.value().map : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::printf("== Ablation: STE vs soft relaxation x temperature ==\n");
  std::printf("(Cifar100ish IF=50, no ensemble)\n\n");

  const auto bench =
      data::GeneratePreset(data::PresetId::kCifar100ish, 50.0, false, seed);

  TablePrinter table({"temperature", "MAP (soft relaxation)", "MAP (STE)"});
  for (float temp : {0.5f, 1.0f, 2.0f, 4.0f, 8.0f}) {
    std::printf("running t=%.1f...\n", temp);
    std::fflush(stdout);
    const double soft = RunOne(bench, false, temp);
    const double ste = RunOne(bench, true, temp);
    table.AddRow({TablePrinter::FormatMetric(temp, 1),
                  TablePrinter::FormatMetric(soft),
                  TablePrinter::FormatMetric(ste)});
  }

  std::printf("\nRelaxation ablation:\n");
  table.Print();
  std::printf(
      "\n(The STE trains the true hard-assignment forward pass; the soft "
      "relaxation suffers a train/inference mismatch that grows with "
      "temperature. Very low temperatures starve the codebook gradients — "
      "the vanishing-softmax-gradient effect of paper §III-C2.)\n");
  return 0;
}
