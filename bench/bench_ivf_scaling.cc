// Extension bench (beyond the paper): IVF-accelerated LightLT search.
// Sweeps nprobe and reports recall@10 against the exhaustive ADC ranking,
// measured per-query latency and the scanned database fraction — the
// natural continuation of the paper's §IV/§V-E efficiency story to
// non-exhaustive search.
//
//   ./bench_ivf_scaling [--seed=7] [--cells=64]

#include <algorithm>
#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/core/pipeline.h"
#include "src/data/presets.h"
#include "src/eval/curves.h"
#include "src/index/ivf_index.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);
  const size_t cells = static_cast<size_t>(cli.GetInt("cells", 64));

  std::printf("== IVF-ADC scaling (extension; QBAish IF=100) ==\n\n");
  const auto bench =
      data::GeneratePreset(data::PresetId::kQbaish, 100.0, false, seed);

  auto spec = baselines::MakeLightLtSpec(bench, data::PresetId::kQbaish,
                                         false, 1);
  spec.train.epochs = 8;
  core::LightLtModel model(spec.arch, seed);
  auto stats = core::TrainLightLt(&model, bench.train, spec.train);
  if (!stats.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  const Matrix db = core::EmbedInChunks(model, bench.database.features);
  const Matrix queries = core::EmbedInChunks(model, bench.query.features);
  std::vector<std::vector<uint32_t>> codes;
  model.dsq().Encode(db, &codes);

  auto adc = index::AdcIndex::Build(model.Codebooks(), codes);
  if (!adc.ok()) return 1;

  index::IvfOptions ivf_opts;
  ivf_opts.num_cells = cells;
  ivf_opts.nprobe = cells;  // per-query override below
  auto ivf = index::IvfAdcIndex::Build(db, model.Codebooks(), codes,
                                       ivf_opts);
  if (!ivf.ok()) {
    std::fprintf(stderr, "ivf build failed: %s\n",
                 ivf.status().ToString().c_str());
    return 1;
  }

  // Exact (exhaustive-ADC) top-10 as ground truth, tie-aware: quantized
  // items often share identical codes and thus identical distances, so the
  // truth set is *all* ids at or below the 10th distance.
  eval::RankingFn exact = [&](size_t q) {
    std::vector<float> scores;
    adc.value().ComputeScores(queries.row(q), &scores);
    std::vector<float> sorted = scores;
    std::nth_element(sorted.begin(), sorted.begin() + 9, sorted.end());
    const float threshold = sorted[9] + 1e-5f;
    std::vector<uint32_t> ids;
    for (uint32_t i = 0; i < scores.size(); ++i) {
      if (scores[i] <= threshold) ids.push_back(i);
    }
    return ids;
  };

  TablePrinter table({"nprobe", "scan fraction", "recall@10 vs ADC",
                      "us/query", "speedup vs full ADC"});
  // Baseline full-ADC timing.
  WallTimer timer;
  for (size_t q = 0; q < queries.rows(); ++q) {
    auto hits = adc.value().Search(queries.row(q), 10);
  }
  const double adc_us =
      timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.rows());

  for (size_t nprobe : std::vector<size_t>{1, 2, 4, 8, 16, cells}) {
    if (nprobe > cells) continue;
    eval::RankingFn approx = [&](size_t q) {
      const auto hits = ivf.value().Search(queries.row(q), 10, nprobe);
      std::vector<uint32_t> ids(hits.size());
      for (size_t i = 0; i < hits.size(); ++i) ids[i] = hits[i].id;
      return ids;
    };
    const double recall = eval::RecallAgainstExact(
        approx, exact, queries.rows(), 10, &GlobalThreadPool());

    timer.Reset();
    for (size_t q = 0; q < queries.rows(); ++q) {
      auto hits = ivf.value().Search(queries.row(q), 10, nprobe);
    }
    const double us =
        timer.ElapsedSeconds() * 1e6 / static_cast<double>(queries.rows());

    table.AddRow({std::to_string(nprobe),
                  TablePrinter::FormatMetric(
                      ivf.value().ExpectedScanFraction(nprobe), 3),
                  TablePrinter::FormatMetric(recall, 3),
                  TablePrinter::FormatMetric(us, 1),
                  TablePrinter::FormatMetric(adc_us / us, 2)});
    std::printf("nprobe=%zu done\n", nprobe);
    std::fflush(stdout);
  }

  std::printf("\nIVF-ADC probing sweep (db=%zu items, %zu cells):\n",
              ivf.value().num_items(), ivf.value().num_cells());
  table.Print();
  std::printf(
      "\n(Recall rises toward 1.0 as nprobe grows; small nprobe trades a "
      "little recall for a large additional speedup on top of the paper's "
      "ADC scan.)\n");
  return 0;
}
