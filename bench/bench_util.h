// Shared helpers for the paper-table benchmark harnesses.

#ifndef LIGHTLT_BENCH_BENCH_UTIL_H_
#define LIGHTLT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/method.h"
#include "src/baselines/registry.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"
#include "src/util/timer.h"

namespace lightlt::bench {

/// One table column: a dataset preset at one imbalance factor.
struct TableColumn {
  data::PresetId preset;
  double imbalance_factor;
  std::string header;
};

/// method name -> column header -> MAP.
using ResultGrid = std::map<std::string, std::map<std::string, double>>;

/// Runs `make_methods(bench)` for each column and fills the grid. Method
/// order of the first column defines row order via `row_order`. Per-method
/// evaluation wall time is recorded into `method_seconds` (a caller
/// histogram, or a local one feeding the end-of-table timing summary).
template <typename MethodFactory>
ResultGrid RunTable(const std::vector<TableColumn>& columns,
                    const MethodFactory& make_methods, bool full_scale,
                    uint64_t seed, std::vector<std::string>* row_order,
                    obs::Histogram* method_seconds = nullptr) {
  obs::Histogram local_seconds;
  if (method_seconds == nullptr) method_seconds = &local_seconds;
  ResultGrid grid;
  for (const auto& col : columns) {
    std::printf("-- generating %s (IF=%.0f)...\n", col.header.c_str(),
                col.imbalance_factor);
    const auto bench = data::GeneratePreset(col.preset, col.imbalance_factor,
                                            full_scale, seed);
    auto methods = make_methods(bench, col.preset);
    for (auto& method : methods) {
      ScopedTimer timer(method_seconds);
      auto report =
          baselines::EvaluateMethod(method.get(), bench, &GlobalThreadPool());
      if (!report.ok()) {
        std::fprintf(stderr, "   %-22s FAILED: %s\n", method->name().c_str(),
                     report.status().ToString().c_str());
        continue;
      }
      std::printf("   %-22s MAP %.4f   (%.1fs)\n", report.value().name.c_str(),
                  report.value().map, timer.ElapsedSeconds());
      std::fflush(stdout);
      if (row_order != nullptr && grid.count(report.value().name) == 0 &&
          &col == &columns.front()) {
        row_order->push_back(report.value().name);
      }
      grid[report.value().name][col.header] = report.value().map;
    }
  }
  const obs::HistogramSnapshot timing = method_seconds->Snapshot();
  if (timing.count > 0) {
    std::printf("-- %llu method evaluations: mean %.1fs  p50 %.1fs  p95 %.1fs\n",
                static_cast<unsigned long long>(timing.count), timing.Mean(),
                timing.Quantile(0.50), timing.Quantile(0.95));
  }
  return grid;
}

/// Renders the grid in the paper's layout (methods x dataset columns).
inline void PrintGrid(const std::string& title,
                      const std::vector<TableColumn>& columns,
                      const std::vector<std::string>& row_order,
                      const ResultGrid& grid) {
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> headers = {"Method"};
  for (const auto& col : columns) headers.push_back(col.header);
  TablePrinter table(headers);
  for (const auto& name : row_order) {
    std::vector<std::string> row = {name};
    auto it = grid.find(name);
    for (const auto& col : columns) {
      if (it != grid.end() && it->second.count(col.header)) {
        row.push_back(TablePrinter::FormatMetric(it->second.at(col.header)));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace lightlt::bench

#endif  // LIGHTLT_BENCH_BENCH_UTIL_H_
