// Ablation: the class-weighting sharpness gamma of the weighted cross
// entropy (Eqn. 12), with head/tail MAP breakdown. gamma=0 is plain CE;
// gamma -> 1 approaches inverse-frequency weighting, which the paper notes
// can overfit tail classes (§III-E) — the motivation for the ensemble.
//
//   ./bench_ablation_classweight [--seed=7]

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/core/pipeline.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::printf("== Ablation: class-weight sharpness gamma (Eqn. 12) ==\n");
  std::printf("(Cifar100ish IF=100, no ensemble)\n\n");

  const auto bench =
      data::GeneratePreset(data::PresetId::kCifar100ish, 100.0, false, seed);

  TablePrinter table({"gamma", "MAP", "head MAP", "tail MAP"});
  for (float gamma : {0.0f, 0.5f, 0.9f, 0.99f, 0.999f}) {
    std::printf("running gamma=%.3f...\n", gamma);
    std::fflush(stdout);
    auto spec = baselines::MakeLightLtSpec(bench,
                                           data::PresetId::kCifar100ish,
                                           false, 1);
    spec.train.loss.gamma = gamma;
    core::LightLtModel model(spec.arch, spec.seed);
    auto stats = core::TrainLightLt(&model, bench.train, spec.train);
    if (!stats.ok()) continue;
    auto report = core::EvaluateModel(model, bench, &GlobalThreadPool());
    if (!report.ok()) continue;
    table.AddRow({TablePrinter::FormatMetric(gamma, 3),
                  TablePrinter::FormatMetric(report.value().map),
                  TablePrinter::FormatMetric(report.value().head_map),
                  TablePrinter::FormatMetric(report.value().tail_map)});
  }

  std::printf("\nClass-weighting ablation:\n");
  table.Print();
  std::printf(
      "\n(Observed shape: mild weighting (gamma <= 0.5) is the best overall "
      "trade-off; pushing gamma toward 1 over-weights the 2-sample tail "
      "classes, which cannot be learned from so few examples, and the "
      "head MAP pays for it — exactly the tail-overfitting failure mode the "
      "paper's ensemble step is designed to counteract, §III-E.)\n");
  return 0;
}
