// Micro-benchmarks of the numeric kernels the training loop spends its time
// in: matrix products, the fused codeword-similarity kernel, softmax, and a
// full DSQ forward/backward step.

#include <benchmark/benchmark.h>

#include "src/clustering/kmeans.h"
#include "src/core/dsq.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace lightlt {
namespace {

void BM_MatMul(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = Matrix::RandomGaussian(n, n, rng);
  Matrix b = Matrix::RandomGaussian(n, n, rng);
  for (auto _ : state) {
    Matrix c = a.MatMul(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SquaredEuclidean(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix x = Matrix::RandomGaussian(n, 64, rng);
  Matrix c = Matrix::RandomGaussian(256, 64, rng);
  for (auto _ : state) {
    Matrix d = x.SquaredEuclideanTo(c);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 256);
}
BENCHMARK(BM_SquaredEuclidean)->Arg(64)->Arg(512);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(3);
  Var x = MakeParam(Matrix::RandomGaussian(256, 256, rng));
  for (auto _ : state) {
    Var y = ops::SoftmaxRows(x, 1.0f);
    benchmark::DoNotOptimize(y->value().data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_DsqForwardBackward(benchmark::State& state) {
  Rng rng(4);
  core::DsqConfig cfg;
  cfg.dim = 64;
  cfg.num_codebooks = 4;
  cfg.num_codewords = 64;
  core::DsqModule dsq(cfg, rng);
  Var input = MakeConstant(Matrix::RandomGaussian(64, cfg.dim, rng));
  for (auto _ : state) {
    dsq.ZeroGrad();
    auto out = dsq.Forward(input);
    Var loss = ops::Sum(ops::Square(out.reconstruction));
    Backward(loss);
    benchmark::DoNotOptimize(loss->value()[0]);
  }
}
BENCHMARK(BM_DsqForwardBackward);

void BM_DsqEncode(benchmark::State& state) {
  Rng rng(5);
  core::DsqConfig cfg;
  cfg.dim = 64;
  cfg.num_codebooks = 4;
  cfg.num_codewords = 64;
  core::DsqModule dsq(cfg, rng);
  Matrix x = Matrix::RandomGaussian(static_cast<size_t>(state.range(0)),
                                    cfg.dim, rng);
  std::vector<std::vector<uint32_t>> codes;
  for (auto _ : state) {
    dsq.Encode(x, &codes);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_DsqEncode)->Arg(1024)->Arg(8192);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  Matrix points = Matrix::RandomGaussian(2000, 64, rng);
  for (auto _ : state) {
    clustering::KMeansOptions opts;
    opts.num_clusters = 64;
    opts.max_iterations = 10;
    auto result = clustering::KMeans(points, opts);
    benchmark::DoNotOptimize(result.inertia);
  }
}
BENCHMARK(BM_KMeans);

}  // namespace
}  // namespace lightlt

BENCHMARK_MAIN();
