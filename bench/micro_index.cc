// Micro-benchmarks of the search kernels behind Fig. 7: ADC lookup-table
// scoring vs exhaustive float scoring, packed-code access, Hamming scoring,
// and the fast-scan accumulate kernels (DESIGN.md §12) — one row per kernel
// family available on this CPU, registered at runtime, so the scalar
// reference and the SIMD variants land side by side in the JSON for
// tools/bench_smoke.sh --gate to diff.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/index/adc_index.h"
#include "src/index/codes.h"
#include "src/index/flat_index.h"
#include "src/index/hamming_index.h"
#include "src/index/kernels/scan_kernels.h"
#include "src/util/rng.h"

namespace lightlt {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kCodebooks = 4;
constexpr size_t kCodewords = 64;

index::AdcIndex MakeAdc(size_t n, Rng& rng) {
  std::vector<Matrix> codebooks;
  for (size_t m = 0; m < kCodebooks; ++m) {
    codebooks.push_back(Matrix::RandomGaussian(kCodewords, kDim, rng));
  }
  std::vector<std::vector<uint32_t>> codes(n,
                                           std::vector<uint32_t>(kCodebooks));
  for (auto& item : codes) {
    for (auto& c : item) {
      c = static_cast<uint32_t>(rng.NextIndex(kCodewords));
    }
  }
  auto built = index::AdcIndex::Build(codebooks, codes);
  return std::move(built).value();
}

void BM_AdcScore(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  auto idx = MakeAdc(n, rng);
  Matrix query = Matrix::RandomGaussian(1, kDim, rng);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(query.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdcScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FlatScore(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  index::FlatIndex idx(Matrix::RandomGaussian(n, kDim, rng));
  Matrix query = Matrix::RandomGaussian(1, kDim, rng);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(query.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HammingScore(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t bits = 32;
  Matrix raw = Matrix::RandomGaussian(n, bits, rng);
  size_t blocks = 0;
  auto packed = index::PackSignBits(raw, &blocks);
  index::HammingIndex idx(std::move(packed), blocks, bits);
  Matrix qraw = Matrix::RandomGaussian(1, bits, rng);
  size_t qblocks = 0;
  auto qcode = index::PackSignBits(qraw, &qblocks);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(qcode.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HammingScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PackedCodesRoundTrip(benchmark::State& state) {
  Rng rng(4);
  const size_t n = 4096;
  index::PackedCodes codes(n, kCodebooks, kCodewords);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t m = 0; m < kCodebooks; ++m) {
        codes.Set(i, m, static_cast<uint32_t>((i + m) % kCodewords));
      }
    }
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t m = 0; m < kCodebooks; ++m) sum += codes.Get(i, m);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n * kCodebooks);
}
BENCHMARK(BM_PackedCodesRoundTrip);

void BM_AdcIndexBuild(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto idx = MakeAdc(n, rng);
    benchmark::DoNotOptimize(idx.num_items());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdcIndexBuild)->Arg(1000)->Arg(10000);

// One accumulate pass over n items with a pre-quantized LUT — the inner
// loop of the fast-scan Search, isolated per kernel family. Rows are named
// BM_ScanKernel<family>/n; "scalar" is the reference every SIMD family is
// measured against (the >=3x acceptance line of §12).
void BM_ScanKernel(benchmark::State& state,
                   index::kernels::ScanKernel kernel) {
  Rng rng(6);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t m = kCodebooks;
  const size_t kp = index::kernels::PadCodewords(kCodewords);
  std::vector<uint8_t> item_major(n * m);
  for (auto& c : item_major) {
    c = static_cast<uint8_t>(rng.NextIndex(kCodewords));
  }
  std::vector<uint8_t> blocked;
  index::kernels::BuildBlockedCodes(item_major.data(), n, m, &blocked);
  std::vector<float> lut(m * kCodewords);
  for (auto& v : lut) v = static_cast<float>(rng.NextGaussian());
  const auto qlut = index::kernels::QuantizeLut(lut.data(), m, kCodewords);
  const size_t blocks = index::kernels::NumBlocks(n);
  std::vector<uint16_t> sums(blocks * index::kernels::kBlockItems);
  for (auto _ : state) {
    kernel.fn(blocked.data(), blocks, m, kp, qlut.table.data(), sums.data());
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// End-to-end Search through whichever path the index selected (fast-scan
// shortlist + exact re-rank, or the legacy exact scan under
// LIGHTLT_SCAN_KERNEL=off) — the user-visible number the kernels feed.
void BM_AdcSearch(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  auto idx = MakeAdc(n, rng);
  Matrix query = Matrix::RandomGaussian(1, kDim, rng);
  for (auto _ : state) {
    auto hits = idx.Search(query.data(), 10);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(idx.scan_kernel_name());
}
BENCHMARK(BM_AdcSearch)->Arg(1000)->Arg(10000)->Arg(100000);

// Kernel rows depend on the CPU, so they register at runtime rather than
// via the static BENCHMARK macro.
void RegisterScanKernelBenchmarks() {
  const size_t kp = index::kernels::PadCodewords(kCodewords);
  for (const std::string& name : index::kernels::AvailableScanKernels()) {
    const auto kernel = index::kernels::ScanKernelByName(name, kp);
    if (kernel.fn == nullptr) continue;  // family lacks this table width
    benchmark::RegisterBenchmark(("BM_ScanKernel" + name).c_str(),
                                 BM_ScanKernel, kernel)
        ->Arg(1000)
        ->Arg(100000);
  }
}

}  // namespace
}  // namespace lightlt

int main(int argc, char** argv) {
  lightlt::RegisterScanKernelBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
