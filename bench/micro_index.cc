// Micro-benchmarks of the search kernels behind Fig. 7: ADC lookup-table
// scoring vs exhaustive float scoring, packed-code access, and Hamming
// scoring, across database sizes.

#include <benchmark/benchmark.h>

#include "src/index/adc_index.h"
#include "src/index/codes.h"
#include "src/index/flat_index.h"
#include "src/index/hamming_index.h"
#include "src/util/rng.h"

namespace lightlt {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kCodebooks = 4;
constexpr size_t kCodewords = 64;

index::AdcIndex MakeAdc(size_t n, Rng& rng) {
  std::vector<Matrix> codebooks;
  for (size_t m = 0; m < kCodebooks; ++m) {
    codebooks.push_back(Matrix::RandomGaussian(kCodewords, kDim, rng));
  }
  std::vector<std::vector<uint32_t>> codes(n,
                                           std::vector<uint32_t>(kCodebooks));
  for (auto& item : codes) {
    for (auto& c : item) {
      c = static_cast<uint32_t>(rng.NextIndex(kCodewords));
    }
  }
  auto built = index::AdcIndex::Build(codebooks, codes);
  return std::move(built).value();
}

void BM_AdcScore(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  auto idx = MakeAdc(n, rng);
  Matrix query = Matrix::RandomGaussian(1, kDim, rng);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(query.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdcScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FlatScore(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  index::FlatIndex idx(Matrix::RandomGaussian(n, kDim, rng));
  Matrix query = Matrix::RandomGaussian(1, kDim, rng);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(query.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_HammingScore(benchmark::State& state) {
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t bits = 32;
  Matrix raw = Matrix::RandomGaussian(n, bits, rng);
  size_t blocks = 0;
  auto packed = index::PackSignBits(raw, &blocks);
  index::HammingIndex idx(std::move(packed), blocks, bits);
  Matrix qraw = Matrix::RandomGaussian(1, bits, rng);
  size_t qblocks = 0;
  auto qcode = index::PackSignBits(qraw, &qblocks);
  std::vector<float> scores;
  for (auto _ : state) {
    idx.ComputeScores(qcode.data(), &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HammingScore)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PackedCodesRoundTrip(benchmark::State& state) {
  Rng rng(4);
  const size_t n = 4096;
  index::PackedCodes codes(n, kCodebooks, kCodewords);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t m = 0; m < kCodebooks; ++m) {
        codes.Set(i, m, static_cast<uint32_t>((i + m) % kCodewords));
      }
    }
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t m = 0; m < kCodebooks; ++m) sum += codes.Get(i, m);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n * kCodebooks);
}
BENCHMARK(BM_PackedCodesRoundTrip);

void BM_AdcIndexBuild(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto idx = MakeAdc(n, rng);
    benchmark::DoNotOptimize(idx.num_items());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdcIndexBuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace lightlt

BENCHMARK_MAIN();
