// Reproduces Table III: MAP comparison on the text-like long-tail datasets
// (NCish / QBAish, IF in {50, 100}) against LSH, PQ, DPQ, KDE and LTHNet.
//
//   ./bench_table3_text [--full] [--seed=7]
//
// Expected shape (paper): LSH << PQ << deep methods; KDE/DPQ close with KDE
// slightly ahead; LightLT w/o ensemble edges out all baselines; LightLT
// (ensemble) best overall.

#include "bench/bench_util.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::vector<bench::TableColumn> columns = {
      {data::PresetId::kNcish, 50.0, "NCish IF=50"},
      {data::PresetId::kNcish, 100.0, "NCish IF=100"},
      {data::PresetId::kQbaish, 50.0, "QBAish IF=50"},
      {data::PresetId::kQbaish, 100.0, "QBAish IF=100"},
  };

  std::printf("== Table III: comparison with baselines on text data ==\n");
  std::printf("(scale: %s)\n\n", full ? "full (Table I sizes)" : "reduced");

  std::vector<std::string> row_order;
  auto grid = bench::RunTable(
      columns,
      [&](const data::RetrievalBenchmark& bench, data::PresetId preset) {
        return baselines::MakeTextMethodSet(bench, preset, full);
      },
      full, seed, &row_order);

  bench::PrintGrid("Table III (reproduced): MAP on text-like datasets",
                   columns, row_order, grid);
  return 0;
}
