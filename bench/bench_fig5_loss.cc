// Reproduces Fig. 5: LightLT trained with cross-entropy only vs the full
// proposed loss (CE + center + ranking), on Cifar100ish and NCish at IF in
// {50, 100}, without the ensemble module.
//
//   ./bench_fig5_loss [--full] [--seed=7]
//
// Expected shape (paper): the full loss wins on every configuration, with a
// larger relative gain on Cifar100 than on NC.

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {

double RunOne(const data::RetrievalBenchmark& bench, data::PresetId preset,
              bool full, bool full_loss) {
  auto spec = baselines::MakeLightLtSpec(bench, preset, full, 1);
  spec.name = full_loss ? "LightLT" : "LightLT(only CE loss)";
  if (!full_loss) spec.train.loss.alpha = 0.0f;
  baselines::DeepQuantMethod method(std::move(spec));
  auto report =
      baselines::EvaluateMethod(&method, bench, &GlobalThreadPool());
  return report.ok() ? report.value().map : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::printf("== Fig. 5: effect of the proposed loss function ==\n");
  std::printf("(no ensemble; scale: %s)\n\n", full ? "full" : "reduced");

  struct Column {
    data::PresetId preset;
    double imbalance;
    const char* header;
  };
  const Column columns[] = {
      {data::PresetId::kCifar100ish, 50.0, "Cifar100ish IF=50"},
      {data::PresetId::kCifar100ish, 100.0, "Cifar100ish IF=100"},
      {data::PresetId::kNcish, 50.0, "NCish IF=50"},
      {data::PresetId::kNcish, 100.0, "NCish IF=100"},
  };

  std::vector<std::string> headers = {"Variant"};
  std::vector<std::string> ce_row = {"LightLT(only CE loss)"};
  std::vector<std::string> full_row = {"LightLT"};
  for (const auto& col : columns) {
    std::printf("-- %s\n", col.header);
    const auto bench =
        data::GeneratePreset(col.preset, col.imbalance, full, seed);
    const double ce_only = RunOne(bench, col.preset, full, false);
    std::printf("   CE only    MAP %.4f\n", ce_only);
    const double with_full = RunOne(bench, col.preset, full, true);
    std::printf("   full loss  MAP %.4f\n", with_full);
    headers.push_back(col.header);
    ce_row.push_back(TablePrinter::FormatMetric(ce_only));
    full_row.push_back(TablePrinter::FormatMetric(with_full));
  }

  std::printf("\nFig. 5 (reproduced): loss-function ablation\n");
  TablePrinter table(headers);
  table.AddRow(ce_row);
  table.AddRow(full_row);
  table.Print();
  return 0;
}
