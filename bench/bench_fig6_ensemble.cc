// Reproduces Fig. 6: the effect of the number of ensemble models (none, 2,
// 4) on Cifar100ish and NCish at IF in {50, 100}.
//
//   ./bench_fig6_ensemble [--full] [--seed=7]
//
// Expected shape (paper): MAP rises monotonically with the ensemble size;
// even 2 models improve noticeably over no ensemble.

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {

double RunOne(const data::RetrievalBenchmark& bench, data::PresetId preset,
              bool full, int num_models) {
  auto spec = baselines::MakeLightLtSpec(bench, preset, full, num_models);
  baselines::DeepQuantMethod method(std::move(spec));
  auto report =
      baselines::EvaluateMethod(&method, bench, &GlobalThreadPool());
  return report.ok() ? report.value().map : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::printf("== Fig. 6: effect of the number of ensemble models ==\n");
  std::printf("(scale: %s)\n\n", full ? "full" : "reduced");

  struct Column {
    data::PresetId preset;
    double imbalance;
    const char* header;
  };
  const Column columns[] = {
      {data::PresetId::kCifar100ish, 50.0, "Cifar100ish IF=50"},
      {data::PresetId::kCifar100ish, 100.0, "Cifar100ish IF=100"},
      {data::PresetId::kNcish, 50.0, "NCish IF=50"},
      {data::PresetId::kNcish, 100.0, "NCish IF=100"},
  };
  const int model_counts[] = {1, 2, 4};
  const char* row_names[] = {"LightLT w/o ensemble",
                             "LightLT w/ 2 models ensemble",
                             "LightLT w/ 4 models ensemble"};

  std::vector<std::string> headers = {"Variant"};
  std::vector<std::vector<std::string>> rows(3);
  for (int r = 0; r < 3; ++r) rows[r].push_back(row_names[r]);

  for (const auto& col : columns) {
    std::printf("-- %s\n", col.header);
    headers.push_back(col.header);
    const auto bench =
        data::GeneratePreset(col.preset, col.imbalance, full, seed);
    for (int r = 0; r < 3; ++r) {
      const double map = RunOne(bench, col.preset, full, model_counts[r]);
      std::printf("   n=%d  MAP %.4f\n", model_counts[r], map);
      std::fflush(stdout);
      rows[r].push_back(TablePrinter::FormatMetric(map));
    }
  }

  std::printf("\nFig. 6 (reproduced): ensemble-size ablation\n");
  TablePrinter table(headers);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  return 0;
}
