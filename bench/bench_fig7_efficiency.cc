// Reproduces Fig. 7: speedup ratio and compress ratio of LightLT's ADC
// search vs exhaustive float search on QBAish (IF=100), sweeping the
// database scale over {1e-3, 1e-2, 1e-1, 1} of the full database.
//
//   ./bench_fig7_efficiency [--full] [--seed=7] [--repeats=5]
//
// Expected shape (paper): both ratios grow with database size; at the
// smallest scale (~hundreds of items) quantization pays off in neither time
// nor space because the codebooks themselves dominate; at full scale the
// paper reports 62x speedup and 240x compression (full-scale parameters:
// d=768, M=4, K=256, n=642k — run with --full to approach them).

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/core/pipeline.h"
#include "src/eval/efficiency.h"
#include "src/data/presets.h"
#include "src/index/flat_index.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);
  const int repeats = static_cast<int>(cli.GetInt("repeats", 5));

  std::printf("== Fig. 7: efficiency vs database scale (QBAish IF=100) ==\n");
  std::printf("(scale: %s)\n\n", full ? "full" : "reduced");

  const auto bench =
      data::GeneratePreset(data::PresetId::kQbaish, 100.0, full, seed);

  // Train a LightLT model (quality is irrelevant to the timing study, so a
  // short schedule suffices).
  auto spec = baselines::MakeLightLtSpec(bench, data::PresetId::kQbaish, full,
                                         /*ensemble_models=*/1);
  spec.train.epochs = full ? 10 : 8;
  core::LightLtModel model(spec.arch, seed);
  auto stats = core::TrainLightLt(&model, bench.train, spec.train);
  if (!stats.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  const Matrix db_embedded =
      core::EmbedInChunks(model, bench.database.features);
  const Matrix queries = core::EmbedInChunks(model, bench.query.features);

  TablePrinter table({"db fraction", "n", "speedup", "theo speedup",
                      "compress", "theo compress", "flat us/q", "adc us/q"});
  const double fractions[] = {1e-3, 1e-2, 1e-1, 1.0};
  for (double fraction : fractions) {
    const size_t n = std::max<size_t>(
        1, static_cast<size_t>(fraction *
                               static_cast<double>(db_embedded.rows())));
    std::vector<size_t> subset(n);
    for (size_t i = 0; i < n; ++i) subset[i] = i;
    const Matrix sub_db = db_embedded.GatherRows(subset);

    std::vector<std::vector<uint32_t>> codes;
    model.dsq().Encode(sub_db, &codes);
    auto adc = index::AdcIndex::Build(model.Codebooks(), codes);
    if (!adc.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   adc.status().ToString().c_str());
      return 1;
    }
    index::FlatIndex flat(sub_db);

    const auto report =
        eval::MeasureEfficiency(flat, adc.value(), queries, repeats);
    table.AddRow({TablePrinter::FormatMetric(fraction, 3),
                  std::to_string(n),
                  TablePrinter::FormatMetric(report.measured_speedup, 2),
                  TablePrinter::FormatMetric(report.theoretical_speedup, 2),
                  TablePrinter::FormatMetric(report.measured_compress_ratio, 2),
                  TablePrinter::FormatMetric(
                      report.theoretical_compress_ratio, 2),
                  TablePrinter::FormatMetric(report.flat_query_micros, 1),
                  TablePrinter::FormatMetric(report.adc_query_micros, 1)});
    std::printf("fraction %.3f done (n=%zu)\n", fraction, n);
    std::fflush(stdout);
  }

  std::printf("\nFig. 7 (reproduced): efficiency vs database scale\n");
  table.Print();
  return 0;
}
