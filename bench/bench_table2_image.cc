// Reproduces Table II: MAP comparison on the image-like long-tail datasets
// (Cifar100ish / ImageNet100ish, IF in {50, 100}) across shallow hashes,
// shallow quantizers, deep hashes and deep quantizers, including LightLT
// with and without the weight ensemble.
//
//   ./bench_table2_image [--full] [--seed=7] [--if=50,100]
//
// Expected shape (paper): deep > shallow; quantization >= hashing; LTHNet
// best among hashes; LightLT w/o ensemble > LTHNet; LightLT best overall.

#include "bench/bench_util.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::vector<bench::TableColumn> columns = {
      {data::PresetId::kCifar100ish, 50.0, "Cifar100ish IF=50"},
      {data::PresetId::kCifar100ish, 100.0, "Cifar100ish IF=100"},
      {data::PresetId::kImageNet100ish, 50.0, "ImageNet100ish IF=50"},
      {data::PresetId::kImageNet100ish, 100.0, "ImageNet100ish IF=100"},
  };

  std::printf("== Table II: comparison with baselines on image data ==\n");
  std::printf("(scale: %s)\n\n", full ? "full (Table I sizes)" : "reduced");

  std::vector<std::string> row_order;
  auto grid = bench::RunTable(
      columns,
      [&](const data::RetrievalBenchmark& bench, data::PresetId preset) {
        return baselines::MakeImageMethodSet(bench, preset, full);
      },
      full, seed, &row_order);

  bench::PrintGrid("Table II (reproduced): MAP on image-like datasets",
                   columns, row_order, grid);
  return 0;
}
