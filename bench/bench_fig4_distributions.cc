// Reproduces Table I + Fig. 4: dataset statistics and the Zipf label
// distributions of the eight long-tail configurations.
//
//   ./bench_fig4_distributions [--full]
//
// Prints the Table I statistics row per dataset and the log-log label
// distribution series of Fig. 4 (sorted class index vs class size). Under
// Zipf's law the series is a straight line in log-log space with slope -p.

#include <cmath>
#include <cstdio>

#include "src/data/longtail.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

using namespace lightlt;

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);

  std::printf("== Table I / Fig. 4: dataset statistics & distributions ==\n");
  std::printf("(scale: %s)\n\n", full ? "full (Table I sizes)" : "reduced");

  TablePrinter stats({"Dataset", "IF", "C", "pi_1", "pi_C", "N_train",
                      "N_query", "N_db", "Zipf p", "measured IF"});
  for (auto preset : data::AllPresets()) {
    for (double imbalance : {50.0, 100.0}) {
      const auto cfg = data::MakePresetConfig(preset, imbalance, full, seed);
      const auto bench = data::GeneratePreset(preset, imbalance, full, seed);
      const auto counts = bench.train.ClassCounts();
      stats.AddRow({
          data::PresetName(preset),
          TablePrinter::FormatMetric(imbalance, 0),
          std::to_string(bench.train.num_classes),
          std::to_string(counts.front()),
          std::to_string(counts.back()),
          std::to_string(bench.train.size()),
          std::to_string(bench.query.size()),
          std::to_string(bench.database.size()),
          TablePrinter::FormatMetric(
              data::ZipfExponent(cfg.num_classes, imbalance), 3),
          TablePrinter::FormatMetric(data::MeasuredImbalanceFactor(counts), 1),
      });
    }
  }
  stats.Print();

  std::printf(
      "\nFig. 4 series: ln(sorted class index) vs ln(class size), IF=50\n");
  for (auto preset : data::AllPresets()) {
    const auto bench = data::GeneratePreset(preset, 50.0, full, seed);
    const auto counts = bench.train.ClassCounts();
    std::printf("%s:", data::PresetName(preset).c_str());
    // Sample up to 8 points along the sorted class index axis.
    const size_t c = counts.size();
    for (size_t k = 0; k < 8; ++k) {
      const size_t idx = k * (c - 1) / 7;
      std::printf(" (%.2f, %.2f)", std::log(static_cast<double>(idx + 1)),
                  std::log(static_cast<double>(counts[idx])));
    }
    std::printf("\n");
  }
  std::printf(
      "\n(Each series is near-linear in log-log space: Zipf's law, as in "
      "Fig. 4 of the paper.)\n");
  return 0;
}
