// Ablation: number of encoder/decoder pairs M, with and without the
// codebook skip (Eqn. 10). The paper motivates the second skip by gradient
// stability across many stages ("the addition of more encoder-decoder pairs
// only offers minimal performance improvements" without it, §III-C2); this
// harness sweeps M and reports MAP plus hard-encoding reconstruction error.
//
//   ./bench_ablation_stages [--seed=7] [--trials=2]

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/core/pipeline.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {

struct RunResult {
  double map = 0.0;
  double recon_error = 0.0;
};

RunResult RunOne(const data::RetrievalBenchmark& bench, size_t stages,
                 bool codebook_skip, int trials) {
  RunResult out;
  int ok_runs = 0;
  for (int t = 0; t < trials; ++t) {
    auto spec = baselines::MakeLightLtSpec(
        bench, data::PresetId::kCifar100ish, false, 1);
    spec.arch.dsq.num_codebooks = stages;
    spec.arch.dsq.codebook_skip = codebook_skip;
    spec.seed = 0x117 + static_cast<uint64_t>(t) * 31;

    core::LightLtModel model(spec.arch, spec.seed);
    auto stats = core::TrainLightLt(&model, bench.train, spec.train);
    if (!stats.ok()) continue;
    auto report = core::EvaluateModel(model, bench, &GlobalThreadPool());
    if (!report.ok()) continue;
    out.map += report.value().map;
    out.recon_error += model.dsq().ReconstructionError(
        core::EmbedInChunks(model, bench.database.features));
    ++ok_runs;
  }
  if (ok_runs > 0) {
    out.map /= ok_runs;
    out.recon_error /= ok_runs;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);
  const int trials = static_cast<int>(cli.GetInt("trials", 2));

  std::printf("== Ablation: encoder/decoder stages M x codebook skip ==\n");
  std::printf("(Cifar100ish IF=50, no ensemble, MAP and reconstruction "
              "error averaged over %d seeds)\n\n", trials);

  const auto bench =
      data::GeneratePreset(data::PresetId::kCifar100ish, 50.0, false, seed);

  TablePrinter table({"M", "MAP (residual only)", "MAP (DSQ)",
                      "recon err (residual)", "recon err (DSQ)"});
  for (size_t stages : {1u, 2u, 4u, 8u}) {
    std::printf("running M=%zu...\n", stages);
    std::fflush(stdout);
    const RunResult residual = RunOne(bench, stages, false, trials);
    const RunResult dsq =
        stages == 1 ? residual : RunOne(bench, stages, true, trials);
    table.AddRow({std::to_string(stages),
                  TablePrinter::FormatMetric(residual.map),
                  TablePrinter::FormatMetric(dsq.map),
                  TablePrinter::FormatMetric(residual.recon_error, 3),
                  TablePrinter::FormatMetric(dsq.recon_error, 3)});
  }

  std::printf("\nStage-count ablation:\n");
  table.Print();
  std::printf(
      "\n(Expected: more stages reduce reconstruction error; the codebook "
      "skip matters more as M grows, which is the paper's motivation for "
      "the second skip connection.)\n");
  return 0;
}
