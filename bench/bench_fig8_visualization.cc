// Reproduces Fig. 8: 2-D visualization of the quantized representations of
// five Cifar100ish classes under (a) CE only, (b) CE + center loss, and
// (c) CE + center + ranking loss.
//
//   ./bench_fig8_visualization [--seed=7] [--out=fig8.tsv]
//
// Emits per-variant point clouds (PCA projection to 2-D) as TSV:
//   variant  class  x  y
// plus a cluster-quality summary (mean intra-class distance / mean
// inter-class centroid distance — lower is tighter/better separated).
// Expected shape (paper): CE-only clouds are scattered; +center forms
// clusters that may overlap; +ranking yields tight, well-separated clusters.

#include <cmath>
#include <cstdio>
#include <string>

#include "src/baselines/deep_quant.h"
#include "src/clustering/pca.h"
#include "src/core/pipeline.h"
#include "src/core/trainer.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

using namespace lightlt;

namespace {

struct VariantResult {
  std::string name;
  Matrix points;                // n x 2
  std::vector<size_t> labels;   // class of each point
  double intra_over_inter = 0.0;
  double map = 0.0;
};

VariantResult RunVariant(const data::RetrievalBenchmark& bench,
                         const std::string& name, bool center, bool ranking,
                         uint64_t seed) {
  auto spec = baselines::MakeLightLtSpec(bench, data::PresetId::kCifar100ish,
                                         false, 1);
  spec.train.loss.use_center_loss = center;
  spec.train.loss.use_ranking_loss = ranking;
  if (!center && !ranking) spec.train.loss.alpha = 0.0f;
  // Prototypes start spread at the embedding scale so the center loss forms
  // clusters around well-separated anchors rather than contracting space.
  spec.arch.prototype_init_scale = 2.0f;

  core::LightLtModel model(spec.arch, seed);
  auto stats = core::TrainLightLt(&model, bench.train, spec.train);
  if (!stats.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }

  // Quantized representations of database items from 5 spread-out classes.
  const std::vector<size_t> chosen = {0, 24, 49, 74, 99};
  std::vector<size_t> keep;
  std::vector<size_t> labels;
  for (size_t i = 0; i < bench.database.size(); ++i) {
    for (size_t c = 0; c < chosen.size(); ++c) {
      if (bench.database.labels[i] == chosen[c]) {
        keep.push_back(i);
        labels.push_back(c);
      }
    }
  }
  const Matrix feats = bench.database.features.GatherRows(keep);
  const Matrix embedded = core::EmbedInChunks(model, feats);
  std::vector<std::vector<uint32_t>> codes;
  model.dsq().Encode(embedded, &codes);
  const Matrix quantized = model.dsq().Decode(codes);

  auto pca = clustering::Pca::Fit(quantized, 2);
  if (!pca.ok()) std::exit(1);

  VariantResult result;
  result.name = name;
  result.points = pca.value().Transform(quantized);
  result.labels = labels;

  // Cluster-quality metric on the full-dimensional quantized reps.
  Matrix centroids(chosen.size(), quantized.cols());
  std::vector<size_t> counts(chosen.size(), 0);
  for (size_t i = 0; i < quantized.rows(); ++i) {
    float* c = centroids.row(labels[i]);
    const float* q = quantized.row(i);
    for (size_t j = 0; j < quantized.cols(); ++j) c[j] += q[j];
    ++counts[labels[i]];
  }
  for (size_t k = 0; k < chosen.size(); ++k) {
    if (counts[k] > 0) {
      float* c = centroids.row(k);
      for (size_t j = 0; j < quantized.cols(); ++j) {
        c[j] /= static_cast<float>(counts[k]);
      }
    }
  }
  double intra = 0.0;
  for (size_t i = 0; i < quantized.rows(); ++i) {
    const float* q = quantized.row(i);
    const float* c = centroids.row(labels[i]);
    double acc = 0.0;
    for (size_t j = 0; j < quantized.cols(); ++j) {
      const double diff = q[j] - c[j];
      acc += diff * diff;
    }
    intra += std::sqrt(acc);
  }
  intra /= static_cast<double>(quantized.rows());
  double inter = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < chosen.size(); ++a) {
    for (size_t b = a + 1; b < chosen.size(); ++b) {
      double acc = 0.0;
      for (size_t j = 0; j < quantized.cols(); ++j) {
        const double diff = centroids.at(a, j) - centroids.at(b, j);
        acc += diff * diff;
      }
      inter += std::sqrt(acc);
      ++pairs;
    }
  }
  inter /= static_cast<double>(pairs);
  result.intra_over_inter = intra / inter;

  auto eval = core::EvaluateModel(model, bench);
  if (eval.ok()) result.map = eval.value().map;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const uint64_t seed = cli.GetInt("seed", 7);
  const std::string out_path = cli.GetString("out", "");

  std::printf("== Fig. 8: representation visualization by loss function ==\n");
  std::printf("(Cifar100ish IF=50, 5 classes)\n\n");

  const auto bench =
      data::GeneratePreset(data::PresetId::kCifar100ish, 50.0, false, seed);

  std::vector<VariantResult> variants;
  variants.push_back(RunVariant(bench, "CE", false, false, seed));
  std::printf("variant CE done\n");
  variants.push_back(RunVariant(bench, "CE+center", true, false, seed));
  std::printf("variant CE+center done\n");
  variants.push_back(
      RunVariant(bench, "CE+center+ranking", true, true, seed));
  std::printf("variant CE+center+ranking done\n");

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "variant\tclass\tx\ty\n");
      for (const auto& v : variants) {
        for (size_t i = 0; i < v.points.rows(); ++i) {
          std::fprintf(f, "%s\t%zu\t%.4f\t%.4f\n", v.name.c_str(),
                       v.labels[i], v.points.at(i, 0), v.points.at(i, 1));
        }
      }
      std::fclose(f);
      std::printf("\npoint clouds written to %s\n", out_path.c_str());
    }
  }

  std::printf("\nFig. 8 (reproduced): cluster quality per loss variant\n");
  TablePrinter table({"Variant", "intra/inter distance ratio", "MAP",
                      "interpretation"});
  for (const auto& v : variants) {
    std::string interp =
        v.intra_over_inter > 0.9 ? "scattered"
        : v.intra_over_inter > 0.5 ? "clustered, some overlap"
                                   : "tight, well separated";
    table.AddRow({v.name, TablePrinter::FormatMetric(v.intra_over_inter, 3),
                  TablePrinter::FormatMetric(v.map),
                  interp});
  }
  table.Print();
  std::printf(
      "\n(Paper's qualitative claim: adding center and ranking terms makes "
      "representations more retrieval-friendly. In this reproduction the "
      "MAP column rises monotonically across the three variants; the crude "
      "global intra/inter ratio is reported for reference and need not be "
      "monotone — see EXPERIMENTS.md.)\n");
  return 0;
}
