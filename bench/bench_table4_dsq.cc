// Reproduces Table IV: DSQ vs. the vanilla residual mechanism (first skip
// only, no codebook chaining), without the ensemble module, on Cifar100ish
// and NCish at IF in {50, 100}.
//
//   ./bench_table4_dsq [--full] [--seed=7]
//
// Expected shape (paper): DSQ wins consistently; improvements of roughly
// 1-4% relative, larger at IF=50 than IF=100 and larger on NC than Cifar.

#include <cstdio>

#include "src/baselines/deep_quant.h"
#include "src/data/presets.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"
#include "src/util/threadpool.h"

using namespace lightlt;

namespace {

double RunOne(const data::RetrievalBenchmark& bench, data::PresetId preset,
              bool full, bool codebook_skip, int trials) {
  // Average over several model seeds: the DSQ-vs-residual gap is smaller
  // than single-run training variance on the reduced presets.
  double total = 0.0;
  int ok_runs = 0;
  for (int t = 0; t < trials; ++t) {
    auto spec = baselines::MakeLightLtSpec(bench, preset, full,
                                           /*ensemble_models=*/1);
    spec.name = codebook_skip ? "DSQ" : "Residual";
    spec.arch.dsq.codebook_skip = codebook_skip;
    spec.seed = 0x117 + static_cast<uint64_t>(t) * 31;
    baselines::DeepQuantMethod method(std::move(spec));
    auto report =
        baselines::EvaluateMethod(&method, bench, &GlobalThreadPool());
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    total += report.value().map;
    ++ok_runs;
  }
  return ok_runs > 0 ? total / ok_runs : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli(argc, argv);
  const bool full = cli.GetBool("full", false);
  const uint64_t seed = cli.GetInt("seed", 7);
  const int trials = static_cast<int>(cli.GetInt("trials", 3));

  std::printf("== Table IV: DSQ vs vanilla residual mechanism ==\n");
  std::printf("(both without the ensemble module; scale: %s)\n\n",
              full ? "full" : "reduced");

  struct Column {
    data::PresetId preset;
    double imbalance;
    const char* header;
  };
  const Column columns[] = {
      {data::PresetId::kCifar100ish, 50.0, "Cifar100ish IF=50"},
      {data::PresetId::kCifar100ish, 100.0, "Cifar100ish IF=100"},
      {data::PresetId::kNcish, 50.0, "NCish IF=50"},
      {data::PresetId::kNcish, 100.0, "NCish IF=100"},
  };

  std::vector<std::string> headers = {"Variant"};
  std::vector<std::string> residual_row = {"Residual"};
  std::vector<std::string> dsq_row = {"DSQ"};
  std::vector<std::string> imp_row = {"IMP(%)"};

  for (const auto& col : columns) {
    std::printf("-- %s\n", col.header);
    const auto bench =
        data::GeneratePreset(col.preset, col.imbalance, full, seed);
    const double residual = RunOne(bench, col.preset, full, false, trials);
    std::printf("   Residual  MAP %.4f\n", residual);
    const double dsq = RunOne(bench, col.preset, full, true, trials);
    std::printf("   DSQ       MAP %.4f\n", dsq);
    headers.push_back(col.header);
    residual_row.push_back(TablePrinter::FormatMetric(residual));
    dsq_row.push_back(TablePrinter::FormatMetric(dsq));
    imp_row.push_back(TablePrinter::FormatMetric(
        residual > 0 ? (dsq - residual) / residual * 100.0 : 0.0, 2));
  }

  std::printf("\nTable IV (reproduced): DSQ vs vanilla residual\n");
  TablePrinter table(headers);
  table.AddRow(residual_row);
  table.AddRow(dsq_row);
  table.AddRow(imp_row);
  table.Print();
  return 0;
}
