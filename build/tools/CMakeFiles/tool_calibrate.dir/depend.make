# Empty dependencies file for tool_calibrate.
# This may be replaced when dependencies are built.
