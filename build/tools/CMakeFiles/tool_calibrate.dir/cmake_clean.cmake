file(REMOVE_RECURSE
  "CMakeFiles/tool_calibrate.dir/calibrate.cc.o"
  "CMakeFiles/tool_calibrate.dir/calibrate.cc.o.d"
  "tool_calibrate"
  "tool_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
