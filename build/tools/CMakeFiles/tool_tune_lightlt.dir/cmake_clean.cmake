file(REMOVE_RECURSE
  "CMakeFiles/tool_tune_lightlt.dir/tune_lightlt.cc.o"
  "CMakeFiles/tool_tune_lightlt.dir/tune_lightlt.cc.o.d"
  "tool_tune_lightlt"
  "tool_tune_lightlt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_tune_lightlt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
