# Empty dependencies file for tool_tune_lightlt.
# This may be replaced when dependencies are built.
