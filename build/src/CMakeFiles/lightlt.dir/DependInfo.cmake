
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/deep_hash.cc" "src/CMakeFiles/lightlt.dir/baselines/deep_hash.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/deep_hash.cc.o.d"
  "/root/repo/src/baselines/deep_quant.cc" "src/CMakeFiles/lightlt.dir/baselines/deep_quant.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/deep_quant.cc.o.d"
  "/root/repo/src/baselines/method.cc" "src/CMakeFiles/lightlt.dir/baselines/method.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/method.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/lightlt.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/shallow_hash.cc" "src/CMakeFiles/lightlt.dir/baselines/shallow_hash.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/shallow_hash.cc.o.d"
  "/root/repo/src/baselines/shallow_quant.cc" "src/CMakeFiles/lightlt.dir/baselines/shallow_quant.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/baselines/shallow_quant.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/CMakeFiles/lightlt.dir/clustering/kmeans.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/clustering/kmeans.cc.o.d"
  "/root/repo/src/clustering/linalg.cc" "src/CMakeFiles/lightlt.dir/clustering/linalg.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/clustering/linalg.cc.o.d"
  "/root/repo/src/clustering/pca.cc" "src/CMakeFiles/lightlt.dir/clustering/pca.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/clustering/pca.cc.o.d"
  "/root/repo/src/core/defaults.cc" "src/CMakeFiles/lightlt.dir/core/defaults.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/defaults.cc.o.d"
  "/root/repo/src/core/dsq.cc" "src/CMakeFiles/lightlt.dir/core/dsq.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/dsq.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/CMakeFiles/lightlt.dir/core/ensemble.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/ensemble.cc.o.d"
  "/root/repo/src/core/lightlt_model.cc" "src/CMakeFiles/lightlt.dir/core/lightlt_model.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/lightlt_model.cc.o.d"
  "/root/repo/src/core/losses.cc" "src/CMakeFiles/lightlt.dir/core/losses.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/losses.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/lightlt.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/lightlt.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/lightlt.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/core/trainer.cc.o.d"
  "/root/repo/src/data/data_io.cc" "src/CMakeFiles/lightlt.dir/data/data_io.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/data/data_io.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/lightlt.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/longtail.cc" "src/CMakeFiles/lightlt.dir/data/longtail.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/data/longtail.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/CMakeFiles/lightlt.dir/data/presets.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/data/presets.cc.o.d"
  "/root/repo/src/eval/curves.cc" "src/CMakeFiles/lightlt.dir/eval/curves.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/eval/curves.cc.o.d"
  "/root/repo/src/eval/efficiency.cc" "src/CMakeFiles/lightlt.dir/eval/efficiency.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/eval/efficiency.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/lightlt.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/eval/metrics.cc.o.d"
  "/root/repo/src/index/adc_index.cc" "src/CMakeFiles/lightlt.dir/index/adc_index.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/index/adc_index.cc.o.d"
  "/root/repo/src/index/codes.cc" "src/CMakeFiles/lightlt.dir/index/codes.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/index/codes.cc.o.d"
  "/root/repo/src/index/flat_index.cc" "src/CMakeFiles/lightlt.dir/index/flat_index.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/index/flat_index.cc.o.d"
  "/root/repo/src/index/hamming_index.cc" "src/CMakeFiles/lightlt.dir/index/hamming_index.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/index/hamming_index.cc.o.d"
  "/root/repo/src/index/ivf_index.cc" "src/CMakeFiles/lightlt.dir/index/ivf_index.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/index/ivf_index.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/lightlt.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/lightlt.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/lightlt.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/lightlt.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/scheduler.cc" "src/CMakeFiles/lightlt.dir/nn/scheduler.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/nn/scheduler.cc.o.d"
  "/root/repo/src/serving/service.cc" "src/CMakeFiles/lightlt.dir/serving/service.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/serving/service.cc.o.d"
  "/root/repo/src/tensor/grad_check.cc" "src/CMakeFiles/lightlt.dir/tensor/grad_check.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/tensor/grad_check.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/lightlt.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/lightlt.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/variable.cc" "src/CMakeFiles/lightlt.dir/tensor/variable.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/tensor/variable.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/lightlt.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/util/cli.cc.o.d"
  "/root/repo/src/util/io.cc" "src/CMakeFiles/lightlt.dir/util/io.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/util/io.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lightlt.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/lightlt.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/threadpool.cc" "src/CMakeFiles/lightlt.dir/util/threadpool.cc.o" "gcc" "src/CMakeFiles/lightlt.dir/util/threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
