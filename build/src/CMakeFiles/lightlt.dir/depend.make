# Empty dependencies file for lightlt.
# This may be replaced when dependencies are built.
