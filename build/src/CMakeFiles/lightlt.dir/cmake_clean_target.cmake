file(REMOVE_RECURSE
  "liblightlt.a"
)
