# Empty compiler generated dependencies file for lightlt_tests.
# This may be replaced when dependencies are built.
