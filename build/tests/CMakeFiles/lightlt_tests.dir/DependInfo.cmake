
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/lightlt_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/clustering_test.cc" "tests/CMakeFiles/lightlt_tests.dir/clustering_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/clustering_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/lightlt_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/core_dsq_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_dsq_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_dsq_test.cc.o.d"
  "/root/repo/tests/core_ensemble_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_ensemble_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_ensemble_test.cc.o.d"
  "/root/repo/tests/core_losses_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_losses_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_losses_test.cc.o.d"
  "/root/repo/tests/core_model_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_model_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_model_test.cc.o.d"
  "/root/repo/tests/core_pipeline_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_pipeline_test.cc.o.d"
  "/root/repo/tests/core_serialize_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_serialize_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_serialize_test.cc.o.d"
  "/root/repo/tests/core_trainer_test.cc" "tests/CMakeFiles/lightlt_tests.dir/core_trainer_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/core_trainer_test.cc.o.d"
  "/root/repo/tests/data_io_test.cc" "tests/CMakeFiles/lightlt_tests.dir/data_io_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/data_io_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/lightlt_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/lightlt_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/eval_curves_test.cc" "tests/CMakeFiles/lightlt_tests.dir/eval_curves_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/eval_curves_test.cc.o.d"
  "/root/repo/tests/eval_metrics_test.cc" "tests/CMakeFiles/lightlt_tests.dir/eval_metrics_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/eval_metrics_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/lightlt_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/ivf_index_test.cc" "tests/CMakeFiles/lightlt_tests.dir/ivf_index_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/ivf_index_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/lightlt_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_hash_test.cc" "tests/CMakeFiles/lightlt_tests.dir/property_hash_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/property_hash_test.cc.o.d"
  "/root/repo/tests/property_losses_test.cc" "tests/CMakeFiles/lightlt_tests.dir/property_losses_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/property_losses_test.cc.o.d"
  "/root/repo/tests/property_quantization_test.cc" "tests/CMakeFiles/lightlt_tests.dir/property_quantization_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/property_quantization_test.cc.o.d"
  "/root/repo/tests/serving_test.cc" "tests/CMakeFiles/lightlt_tests.dir/serving_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/serving_test.cc.o.d"
  "/root/repo/tests/tensor_matrix_test.cc" "tests/CMakeFiles/lightlt_tests.dir/tensor_matrix_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/tensor_matrix_test.cc.o.d"
  "/root/repo/tests/tensor_ops_test.cc" "tests/CMakeFiles/lightlt_tests.dir/tensor_ops_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/tensor_ops_test.cc.o.d"
  "/root/repo/tests/tensor_variable_test.cc" "tests/CMakeFiles/lightlt_tests.dir/tensor_variable_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/tensor_variable_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/lightlt_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/lightlt_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lightlt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
