file(REMOVE_RECURSE
  "CMakeFiles/example_scalable_serving.dir/scalable_serving.cpp.o"
  "CMakeFiles/example_scalable_serving.dir/scalable_serving.cpp.o.d"
  "example_scalable_serving"
  "example_scalable_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scalable_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
