# Empty dependencies file for example_scalable_serving.
# This may be replaced when dependencies are built.
