# Empty dependencies file for example_ensemble_workflow.
# This may be replaced when dependencies are built.
