file(REMOVE_RECURSE
  "CMakeFiles/example_ensemble_workflow.dir/ensemble_workflow.cpp.o"
  "CMakeFiles/example_ensemble_workflow.dir/ensemble_workflow.cpp.o.d"
  "example_ensemble_workflow"
  "example_ensemble_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ensemble_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
