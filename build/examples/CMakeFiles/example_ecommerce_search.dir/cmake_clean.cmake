file(REMOVE_RECURSE
  "CMakeFiles/example_ecommerce_search.dir/ecommerce_search.cpp.o"
  "CMakeFiles/example_ecommerce_search.dir/ecommerce_search.cpp.o.d"
  "example_ecommerce_search"
  "example_ecommerce_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ecommerce_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
