# Empty dependencies file for example_ecommerce_search.
# This may be replaced when dependencies are built.
