# Empty dependencies file for example_image_retrieval.
# This may be replaced when dependencies are built.
