file(REMOVE_RECURSE
  "CMakeFiles/example_image_retrieval.dir/image_retrieval.cpp.o"
  "CMakeFiles/example_image_retrieval.dir/image_retrieval.cpp.o.d"
  "example_image_retrieval"
  "example_image_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
