file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ensemble.dir/bench_fig6_ensemble.cc.o"
  "CMakeFiles/bench_fig6_ensemble.dir/bench_fig6_ensemble.cc.o.d"
  "bench_fig6_ensemble"
  "bench_fig6_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
