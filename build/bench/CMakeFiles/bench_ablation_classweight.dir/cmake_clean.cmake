file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_classweight.dir/bench_ablation_classweight.cc.o"
  "CMakeFiles/bench_ablation_classweight.dir/bench_ablation_classweight.cc.o.d"
  "bench_ablation_classweight"
  "bench_ablation_classweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_classweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
