# Empty compiler generated dependencies file for bench_ablation_classweight.
# This may be replaced when dependencies are built.
