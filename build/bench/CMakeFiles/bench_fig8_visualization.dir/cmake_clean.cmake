file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_visualization.dir/bench_fig8_visualization.cc.o"
  "CMakeFiles/bench_fig8_visualization.dir/bench_fig8_visualization.cc.o.d"
  "bench_fig8_visualization"
  "bench_fig8_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
