# Empty dependencies file for bench_table3_text.
# This may be replaced when dependencies are built.
