file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_image.dir/bench_table2_image.cc.o"
  "CMakeFiles/bench_table2_image.dir/bench_table2_image.cc.o.d"
  "bench_table2_image"
  "bench_table2_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
