# Empty dependencies file for bench_table4_dsq.
# This may be replaced when dependencies are built.
