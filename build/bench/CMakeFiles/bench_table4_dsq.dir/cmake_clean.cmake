file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dsq.dir/bench_table4_dsq.cc.o"
  "CMakeFiles/bench_table4_dsq.dir/bench_table4_dsq.cc.o.d"
  "bench_table4_dsq"
  "bench_table4_dsq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
