file(REMOVE_RECURSE
  "CMakeFiles/bench_ivf_scaling.dir/bench_ivf_scaling.cc.o"
  "CMakeFiles/bench_ivf_scaling.dir/bench_ivf_scaling.cc.o.d"
  "bench_ivf_scaling"
  "bench_ivf_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ivf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
